"""The serve subsystem: wire protocol, sharding, dedup, byte-identity.

The headline acceptance criteria live here: a 3-workload x 2-prefetcher
matrix submitted through the HTTP job server (including a two-instance
sharded ring) comes back *byte-identical* — equal pickles, not merely
equal numbers — to a direct :class:`SimRunner` call; cache-hit replies,
in-flight dedup (one execution for two concurrent identical
submissions), and per-job progress streaming to two concurrent clients
are all pinned; and with the knobs unset nothing routes anywhere.
"""

from __future__ import annotations

import json
import pickle
import threading
import time
import urllib.request
from typing import Dict, List, Optional

import pytest

from repro.experiments.common import experiment_config, serve_runner
from repro.obs import metrics as obs_metrics
from repro.obs import report as obs_report
from repro.obs import runlog as obs_runlog
from repro.obs import trace as obs_trace
from repro.runner import JobResult, ResultCache, SimJob, SimRunner, spec
from repro.serve import (JobBroker, ServeClient, Server, ServerThread,
                         ShardMap, WireError, job_from_wire, job_to_wire,
                         pick_free_port, result_from_wire, result_to_wire,
                         shard_of)
from repro.telemetry import TelemetryConfig

TINY_N = 2000
CFG = experiment_config()
WORKLOADS = ("gap.pr", "06.lbm", "06.mcf")
PREFETCHERS = ("triangel", "streamline")


def _matrix_jobs() -> List[SimJob]:
    """The acceptance matrix: 3 workloads x (baseline + 2 prefetchers)."""
    jobs = []
    for wl in WORKLOADS:
        jobs.append(SimJob.single(wl, TINY_N, CFG, l1="stride"))
        for pf in PREFETCHERS:
            jobs.append(SimJob.single(wl, TINY_N, CFG, l1="stride",
                                      l2=(spec(pf),)))
    return jobs


def _direct(jobs: List[SimJob]) -> List[JobResult]:
    return SimRunner(jobs=1,
                     cache=ResultCache(persistent=False)).run(jobs)


def _mem_runner() -> SimRunner:
    return SimRunner(jobs=1, cache=ResultCache(persistent=False))


def _server(runner: Optional[SimRunner] = None,
            shard_map: Optional[ShardMap] = None,
            port: int = 0, obs_root=None) -> ServerThread:
    broker = JobBroker(runner=runner if runner is not None
                       else _mem_runner())
    return ServerThread(Server(broker, port=port, shard_map=shard_map,
                               obs_root=obs_root,
                               poll_interval=0.05)).start()


def _bytes(results: List[JobResult]) -> List[bytes]:
    return [pickle.dumps(r, protocol=pickle.HIGHEST_PROTOCOL)
            for r in results]


# -- wire protocol -------------------------------------------------------------

class TestWire:
    def test_job_roundtrip_is_identity(self):
        tcfg = TelemetryConfig(interval=500)
        jobs = [
            SimJob.single("gap.pr", TINY_N, CFG, l1="stride"),
            SimJob.single("06.lbm", TINY_N, CFG, l1="stride",
                          l2=(spec("streamline", degree=2),),
                          probes=("bus_counts",),
                          measure_overrides=(("degree", 4),)),
            SimJob.single("06.mcf", TINY_N,
                          CFG.scaled(telemetry=tcfg), l1="berti",
                          l2=(spec("triangel"),)),
            SimJob.multi(["gap.pr", "06.lbm"], TINY_N,
                         experiment_config(num_cores=2), l1="stride"),
        ]
        for job in jobs:
            # Through real JSON text, as the HTTP body would carry it.
            payload = json.loads(json.dumps(job_to_wire(job)))
            decoded, fingerprint = job_from_wire(payload)
            assert fingerprint == job.fingerprint()
            assert decoded.canonical() == job.canonical()

    def test_wire_version_mismatch_rejected(self):
        payload = job_to_wire(_matrix_jobs()[0])
        payload["wire"] = 999
        with pytest.raises(WireError, match="wire version"):
            job_from_wire(payload)

    def test_schema_mismatch_rejected(self):
        payload = job_to_wire(_matrix_jobs()[0])
        payload["job"]["schema"] = 1
        with pytest.raises(WireError, match="schema"):
            job_from_wire(payload)

    def test_tampered_job_fails_fingerprint_check(self):
        payload = job_to_wire(_matrix_jobs()[0])
        payload["job"]["n"] = TINY_N + 1
        with pytest.raises(WireError, match="fingerprint mismatch"):
            job_from_wire(payload)

    def test_unknown_config_field_rejected(self):
        payload = job_to_wire(_matrix_jobs()[0])
        payload["job"]["config"]["no_such_knob"] = 1
        with pytest.raises(WireError, match="no_such_knob"):
            job_from_wire(payload)

    def test_result_roundtrip_and_digest_guard(self):
        result = _direct(_matrix_jobs()[:1])[0]
        payload = json.loads(json.dumps(result_to_wire(result)))
        decoded = result_from_wire(payload)
        assert pickle.dumps(decoded) == pickle.dumps(result)
        payload["sha256"] = "0" * 64
        with pytest.raises(WireError, match="sha256"):
            result_from_wire(payload)


# -- sharding ------------------------------------------------------------------

class TestSharding:
    def test_shard_of_is_deterministic_and_in_range(self):
        fingerprints = [job.fingerprint() for job in _matrix_jobs()]
        for fp in fingerprints:
            assert shard_of(fp, 2) == shard_of(fp, 2)
            assert 0 <= shard_of(fp, 2) < 2
            assert shard_of(fp, 1) == 0

    def test_shard_map_partitions_exclusively(self):
        ring = ShardMap(urls=("http://a:1", "http://b:2"), index=0)
        other = ShardMap(urls=ring.urls, index=1)
        for job in _matrix_jobs():
            fp = job.fingerprint()
            assert ring.owns(fp) != other.owns(fp)
            assert ring.owner_of(fp) in ring.urls

    def test_shard_map_validation(self):
        with pytest.raises(ValueError):
            ShardMap(urls=(), index=0)
        with pytest.raises(ValueError):
            ShardMap(urls=("http://a:1",), index=1)


# -- single instance end to end ------------------------------------------------

class TestSingleInstance:
    def test_matrix_is_byte_identical_and_cache_hits_on_resubmit(self):
        jobs = _matrix_jobs()
        direct = _direct(jobs)
        thread = _server()
        try:
            client = ServeClient(thread.url)
            assert client.healthz()["status"] == "ok"
            served = client.submit(jobs)
            assert _bytes(served) == _bytes(direct)
            stats = client.stats()
            assert stats["broker"]["executed"] == len(jobs)
            # Second submission: every reply comes from the cache.
            again = client.submit(jobs)
            assert _bytes(again) == _bytes(direct)
            stats = client.stats()
            assert stats["broker"]["executed"] == len(jobs)
            assert stats["broker"]["cache_hits"] == len(jobs)
        finally:
            thread.stop()

    def test_duplicate_fingerprints_in_one_batch_submit_once(self):
        job = _matrix_jobs()[0]
        thread = _server()
        try:
            client = ServeClient(thread.url)
            results = client.submit([job, job, job])
            assert len({pickle.dumps(r) for r in results}) == 1
            assert client.stats()["broker"]["executed"] == 1
        finally:
            thread.stop()

    def test_result_endpoint_unknown_fingerprint_404(self):
        thread = _server()
        try:
            client = ServeClient(thread.url)
            status, payload = client._get_raw(
                f"{thread.url}/v1/results/{'0' * 64}?timeout=0")
            assert status == 404
        finally:
            thread.stop()

    def test_invalid_payload_is_refused_loudly(self):
        thread = _server()
        try:
            client = ServeClient(thread.url)
            payload = job_to_wire(_matrix_jobs()[0])
            payload["job"]["n"] = TINY_N + 7  # breaks the fingerprint
            reply = client._request(f"{thread.url}/v1/jobs",
                                    body={"wire": 1, "jobs": [payload]})
            assert reply["jobs"][0]["status"] == "invalid"
            assert "fingerprint" in reply["jobs"][0]["error"]
        finally:
            thread.stop()


# -- in-flight dedup -----------------------------------------------------------

class _GatedRunner:
    """Blocks execution until released, recording what actually ran."""

    def __init__(self, gate: threading.Event):
        self.inner = _mem_runner()
        self.gate = gate
        self.executed: List[str] = []

    @property
    def cache(self):
        return self.inner.cache

    @property
    def workers(self) -> int:
        return 1

    def run(self, jobs, contexts=None):
        self.executed.extend(job.fingerprint() for job in jobs)
        assert self.gate.wait(timeout=60.0), "test gate never released"
        return self.inner.run(jobs, contexts=contexts)


class TestInflightDedup:
    def test_concurrent_identical_submissions_execute_once(self):
        job = _matrix_jobs()[0]
        gate = threading.Event()
        runner = _GatedRunner(gate)
        thread = _server(runner=runner)  # type: ignore[arg-type]
        results: Dict[str, List[JobResult]] = {}
        try:
            def submit(name: str) -> None:
                client = ServeClient(thread.url, timeout=120.0)
                results[name] = client.submit([job])

            t_a = threading.Thread(target=submit, args=("a",))
            t_b = threading.Thread(target=submit, args=("b",))
            t_a.start()
            # Both submissions must be in before execution unblocks.
            poll = ServeClient(thread.url)
            deadline = time.monotonic() + 30.0
            t_b.start()
            while poll.stats()["broker"]["submitted"] < 2:
                assert time.monotonic() < deadline, \
                    "submissions never arrived"
                time.sleep(0.02)
            gate.set()
            t_a.join(timeout=120.0)
            t_b.join(timeout=120.0)
            assert not t_a.is_alive() and not t_b.is_alive()
            # One execution observed, two identical results served.
            assert runner.executed.count(job.fingerprint()) == 1
            assert pickle.dumps(results["a"][0]) == \
                pickle.dumps(results["b"][0])
            stats = poll.stats()["broker"]
            assert stats["joined"] == 1
            assert stats["executed"] == 1
        finally:
            gate.set()
            thread.stop()


# -- two-instance sharded ring -------------------------------------------------

class TestShardedRing:
    def test_two_instance_ring_is_byte_identical_to_direct(self):
        jobs = _matrix_jobs()
        direct = _direct(jobs)
        fingerprints = [job.fingerprint() for job in jobs]
        ports = (pick_free_port(), pick_free_port())
        urls = tuple(f"http://127.0.0.1:{p}" for p in ports)
        threads = [
            _server(shard_map=ShardMap(urls=urls, index=i), port=ports[i])
            for i in range(2)]
        try:
            # Everything goes to instance 0; out-of-shard jobs bounce to
            # instance 1 via the owner address in the rejection.
            client = ServeClient(urls[0])
            served = client.submit(jobs)
            assert _bytes(served) == _bytes(direct)
            split = [sum(1 for fp in set(fingerprints)
                         if shard_of(fp, 2) == i) for i in range(2)]
            assert sum(split) == len(set(fingerprints))
            for i, thread in enumerate(threads):
                stats = ServeClient(urls[i]).stats()["broker"]
                assert stats["executed"] == split[i], \
                    f"instance {i} executed out-of-shard work"
            # The matrix hashes onto both instances (deterministic).
            assert all(count > 0 for count in split)
        finally:
            for thread in threads:
                thread.stop()

    def test_out_of_shard_result_names_owner(self):
        job = _matrix_jobs()[0]
        fp = job.fingerprint()
        ports = (pick_free_port(), pick_free_port())
        urls = tuple(f"http://127.0.0.1:{p}" for p in ports)
        wrong = 1 - shard_of(fp, 2)
        thread = _server(shard_map=ShardMap(urls=urls, index=wrong),
                         port=ports[wrong])
        try:
            client = ServeClient(urls[wrong])
            status, payload = client._get_raw(
                f"{urls[wrong]}/v1/results/{fp}?timeout=0")
            assert status == 421
            assert payload["owner"] == urls[shard_of(fp, 2)]
        finally:
            thread.stop()


# -- restart survival ----------------------------------------------------------

class TestRestart:
    def test_new_instance_serves_predecessors_results(self, tmp_path):
        jobs = _matrix_jobs()[:3]
        direct = _direct(jobs)
        cache_dir = tmp_path / "simcache"

        first = _server(runner=SimRunner(
            jobs=1, cache=ResultCache(directory=cache_dir,
                                      persistent=True)))
        try:
            served = ServeClient(first.url).submit(jobs)
            assert _bytes(served) == _bytes(direct)
        finally:
            first.stop()

        second = _server(runner=SimRunner(
            jobs=1, cache=ResultCache(directory=cache_dir,
                                      persistent=True)))
        try:
            client = ServeClient(second.url)
            again = client.submit(jobs)
            assert _bytes(again) == _bytes(direct)
            stats = client.stats()
            assert stats["broker"]["executed"] == 0
            assert stats["broker"]["cache_hits"] == len(jobs)
        finally:
            second.stop()


# -- progress streaming --------------------------------------------------------

class TestProgressStreaming:
    def test_two_concurrent_clients_see_every_job(self, tmp_path,
                                                  monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "1")
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path / "obs"))
        jobs = _matrix_jobs()[:2]
        fingerprints = {job.fingerprint() for job in jobs}
        thread = _server(obs_root=tmp_path / "obs")
        streams: Dict[str, List[dict]] = {"a": [], "b": []}
        try:
            client = ServeClient(thread.url, timeout=120.0)

            def listen(name: str) -> None:
                seen = streams[name]
                for record in ServeClient(thread.url).events(timeout=30.0):
                    seen.append(record)
                    ends = {r.get("fingerprint") for r in seen
                            if r.get("event") == "job_end"}
                    if fingerprints <= ends:
                        return

            listeners = [threading.Thread(target=listen, args=(name,))
                         for name in streams]
            for listener in listeners:
                listener.start()
            deadline = time.monotonic() + 30.0
            while client.stats()["subscribers"] < 2:
                assert time.monotonic() < deadline, \
                    "subscribers never registered"
                time.sleep(0.02)
            client.submit(jobs)
            for listener in listeners:
                listener.join(timeout=60.0)
                assert not listener.is_alive(), "listener timed out"
            for name, seen in streams.items():
                for fp in fingerprints:
                    events = {r["event"] for r in seen
                              if r.get("fingerprint") == fp}
                    assert {"job_start", "job_end"} <= events, \
                        f"client {name} missed progress for {fp}"
        finally:
            thread.stop()


# -- the experiment thin-client path -------------------------------------------

class TestExperimentClientPath:
    def test_serve_runner_defaults_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVE_URL", raising=False)
        assert serve_runner() is None
        monkeypatch.setenv("REPRO_SERVE_URL", "0")
        assert serve_runner() is None

    def test_quick_fig9_through_server_matches_direct(self, monkeypatch):
        from repro.experiments import fig9
        from repro.runner import reset_runner
        workloads = ["gap.pr", "06.lbm"]

        monkeypatch.delenv("REPRO_SERVE_URL", raising=False)
        reset_runner()
        direct = fig9.run(n=TINY_N, workloads=workloads)

        thread = _server()
        try:
            monkeypatch.setenv("REPRO_SERVE_URL", thread.url)
            reset_runner()
            served = fig9.run(n=TINY_N, workloads=workloads)
            executed = ServeClient(thread.url).stats()["broker"]["executed"]
            assert executed > 0, "fig9 never reached the server"
        finally:
            thread.stop()
        assert served.headers == direct.headers
        assert served.rows == direct.rows
        assert served.notes == direct.notes


# -- env knobs -----------------------------------------------------------------

class TestServeKnobs:
    def test_serve_url_validated_loudly(self, monkeypatch):
        from repro.envknobs import env_url
        monkeypatch.setenv("REPRO_SERVE_URL", "not a url")
        with pytest.raises(ValueError, match="REPRO_SERVE_URL"):
            env_url("REPRO_SERVE_URL")
        monkeypatch.setenv("REPRO_SERVE_URL", "ftp://host:1")
        with pytest.raises(ValueError, match="REPRO_SERVE_URL"):
            env_url("REPRO_SERVE_URL")
        monkeypatch.setenv("REPRO_SERVE_URL", "http://host:8023/")
        assert env_url("REPRO_SERVE_URL") == "http://host:8023"

    def test_serve_port_validated_loudly(self, monkeypatch):
        from repro.envknobs import env_int
        monkeypatch.setenv("REPRO_SERVE_PORT", "99999")
        with pytest.raises(ValueError, match="REPRO_SERVE_PORT"):
            env_int("REPRO_SERVE_PORT", 8023, minimum=0, maximum=65535)
        monkeypatch.setenv("REPRO_SERVE_PORT", "junk")
        with pytest.raises(ValueError, match="REPRO_SERVE_PORT"):
            env_int("REPRO_SERVE_PORT", 8023, minimum=0, maximum=65535)
        monkeypatch.setenv("REPRO_SERVE_PORT", "8024")
        assert env_int("REPRO_SERVE_PORT", 8023,
                       minimum=0, maximum=65535) == 8024

    def test_serve_shards_validated_loudly(self, monkeypatch):
        from repro.envknobs import env_url_list
        monkeypatch.setenv("REPRO_SERVE_SHARDS", "http://a:1,junk")
        with pytest.raises(ValueError, match="REPRO_SERVE_SHARDS"):
            env_url_list("REPRO_SERVE_SHARDS")
        monkeypatch.setenv("REPRO_SERVE_SHARDS", "http://a:1,http://a:1")
        with pytest.raises(ValueError, match="REPRO_SERVE_SHARDS"):
            env_url_list("REPRO_SERVE_SHARDS")
        monkeypatch.setenv("REPRO_SERVE_SHARDS",
                           "http://a:1, http://b:2/")
        assert env_url_list("REPRO_SERVE_SHARDS") == \
            ("http://a:1", "http://b:2")
        monkeypatch.delenv("REPRO_SERVE_SHARDS")
        assert env_url_list("REPRO_SERVE_SHARDS") is None


# -- observability plane: /metrics, /v1/healthz, trace propagation -------------

def _metrics_text(url: str):
    """GET /metrics raw: ``(content_type, text)``."""
    with urllib.request.urlopen(f"{url}/metrics", timeout=30.0) as resp:
        return resp.headers.get("Content-Type", ""), \
            resp.read().decode("utf-8")


def _obs_records(obs_dir) -> List[dict]:
    records: List[dict] = []
    for run_dir in obs_runlog.list_runs(obs_dir):
        records.extend(obs_runlog.load_runlog(run_dir / obs_runlog.MERGED))
    return records


class TestObservabilityPlane:
    def test_v1_healthz(self):
        thread = _server()
        try:
            health = ServeClient(thread.url).health()
            assert health["status"] == "ok"
            assert health["queue_depth"] == 0
            assert health["inflight"] == 0
            assert health["subscribers"] == 0
            assert "memo_hits" in health["cache"]
        finally:
            thread.stop()

    def test_metrics_lint_and_exact_runlog_match(self, tmp_path,
                                                 monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "1")
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path / "obs"))
        jobs = _matrix_jobs()[:4]
        thread = _server(obs_root=tmp_path / "obs")
        try:
            client = ServeClient(thread.url, timeout=120.0)
            client.submit(jobs)
            content_type, text = _metrics_text(thread.url)
            assert content_type.startswith("text/plain")
            families = obs_metrics.parse_text(text)  # the format lint

            def value(name: str, sample: Optional[str] = None) -> float:
                return families[name]["samples"][sample or name]

            # The acceptance protocol: a cold batch of K unique jobs
            # must count exactly K, matching the runlog's job_end count.
            ends = [r for r in _obs_records(tmp_path / "obs")
                    if r.get("event") == "job_end"]
            assert value("repro_broker_jobs_total") == len(jobs)
            assert len(ends) == len(jobs)
            assert value("repro_cache_hits_total") == 0
            assert value("repro_serve_sse_clients") == 0

            # Warm resubmit: K cache hits, zero new executions, zero
            # new job_end records.
            client.submit(jobs)
            _, text = _metrics_text(thread.url)
            families = obs_metrics.parse_text(text)
            assert value("repro_broker_jobs_total") == len(jobs)
            assert value("repro_cache_hits_total") == len(jobs)
            ends = [r for r in _obs_records(tmp_path / "obs")
                    if r.get("event") == "job_end"]
            assert len(ends) == len(jobs)

            # The tailer folds job_end metrics sections into the
            # registry (poll interval 0.05s in this harness).
            deadline = time.monotonic() + 30.0
            while True:
                _, text = _metrics_text(thread.url)
                families = obs_metrics.parse_text(text)
                if value("repro_job_wall_seconds",
                         "repro_job_wall_seconds_count") == len(jobs):
                    break
                assert time.monotonic() < deadline, \
                    "job_end metrics never folded into the registry"
                time.sleep(0.05)
            assert value("repro_job_events_total") > 0
        finally:
            thread.stop()

    def test_trace_propagates_through_single_instance(self, tmp_path,
                                                      monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "1")
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path / "obs"))
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        jobs = _matrix_jobs()[:2]
        thread = _server(obs_root=tmp_path / "obs")
        try:
            client = ServeClient(thread.url, timeout=120.0)
            client.submit(jobs)
            trace_id = client.last_context.trace_id
            records = _obs_records(tmp_path / "obs")
            assert records
            # Every record of the run — batch and job alike — carries
            # the client's trace id.
            assert {r.get("trace_id") for r in records} == {trace_id}
            ends = [r for r in records if r.get("event") == "job_end"]
            assert len(ends) == len(jobs)
            for r in ends:
                assert r["parent_span"]  # a child of the server hop
        finally:
            thread.stop()

    def test_trace_reconstructs_across_two_shard_ring(self, tmp_path,
                                                      monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "1")
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path / "obs"))
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        jobs = _matrix_jobs()
        fingerprints = {job.fingerprint() for job in jobs}
        ports = (pick_free_port(), pick_free_port())
        urls = tuple(f"http://127.0.0.1:{p}" for p in ports)
        threads = [
            _server(shard_map=ShardMap(urls=urls, index=i),
                    port=ports[i], obs_root=tmp_path / "obs")
            for i in range(2)]
        try:
            # One ambient root spans the whole request; the client
            # inherits it instead of minting per-submit roots.  The
            # shard groups go out one at a time because this in-process
            # ring shares the per-process runlog writer — production
            # rings are separate processes and run concurrently.
            root = obs_trace.new_context()
            previous = obs_trace.install(root)
            try:
                by_shard: Dict[int, List[SimJob]] = {0: [], 1: []}
                for job in jobs:
                    by_shard[shard_of(job.fingerprint(), 2)].append(job)
                assert all(by_shard.values())  # the matrix spans both
                for index, group in sorted(by_shard.items()):
                    client = ServeClient(urls[index], timeout=120.0)
                    client.submit(group)
                    assert client.last_context is root
            finally:
                obs_trace.install(previous)
            trace_id = root.trace_id
            collected = obs_report.collect_trace(trace_id,
                                                 root=tmp_path / "obs")
            assert collected
            # One trace id across both instances' runs.
            assert {r["trace_id"] for r in collected} == {trace_id}
            assert {r["trace_id"] for r in
                    _obs_records(tmp_path / "obs")} == {trace_id}
            assert len({r["run_id"] for r in collected}) >= 2
            ends = [r for r in collected if r.get("event") == "job_end"]
            assert {r["fingerprint"] for r in ends} == fingerprints
            # And the CLI's view reassembles it into one tree.
            text = obs_report.render_trace(trace_id, collected)
            assert f"trace {trace_id}" in text
            payload = obs_report.trace_to_json(trace_id, collected)
            assert payload["records"] == len(collected)
            assert len(payload["runs"]) >= 2
        finally:
            for thread in threads:
                thread.stop()

    def test_plane_off_is_bit_identical_and_unexposed(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "0")
        monkeypatch.setenv("REPRO_METRICS", "0")
        jobs = _matrix_jobs()[:3]
        direct = _direct(jobs)
        thread = _server()
        try:
            client = ServeClient(thread.url, timeout=120.0)
            served = client.submit(jobs)
            assert _bytes(served) == _bytes(direct)
            assert client.last_context is None
            status, payload = client._get_raw(f"{thread.url}/metrics")
            assert status == 404
        finally:
            thread.stop()
