"""Telemetry subsystem: conservation, lifecycle identity, hygiene.

The two load-bearing properties (ISSUE acceptance criteria):

* **Interval-sum conservation** — summed per-interval deltas from the
  :class:`IntervalSampler` (final partial interval included) equal the
  end-of-run event-bus and ``CacheStats`` totals, for every counter
  sampled, over 3 workloads x 2 temporal prefetchers.
* **Lifecycle identity** — per prefetcher,
  ``issued == on_time + late + unused + in_flight``, and summed issues
  match the bus's own ``prefetch-issued`` counter.

Plus bus hygiene (double-unsubscribe, subscriber accounting, no leaked
handlers after a run), env-knob validation, and export round-trips.
"""

import json

import pytest

from repro.memory.cache import Cache
from repro.memory.dram import DRAM
from repro.memory.events import EV, EventBus
from repro.memory.hierarchy import SharedUncore
from repro.runner import SimJob, spec
from repro.runner.jobs import execute_job
from repro.runner.runner import env_jobs
from repro.runner.traces import _capacity, get_trace
from repro.sim.config import SystemConfig
from repro.sim.engine import Engine
from repro.telemetry import (COUNTER_SPECS, IntervalSampler,
                             PrefetchLifecycleTracer, TelemetryConfig,
                             validate_jsonl, validate_records, write_jsonl)
from repro.telemetry.export import SCHEMA, iter_records

TINY_N = 6000
ALL_COUNTERS = tuple(COUNTER_SPECS)


def run_engine(workload: str, pf_name: str, n: int = TINY_N,
               interval: int = 500, counters=ALL_COUNTERS) -> Engine:
    trace = get_trace(workload, n, 1234)
    config = SystemConfig().scaled_down(8).scaled(
        telemetry=TelemetryConfig(interval=interval, counters=counters))
    engine = Engine([trace], config,
                    l1_prefetcher=spec("stride").factory(),
                    l2_prefetchers=[spec(pf_name).factory()])
    engine.run()
    engine.collect()
    return engine


WORKLOADS = ["gap.pr", "gap.cc", "06.omnetpp"]
PREFETCHERS = ["triangel", "streamline"]


class TestConservation:
    @pytest.mark.parametrize("workload", WORKLOADS)
    @pytest.mark.parametrize("pf_name", PREFETCHERS)
    def test_interval_sums_match_bus_and_cache_totals(self, workload,
                                                      pf_name):
        engine = run_engine(workload, pf_name)
        sampler = engine.telemetry.sampler
        series = sampler.series()
        bus = engine.bus
        for name in ALL_COUNTERS:
            kind, level, origin = COUNTER_SPECS[name]
            summed = sum(series["counters"][name])
            assert summed == sampler.totals()[name], name
            assert summed == bus.count(kind, level, origin), name
        # The same sums against the caches' own independent counters.
        core = engine.cores[0]
        counters = series["counters"]
        assert sum(counters["l1d_misses"]) == core.l1d.stats.misses
        assert sum(counters["l2_misses"]) == core.l2.stats.misses
        assert sum(counters["llc_misses"]) == engine.uncore.llc.stats.misses
        assert sum(counters["l1d_hits"]) == core.l1d.stats.hits
        # Sanity: the graph runs actually exercise prefetching (omnetpp
        # legitimately trains no temporal streams at this tiny n).
        if workload.startswith("gap."):
            assert sum(counters["pf_issued"]) > 0

    @pytest.mark.parametrize("workload", WORKLOADS)
    @pytest.mark.parametrize("pf_name", PREFETCHERS)
    def test_lifecycle_identity(self, workload, pf_name):
        engine = run_engine(workload, pf_name)
        tracer = engine.telemetry.tracer
        assert tracer.check_conservation() == []
        by_owner = tracer.by_owner()
        for counts in by_owner.values():
            assert counts.issued == counts.resolved + counts.in_flight
        total_issued = sum(c.issued for c in by_owner.values())
        assert total_issued == engine.bus.count(EV.PREFETCH_ISSUED)

    def test_access_pacing_counts_demand_accesses(self):
        engine = run_engine("gap.pr", "streamline", interval=500)
        series = engine.telemetry.sampler.series()
        # Snapshots land every `interval` post-warmup accesses, plus one
        # final partial flush; `access` is cumulative and monotone.
        assert series["access"] == sorted(series["access"])
        full = [a for a in series["access"] if a % 500 == 0]
        assert len(full) >= len(series["access"]) - 1


class TestBusHygiene:
    def test_double_unsubscribe_is_noop(self):
        bus = EventBus()
        fn = lambda ev: None  # noqa: E731
        bus.subscribe(EV.FILL, fn)
        assert bus.subscriber_count(EV.FILL) == 1
        bus.unsubscribe(EV.FILL, fn)
        bus.unsubscribe(EV.FILL, fn)  # second time: no-op, no raise
        bus.unsubscribe(EV.ACCESS, fn)  # never subscribed: no-op
        assert bus.subscriber_count(EV.FILL) == 0
        assert bus.subscriber_count() == 0

    def test_subscriber_count_per_kind_and_total(self):
        bus = EventBus()
        a = lambda ev: None  # noqa: E731
        b = lambda ev: None  # noqa: E731
        bus.subscribe(EV.FILL, a)
        bus.subscribe(EV.FILL, b)
        bus.subscribe(EV.EVICTION, a)
        assert bus.subscriber_count(EV.FILL) == 2
        assert bus.subscriber_count(EV.EVICTION) == 1
        assert bus.subscriber_count() == 3

    def test_run_leaves_no_observer_subscriptions(self):
        # Baseline: what a bare uncore subscribes for its own stats.
        bare = SharedUncore(Cache("LLC", 64 * 1024, 16, 20), DRAM())
        baseline = bare.bus.subscriber_count()
        engine = run_engine("gap.pr", "streamline")
        # collect() tore down trainers, duelers, and telemetry.
        assert engine.bus.subscriber_count() == baseline
        # Teardown is idempotent.
        engine.cores[0].detach_prefetchers()
        engine.telemetry.detach()
        assert engine.bus.subscriber_count() == baseline

    def test_back_to_back_runs_identical(self):
        config = SystemConfig().scaled_down(8)
        job = SimJob.single("gap.pr", TINY_N, config, l1="stride",
                            l2=(spec("streamline"),))
        first = execute_job(job)
        second = execute_job(job)
        assert first.single == second.single
        assert first.single.events == second.single.events


class TestKnobValidation:
    def test_repro_jobs_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "abc")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            env_jobs()
        monkeypatch.setenv("REPRO_JOBS", "0")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            env_jobs()
        monkeypatch.setenv("REPRO_JOBS", "-2")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            env_jobs()
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert env_jobs() == 3

    def test_repro_trace_cache_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "lots")
        with pytest.raises(ValueError, match="REPRO_TRACE_CACHE"):
            _capacity()
        monkeypatch.setenv("REPRO_TRACE_CACHE", "-1")
        with pytest.raises(ValueError, match="REPRO_TRACE_CACHE"):
            _capacity()
        monkeypatch.setenv("REPRO_TRACE_CACHE", "0")  # 0 = disabled, valid
        assert _capacity() == 0

    def test_telemetry_env_knobs(self, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        assert TelemetryConfig.from_env() is None
        monkeypatch.setenv("REPRO_TELEMETRY", "0")
        assert TelemetryConfig.from_env() is None
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        monkeypatch.setenv("REPRO_TELEMETRY_INTERVAL", "250")
        assert TelemetryConfig.from_env().interval == 250
        monkeypatch.setenv("REPRO_TELEMETRY_INTERVAL", "abc")
        with pytest.raises(ValueError, match="REPRO_TELEMETRY_INTERVAL"):
            TelemetryConfig.from_env()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TelemetryConfig(interval=0)
        with pytest.raises(ValueError):
            TelemetryConfig(max_intervals=0)
        with pytest.raises(ValueError):
            TelemetryConfig(intervals=False, lifecycle=False)
        with pytest.raises(ValueError, match="unknown telemetry counters"):
            IntervalSampler(EventBus(),
                            TelemetryConfig(counters=("no_such",)))


class TestSamplerUnits:
    def test_reset_drops_series_and_truncation(self):
        bus = EventBus()
        sampler = IntervalSampler(
            bus, TelemetryConfig(interval=2, max_intervals=2,
                                 counters=("l1d_misses",)))
        for i in range(10):
            bus.publish(EV.LOOKUP_MISS, "l1d", 0, i, now=float(i))
        assert sampler.num_samples == 2 and sampler.truncated
        sampler.reset()
        assert sampler.num_samples == 0 and not sampler.truncated
        assert sampler.totals() == {"l1d_misses": 0}
        bus.publish(EV.LOOKUP_MISS, "l1d", 0, 1, now=1.0)
        bus.publish(EV.LOOKUP_MISS, "l1d", 0, 2, now=2.0)
        assert sampler.num_samples == 1
        sampler.detach()
        bus.publish(EV.LOOKUP_MISS, "l1d", 0, 3, now=3.0)
        assert sampler.totals() == {"l1d_misses": 2}

    def test_tracer_reset_drops_pending_records(self):
        bus = EventBus()
        tracer = PrefetchLifecycleTracer(bus)
        bus.publish(EV.FILL, "l2", 0, 7, origin="prefetch", now=50.0)
        bus.publish(EV.PREFETCH_ISSUED, "l2", 0, 7, owner=0, now=10.0)
        tracer.reset()  # the warm-up boundary
        bus.publish(EV.PREFETCH_USEFUL, "l2", 0, 7, owner=0, now=60.0)
        tracer.finalize()
        assert tracer.by_owner() == {}  # pre-reset issue not classified

    def test_tracer_stale_reissue_counts_unused(self):
        bus = EventBus()
        tracer = PrefetchLifecycleTracer(bus)
        for now in (10.0, 20.0):
            bus.publish(EV.FILL, "l2", 0, 7, origin="prefetch",
                        now=now + 40.0)
            bus.publish(EV.PREFETCH_ISSUED, "l2", 0, 7, owner=0, now=now)
        tracer.finalize()
        counts = tracer.by_owner()[0]
        assert (counts.issued, counts.unused, counts.in_flight) == (2, 1, 1)
        assert tracer.check_conservation() == []


class TestExport:
    def test_probe_and_jsonl_roundtrip(self, tmp_path):
        config = SystemConfig().scaled_down(8).scaled(
            telemetry=TelemetryConfig(interval=500))
        job = SimJob.single("gap.pr", TINY_N, config, l1="stride",
                            l2=(spec("streamline"),), probes=("telemetry",))
        payload = execute_job(job).probes["telemetry"]
        assert payload["enabled"]
        assert payload["intervals"]["index"]
        assert "streamline" in payload["lifecycle"]
        records = list(iter_records(payload))
        assert validate_records(records) == []
        path = tmp_path / "t.jsonl"
        assert write_jsonl(payload, path) == len(records)
        assert validate_jsonl(path) == []
        # The checked-in schema artifact matches the code's SCHEMA.
        import pathlib
        checked_in = json.loads(
            (pathlib.Path(__file__).parent.parent / "benchmarks" /
             "telemetry_schema.json").read_text())
        assert checked_in == SCHEMA
        assert validate_jsonl(path, checked_in) == []

    def test_validator_catches_malformed_records(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"type": "interval", "index": "x"}) + "\n")
        errors = validate_jsonl(path)
        assert any("missing" in e or "should be" in e for e in errors)
        assert any("no meta record" in e for e in errors)

    def test_probe_without_config_reports_disabled(self):
        config = SystemConfig().scaled_down(8)
        job = SimJob.single("gap.pr", TINY_N, config, l1="stride",
                            probes=("telemetry",))
        assert execute_job(job).probes["telemetry"] == {"enabled": False}


class TestObservationPurity:
    def test_telemetry_on_results_bit_identical_to_off(self):
        config = SystemConfig().scaled_down(8)
        off = SimJob.single("gap.pr", TINY_N, config, l1="stride",
                            l2=(spec("streamline"),))
        on = SimJob.single(
            "gap.pr", TINY_N,
            config.scaled(telemetry=TelemetryConfig(interval=500)),
            l1="stride", l2=(spec("streamline"),))
        assert execute_job(off).single == execute_job(on).single
