"""Integration tests for the L1D/L2/LLC/DRAM hierarchy."""

import pytest

from repro.memory.cache import Cache
from repro.memory.dram import DRAM
from repro.memory.hierarchy import CoreHierarchy, SharedUncore
from repro.prefetchers.base import Prefetcher


def build(l1_kb=4, l2_kb=16, llc_kb=64):
    l1 = Cache("L1D", l1_kb * 1024, 4, 5)
    l2 = Cache("L2", l2_kb * 1024, 8, 10)
    llc = Cache("LLC", llc_kb * 1024, 16, 20, replacement="srrip")
    uncore = SharedUncore(llc, DRAM(channels=1, base_latency=100.0))
    return CoreHierarchy(0, l1, l2, uncore), uncore


class ScriptedPrefetcher(Prefetcher):
    """Returns a fixed list of candidates on every training event."""

    name = "scripted"

    def __init__(self, candidates):
        super().__init__()
        self.candidates = list(candidates)
        self.events = []

    def train(self, pc, blk, hit, prefetch_hit, now):
        self.events.append((pc, blk, hit, prefetch_hit))
        return list(self.candidates)


class TestDemandPath:
    def test_cold_miss_goes_to_dram(self):
        core, uncore = build()
        lat = core.access(0x1, 0x1000, False, 0.0)
        assert lat > 100  # DRAM involved
        assert uncore.dram.stats.reads == 1

    def test_second_access_hits_l1(self):
        core, _ = build()
        core.access(0x1, 0x1000, False, 0.0)
        # Wait for the fill to complete before re-accessing.
        lat = core.access(0x1, 0x1000, False, 1000.0)
        assert lat == core.l1d.latency

    def test_l2_hit_after_l1_eviction(self):
        core, _ = build(l1_kb=1)  # tiny L1: 4 sets x 4 ways
        core.access(0x1, 0, False, 0.0)
        # Evict block 0 from L1 by filling its set (same set = stride of
        # num_sets blocks).
        step = core.l1d.num_sets * 64
        for i in range(1, 6):
            core.access(0x1, i * step, False, float(i))
        lat = core.access(0x1, 0, False, 10000.0)
        assert lat == core.l1d.latency + core.l2.latency

    def test_uncovered_misses_counted(self):
        core, _ = build()
        for i in range(10):
            core.access(0x1, i * 64, False, float(i))
        assert core.uncovered_misses == 10


class TestPrefetcherHooks:
    def test_l2_prefetcher_trains_on_miss_only(self):
        core, _ = build()
        pf = ScriptedPrefetcher([])
        core.attach_l2_prefetcher(pf)
        core.access(0x1, 0x1000, False, 0.0)   # miss -> trained
        core.access(0x1, 0x1000, False, 1.0)   # L1 hit -> not trained
        assert len(pf.events) == 1

    def test_prefetch_fill_and_usefulness(self):
        core, uncore = build()
        pf = ScriptedPrefetcher([100])  # always prefetch block 100
        core.attach_l2_prefetcher(pf)
        core.access(0x1, 0, False, 0.0)        # triggers prefetch of 100
        assert pf.stats.issued == 1
        # Demand for block 100: L2 hit on a prefetched line.
        lat = core.access(0x1, 100 * 64, False, 500.0)
        assert pf.stats.useful == 1
        assert lat < 100  # covered: no DRAM on the critical path

    def test_prefetch_hit_trains_temporal(self):
        core, _ = build()
        pf = ScriptedPrefetcher([100])
        core.attach_l2_prefetcher(pf)
        core.access(0x1, 0, False, 0.0)
        core.access(0x1, 100 * 64, False, 500.0)   # prefetch hit
        assert pf.events[-1][3] is True            # prefetch_hit flag

    def test_duplicate_prefetch_dropped(self):
        core, _ = build()
        pf = ScriptedPrefetcher([100])
        core.attach_l2_prefetcher(pf)
        core.access(0x1, 0, False, 0.0)
        core.access(0x1, 64, False, 1.0)   # candidate 100 already in L2
        assert pf.stats.issued == 1
        assert pf.stats.dropped == 1

    def test_useless_prefetch_credited_on_eviction(self):
        core, _ = build(l2_kb=1)  # 2 sets x 8 ways L2
        pf = ScriptedPrefetcher([9999])
        core.attach_l2_prefetcher(pf)
        core.access(0x1, 0, False, 0.0)
        pf.candidates = []  # stop prefetching; now thrash L2 set of 9999
        step = core.l2.num_sets
        for i in range(1, 40):
            blk = 9999 + i * step if (9999 + i * step) % step == \
                9999 % step else 9999 + i * step
            core.access(0x1, (9999 % step + i * step) * 64, False,
                        float(i))
        assert pf.stats.useless_evictions >= 1

    def test_l1_prefetcher_sees_every_access(self):
        core, _ = build()
        pf = ScriptedPrefetcher([])
        pf.level = "l1d"
        core.attach_l1_prefetcher(pf)
        core.access(0x1, 0, False, 0.0)
        core.access(0x1, 0, False, 1.0)  # L1 hit still observed
        assert len(pf.events) == 2


class TestMetadataPort:
    def test_metadata_access_counts_and_queues(self):
        core, uncore = build()
        lat1 = core.metadata_access(0.0)
        lat2 = core.metadata_access(0.0)
        assert uncore.metadata_llc_accesses == 2
        assert lat2 >= lat1  # port busy

    def test_reset_stats_clears_counters(self):
        core, uncore = build()
        core.access(0x1, 0, False, 0.0)
        core.reset_stats()
        uncore.reset_stats()
        assert core.uncovered_misses == 0
        assert uncore.llc.stats.accesses == 0
        assert uncore.dram.stats.reads == 0


class TestWritebackPath:
    def test_dirty_l2_eviction_reaches_llc(self):
        core, uncore = build(l2_kb=1)
        core.access(0x1, 0, True, 0.0)  # store: dirty in L1
        # Evict from L1 (force set pressure) and then from L2.
        l1_step = core.l1d.num_sets * 64
        for i in range(1, 8):
            core.access(0x1, i * l1_step, False, float(i))
        # Block 0's dirty copy must now be in L2 or LLC (not lost).
        assert core.l2.probe(0) or uncore.llc.probe(0)


class TestOwnerRegistry:
    def test_register_assigns_unique_owner_ids(self):
        core, uncore = build()
        a, b = ScriptedPrefetcher([]), ScriptedPrefetcher([])
        core.attach_l2_prefetcher(a)
        core.attach_l2_prefetcher(b)
        assert a.owner_id != b.owner_id
        assert uncore.prefetchers[a.owner_id] is a
