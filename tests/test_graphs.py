"""Tests for the R-MAT graph substrate and algorithm-driven traces."""

import numpy as np
import pytest

from repro.workloads.graphs import (CSRGraph, bfs_trace, cc_trace,
                                    pagerank_trace, rmat_graph)


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(vertices=256, edges_per_vertex=4, seed=1)


class TestRMAT:
    def test_geometry(self, graph):
        assert graph.num_vertices == 256
        assert graph.num_edges == 256 * 4
        assert graph.offsets[0] == 0
        assert graph.offsets[-1] == graph.num_edges

    def test_offsets_monotone(self, graph):
        assert (np.diff(graph.offsets) >= 0).all()

    def test_edges_in_range(self, graph):
        assert (graph.edges >= 0).all()
        assert (graph.edges < graph.num_vertices).all()

    def test_deterministic(self):
        a = rmat_graph(vertices=128, seed=7)
        b = rmat_graph(vertices=128, seed=7)
        assert (a.edges == b.edges).all()

    def test_power_law_skew(self, graph):
        """R-MAT graphs are skewed: the hottest vertex has far more than
        the average degree."""
        degrees = np.diff(graph.offsets)
        assert degrees.max() >= 3 * degrees.mean()

    def test_neighbours_and_degree(self, graph):
        v = int(np.argmax(np.diff(graph.offsets)))
        assert len(graph.neighbours(v)) == graph.degree(v)

    def test_rejects_non_pow2(self):
        with pytest.raises(ValueError):
            rmat_graph(vertices=100)


class TestKernelTraces:
    def test_pagerank_repeats_across_iterations(self, graph):
        t = pagerank_trace(graph, iterations=2)
        blocks = (t.addrs >> 6).tolist()
        period = len(blocks) // 2
        assert blocks[:period] == blocks[period:]

    def test_pagerank_gathers_are_dependent(self, graph):
        t = pagerank_trace(graph, iterations=1)
        # Property gathers (dep) dominate the access count.
        assert t.deps.sum() > len(t) * 0.4

    def test_bfs_visits_reachable_component(self, graph):
        t = bfs_trace(graph, restarts=1)
        assert len(t) > graph.num_vertices  # traversed edges too

    def test_bfs_restarts_differ(self, graph):
        one = bfs_trace(graph, restarts=1)
        four = bfs_trace(graph, restarts=4)
        assert len(four) > len(one)

    def test_cc_converges(self, graph):
        t = cc_trace(graph, max_iterations=50)
        # Convergence long before 50 sweeps: trace far below the bound.
        upper = 50 * (graph.num_vertices + graph.num_edges) * 3
        assert len(t) < upper

    def test_max_accesses_truncates(self, graph):
        t = pagerank_trace(graph, iterations=10, max_accesses=500)
        # The bound is checked after each gather; the handful of offset
        # and edge-list loads in between may overshoot slightly.
        assert len(t) <= 510

    def test_regions_disjoint(self, graph):
        t = pagerank_trace(graph, iterations=1)
        regions = set((t.addrs >> 32).tolist())
        assert len(regions) >= 3  # offsets, edges, properties


class TestTemporalPrefetchability:
    def test_streamline_covers_pagerank(self):
        from repro.core.streamline import StreamlinePrefetcher
        from repro.prefetchers.stride import StridePrefetcher
        from repro.sim.config import SystemConfig
        from repro.sim.engine import run_single
        g = rmat_graph(vertices=1024, edges_per_vertex=6, seed=2)
        trace = pagerank_trace(g, iterations=4)
        cfg = SystemConfig().scaled_down(8)
        res = run_single(trace, cfg, l1_prefetcher=StridePrefetcher,
                         l2_prefetchers=[StreamlinePrefetcher])
        tp = res.temporal
        assert tp.coverage > 0.2
        assert tp.accuracy > 0.5
