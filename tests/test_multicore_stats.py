"""Tests for the multi-core engine and the stats helpers."""

import pytest

from repro.core.streamline import StreamlinePrefetcher
from repro.prefetchers.triangel import TriangelPrefetcher
from repro.sim.config import CHANNELS_BY_CORES, SystemConfig
from repro.sim.engine import run_single
from repro.sim.multicore import run_multicore
from repro.sim.stats import (PrefetchReport, SimResult, format_table,
                             geomean, geomean_speedup, speedup)

from conftest import chase_trace


class TestMulticore:
    def test_two_cores_run_and_interfere(self, tiny_config):
        # Pin the channel count so solo and shared runs see the same
        # DRAM (the default scales channels with the core count).
        # Pin channels AND give the solo run the duo's total LLC, so the
        # only difference is the second core's interference.
        cfg = tiny_config.scaled(dram_channels=2)
        solo_cfg = cfg.scaled(
            llc_size_per_core=2 * cfg.llc_size_per_core)
        traces = [chase_trace("a", seed=1, n=4000),
                  chase_trace("b", seed=2, n=4000)]
        solo = run_single(traces[0], solo_cfg)
        duo = run_multicore(traces, cfg)
        assert len(duo.cores) == 2
        # Contention cannot make a core faster than running alone.
        assert duo.cores[0].ipc <= solo.ipc * 1.05

    def test_deterministic(self, tiny_config):
        traces = [chase_trace("a", seed=1, n=3000),
                  chase_trace("b", seed=2, n=3000)]
        x = run_multicore(traces, tiny_config)
        y = run_multicore(traces, tiny_config)
        assert [c.cycles for c in x.cores] == [c.cycles for c in y.cores]

    def test_weighted_speedup(self, tiny_config):
        traces = [chase_trace("a", seed=1, n=3000)]
        solo = run_single(traces[0], tiny_config)
        mc = run_multicore(traces, tiny_config)
        ws = mc.weighted_speedup([solo])
        assert 0 < ws <= 1.05

    def test_per_core_metadata_stripes_coexist(self, tiny_config):
        """Two Streamline instances must partition disjoint LLC sets."""
        traces = [chase_trace("a", seed=1, n=3000),
                  chase_trace("b", seed=2, n=3000)]
        mc = run_multicore(traces, tiny_config,
                           l2_prefetchers=[StreamlinePrefetcher])
        for core in mc.cores:
            tp = core.temporal
            assert tp is not None and tp.issued >= 0

    def test_mixed_prefetchers_per_run(self, tiny_config):
        traces = [chase_trace("a", seed=1, n=3000),
                  chase_trace("b", seed=2, n=3000)]
        mc = run_multicore(traces, tiny_config,
                           l2_prefetchers=[TriangelPrefetcher])
        assert all(c.temporal is not None for c in mc.cores)

    def test_empty_traces_rejected(self, tiny_config):
        with pytest.raises(ValueError):
            run_multicore([], tiny_config)

    def test_channels_scale_with_cores(self):
        assert CHANNELS_BY_CORES[1] == 1
        assert CHANNELS_BY_CORES[8] == 4
        assert SystemConfig(num_cores=8).channels == 4
        assert SystemConfig(dram_channels=3).channels == 3


class TestStatsHelpers:
    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([]) == 1.0
        with pytest.raises(ValueError):
            geomean([1.0, -1.0])

    def test_speedup_requires_same_workload(self):
        a = SimResult("x", cycles=100, instructions=1000, accesses=10)
        b = SimResult("y", cycles=200, instructions=1000, accesses=10)
        with pytest.raises(ValueError):
            speedup(a, b)

    def test_speedup_value(self):
        a = SimResult("x", cycles=100, instructions=1000, accesses=10)
        b = SimResult("x", cycles=200, instructions=1000, accesses=10)
        assert speedup(a, b) == pytest.approx(2.0)

    def test_geomean_speedup_pairs(self):
        a = [SimResult("x", 100, 1000, 1), SimResult("y", 100, 1000, 1)]
        b = [SimResult("x", 200, 1000, 1), SimResult("y", 50, 1000, 1)]
        assert geomean_speedup(a, b) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            geomean_speedup(a, b[:1])

    def test_prefetch_report_traffic(self):
        r = PrefetchReport("t", metadata_reads=2, metadata_writes=3,
                           metadata_rearrange_moves=1)
        assert r.metadata_traffic_bytes == 64 * (2 + 3 + 2)

    def test_temporal_report_selection(self):
        r = SimResult("x", 1, 1, 1, prefetchers=[
            PrefetchReport("ip-stride"), PrefetchReport("streamline")])
        assert r.temporal.name == "streamline"
        r2 = SimResult("x", 1, 1, 1,
                       prefetchers=[PrefetchReport("ip-stride")])
        assert r2.temporal is None

    def test_format_table_aligns(self):
        text = format_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(l) for l in lines if l.strip())) <= 2
