"""End-to-end integration: the paper's headline claims at test scale."""

import pytest

from repro import quick_compare
from repro.core.streamline import StreamlinePrefetcher
from repro.prefetchers.stride import StridePrefetcher
from repro.prefetchers.triangel import TriangelPrefetcher
from repro.sim.engine import run_single
from repro.workloads import make

from conftest import chase_trace


@pytest.fixture(scope="module")
def headline(request):
    """One shared three-way run on an irregular workload."""
    from repro.sim.config import SystemConfig
    cfg = SystemConfig().scaled_down(4)
    trace = make("06.omnetpp", 40_000)
    base = run_single(trace, cfg, l1_prefetcher=StridePrefetcher)
    tri = run_single(trace, cfg, l1_prefetcher=StridePrefetcher,
                     l2_prefetchers=[TriangelPrefetcher])
    sl = run_single(trace, cfg, l1_prefetcher=StridePrefetcher,
                    l2_prefetchers=[StreamlinePrefetcher])
    return base, tri, sl


class TestHeadlineClaims:
    def test_both_beat_baseline_on_irregular(self, headline):
        base, tri, sl = headline
        assert tri.ipc > base.ipc
        assert sl.ipc > base.ipc

    def test_streamline_beats_triangel(self, headline):
        base, tri, sl = headline
        assert sl.ipc > tri.ipc

    def test_streamline_has_more_coverage(self, headline):
        _, tri, sl = headline
        assert sl.temporal.coverage > tri.temporal.coverage

    def test_streamline_accuracy_not_worse(self, headline):
        _, tri, sl = headline
        assert sl.temporal.accuracy >= tri.temporal.accuracy - 0.02

    def test_streamline_less_metadata_traffic(self, headline):
        _, tri, sl = headline
        assert sl.temporal.metadata_traffic_bytes < \
            tri.temporal.metadata_traffic_bytes

    def test_streamline_never_pays_rearrangement(self, headline):
        _, tri, sl = headline
        assert sl.temporal.metadata_rearrange_moves == 0


class TestQuickCompare:
    def test_quick_compare_api(self):
        out = quick_compare("gap.pr", n=6000)
        assert set(out) == {"baseline", "triangel", "streamline"}
        assert all(r.ipc > 0 for r in out.values())


class TestStorageEfficiency:
    def test_half_size_streamline_matches_full_triangel(self, small_config):
        """Fig 13a's headline at test scale."""
        trace = chase_trace(nodes=8192, n=24_000)
        base = run_single(trace, small_config,
                          l1_prefetcher=StridePrefetcher)
        sl_half = run_single(
            trace, small_config, l1_prefetcher=StridePrefetcher,
            l2_prefetchers=[lambda: StreamlinePrefetcher(
                dynamic=False, initial_every_nth=2)])
        tri_full = run_single(
            trace, small_config, l1_prefetcher=StridePrefetcher,
            l2_prefetchers=[lambda: TriangelPrefetcher(
                initial_ways=8, adaptive=False)])
        assert sl_half.ipc / base.ipc >= tri_full.ipc / base.ipc - 0.05
