"""Hypothesis property tests on the core data-structure invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metadata_store import StreamStore
from repro.core.replacement import make_stream_replacement
from repro.core.stream_entry import StreamEntry
from repro.memory.metadata_store import PartitionController
from repro.prefetchers.pairwise import PairwiseStore
from repro.sim.config import SystemConfig
from repro.sim.engine import CoreModel

# An operation is (op, trigger): op 0 = insert, 1 = lookup, 2+ = resize.
ops = st.lists(st.tuples(st.integers(min_value=0, max_value=3),
                         st.integers(min_value=0, max_value=4000)),
               min_size=1, max_size=300)


@settings(max_examples=25, deadline=None)
@given(ops)
def test_stream_store_invariants(operations):
    ctl = PartitionController(None, 1 << 20)
    store = StreamStore(32, ctl, stream_length=4, meta_ways=2,
                        replacement=make_stream_replacement("srrip"),
                        permanent_sets=4)
    sizes = [1, 2, 4, 0]
    for op, trigger in operations:
        if op == 0:
            store.insert(StreamEntry(trigger, 4,
                                     [trigger + 1, trigger + 2]))
        elif op == 1:
            store.lookup(trigger)
        else:
            store.set_partition(every_nth=sizes[trigger % 4])
        # Invariant 1: no pool ever exceeds its capacity.
        for pool in store._sets.values():
            assert len(pool) <= store._pool_capacity()
        # Invariant 2: every resident entry lives in an allocated set.
        for (set_idx, _), pool in store._sets.items():
            if pool:
                assert store.is_allocated(set_idx)
    # Invariant 3: traffic counters are consistent with activity.
    assert ctl.traffic.reads == store.stats.hits
    assert ctl.traffic.rearrange_moves == 0  # filtered indexing


@settings(max_examples=25, deadline=None)
@given(ops)
def test_pairwise_store_invariants(operations):
    ctl = PartitionController(None, 1 << 20)
    store = PairwiseStore(32, ctl, entries_per_block=4, max_ways=4)
    store.resize(2)
    for op, trigger in operations:
        if op == 0:
            store.insert(trigger, trigger + 1)
        elif op == 1:
            store.lookup(trigger)
        else:
            store.resize(1 + trigger % 4)
        for block in store._blocks.values():
            assert len(block) <= store.entries_per_block
        for (set_idx, way) in store._blocks:
            assert 0 <= set_idx < 32
            assert 0 <= way < store.ways


@settings(max_examples=20, deadline=None)
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=20),
                          st.floats(min_value=0, max_value=500),
                          st.booleans(), st.booleans()),
                min_size=1, max_size=200))
def test_core_model_clock_monotone(steps):
    """The clock never goes backwards, whatever the access pattern."""
    m = CoreModel(SystemConfig())
    last = 0.0
    for gap, latency, is_write, dep in steps:
        m.advance(gap)
        issue = m.issue_time(dep)
        assert issue >= 0
        m.complete_access(issue, latency, is_write)
        assert m.clock >= last - 1e-9
        last = m.clock
    assert m.drain() >= last - 1e-9


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=2, max_value=40),
       st.integers(min_value=0, max_value=100))
def test_engine_cycles_scale_with_trace(nodes, seed):
    """A longer prefix of the same trace never takes fewer cycles."""
    from repro.sim.engine import run_single
    from repro.sim.trace import TraceBuilder
    import numpy as np
    rng = np.random.default_rng(seed)
    b = TraceBuilder("t")
    for i in range(200):
        b.add(0x1, int(rng.integers(0, nodes)) * 64, gap=2)
    trace = b.build()
    cfg = SystemConfig().scaled_down(8).scaled(warmup_fraction=0.0)
    short = run_single(trace.slice(0, 100), cfg)
    full = run_single(trace, cfg)
    assert full.cycles >= short.cycles - 1e-6
