"""Tests for the synthetic workload suites and mixes."""

import hashlib
import json
import pathlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import (base, generate_mixes, make, mix_name, names,
                             suite, suite_of)


class TestRegistry:
    def test_all_suites_populated(self):
        assert len(suite("spec06")) == 13
        assert len(suite("spec17")) == 10
        assert len(suite("gap")) == 6
        assert len(suite("srv")) == 2
        assert len(names()) == 31

    def test_suite_of_roundtrip(self):
        for wl in names():
            assert wl in suite(suite_of(wl))

    def test_unknown_names_rejected(self):
        with pytest.raises(ValueError):
            make("06.quake", 100)
        with pytest.raises(ValueError):
            suite("spec2000")
        with pytest.raises(ValueError):
            suite_of("nope")

    def test_every_workload_generates(self):
        for wl in names():
            t = make(wl, 500)
            assert len(t) == 500
            assert t.name == wl

    def test_deterministic_by_seed(self):
        a = make("gap.pr", 1000, seed=5)
        b = make("gap.pr", 1000, seed=5)
        c = make("gap.pr", 1000, seed=6)
        assert (a.addrs == b.addrs).all()
        assert not (a.addrs == c.addrs).all()


class TestArchetypes:
    def test_pointer_chase_repeats_exactly(self):
        t = base.pointer_chase("c", 2000, 1, nodes=500)
        blocks = (t.addrs >> 6).tolist()
        assert blocks[:500] == blocks[500:1000]

    def test_pointer_chase_marks_deps(self):
        t = base.pointer_chase("c", 100, 1)
        assert t.deps.all()

    def test_mutation_changes_later_laps(self):
        t = base.pointer_chase("c", 3000, 1, nodes=500, mutate_every=100)
        blocks = (t.addrs >> 6).tolist()
        assert blocks[:500] != blocks[2500:3000]

    def test_graph_sweep_stable_order_repeats(self):
        t = base.graph_sweep("g", 4000, 1, vertices=128, avg_degree=4,
                             stable_order=True)
        blocks = (t.addrs >> 6).tolist()
        period = None
        # Find the sweep length by locating the first vertex revisit.
        first = blocks[0]
        for i in range(1, len(blocks)):
            if blocks[i] == first and t.pcs[i] == t.pcs[0]:
                period = i
                break
        assert period is not None
        assert blocks[:100] == blocks[period:period + 100]

    def test_graph_sweep_universe_widens_footprint(self):
        narrow = base.graph_sweep("g", 3000, 1, vertices=128,
                                  universe_factor=1)
        wide = base.graph_sweep("g", 3000, 1, vertices=128,
                                universe_factor=8)
        assert wide.footprint_blocks() > narrow.footprint_blocks()

    def test_stream_is_sequential(self):
        t = base.stream("s", 100, 0, arrays=1, stride=64)
        diffs = np.diff(t.addrs)
        assert (diffs[diffs > 0] == 64).all()

    def test_hash_probe_rerun_replays_bursts(self):
        t = base.hash_probe("h", 4000, 1, table_blocks=4096, rerun=0.5,
                            burst=32)
        blocks = (t.addrs >> 6).tolist()
        # Replayed bursts mean some 8-grams appear more than once.
        grams = {}
        for i in range(0, len(blocks) - 8, 8):
            g = tuple(blocks[i:i + 8])
            grams[g] = grams.get(g, 0) + 1
        assert max(grams.values()) >= 2

    def test_scan_mix_has_two_pcs_one_scanning(self):
        t = base.scan_mix("m", 2000, 1, nodes=200, scan_fraction=0.5)
        assert t.unique_pcs() == 2
        # The scan PC's addresses never repeat.
        scan_pc = max(t.pcs.tolist())
        scan_addrs = [a for p, a in zip(t.pcs.tolist(), t.addrs.tolist())
                      if p == scan_pc]
        assert len(set(scan_addrs)) == len(scan_addrs)

    def test_phased_regions_disjoint(self):
        t = base.phased("p", 2000, 1, phases=["chase", "hash"])
        half = len(t) // 2
        first = set((t.addrs[:half] >> 36).tolist())
        second = set((t.addrs[half:] >> 36).tolist())
        assert first.isdisjoint(second)

    def test_phased_rejects_unknown(self):
        with pytest.raises(ValueError):
            base.phased("p", 100, 1, phases=["quantum"])


class TestMixes:
    def test_shape_and_determinism(self):
        mixes = generate_mixes(4, 10, seed=3)
        assert len(mixes) == 10
        assert all(len(m) == 4 for m in mixes)
        assert mixes == generate_mixes(4, 10, seed=3)
        assert mixes != generate_mixes(4, 10, seed=4)

    def test_pool_restriction(self):
        mixes = generate_mixes(2, 5, pool=["gap.pr"], seed=1)
        assert all(m == ["gap.pr", "gap.pr"] for m in mixes)

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_mixes(0, 5)
        with pytest.raises(ValueError):
            generate_mixes(2, 0)
        with pytest.raises(ValueError):
            generate_mixes(2, 2, pool=[])

    def test_mix_name(self):
        assert mix_name(["06.mcf", "gap.pr"]) == "mcf+pr"


@settings(max_examples=10, deadline=None)
@given(st.sampled_from(names()),
       st.integers(min_value=100, max_value=2000))
def test_any_workload_any_length(wl, n):
    t = make(wl, n)
    assert len(t) == n
    assert (t.addrs >= 0).all()
    assert t.instructions >= n


# -- pinned generator output ------------------------------------------------
#
# The generators were rewritten from per-record scalar loops into
# vectorized chunk producers; these digests were captured from the
# scalar implementations and pin the output bit-for-bit (same rng call
# order, same dtypes).  A mismatch means the change alters traces —
# and therefore every simulated figure built from them.

HASH_FILE = pathlib.Path(__file__).parent / "data" / "workload_hashes.json"


def trace_digest(t) -> str:
    h = hashlib.sha256()
    for arr in (t.pcs, t.addrs, t.writes, t.gaps, t.deps):
        a = np.ascontiguousarray(arr)
        h.update(str(a.dtype).encode())
        h.update(a.tobytes())
    return h.hexdigest()


def pinned():
    return json.loads(HASH_FILE.read_text())


class TestPinnedDigests:
    @pytest.mark.parametrize("workload", sorted(names()))
    @pytest.mark.parametrize("n", [777, 3000])
    def test_registry_traces_match_pins(self, workload, n):
        want = pinned()[f"{workload}:{n}:1234"]
        assert trace_digest(make(workload, n, 1234)) == want

    @pytest.mark.parametrize("n", [777, 3000])
    def test_chunk_generators_match_pins(self, n):
        # The streaming producers must emit the identical records the
        # materializing path does — they feed the on-disk store.
        from repro.sim.trace import Trace
        from repro.workloads import make_chunks

        book = pinned()
        for workload in sorted(names()):
            t = Trace.from_chunks(workload, make_chunks(workload, n, 1234))
            assert trace_digest(t) == book[f"{workload}:{n}:1234"], \
                workload

    def test_archetype_kwargs_match_pins(self):
        for key, want in pinned().items():
            fn, sep, blob = key.partition(":{")
            if not sep:
                continue  # registry entry, covered above
            kwargs = json.loads("{" + blob)
            n, seed = kwargs.pop("n"), kwargs.pop("seed")
            t = getattr(base, fn)("x", n, seed, **kwargs)
            assert trace_digest(t) == want, key
