"""Tests for the package API surface and the experiments CLI."""

import pytest


class TestPackageAPI:
    def test_version(self):
        import repro
        assert repro.__version__

    def test_top_level_exports(self):
        import repro
        for name in ("run_single", "run_multicore", "SystemConfig",
                     "SimResult", "Trace", "quick_compare"):
            assert hasattr(repro, name)

    def test_memory_exports(self):
        from repro import memory
        for name in ("Cache", "DRAM", "CoreHierarchy", "SharedUncore",
                     "PartitionController", "make_policy"):
            assert hasattr(memory, name)

    def test_core_exports(self):
        from repro import core
        for name in ("StreamlinePrefetcher", "StreamEntry",
                     "StreamStore", "align", "realign",
                     "UtilityAwarePartitioner",
                     "TPMockingjayReplacement"):
            assert hasattr(core, name)

    def test_prefetcher_exports(self):
        from repro import prefetchers
        for name in ("StridePrefetcher", "BertiPrefetcher",
                     "IPCPPrefetcher", "BingoPrefetcher",
                     "SPPPrefetcher", "TriagePrefetcher",
                     "TriangelPrefetcher", "IdealTriage"):
            assert hasattr(prefetchers, name)


class TestExperimentsCLI:
    def test_list(self, capsys):
        from repro.experiments.__main__ import main
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out and "table1" in out

    def test_unknown_experiment(self, capsys):
        from repro.experiments.__main__ import main
        assert main(["fig99"]) == 2

    def test_runs_analytic_experiment(self, capsys):
        from repro.experiments.__main__ import main
        assert main(["table1"]) == 0
        assert "FTS" in capsys.readouterr().out
