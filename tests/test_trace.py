"""Unit and property tests for the trace container."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.trace import Trace, TraceBuilder, TraceRecord


def small_trace():
    b = TraceBuilder("t")
    b.add(1, 64, gap=2)
    b.add(2, 128, is_write=True, gap=3, dep=True)
    b.add(1, 192)
    return b.build()


def test_builder_roundtrip():
    t = small_trace()
    assert len(t) == 3
    rows = list(t)
    assert rows[0] == (1, 64, False, 2, False)
    assert rows[1] == (2, 128, True, 3, True)


def test_instructions_counts_gaps_plus_ops():
    t = small_trace()
    assert t.instructions == (2 + 3 + 3) + 3


def test_slice_preserves_fields():
    t = small_trace().slice(1, 3)
    assert len(t) == 2
    assert list(t)[0][2] is True      # write flag survived
    assert list(t)[0][4] is True      # dep flag survived


def test_footprint_and_pcs():
    t = small_trace()
    assert t.footprint_blocks() == 3
    assert t.unique_pcs() == 2


def test_mismatched_lengths_rejected():
    with pytest.raises(ValueError):
        Trace("bad", [1, 2], [64], [False], [1])
    with pytest.raises(ValueError):
        Trace("bad", [1], [64], [False], [1], deps=[True, False])


def test_from_records():
    t = Trace.from_records("r", [TraceRecord(1, 64),
                                 TraceRecord(2, 128, dep=True)])
    assert len(t) == 2
    assert list(t)[1][4] is True


def test_save_load_roundtrip(tmp_path):
    t = small_trace()
    path = tmp_path / "trace.npz"
    t.save(str(path))
    loaded = Trace.load(str(path))
    assert list(loaded) == list(t)
    assert loaded.name == t.name


def test_load_without_deps_defaults_false(tmp_path):
    t = small_trace()
    path = tmp_path / "old.npz"
    np.savez_compressed(path, name=np.array("old"), pcs=t.pcs,
                        addrs=t.addrs, writes=t.writes, gaps=t.gaps)
    loaded = Trace.load(str(path))
    assert not loaded.deps.any()


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(
    st.integers(min_value=0, max_value=2**30),   # pc
    st.integers(min_value=0, max_value=2**40),   # addr
    st.booleans(), st.integers(min_value=0, max_value=50),
    st.booleans()), min_size=1, max_size=100))
def test_builder_matches_input(records):
    b = TraceBuilder("prop")
    for pc, addr, w, gap, dep in records:
        b.add(pc, addr, w, gap, dep)
    t = b.build()
    assert list(t) == [tuple(r) for r in records]
    assert t.instructions == sum(r[3] for r in records) + len(records)


def test_builder_extend():
    a, b = TraceBuilder("a"), TraceBuilder("b")
    a.add(1, 64)
    b.add(2, 128, dep=True)
    a.extend(b)
    t = a.build()
    assert len(t) == 2 and list(t)[1][0] == 2
