"""Unit and property tests for the trace container."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.trace import Trace, TraceBuilder, TraceRecord


def small_trace():
    b = TraceBuilder("t")
    b.add(1, 64, gap=2)
    b.add(2, 128, is_write=True, gap=3, dep=True)
    b.add(1, 192)
    return b.build()


def test_builder_roundtrip():
    t = small_trace()
    assert len(t) == 3
    rows = list(t)
    assert rows[0] == (1, 64, False, 2, False)
    assert rows[1] == (2, 128, True, 3, True)


def test_instructions_counts_gaps_plus_ops():
    t = small_trace()
    assert t.instructions == (2 + 3 + 3) + 3


def test_slice_preserves_fields():
    t = small_trace().slice(1, 3)
    assert len(t) == 2
    assert list(t)[0][2] is True      # write flag survived
    assert list(t)[0][4] is True      # dep flag survived


def test_footprint_and_pcs():
    t = small_trace()
    assert t.footprint_blocks() == 3
    assert t.unique_pcs() == 2


def test_mismatched_lengths_rejected():
    with pytest.raises(ValueError):
        Trace("bad", [1, 2], [64], [False], [1])
    with pytest.raises(ValueError):
        Trace("bad", [1], [64], [False], [1], deps=[True, False])


def test_from_records():
    t = Trace.from_records("r", [TraceRecord(1, 64),
                                 TraceRecord(2, 128, dep=True)])
    assert len(t) == 2
    assert list(t)[1][4] is True


def test_save_load_roundtrip(tmp_path):
    t = small_trace()
    path = tmp_path / "trace.npz"
    t.save(str(path))
    loaded = Trace.load(str(path))
    assert list(loaded) == list(t)
    assert loaded.name == t.name


def test_load_without_deps_defaults_false(tmp_path):
    t = small_trace()
    path = tmp_path / "old.npz"
    np.savez_compressed(path, name=np.array("old"), pcs=t.pcs,
                        addrs=t.addrs, writes=t.writes, gaps=t.gaps)
    loaded = Trace.load(str(path))
    assert not loaded.deps.any()


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(
    st.integers(min_value=0, max_value=2**30),   # pc
    st.integers(min_value=0, max_value=2**40),   # addr
    st.booleans(), st.integers(min_value=0, max_value=50),
    st.booleans()), min_size=1, max_size=100))
def test_builder_matches_input(records):
    b = TraceBuilder("prop")
    for pc, addr, w, gap, dep in records:
        b.add(pc, addr, w, gap, dep)
    t = b.build()
    assert list(t) == [tuple(r) for r in records]
    assert t.instructions == sum(r[3] for r in records) + len(records)


def test_builder_extend():
    a, b = TraceBuilder("a"), TraceBuilder("b")
    a.add(1, 64)
    b.add(2, 128, dep=True)
    a.extend(b)
    t = a.build()
    assert len(t) == 2 and list(t)[1][0] == 2


# -- persistence and chunk-boundary edges ----------------------------------


def ramp_trace(n: int, name: str = "ramp") -> Trace:
    idx = np.arange(n, dtype=np.int64)
    return Trace(name, 0x1000 + 4 * idx, 64 * idx, idx % 3 == 0,
                 (idx % 7).astype(np.int32), idx % 5 == 0)


def test_save_load_preserves_deps_exactly(tmp_path):
    t = ramp_trace(100)
    path = tmp_path / "deps.npz"
    t.save(str(path))
    loaded = Trace.load(str(path))
    assert np.array_equal(loaded.deps, t.deps)
    assert loaded.deps.any() and not loaded.deps.all()
    assert loaded.deps.dtype == np.bool_


def test_iter_from_at_chunk_boundaries():
    from repro.sim.trace import ITER_CHUNK

    n = ITER_CHUNK + 5
    t = ramp_trace(n)
    whole = list(t)
    assert len(whole) == n
    for start in (0, 1, ITER_CHUNK - 1, ITER_CHUNK, ITER_CHUNK + 1, n):
        assert list(t.iter_from(start)) == whole[start:], start


def test_slice_names_the_window():
    t = ramp_trace(50)
    s = t.slice(10, 20)
    assert s.name == "ramp[10:20]"
    assert list(s) == list(t)[10:20]


def test_from_chunks():
    t = ramp_trace(10)
    empty = Trace.from_chunks("e", [])
    assert len(empty) == 0 and list(empty) == []
    one = Trace.from_chunks("one", [t.chunk_at(0, 10)])
    assert list(one) == list(t)
    many = Trace.from_chunks("many", [t.chunk_at(0, 4), t.chunk_at(4, 7),
                                      t.chunk_at(7, 10)])
    assert list(many) == list(t)


class TinyBuilder(TraceBuilder):
    CHUNK = 4  # tiny buffers so adds cross flush boundaries


def test_builder_flushes_across_chunk_boundary():
    b = TinyBuilder("tiny")
    for i in range(11):  # 2 full buffers + partial
        b.add(i, 64 * i, gap=i % 3, dep=(i % 2 == 0))
        assert len(b) == i + 1
    t = b.build()
    assert list(t) == [(i, 64 * i, False, i % 3, i % 2 == 0)
                       for i in range(11)]


def test_builder_extend_merges_partial_buffers():
    a, b = TinyBuilder("a"), TinyBuilder("b")
    for i in range(6):
        a.add(i, 64 * i)
    for i in range(5):
        b.add(100 + i, 6400 + 64 * i)
    a.extend(b)
    assert len(a) == 11
    t = a.build()
    assert [r[0] for r in t] == list(range(6)) + [100 + i
                                                  for i in range(5)]


def test_builder_add_chunk_interleaves_with_scalar_adds():
    b = TinyBuilder("mix")
    b.add(1, 64)
    b.add_chunk(ramp_trace(6).chunk_at(0, 6))
    b.add(2, 128)
    t = b.build()
    assert len(t) == 8
    assert [r[0] for r in t] == \
        [1] + [0x1000 + 4 * i for i in range(6)] + [2]
