"""Tests for SystemConfig (Table II) and its scaling helpers."""

import pytest

from repro.sim.config import DEFAULT_CONFIG, SystemConfig


class TestDefaults:
    def test_table2_values(self):
        cfg = DEFAULT_CONFIG
        assert cfg.commit_width == 6
        assert cfg.rob_size == 352
        assert cfg.l1d_size == 48 * 1024 and cfg.l1d_ways == 12
        assert cfg.l2_size == 512 * 1024 and cfg.l2_ways == 8
        assert cfg.llc_size_per_core == 2 * 1024 * 1024
        assert cfg.llc_ways == 16
        assert cfg.dram_mt_per_sec == 3200.0

    def test_llc_scales_with_cores(self):
        assert SystemConfig(num_cores=4).llc_size == 8 * 1024 * 1024

    def test_channel_table(self):
        for cores, channels in ((1, 1), (2, 2), (4, 2), (8, 4)):
            assert SystemConfig(num_cores=cores).channels == channels

    def test_table_renders(self):
        text = DEFAULT_CONFIG.table()
        assert "ROB" in text and "LLC" in text and "DRAM" in text


class TestScaling:
    def test_scaled_down_divides_caches_only(self):
        cfg = SystemConfig().scaled_down(4)
        assert cfg.l1d_size == 12 * 1024
        assert cfg.l2_size == 128 * 1024
        assert cfg.llc_size_per_core == 512 * 1024
        assert cfg.llc_ways == 16           # geometry shape kept
        assert cfg.commit_width == 6        # core untouched

    def test_scaled_down_rejects_non_pow2(self):
        with pytest.raises(ValueError):
            SystemConfig().scaled_down(3)

    def test_scaled_overrides(self):
        cfg = SystemConfig().scaled(mlp=4, dram_bandwidth_scale=0.5)
        assert cfg.mlp == 4
        assert cfg.dram_bandwidth_scale == 0.5

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_CONFIG.mlp = 3  # frozen dataclass

    def test_validation(self):
        with pytest.raises(ValueError):
            SystemConfig(num_cores=0)
        with pytest.raises(ValueError):
            SystemConfig(warmup_fraction=1.5)
