"""Tests for stream alignment and realignment (Figures 3 and 4)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.alignment import align, find_alignable, realign
from repro.core.stream_entry import StreamEntry

A, B, C, D, E, F, X, Y = range(100, 108)


class TestFindAlignable:
    def test_finds_overlapping_entry(self):
        old = StreamEntry(A, 4, [B, C, D, E])
        new = StreamEntry(B, 4, [C, D, E, F])
        assert find_alignable([old], new) is old

    def test_skips_final_address_match(self):
        # Fig 3's rule: trigger equal to an entry's *final* address means
        # back-to-back chaining, not misalignment.
        old = StreamEntry(A, 4, [B, C, D, E])
        new = StreamEntry(E, 4, [F, X, Y, A])
        assert find_alignable([old], new) is None

    def test_no_match_returns_none(self):
        old = StreamEntry(A, 4, [B, C, D, E])
        new = StreamEntry(X, 4, [Y, F, A, B])
        assert find_alignable([old], new) is None

    def test_first_match_wins(self):
        e1 = StreamEntry(A, 4, [B, C, D, E])
        e2 = StreamEntry(X, 4, [B, Y, F, A])
        new = StreamEntry(B, 4, [C, D, E, F])
        assert find_alignable([e1, e2], new) is e1


class TestAlign:
    def test_figure3_merge(self):
        """Old [A;B,C,D,E] + new [B;C,D,E,F] -> aligned [A;B,C,D,E],
        leftover [F] bootstraps the next entry."""
        old = StreamEntry(A, 4, [B, C, D, E])
        new = StreamEntry(B, 4, [C, D, E, F])
        aligned, leftover = align(old, new)
        assert aligned.addresses == [A, B, C, D, E]
        assert leftover == [F]

    def test_figure4_stale_overwrite(self):
        """Old [A;B,C,D,E] + new [B;C,X,Y,F]: the aligned entry takes the
        *new* correlations, killing the stale D,E suffix."""
        old = StreamEntry(A, 4, [B, C, D, E])
        new = StreamEntry(B, 4, [C, X, Y, F])
        aligned, leftover = align(old, new)
        assert aligned.addresses == [A, B, C, X, Y]
        assert leftover == [F]

    def test_deeper_overlap(self):
        old = StreamEntry(A, 4, [B, C, D, E])
        new = StreamEntry(D, 4, [E, F, X, Y])
        aligned, leftover = align(old, new)
        assert aligned.addresses == [A, B, C, D, E]
        assert leftover == [F, X, Y]

    def test_align_takes_new_pc(self):
        old = StreamEntry(A, 4, [B, C, D, E], pc=1)
        new = StreamEntry(B, 4, [C, D, E, F], pc=2)
        aligned, _ = align(old, new)
        assert aligned.pc == 2

    def test_non_overlapping_raises(self):
        old = StreamEntry(A, 4, [B, C, D, E])
        new = StreamEntry(X, 4, [Y, F, A, B])
        with pytest.raises(ValueError):
            align(old, new)


class TestRealign:
    def test_shifts_window_back_one(self):
        """Section IV-C's example: (B;A2,A3,..) with prior access A1
        becomes (A1;B,A2,..) -- same length, last target dropped."""
        entry = StreamEntry(B, 4, [C, D, E, F])
        out = realign(entry, A)
        assert out.addresses == [A, B, C, D, E]

    def test_partial_entry(self):
        entry = StreamEntry(B, 4, [C])
        out = realign(entry, A)
        assert out.addresses == [A, B, C]

    def test_no_prior_returns_none(self):
        assert realign(StreamEntry(B, 4, [C]), None) is None

    def test_self_prior_returns_none(self):
        assert realign(StreamEntry(B, 4, [C]), B) is None


@given(st.lists(st.integers(min_value=0, max_value=10**6), min_size=6,
                max_size=10, unique=True))
def test_align_preserves_sequence_property(addrs):
    """Aligned entry + leftover must spell the merged access sequence."""
    old = StreamEntry(addrs[0], 4, addrs[1:5])
    # New entry starts somewhere inside old (not at its final address).
    new = StreamEntry(addrs[2], 4, addrs[3:5] + addrs[5:7])
    aligned, leftover = align(old, new)
    merged = old.addresses[:3] + new.targets
    assert aligned.addresses + leftover == merged
    assert len(aligned.targets) <= 4
