"""Streaming trace pipeline: stages, marks, on-disk store, parity.

The subsystem invariant (DESIGN.md "Streaming trace pipeline"): routing
trace acquisition and replay through chunk streams — vectorized
generators, transform stages, in-band marks, the mmap-backed
:class:`~repro.tracestream.store.TraceStore` — is a pure execution
strategy.  Every consumer sees record-for-record the same stream, and
simulated results are **bit-identical** to the in-memory scalar path.
These tests assert that for the stage algebra, the store round-trip
(including corruption and races degrading to misses), the engine across
workload archetypes × prefetchers, telemetry series, the in-band
checkpoint-mark path, and the runner's knob plumbing.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.checkpoint import state_equal
from repro.envknobs import env_dir, env_tristate
from repro.runner import SimJob
from repro.runner import traces as runner_traces
from repro.runner.specs import spec
from repro.sim.config import SystemConfig
from repro.sim.engine import Engine, run_single
from repro.sim.trace import Trace, TraceSource
from repro.telemetry import TelemetryConfig
from repro.tracestream import chunk as tschunk
from repro.tracestream import stages
from repro.tracestream.chunk import (CHUNK_RECORDS, MARK_CKPT, Mark,
                                     TraceChunk, concat_chunks,
                                     make_chunk)
from repro.tracestream.store import (StreamingTrace, TraceStore,
                                     default_root, entry_key)
from repro.workloads import make, make_chunks


def ramp_chunk(n: int, base: int = 0) -> TraceChunk:
    """A deterministic chunk whose columns encode absolute positions."""
    idx = np.arange(base, base + n, dtype=np.int64)
    return make_chunk(pcs=0x1000 + 4 * idx, addrs=64 * idx,
                      writes=(idx % 3 == 0), gaps=(idx % 7).astype(np.int32),
                      deps=(idx % 5 == 0))


def ramp_stream(total: int, sizes):
    pos = 0
    for size in sizes:
        take = min(size, total - pos)
        if take <= 0:
            return
        yield ramp_chunk(take, base=pos)
        pos += take


def flat_addrs(stream) -> np.ndarray:
    cols = [item.addrs for item in stream
            if isinstance(item, TraceChunk)]
    return np.concatenate(cols) if cols else np.empty(0, np.int64)


# -- chunk primitives ------------------------------------------------------


class TestChunk:
    def test_make_chunk_casts_and_validates(self):
        c = make_chunk(pcs=[1, 2], addrs=[64, 128], writes=[0, 1],
                       gaps=[0, 3], deps=[1, 0])
        assert len(c) == 2
        assert [a.dtype for a in c] == [np.dtype(np.int64),
                                        np.dtype(np.int64),
                                        np.dtype(np.bool_),
                                        np.dtype(np.int32),
                                        np.dtype(np.bool_)]
        with pytest.raises(ValueError, match="length"):
            make_chunk(pcs=[1], addrs=[64, 128], writes=[0], gaps=[0],
                       deps=[0])

    def test_replace_and_slice(self):
        c = ramp_chunk(10)
        shifted = c.replace(addrs=c.addrs + 7)
        assert np.array_equal(shifted.addrs, c.addrs + 7)
        assert shifted.pcs is c.pcs  # untouched columns are shared
        sub = c.slice(3, 7)
        assert len(sub) == 4
        assert np.array_equal(sub.addrs, c.addrs[3:7])

    def test_concat_chunks(self):
        parts = [ramp_chunk(4), ramp_chunk(3, base=4), ramp_chunk(2, base=7)]
        whole = concat_chunks(parts)
        assert len(whole) == 9
        assert np.array_equal(whole.addrs, ramp_chunk(9).addrs)
        assert len(concat_chunks([])) == 0


# -- stage algebra ---------------------------------------------------------


class TestStages:
    def test_chunks_of_covers_source_in_order(self):
        trace = make("06.lbm", 1000, 7)
        got = concat_chunks(list(stages.chunks_of(trace, size=256)))
        assert np.array_equal(got.addrs, trace.addrs)
        tail = concat_chunks(list(stages.chunks_of(trace, start=900,
                                                   size=256)))
        assert np.array_equal(tail.addrs, trace.addrs[900:])

    def test_bias_matches_scalar_fold(self):
        region_bits, core = 20, 3
        mask = (1 << region_bits) - 1
        addrs = flat_addrs(stages.bias(ramp_stream(300, [128, 128, 128]),
                                       core, region_bits))
        want = (ramp_chunk(300).addrs & mask) | (core << region_bits)
        assert np.array_equal(addrs, want)

    def test_sample_phase_survives_chunk_boundaries(self):
        # Record i survives iff i % every == 0 regardless of chunking.
        for sizes in ([50, 50, 50], [1] * 150, [149, 1]):
            addrs = flat_addrs(stages.sample(ramp_stream(150, sizes), 7))
            assert np.array_equal(addrs, ramp_chunk(150).addrs[::7])

    def test_slice_stream_matches_trace_slice(self):
        trace = make("06.mcf", 2000, 7)
        want = trace.slice(300, 1500).addrs
        got = flat_addrs(stages.slice_stream(
            stages.chunks_of(trace, size=512), 300, 1500))
        assert np.array_equal(got, want)

    def test_interleave_round_robin(self):
        a = [ramp_chunk(6)]
        b = [ramp_chunk(20, base=100)]
        out = [item.addrs.tolist() for item in
               stages.interleave([iter(a), iter(b)], granularity=8)]
        # a is exhausted after its first (partial) turn; b continues.
        assert out[0] == ramp_chunk(6).addrs.tolist()
        assert len(out[1]) == 8 and out[1][0] == 6400
        assert sum(len(x) for x in out) == 26

    def test_rechunk_normalizes_and_flushes_on_marks(self):
        mark = Mark(MARK_CKPT, 5)
        items = [ramp_chunk(3), mark, ramp_chunk(10, base=3)]
        out = list(stages.rechunk(iter(items), size=4))
        # The pending partial [0,3) flushed before the mark.
        assert isinstance(out[0], TraceChunk) and len(out[0]) == 3
        assert out[1] is mark
        assert [len(c) for c in out[2:]] == [4, 4, 2]
        assert np.array_equal(flat_addrs(out), ramp_chunk(13).addrs)
        with pytest.raises(ValueError):
            list(stages.rechunk(iter(items), size=0))

    def test_insert_marks_splits_at_exact_positions(self):
        marks = [Mark(MARK_CKPT, 4), Mark(MARK_CKPT, 10),
                 Mark(MARK_CKPT, 99)]
        out = list(stages.insert_marks(ramp_stream(12, [8, 8]), marks))
        kinds = [len(i) if isinstance(i, TraceChunk) else i
                 for i in out]
        assert kinds == [4, marks[0], 4, 2, marks[1], 2, marks[2]]
        assert np.array_equal(flat_addrs(out), ramp_chunk(12).addrs)

    def test_insert_marks_base_offsets_absolute_positions(self):
        trace = make("06.lbm", 400, 7)
        marks = [Mark(MARK_CKPT, 300)]
        out = list(stages.insert_marks(
            stages.chunks_of(trace, start=256, size=128), marks,
            base=256))
        assert [len(i) if isinstance(i, TraceChunk) else i
                for i in out] == [44, marks[0], 84, 16]

    def test_records_fires_marks_between_the_right_records(self):
        fired = []
        seen = 0
        stream = stages.insert_marks(ramp_stream(20, [16, 16]),
                                     [Mark(MARK_CKPT, 13)])
        for _rec in stages.records(
                stream, on_mark=lambda m: fired.append((m, seen))):
            seen += 1
        assert fired == [(Mark(MARK_CKPT, 13), 13)]
        assert seen == 20

    def test_periodic_marks_cadence_and_validation(self):
        got = stages.periodic_marks(100, 50, 260, MARK_CKPT)
        assert [m.position for m in got] == [150, 200, 250]
        with pytest.raises(ValueError):
            stages.periodic_marks(0, 0, 10, MARK_CKPT)

    def test_to_trace_and_stream_length(self):
        t = stages.to_trace("r", ramp_stream(30, [16, 16]))
        assert isinstance(t, Trace) and len(t) == 30
        assert stages.stream_length(ramp_stream(30, [16, 16])) == 30


# -- on-disk store ---------------------------------------------------------


#: Small store chunks so a test-sized trace spans several files.
STORE_CHUNK = 1024


@pytest.fixture()
def store(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path / "traces"))
    return TraceStore(chunk_records=STORE_CHUNK)


class TestTraceStore:
    CHUNK = STORE_CHUNK

    def put(self, store, workload="gap.pr", n=5000, seed=7):
        return store.put(workload, n, seed, make_chunks(workload, n, seed))

    def test_round_trip_is_record_identical(self, store):
        replay = self.put(store)
        direct = make("gap.pr", 5000, 7)
        assert isinstance(replay, StreamingTrace)
        assert isinstance(replay, TraceSource)
        assert len(replay) == len(direct)
        assert replay.instructions == direct.instructions
        assert list(replay) == list(direct)
        again = store.get("gap.pr", 5000, 7)
        assert again is not None and list(again) == list(direct)

    def test_columns_range_across_chunk_boundaries(self, store):
        replay = self.put(store)
        direct = make("gap.pr", 5000, 7)
        for lo, hi in [(0, 10), (self.CHUNK - 3, self.CHUNK + 3),
                       (2 * self.CHUNK, 2 * self.CHUNK),
                       (4990, 5000)]:
            got, want = replay.columns_range(lo, hi), \
                direct.columns_range(lo, hi)
            for g, w in zip(got, want):
                assert np.array_equal(g, w), (lo, hi)
        with pytest.raises(IndexError):
            replay.columns_range(4990, 5001)

    def test_iter_from_matches_trace(self, store):
        replay = self.put(store)
        direct = make("gap.pr", 5000, 7)
        for start in (0, 1, self.CHUNK, self.CHUNK + 1, 4999, 5000):
            assert list(replay.iter_from(start)) == \
                list(direct.iter_from(start)), start

    def test_put_length_mismatch_rejected(self, store):
        with pytest.raises(ValueError, match="record"):
            store.put("gap.pr", 6000, 7, make_chunks("gap.pr", 5000, 7))
        assert store.get("gap.pr", 6000, 7) is None

    def test_truncated_chunk_degrades_to_miss(self, store):
        self.put(store)
        entry = store.path_for("gap.pr", 5000, 7)
        victim = entry / "c000001.addrs.npy"
        victim.write_bytes(victim.read_bytes()[:100])
        before = store.stats()["misses"]
        assert store.get("gap.pr", 5000, 7) is None
        assert store.stats()["misses"] == before + 1
        assert not entry.exists()  # corrupt entry evicted

    def test_verify_and_gc(self, store, tmp_path):
        self.put(store)
        entry = store.path_for("gap.pr", 5000, 7)
        assert store.verify(entry) == []
        # verify does full content digests: flip one byte in-place.
        victim = entry / "c000000.gaps.npy"
        raw = bytearray(victim.read_bytes())
        raw[-1] ^= 0xFF
        victim.write_bytes(bytes(raw))
        assert store.verify(entry)
        stale = store.root / ".tmp.stale"
        stale.mkdir()
        removed = store.gc()
        assert entry in removed and stale in removed
        assert store.entries() == []

    def test_entry_key_is_filesystem_safe(self):
        assert entry_key("gap.pr", 5000, 7) == "gap.pr-n5000-s7"
        assert "/" not in entry_key("a/b c", 1, 2)

    def test_default_root_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path / "t"))
        assert default_root() == tmp_path / "t"


# -- bit-identity against the in-memory path -------------------------------

# Three archetypes (streaming regular, graph pointer-heavy, latency
# bound) × two prefetchers, per the subsystem acceptance bar.
PARITY_WORKLOADS = ["06.lbm", "gap.pr", "06.mcf"]
PARITY_PREFETCHERS = ["streamline", "triangel"]


def parity_config(**over):
    over.setdefault("warmup_fraction", 0.5)
    return dataclasses.replace(
        SystemConfig().scaled_down(8).scaled(num_cores=1), **over)


def replayed(store: TraceStore, workload: str, n: int) -> StreamingTrace:
    return store.put(workload, n, 42, make_chunks(workload, n, 42))


class TestEngineParity:
    @pytest.mark.parametrize("workload", PARITY_WORKLOADS)
    @pytest.mark.parametrize("pf", PARITY_PREFETCHERS)
    def test_run_single_bit_identical(self, store, workload, pf):
        n = 6000
        mem = run_single(make(workload, n, 42), parity_config(),
                         l2_prefetchers=[spec(pf).build])
        stream = run_single(replayed(store, workload, n), parity_config(),
                            l2_prefetchers=[spec(pf).build])
        assert dataclasses.asdict(stream) == dataclasses.asdict(mem)

    def test_telemetry_series_bit_identical(self, store):
        n = 6000
        tel = TelemetryConfig(interval=500)
        series = []
        for trace in (make("gap.pr", n, 42),
                      replayed(store, "gap.pr", n)):
            engine = Engine([trace], parity_config(telemetry=tel),
                            l2_prefetchers=[spec("streamline").build])
            engine.run()
            engine.collect()
            series.append(engine.telemetry.sampler.series())
        assert series[0] == series[1]


class TestInbandMarks:
    def build(self, streams=None, n=8000):
        trace = make("gap.pr", n, 42)
        engine = Engine([trace], parity_config(),
                        l2_prefetchers=[spec("streamline").build],
                        streams=streams and [streams(trace)])
        return trace, engine

    def test_inband_marks_match_scalar_modulus_path(self):
        # In-band (trace-backed single core) vs. scalar (external
        # stream forces the modulus path): same firing positions, same
        # snapshot states, same result.
        snaps = {}
        results = {}
        for mode, streams in (("inband", None), ("scalar", iter)):
            _trace, engine = self.build(streams)
            taken = snaps[mode] = []
            engine.set_mark_hook(
                1000, lambda e, t=taken: t.append(e.state_dict()))
            engine.run()
            results[mode] = engine.collect()
        assert len(snaps["inband"]) == len(snaps["scalar"]) > 0
        for a, b in zip(snaps["inband"], snaps["scalar"]):
            assert state_equal(a, b)
        assert results["inband"] == results["scalar"]

    def test_resume_skips_already_fired_marks(self):
        # Restore at mark k: the continued run fires only marks > k and
        # finishes bit-identical to the uninterrupted run.
        _trace, engine = self.build()
        snaps = []
        engine.set_mark_hook(1000,
                             lambda e: snaps.append(e.state_dict()))
        straight = engine.run().collect()
        _trace, fresh = self.build()
        fired = []
        fresh.set_mark_hook(1000, lambda e: fired.append(
            e.state_dict()["counts"][0]))
        fresh.load_state(snaps[1])
        resumed = fresh.run().collect()
        assert resumed == straight
        assert fired == [s["counts"][0] for s in snaps[2:]]

    def test_no_marks_without_warmup(self):
        trace = make("gap.pr", 4000, 42)
        engine = Engine([trace], parity_config(warmup_fraction=0.0),
                        l2_prefetchers=[spec("streamline").build])
        fired = []
        engine.set_mark_hook(500, lambda e: fired.append(1))
        engine.run()
        assert fired == []


# -- runner knob plumbing --------------------------------------------------


@pytest.fixture()
def streaming_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path / "traces"))
    monkeypatch.setenv("REPRO_TRACE_STREAM", "1")
    runner_traces.clear()
    yield tmp_path
    runner_traces.clear()


class TestRunnerKnobs:
    def test_tristate_validation_names_the_variable(self, monkeypatch):
        for raw, want in (("", None), ("auto", None), ("0", False),
                          ("1", True)):
            monkeypatch.setenv("REPRO_TRACE_STREAM", raw)
            assert env_tristate("REPRO_TRACE_STREAM") is want
        monkeypatch.setenv("REPRO_TRACE_STREAM", "yes")
        with pytest.raises(ValueError, match="REPRO_TRACE_STREAM"):
            runner_traces.streaming_enabled()

    def test_trace_dir_must_be_a_directory(self, tmp_path, monkeypatch):
        f = tmp_path / "not-a-dir"
        f.write_text("x")
        monkeypatch.setenv("REPRO_TRACE_DIR", str(f))
        with pytest.raises(ValueError, match="REPRO_TRACE_DIR"):
            env_dir("REPRO_TRACE_DIR")

    def test_get_trace_routes_through_store(self, streaming_env):
        before = runner_traces.store_stats()
        t1 = runner_traces.get_trace("gap.pr", 3000, 1234)
        assert isinstance(t1, StreamingTrace)
        t2 = runner_traces.get_trace("gap.pr", 3000, 1234)
        assert t2 is t1  # per-process handle reuse, no recount
        runner_traces.clear()
        t3 = runner_traces.get_trace("gap.pr", 3000, 1234)
        stats = runner_traces.store_stats()
        assert stats["misses"] - before["misses"] == 1
        assert stats["hits"] - before["hits"] == 1
        assert list(t3) == list(make("gap.pr", 3000, 1234))

    def test_streaming_off_returns_in_memory_trace(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_STREAM", "0")
        runner_traces.clear()
        assert isinstance(runner_traces.get_trace("gap.pr", 2000, 1234),
                          Trace)

    def test_job_end_reports_store_deltas(self, streaming_env,
                                          monkeypatch):
        from repro.obs import runlog
        monkeypatch.setenv("REPRO_OBS", "1")
        log = runlog.RunLog("t", streaming_env / "obs" / "t")
        writer = log.parent_writer()
        runlog.install(writer)
        try:
            job = SimJob.single("gap.pr", 4000, parity_config(),
                                l2=["streamline"])
            job.execute()
        finally:
            writer.close()
            runlog.install(None)
        records = runlog.load_runlog(log.merge())
        ends = [r for r in records if r["event"] == "job_end"]
        assert len(ends) == 1
        assert ends[0]["trace_store"] == {"hits": 0, "misses": 1}

    def test_job_results_identical_across_knob(self, tmp_path,
                                               monkeypatch):
        def run():
            runner_traces.clear()
            return SimJob.single("gap.pr", 5000, parity_config(),
                                 l2=["triangel"]).execute().single

        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path / "traces"))
        monkeypatch.setenv("REPRO_TRACE_STREAM", "0")
        plain = run()
        monkeypatch.setenv("REPRO_TRACE_STREAM", "1")
        streamed = run()
        runner_traces.clear()
        assert dataclasses.asdict(streamed) == dataclasses.asdict(plain)
        # The strategy knob is excluded from fingerprints (pure
        # execution detail, like config.fastpath).
        job = SimJob.single("gap.pr", 5000, parity_config(),
                            l2=["triangel"])
        assert "TRACE_STREAM" not in json.dumps(job.canonical())

    def test_warm_checkpoint_resume_parity_across_knob(
            self, tmp_path, monkeypatch):
        # Straight in-memory run vs. a streamed run restored from its
        # own mid-run progress mark: bit-identical results.
        monkeypatch.setenv("REPRO_CKPT_DIR", str(tmp_path / "ckpt"))
        monkeypatch.setenv("REPRO_CKPT", "1")
        monkeypatch.setenv("REPRO_CKPT_MARK", "1000")
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path / "traces"))

        def job():
            return SimJob.single("gap.pr", 8000, parity_config(),
                                 l2=["streamline"], resume=True)

        monkeypatch.setenv("REPRO_TRACE_STREAM", "0")
        runner_traces.clear()
        straight = job().execute().single

        monkeypatch.setenv("REPRO_TRACE_STREAM", "1")
        runner_traces.clear()
        from repro.checkpoint import CheckpointStore
        marks = []
        engine = job()._build_engine()
        engine.set_mark_hook(1000,
                             lambda e: marks.append(e.state_dict()))
        engine.run()
        CheckpointStore(tmp_path / "ckpt").put(
            "p-" + job().fingerprint(), marks[len(marks) // 2],
            {"phase": "progress"})
        resumed = job().execute().single
        runner_traces.clear()
        assert dataclasses.asdict(resumed) == dataclasses.asdict(straight)


# -- module sanity ---------------------------------------------------------


def test_chunk_module_exports():
    assert tschunk.CHUNK_RECORDS == CHUNK_RECORDS
    assert TraceChunk._fields == ("pcs", "addrs", "writes", "gaps",
                                  "deps")
