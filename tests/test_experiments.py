"""Smoke tests of the experiment harness at miniature scale.

These verify that every table/figure module runs end-to-end and emits a
well-formed result; the actual paper-shape checks live in the benches
(which run at larger scale) and are recorded in EXPERIMENTS.md.
"""

import pytest

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.common import (ExperimentResult, experiment_config,
                                      irregular_subset, run_matrix,
                                      workload_set)
from repro.prefetchers.triangel import TriangelPrefetcher

TINY = dict(n=4000)
MINI_WL = ["gap.pr", "06.lbm"]


def test_experiment_registry_covers_every_figure():
    expected = {"table1", "table2", "tpmin", "fig9", "fig9s", "fig10a",
                "fig10b",
                "fig10c", "fig10de", "fig10f", "fig11a", "fig11b",
                "fig11cd", "fig12a", "fig12b", "fig12c", "fig12ts",
                "fig13a", "fig13b", "fig13c", "fig14", "fig15"}
    assert expected == set(ALL_EXPERIMENTS)


def test_experiment_result_table_renders():
    r = ExperimentResult("x", ["a"], [[1], [2]], notes="hello")
    text = r.table()
    assert "hello" in text and "a" in text
    assert r.as_dict()["rows"] == [[1], [2]]


def test_workload_sets():
    assert len(workload_set("full")) == 31
    assert workload_set("component")
    assert set(workload_set("gap")) == set(workload_set("gap"))


def test_experiment_config_is_scaled():
    cfg = experiment_config()
    assert cfg.llc_size == 512 * 1024


def test_run_matrix_and_irregular_subset():
    runs = run_matrix(MINI_WL, 4000, {"triangel": TriangelPrefetcher})
    assert len(runs) == 2
    assert all("triangel" in r.results for r in runs)
    subset = irregular_subset(MINI_WL, 4000)
    assert "06.lbm" not in subset  # streams have no temporal headroom


@pytest.mark.parametrize("exp_id", ["table1", "table2"])
def test_analytic_experiments(exp_id):
    res = ALL_EXPERIMENTS[exp_id]()
    assert res.rows


def test_tpmin_experiment_tiny():
    res = ALL_EXPERIMENTS["tpmin"](n=3000, capacities=(256,),
                                   workloads=["gap.pr"])
    assert len(res.rows) == 1


def test_fig12a_tiny():
    res = ALL_EXPERIMENTS["fig12a"](n=4000, lengths=(2, 4),
                                    workloads=["gap.pr"])
    assert [row[0] for row in res.rows] == [2, 4]
    assert res.rows[1][1] == 16  # corr/block at length 4


def test_fig13a_tiny():
    res = ALL_EXPERIMENTS["fig13a"](n=4000, workloads=["gap.pr"])
    names = {row[0] for row in res.rows}
    assert "streamline@0.5MB" in names and "triangel-ideal@1MB" in names


def test_fig14_tiny():
    res = ALL_EXPERIMENTS["fig14"](n=4000, workloads=["gap.pr"])
    variants = {row[0] for row in res.rows}
    assert {"triangel", "unopt", "full"} <= variants


def test_fig15_tiny():
    res = ALL_EXPERIMENTS["fig15"](n=4000, workloads=["gap.pr"])
    assert any("realign" in str(row[0]) for row in res.rows)


def test_fig10a_single_core_only():
    res = ALL_EXPERIMENTS["fig10a"](n_per_core=2500, mix_count=1,
                                    core_counts=(1, 2))
    assert [row[0] for row in res.rows] == [1, 2]
