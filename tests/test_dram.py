"""Unit tests for the DRAM bandwidth/latency model."""

import pytest

from repro.memory.dram import DRAM


def test_idle_latency_is_base_plus_service():
    d = DRAM(channels=1, base_latency=100.0)
    lat = d.access(0, now=0.0)
    assert lat == pytest.approx(100.0 + d.service_cycles)


def test_back_to_back_queues():
    d = DRAM(channels=1)
    first = d.access(0, now=0.0)
    second = d.access(1, now=0.0)  # same channel, still busy
    assert second > first


def test_channels_interleave_by_block():
    d = DRAM(channels=2)
    lat0 = d.access(0, now=0.0)
    lat1 = d.access(1, now=0.0)  # different channel: no queueing
    assert lat0 == pytest.approx(lat1)


def test_more_channels_less_queueing():
    def total(channels):
        d = DRAM(channels=channels)
        return sum(d.access(i, 0.0) for i in range(16))
    assert total(4) < total(1)


def test_bandwidth_scale_slows_service():
    fast = DRAM(bandwidth_scale=2.0)
    slow = DRAM(bandwidth_scale=0.5)
    assert slow.service_cycles > fast.service_cycles


def test_writes_are_off_critical_path_but_occupy():
    d = DRAM(channels=1)
    assert d.access(0, 0.0, is_write=True) == 0.0
    # ...but the channel was used, so a read right after queues.
    lat = d.access(2, 0.0)
    assert lat > d.base_latency + d.service_cycles - 1e-9
    assert d.stats.writes == 1 and d.stats.reads == 1


def test_prefetch_reads_counted():
    d = DRAM()
    d.access(0, 0.0, is_prefetch=True)
    assert d.stats.prefetch_reads == 1


def test_stats_bytes():
    d = DRAM()
    d.access(0, 0.0)
    d.access(1, 0.0, is_write=True)
    assert d.stats.bytes_transferred == 128


def test_rejects_bad_params():
    with pytest.raises(ValueError):
        DRAM(channels=0)
    with pytest.raises(ValueError):
        DRAM(bandwidth_scale=0)
