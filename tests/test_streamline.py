"""End-to-end tests of the assembled Streamline prefetcher."""

import pytest

from repro.core.streamline import StreamlinePrefetcher
from repro.core.variants import (COMPONENTS, add_variant, named_variants,
                                 remove_variant, streamline_full,
                                 streamline_unopt)
from repro.prefetchers.stride import StridePrefetcher
from repro.sim.engine import run_single

from conftest import chase_trace


def run_streamline(trace, config, **kwargs):
    holder = {}

    def factory():
        pf = StreamlinePrefetcher(**kwargs)
        holder["pf"] = pf
        return pf

    result = run_single(trace, config, l1_prefetcher=StridePrefetcher,
                        l2_prefetchers=[factory])
    return result, holder["pf"]


class TestLearning:
    def test_covers_repeating_chase(self, tiny_config):
        # Footprint well beyond the LLC so covering misses actually
        # saves DRAM trips (the paper's operating regime).
        trace = chase_trace(nodes=6144, n=15000)
        base = run_single(trace, tiny_config,
                          l1_prefetcher=StridePrefetcher)
        res, pf = run_streamline(trace, tiny_config)
        tp = res.temporal
        assert tp.coverage > 0.5
        assert tp.accuracy > 0.9
        assert res.ipc > base.ipc

    def test_prefetches_match_future_accesses(self, tiny_config, chase):
        res, _ = run_streamline(chase, tiny_config)
        tp = res.temporal
        assert tp.useful > 5 * tp.useless

    def test_streams_are_built(self, tiny_config, chase):
        _, pf = run_streamline(chase, tiny_config)
        assert pf.completed_streams > len(chase) // 8
        assert pf.store.valid_entries() > 0

    def test_no_learning_on_random(self, tiny_config):
        import numpy as np
        from repro.sim.trace import TraceBuilder
        rng = np.random.default_rng(1)
        b = TraceBuilder("rand")
        for _ in range(3000):
            b.add(0x400, 0x10000000 + int(rng.integers(0, 1 << 20)) * 64,
                  gap=4)
        res, _ = run_streamline(b.build(), tiny_config)
        tp = res.temporal
        assert tp.coverage < 0.05


class TestComponents:
    def test_alignment_fires_on_drifting_stream(self, tiny_config):
        # Skipping one node per lap shifts the stream phase by one, so
        # every rebuilt entry overlaps the previous lap's entries with a
        # different trigger -- the Figure 3 situation.
        import numpy as np
        from repro.sim.trace import TraceBuilder
        rng = np.random.default_rng(9)
        nodes = 2048  # larger than the tiny config's L2
        perm = rng.permutation(nodes)
        b = TraceBuilder("drift")
        pos, skip_at = 0, 0
        for i in range(8000):
            b.add(0x400, 0x10000000 + int(perm[pos]) * 64, gap=4,
                  dep=True)
            pos = (pos + 1) % nodes
            if pos == skip_at:
                pos = (pos + 1) % nodes          # skip one node this lap
                skip_at = (skip_at + 1) % nodes  # drift the skip point
        _, pf = run_streamline(b.build(), tiny_config)
        assert pf.alignments > 0

    def test_filtering_and_realignment_at_half_size(self, tiny_config,
                                                    chase):
        res, pf = run_streamline(chase, tiny_config, dynamic=False,
                                 initial_every_nth=2)
        assert pf.store.stats.filtered_lookups > 0
        assert pf.realignments > 0

    def test_realignment_recovers_coverage(self, tiny_config, chase):
        with_r, _ = run_streamline(chase, tiny_config, dynamic=False,
                                   initial_every_nth=2, realignment=True)
        without, _ = run_streamline(chase, tiny_config, dynamic=False,
                                    initial_every_nth=2,
                                    realignment=False)
        assert with_r.temporal.coverage >= without.temporal.coverage

    def test_degree_control_reaches_max_on_stable_stream(
            self, tiny_config, chase):
        _, pf = run_streamline(chase, tiny_config, degree_epoch=256)
        degrees = [e.degree for e in pf.tu.entries()]
        assert max(degrees) == 4

    def test_metadata_traffic_accounted(self, tiny_config, chase):
        res, pf = run_streamline(chase, tiny_config)
        tp = res.temporal
        assert tp.metadata_reads > 0
        assert tp.metadata_writes > 0
        assert tp.metadata_rearrange_moves == 0  # filtered indexing

    def test_dynamic_partitioning_decides(self, tiny_config, chase):
        _, pf = run_streamline(chase, tiny_config, partition_epoch=512)
        assert len(pf.partitioner.decisions) > 0

    def test_accuracy_estimate_tracks_quality(self, tiny_config, chase):
        _, pf = run_streamline(chase, tiny_config, accuracy_epoch=128)
        assert pf.current_accuracy > 0.8

    def test_llc_partition_applied(self, tiny_config, chase):
        res, pf = run_streamline(chase, tiny_config)
        llc = pf.controller.llc
        ceded = sum(1 for s in range(llc.num_sets)
                    if llc.data_ways(s) < llc.ways)
        assert ceded > 0


class TestVariants:
    def test_full_and_unopt_construct(self):
        full = streamline_full()
        unopt = streamline_unopt()
        assert full.stream_alignment and not unopt.stream_alignment
        assert full.axis == "set" and unopt.axis == "way"
        assert full.replacement_name == "tp-mockingjay"
        assert unopt.replacement_name == "srrip"

    def test_add_and_remove_are_complementary(self):
        added = add_variant(*COMPONENTS)()
        assert added.axis == "set" and added.dynamic
        removed = remove_variant("tpmj")()
        assert removed.replacement_name == "srrip"
        assert removed.axis == "set"  # tsp still on

    def test_unknown_component_rejected(self):
        with pytest.raises(ValueError):
            add_variant("turbo")

    def test_named_variants_all_run(self, tiny_config):
        trace = chase_trace(n=1500, nodes=256)
        for name, factory in named_variants().items():
            res = run_single(trace, tiny_config,
                             l2_prefetchers=[factory])
            assert res.ipc > 0, name

    def test_way_axis_variant_pays_rearrangement_or_not(self, tiny_config,
                                                        chase):
        res, pf = run_streamline(chase, tiny_config, axis="way",
                                 tagged=False, indexing="rearranged",
                                 dynamic=False)
        assert res.temporal.coverage >= 0  # runs to completion

    def test_rejects_bad_replacement(self):
        with pytest.raises(ValueError):
            StreamlinePrefetcher(replacement="belady")
