"""Tests for the trace-characterization analyses."""

import pytest

from repro.analysis.footprint import (MetadataDemand, characterize,
                                      metadata_demand)
from repro.sim.trace import TraceBuilder
from repro.workloads import make

from conftest import chase_trace


def stride_trace(n=1000):
    b = TraceBuilder("s")
    for i in range(n):
        b.add(0x1, i * 64, gap=2)
    return b.build()


class TestCharacterize:
    def test_stride_is_regular(self):
        p = characterize(stride_trace())
        assert p.irregular_fraction < 0.05
        assert p.dependent_fraction == 0.0
        assert p.footprint_blocks == 1000

    def test_chase_is_irregular_and_dependent(self):
        p = characterize(chase_trace(n=4000, nodes=1024))
        assert p.irregular_fraction > 0.8
        assert p.dependent_fraction == 1.0

    def test_reuse_distance_matches_period(self):
        p = characterize(chase_trace(n=8000, nodes=1024))
        assert 900 < p.median_reuse_distance < 1100

    def test_no_reuse_is_infinite(self):
        p = characterize(stride_trace())
        assert p.median_reuse_distance == float("inf")

    def test_footprint_bytes(self):
        p = characterize(stride_trace(100))
        assert p.footprint_bytes == 100 * 64


class TestMetadataDemand:
    def test_chase_demand_counts(self):
        t = chase_trace(n=2048, nodes=512)  # 4 exact laps
        d = metadata_demand(t, stream_length=4)
        # One pair per consecutive node pair: 512 distinct (cyclic).
        assert d.pairwise_correlations == 512
        # One entry per 4 accesses: 512/4 = 128 windows per lap.
        assert d.stream_entries in (128, 129)  # tail window may add one

    def test_capacity_advantage_near_four_thirds(self):
        t = chase_trace(n=4096, nodes=1024)
        d = metadata_demand(t, stream_length=4)
        assert d.capacity_advantage == pytest.approx(4 / 3, rel=0.1)

    def test_blocks_arithmetic(self):
        d = MetadataDemand(pairwise_correlations=24, stream_entries=6,
                           stream_correlations=24, stream_length=4)
        assert d.pairwise_blocks == 2   # 24/12
        assert d.stream_blocks == 2     # 6/4 -> ceil = 2

    def test_bad_length_rejected(self):
        with pytest.raises(ValueError):
            metadata_demand(stride_trace(), stream_length=7)

    def test_works_on_suite_workload(self):
        d = metadata_demand(make("gap.pr", 3000), stream_length=4)
        assert d.pairwise_correlations > 0
        assert d.stream_correlations > 0
