"""Unit tests for the cache replacement policies."""

import pytest

from repro.memory.replacement import (HawkeyeLitePolicy, LRUPolicy,
                                      RandomPolicy, SRRIPPolicy,
                                      make_policy)


class TestLRU:
    def test_victim_is_least_recent(self):
        p = LRUPolicy(1, 4)
        for w in range(4):
            p.on_fill(0, w)
        p.on_hit(0, 0)  # way 0 becomes MRU; way 1 is now LRU
        assert p.victim(0, range(4)) == 1

    def test_victim_restricted_to_candidates(self):
        p = LRUPolicy(1, 4)
        for w in range(4):
            p.on_fill(0, w)
        assert p.victim(0, [2, 3]) == 2

    def test_stack_distance(self):
        p = LRUPolicy(1, 4)
        for w in range(4):
            p.on_fill(0, w)
        assert p.stack_distance(0, 3) == 0   # MRU
        assert p.stack_distance(0, 0) == 3   # LRU

    def test_sets_independent(self):
        p = LRUPolicy(2, 2)
        p.on_fill(0, 0)
        p.on_fill(1, 1)
        p.on_fill(0, 1)
        assert p.victim(0, range(2)) == 0
        assert p.victim(1, range(2)) == 0  # way 0 of set 1 never touched


class TestSRRIP:
    def test_hit_promotes(self):
        p = SRRIPPolicy(1, 2)
        p.on_fill(0, 0)
        p.on_fill(0, 1)
        p.on_hit(0, 0)
        # way 0 has RRPV 0, way 1 has 2: aging finds way 1 first.
        assert p.victim(0, range(2)) == 1

    def test_victim_ages_until_found(self):
        p = SRRIPPolicy(1, 2)
        p.on_fill(0, 0)
        p.on_hit(0, 0)
        p.on_fill(0, 1)
        p.on_hit(0, 1)
        w = p.victim(0, range(2))
        assert w in (0, 1)  # aging terminates

    def test_untouched_ways_evicted_first(self):
        p = SRRIPPolicy(1, 4)
        p.on_fill(0, 0)
        # Ways 1-3 never filled: they sit at MAX_RRPV.
        assert p.victim(0, range(4)) in (1, 2, 3)


class TestRandom:
    def test_deterministic_sequence(self):
        a = RandomPolicy(1, 8, seed=42)
        b = RandomPolicy(1, 8, seed=42)
        seq_a = [a.victim(0, range(8)) for _ in range(20)]
        seq_b = [b.victim(0, range(8)) for _ in range(20)]
        assert seq_a == seq_b

    def test_victims_spread(self):
        p = RandomPolicy(1, 8)
        assert len({p.victim(0, range(8)) for _ in range(100)}) > 3


class TestHawkeyeLite:
    def test_scanning_pc_becomes_averse(self):
        p = HawkeyeLitePolicy(64, 4, sample_every=1)
        scan_pc = 0x999
        # A PC streaming fresh blocks never sees reuse: counters drop.
        for i in range(400):
            p.on_fill(i % 64, i % 4, blk=10_000 + i, pc=scan_pc)
        # A friendly PC re-touching a small set trains positive.
        friendly = 0x111
        for i in range(400):
            p.on_fill(0, i % 4, blk=i % 2, pc=friendly)
        assert p._predict_friendly(friendly) or \
            not p._predict_friendly(scan_pc)

    def test_victim_returns_candidate(self):
        p = HawkeyeLitePolicy(4, 4)
        for w in range(4):
            p.on_fill(0, w, blk=w, pc=1)
        assert p.victim(0, range(4)) in range(4)


def test_make_policy_known():
    for name in ("lru", "srrip", "random", "hawkeye"):
        assert make_policy(name, 4, 4).num_ways == 4


def test_make_policy_unknown():
    with pytest.raises(ValueError, match="unknown replacement"):
        make_policy("belady", 4, 4)
