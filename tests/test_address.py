"""Unit tests for repro.memory.address."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memory.address import (BLOCK_SIZE, addr_of, block_of, fold_hash,
                                  hash32, is_pow2, log2, set_index, tag_of)


def test_block_size_is_64():
    assert BLOCK_SIZE == 64


def test_block_of_strips_offset():
    assert block_of(0) == 0
    assert block_of(63) == 0
    assert block_of(64) == 1
    assert block_of(129) == 2


def test_addr_of_inverts_block_of():
    assert addr_of(block_of(0x12345)) == 0x12340 & ~63


@given(st.integers(min_value=0, max_value=2**48))
def test_block_roundtrip(addr):
    blk = block_of(addr)
    assert addr_of(blk) <= addr < addr_of(blk) + BLOCK_SIZE


def test_set_index_masks_low_bits():
    assert set_index(0b101101, 8) == 0b101
    assert set_index(0b101101, 1) == 0


@given(st.integers(min_value=0, max_value=2**40),
       st.sampled_from([1, 2, 4, 64, 512, 4096]))
def test_set_index_in_range(blk, sets):
    assert 0 <= set_index(blk, sets) < sets


def test_tag_of_drops_set_bits():
    assert tag_of(0x1234, 16) == 0x1234 >> 4


def test_is_pow2():
    assert is_pow2(1) and is_pow2(2) and is_pow2(1024)
    assert not is_pow2(0) and not is_pow2(3) and not is_pow2(-4)


def test_log2_exact():
    assert log2(1) == 0
    assert log2(4096) == 12


def test_log2_rejects_non_pow2():
    with pytest.raises(ValueError):
        log2(3)


def test_hash32_deterministic_and_bounded():
    assert hash32(12345) == hash32(12345)
    assert 0 <= hash32(0xDEADBEEF) < 2**32


def test_hash32_spreads():
    values = {hash32(i) & 0xFF for i in range(1000)}
    assert len(values) > 200  # most buckets touched


@given(st.integers(min_value=0, max_value=2**40),
       st.integers(min_value=1, max_value=16))
def test_fold_hash_in_range(x, bits):
    assert 0 <= fold_hash(x, bits) < (1 << bits)


def test_fold_hash_differs_from_identity():
    assert any(fold_hash(i, 10) != i for i in range(1024))
