"""Tests for the FTS stream metadata store and its Table I siblings."""

import pytest

from repro.core.metadata_store import StreamStore
from repro.core.replacement import make_stream_replacement
from repro.core.stream_entry import StreamEntry
from repro.memory.metadata_store import PartitionController


def make_store(sets=64, **kwargs):
    controller = PartitionController(None, max_bytes=sets * 8 * 64)
    defaults = dict(stream_length=4, meta_ways=8,
                    replacement=make_stream_replacement("srrip"),
                    permanent_sets=8)
    defaults.update(kwargs)
    return StreamStore(sets, controller, **defaults), controller


def entry(trigger, targets=(), pc=0):
    return StreamEntry(trigger, 4, list(targets), pc=pc)


class TestBasicOps:
    def test_insert_then_lookup(self):
        store, _ = make_store()
        store.insert(entry(100, [101, 102, 103, 104]))
        got = store.lookup(100)
        assert got is not None
        assert got.targets == [101, 102, 103, 104]

    def test_lookup_returns_copy(self):
        store, _ = make_store()
        store.insert(entry(100, [101]))
        got = store.lookup(100)
        got.targets.append(999)
        assert store.lookup(100).targets == [101]

    def test_lookup_miss(self):
        store, _ = make_store()
        assert store.lookup(42) is None
        assert store.stats.lookups == 1 and store.stats.hits == 0

    def test_same_trigger_overwrites(self):
        store, _ = make_store()
        store.insert(entry(100, [1]))
        store.insert(entry(100, [2]))
        assert store.lookup(100).targets == [2]
        assert store.stats.overwrites == 1

    def test_mid_stream_address_is_not_a_trigger(self):
        """The stream format's coverage tax: only triggers index."""
        store, _ = make_store()
        store.insert(entry(100, [101, 102, 103, 104]))
        assert store.lookup(102) is None


class TestTraffic:
    def test_hit_costs_one_read(self):
        store, ctl = make_store()
        store.insert(entry(100, [101]))
        writes = ctl.traffic.writes
        store.lookup(100)
        assert ctl.traffic.reads == 1
        assert ctl.traffic.writes == writes

    def test_miss_costs_nothing(self):
        store, ctl = make_store()
        store.lookup(100)
        assert ctl.traffic.reads == 0

    def test_insert_costs_one_write(self):
        store, ctl = make_store()
        store.insert(entry(100, [101]))
        assert ctl.traffic.writes == 1

    def test_filtered_insert_costs_nothing(self):
        store, ctl = make_store()
        store.set_partition(every_nth=0)  # only permanent sets remain
        for t in range(200):
            store.insert(entry(t, [t + 1]))
        assert store.stats.filtered_inserts > 0
        assert ctl.traffic.writes < 200


class TestFilteredIndexing:
    def test_full_partition_filters_nothing(self):
        store, _ = make_store()
        for t in range(100):
            store.insert(entry(t, [t + 1]))
        assert store.stats.filtered_inserts == 0

    def test_half_partition_filters_roughly_half(self):
        store, _ = make_store(sets=256, permanent_sets=0)
        store.set_partition(every_nth=2)
        for t in range(2000):
            store.insert(entry(t, [t + 1]))
        frac = store.stats.filtered_inserts / store.stats.inserts
        assert 0.35 < frac < 0.65

    def test_resize_drops_without_traffic(self):
        store, ctl = make_store(sets=256, permanent_sets=0)
        for t in range(500):
            store.insert(entry(t, [t + 1]))
        before = ctl.traffic.total_accesses
        moved = store.set_partition(every_nth=2)
        assert moved == 0
        assert ctl.traffic.total_accesses == before
        assert ctl.traffic.rearrange_moves == 0

    def test_surviving_entries_still_found_after_resize(self):
        store, _ = make_store(sets=256, permanent_sets=0)
        triggers = list(range(500))
        for t in triggers:
            store.insert(entry(t, [t + 1]))
        store.set_partition(every_nth=2)
        found = sum(store.lookup(t) is not None for t in triggers)
        assert 0 < found < 500  # survivors findable, filtered gone
        # Everything still present maps to an allocated set.
        for t in triggers:
            if store.lookup(t) is not None:
                assert store.is_allocated(store.set_of(t))

    def test_permanent_sets_survive_zero_size(self):
        store, _ = make_store(sets=256, permanent_sets=32)
        for t in range(2000):
            store.insert(entry(t, [t + 1]))
        store.set_partition(every_nth=0)
        assert store.valid_entries() > 0


class TestRearrangedIndexing:
    def test_resize_charges_rearrangement(self):
        store, ctl = make_store(sets=256, indexing="rearranged",
                                permanent_sets=0)
        for t in range(500):
            store.insert(entry(t, [t + 1]))
        moved = store.set_partition(every_nth=2)
        assert moved > 0
        assert ctl.traffic.rearrange_moves == moved

    def test_rearranged_never_filters(self):
        store, _ = make_store(sets=256, indexing="rearranged",
                              permanent_sets=0)
        store.set_partition(every_nth=2)
        for t in range(500):
            store.insert(entry(t, [t + 1]))
        assert store.stats.filtered_inserts == 0


class TestAssociativity:
    def test_tagged_pool_capacity_is_ways_times_entries(self):
        store, _ = make_store()
        assert store.set_capacity() == 8 * 4  # 32-entry reach (FTS)

    def test_untagged_way_pool_is_tiny(self):
        store, _ = make_store(tagged=False, axis="way")
        assert store._pool_capacity() == 4

    def test_eviction_when_pool_full(self):
        store, _ = make_store(sets=1, meta_ways=1, permanent_sets=0)
        # 1 set x 1 way x 4 entries: the 5th distinct trigger evicts.
        for t in range(5):
            store.insert(entry(t * 7919, [1]))
        assert store.stats.evictions == 1
        assert store.valid_entries() == 4


class TestWayAxis:
    def test_way_axis_stores_and_finds(self):
        store, _ = make_store(axis="way", tagged=False,
                              indexing="rearranged")
        for t in range(100):
            store.insert(entry(t, [t + 1]))
        hits = sum(store.lookup(t) is not None for t in range(100))
        assert hits > 50

    def test_way_axis_filtering_by_way(self):
        store, _ = make_store(axis="way", tagged=False,
                              indexing="filtered")
        store.set_partition(ways=2)  # of meta_ways=8
        for t in range(400):
            store.insert(entry(t, [t + 1]))
        assert store.stats.filtered_inserts > 100


class TestDiagnostics:
    def test_alias_rate_bounded(self):
        store, _ = make_store(sets=16, permanent_sets=0)
        for t in range(300):
            store.insert(entry(t, [t + 1]))
        assert 0.0 <= store.alias_rate() <= 1.0

    def test_correlation_count(self):
        store, _ = make_store()
        store.insert(entry(1, [2, 3]))
        store.insert(entry(10, [11, 12, 13, 14]))
        assert store.correlation_count() == 6

    def test_capacity_entries_by_size(self):
        store, _ = make_store(sets=256, permanent_sets=0)
        full = store.capacity_entries()
        store.set_partition(every_nth=2)
        assert store.capacity_entries() == full // 2


class TestValidation:
    def test_bad_axis(self):
        with pytest.raises(ValueError):
            make_store(axis="diagonal")

    def test_bad_indexing(self):
        with pytest.raises(ValueError):
            make_store(indexing="hashed")

    def test_bad_stream_length(self):
        with pytest.raises(ValueError):
            make_store(stream_length=7)
