"""Tests for TP-Mockingjay and the stream-store SRRIP policy."""

import pytest

from repro.core.replacement import (SCAN_LEVEL, SRRIPStreamReplacement,
                                    StoredEntry, TPMockingjayReplacement,
                                    dequantize, make_stream_replacement,
                                    quantize)
from repro.core.stream_entry import StreamEntry


def stored(trigger=1, pc=0, length=4):
    return StoredEntry(StreamEntry(trigger, length, pc=pc))


class TestQuantize:
    def test_log2_levels(self):
        assert quantize(0) == 0
        assert quantize(1) == 0
        assert quantize(2) == 1
        assert quantize(8) == 3
        assert quantize(1000) == 7  # saturates at 3 bits

    def test_negative_clamped(self):
        assert quantize(-5) == 0

    def test_roundtrip_monotone(self):
        levels = [quantize(d) for d in (1, 4, 16, 64, 300)]
        assert levels == sorted(levels)
        assert dequantize(3) == 8


class TestSRRIPStream:
    def test_hit_protects(self):
        p = SRRIPStreamReplacement()
        a, b = stored(1), stored(2)
        p.on_insert(0, 0, a)
        p.on_insert(0, 1, b)
        p.on_access(0, 2, a)
        assert p.victim(0, 3, [a, b]) is b


class TestTPMockingjay:
    def test_reuse_trains_short_prediction(self):
        p = TPMockingjayReplacement(sample_every=1)
        for clock in range(0, 40, 2):
            p.observe_correlation(0, clock, trigger=5, first_target=6,
                                  pc=0x42)
        assert p.predict(0x42) < 3  # learned short reuse

    def test_changed_target_is_not_reuse(self):
        """TP-MIN's defining property: the same trigger with a different
        target is a *different* correlation."""
        p = TPMockingjayReplacement(sample_every=1)
        for clock in range(0, 40, 2):
            # Target changes every time: never a correlation reuse.
            p.observe_correlation(0, clock, trigger=5,
                                  first_target=1000 + clock, pc=0x42)
        assert p.predict(0x42) >= 3  # no evidence of short reuse

    def test_sampler_overflow_trains_scan(self):
        p = TPMockingjayReplacement(sample_every=1, sampler_capacity=4)
        for i in range(64):
            p.observe_correlation(0, i, trigger=i, first_target=i + 1,
                                  pc=0x99)
        assert p.predict(0x99) >= 5  # drifted toward SCAN_LEVEL

    def test_victim_prefers_scan_predicted(self):
        p = TPMockingjayReplacement(sample_every=1)
        keeper = stored(1, pc=0x1)
        scanner = stored(2, pc=0x2)
        p._pred[__import__("repro.memory.address", fromlist=["fold_hash"])
                .fold_hash(0x1, 8)] = 0
        p._pred[__import__("repro.memory.address", fromlist=["fold_hash"])
                .fold_hash(0x2, 8)] = SCAN_LEVEL
        p.on_insert(0, 0, keeper)
        p.on_insert(0, 0, scanner)
        assert p.victim(0, 1, [keeper, scanner]) is scanner

    def test_overdue_entry_preferred_over_fresh(self):
        p = TPMockingjayReplacement()
        fresh = stored(1)
        overdue = stored(2)
        p.on_insert(0, 100, fresh)
        fresh.pred_level = 3       # due at clock 108
        overdue.pred_level = 0     # was due at clock 1
        overdue.inserted_clock = 0
        assert p.victim(0, 100, [fresh, overdue]) is overdue

    def test_unsampled_sets_do_not_train(self):
        p = TPMockingjayReplacement(sample_every=8)
        for clock in range(0, 40, 2):
            p.observe_correlation(3, clock, trigger=5, first_target=6,
                                  pc=0x42)  # set 3 is not sampled
        assert p.predict(0x42) == 3  # untouched default


def test_factory():
    assert isinstance(make_stream_replacement("srrip"),
                      SRRIPStreamReplacement)
    assert isinstance(make_stream_replacement("tp-mockingjay"),
                      TPMockingjayReplacement)
    with pytest.raises(ValueError):
        make_stream_replacement("optimal")
