"""Tests for the MemoryRequest pipeline, event bus, and train scopes."""

import pytest

from repro.memory.address import block_of
from repro.memory.cache import Cache
from repro.memory.dram import DRAM
from repro.memory.events import EV, EventBus
from repro.memory.hierarchy import CoreHierarchy, SharedUncore
from repro.memory.request import DEMAND, MemoryRequest
from repro.prefetchers.base import (Prefetcher, TRAIN_SCOPE_ALL_L2,
                                    TRAIN_SCOPE_TEMPORAL)
from repro.sim.multicore import REGION_BITS, REGION_MASK, _biased
from repro.sim.trace import TraceBuilder


def build(l1_kb=4, l2_kb=16, llc_kb=64):
    l1 = Cache("L1D", l1_kb * 1024, 4, 5)
    l2 = Cache("L2", l2_kb * 1024, 8, 10)
    llc = Cache("LLC", llc_kb * 1024, 16, 20, replacement="srrip")
    uncore = SharedUncore(llc, DRAM(channels=1, base_latency=100.0))
    return CoreHierarchy(0, l1, l2, uncore), uncore


class Recorder(Prefetcher):
    """Records every training event; prefetches nothing."""

    name = "recorder"

    def __init__(self, scope=TRAIN_SCOPE_TEMPORAL):
        super().__init__()
        self.train_scope = scope
        self.events = []

    def train(self, pc, blk, hit, prefetch_hit, now):
        self.events.append((pc, blk, hit, prefetch_hit))
        return []


class TestEventBus:
    def test_unknown_kind_rejected(self):
        bus = EventBus()
        with pytest.raises(ValueError, match="unknown event kind"):
            bus.subscribe("no-such-event", lambda ev: None)

    def test_counts_without_subscribers(self):
        bus = EventBus()
        bus.publish(EV.FILL, "l2", 0, 42)
        bus.publish(EV.FILL, "l2", 0, 43, origin="prefetch")
        assert bus.count(EV.FILL) == 2
        assert bus.count(EV.FILL, origin="prefetch") == 1
        assert bus.counts_flat() == {"fill@l2:demand": 1,
                                     "fill@l2:prefetch": 1}

    def test_delivery_order_and_unsubscribe(self):
        bus = EventBus()
        seen = []
        first = lambda ev: seen.append(("first", ev.blk))   # noqa: E731
        second = lambda ev: seen.append(("second", ev.blk))  # noqa: E731
        bus.subscribe(EV.FILL, first)
        bus.subscribe(EV.FILL, second)
        bus.publish(EV.FILL, "l2", 0, 7)
        assert seen == [("first", 7), ("second", 7)]
        bus.unsubscribe(EV.FILL, first)
        bus.publish(EV.FILL, "l2", 0, 8)
        assert seen[-1] == ("second", 8)


class TestRequestPipeline:
    def test_cold_miss_records_every_level(self):
        core, _ = build()
        req = MemoryRequest(0x1, 0x1000, block_of(0x1000), False, DEMAND,
                            0, 0.0)
        core.l1_level.access(req)
        assert [(o.level, o.hit) for o in req.outcomes] == \
            [("l1d", False), ("l2", False), ("llc", False)]
        assert req.latency == pytest.approx(
            sum(o.latency for o in req.outcomes))
        assert req.latency > 100  # went to DRAM
        assert req.clock == req.now + req.latency

    def test_l1_hit_stops_at_first_level(self):
        core, _ = build()
        core.access(0x1, 0x1000, False, 0.0)
        req = MemoryRequest(0x1, 0x1000, block_of(0x1000), False, DEMAND,
                            0, 1000.0)
        core.l1_level.access(req)
        assert [(o.level, o.hit) for o in req.outcomes] == [("l1d", True)]
        assert req.latency == core.l1d.latency

    def test_cold_miss_event_order(self):
        core, uncore = build()
        order = []
        for kind in EV.ALL:
            uncore.bus.subscribe(
                kind, lambda ev, k=kind: order.append((k, ev.level)))
        core.access(0x1, 0x1000, False, 0.0)
        assert order == [
            (EV.LOOKUP_MISS, "l1d"),
            (EV.LOOKUP_MISS, "l2"),
            (EV.ACCESS, "llc"),
            (EV.LOOKUP_MISS, "llc"),
            (EV.FILL, "llc"),
            (EV.FILL, "l2"),
            (EV.FILL, "l1d"),
            (EV.DEMAND_COMPLETE, "l2"),
        ]

    def test_l1_hit_publishes_no_demand_complete(self):
        core, uncore = build()
        core.access(0x1, 0x1000, False, 0.0)
        before = uncore.bus.count(EV.DEMAND_COMPLETE)
        core.access(0x1, 0x1000, False, 1000.0)
        assert uncore.bus.count(EV.DEMAND_COMPLETE) == before


class TestTrainScopes:
    def test_invalid_scope_rejected_at_attach(self):
        core, _ = build()
        with pytest.raises(ValueError, match="train_scope"):
            core.attach_l2_prefetcher(Recorder(scope="bogus"))

    def test_every_shipped_prefetcher_declares_a_scope(self):
        from repro.core.streamline import StreamlinePrefetcher
        from repro.prefetchers import (BertiPrefetcher, BingoPrefetcher,
                                       IPCPPrefetcher, NullPrefetcher,
                                       SPPPrefetcher, StridePrefetcher,
                                       TriagePrefetcher, TriangelPrefetcher)
        from repro.prefetchers.triage import IdealTriage
        for cls, scope in [
                (StridePrefetcher, TRAIN_SCOPE_ALL_L2),
                (BertiPrefetcher, TRAIN_SCOPE_ALL_L2),
                (IPCPPrefetcher, TRAIN_SCOPE_ALL_L2),
                (BingoPrefetcher, TRAIN_SCOPE_ALL_L2),
                (SPPPrefetcher, TRAIN_SCOPE_ALL_L2),
                (TriagePrefetcher, TRAIN_SCOPE_TEMPORAL),
                (IdealTriage, TRAIN_SCOPE_TEMPORAL),
                (TriangelPrefetcher, TRAIN_SCOPE_TEMPORAL),
                (StreamlinePrefetcher, TRAIN_SCOPE_TEMPORAL),
                (NullPrefetcher, TRAIN_SCOPE_TEMPORAL)]:
            assert "train_scope" in vars(cls), cls.__name__
            assert cls.train_scope == scope, cls.__name__
            assert not hasattr(cls, "train_on_all_l2"), cls.__name__

    def test_temporal_scope_skips_clean_l2_hits(self):
        core, uncore = build()
        temporal = Recorder(TRAIN_SCOPE_TEMPORAL)
        broad = Recorder(TRAIN_SCOPE_ALL_L2)
        core.attach_l2_prefetcher(temporal)
        core.attach_l2_prefetcher(broad)
        bus = uncore.bus
        bus.publish(EV.DEMAND_COMPLETE, "l2", 0, 10, pc=1, hit=False)
        bus.publish(EV.DEMAND_COMPLETE, "l2", 0, 11, pc=1, hit=True)
        bus.publish(EV.DEMAND_COMPLETE, "l2", 0, 12, pc=1, hit=True,
                    was_prefetched=True)
        assert [e[1] for e in temporal.events] == [10, 12]
        assert [e[1] for e in broad.events] == [10, 11, 12]

    def test_training_filters_other_cores(self):
        core, uncore = build()
        pf = Recorder(TRAIN_SCOPE_ALL_L2)
        core.attach_l2_prefetcher(pf)
        uncore.bus.publish(EV.DEMAND_COMPLETE, "l2", 1, 10, hit=False)
        assert pf.events == []

    def test_l1_training_sees_every_l1_access(self):
        core, _ = build()
        pf = Recorder(TRAIN_SCOPE_ALL_L2)
        core.attach_l1_prefetcher(pf)
        core.access(0x1, 0x1000, False, 0.0)     # cold miss
        core.access(0x1, 0x1000, False, 1000.0)  # L1 hit
        assert [(blk_hit[2]) for blk_hit in pf.events] == [False, True]


class TestBiasedRegions:
    def _trace(self, addrs, name="t"):
        b = TraceBuilder(name)
        for a in addrs:
            b.add(0x1, a)
        return b.build()

    def test_core_zero_in_range_is_identity(self):
        addrs = [0x1000, 0x12345678, (1 << REGION_BITS) - 64]
        t = self._trace(addrs)
        assert [rec[1] for rec in _biased(t, 0)] == addrs

    def test_matches_old_additive_bias_for_in_range_addresses(self):
        addrs = [0x1000, 0xDEAD_BEEF_00, (1 << 40) + 4096]
        t = self._trace(addrs)
        for core in (1, 3):
            got = [rec[1] for rec in _biased(t, core)]
            assert got == [a + (core << REGION_BITS) for a in addrs]

    def test_regions_disjoint_even_for_oversized_footprints(self):
        # Addresses that overflow a region used to collide with the
        # next core under the additive bias; the fold keeps them home.
        huge = [(1 << REGION_BITS) + i * 64 for i in range(8)]
        t = self._trace(huge)
        blocks = {}
        for core in (0, 1, 2):
            for _, addr, _, _, _ in _biased(t, core):
                assert addr >> REGION_BITS == core
                blocks.setdefault(core, set()).add(addr)
        assert not (blocks[0] & blocks[1])
        assert not (blocks[1] & blocks[2])

    def test_mask_covers_region(self):
        assert REGION_MASK == (1 << REGION_BITS) - 1
