"""Tests for Triage, IdealTriage, and Triangel."""

import pytest

from repro.prefetchers.stride import StridePrefetcher
from repro.prefetchers.triage import IdealTriage, TriagePrefetcher
from repro.prefetchers.triangel import TriangelPrefetcher
from repro.sim.engine import run_single
from repro.sim.trace import TraceBuilder

from conftest import chase_trace


def scan_trace(n=4000):
    """Fresh irregular blocks forever: no temporal reuse, and no constant
    stride (so the L1 stride prefetcher cannot hide it from the L2)."""
    b = TraceBuilder("scan")
    for i in range(n):
        blk = (i * 2654435761) % (1 << 28)  # unique, irregular
        b.add(0x500, 0x40000000 + blk * 64, gap=4)
    return b.build()


def run_with(trace, config, factory):
    holder = {}

    def wrapped():
        pf = factory()
        holder["pf"] = pf
        return pf

    res = run_single(trace, config, l1_prefetcher=StridePrefetcher,
                     l2_prefetchers=[wrapped])
    return res, holder["pf"]


class TestIdealTriage:
    def test_near_perfect_on_chase(self, tiny_config, chase):
        res, _ = run_with(chase, tiny_config, IdealTriage)
        tp = res.temporal
        assert tp.coverage > 0.75
        assert tp.accuracy > 0.95

    def test_nothing_on_scan(self, tiny_config):
        res, _ = run_with(scan_trace(), tiny_config, IdealTriage)
        assert res.temporal.coverage < 0.05


class TestTriage:
    def test_covers_chase(self, tiny_config, chase):
        res, pf = run_with(chase, tiny_config, TriagePrefetcher)
        assert res.temporal.coverage > 0.3
        assert pf.store.hits > 0

    def test_partition_carved_from_llc(self, tiny_config, chase):
        res, pf = run_with(chase, tiny_config, TriagePrefetcher)
        llc = pf.controller.llc
        assert any(llc.data_ways(s) < llc.ways
                   for s in range(llc.num_sets))

    def test_adaptive_resize_runs(self, tiny_config, chase):
        _, pf = run_with(chase, tiny_config,
                         lambda: TriagePrefetcher(resize_epoch=500))
        assert pf.store.ways >= 1

    def test_metadata_traffic_counted(self, tiny_config, chase):
        res, _ = run_with(chase, tiny_config, TriagePrefetcher)
        tp = res.temporal
        assert tp.metadata_reads > 0 and tp.metadata_writes > 0


class TestTriangel:
    def test_covers_chase_accurately(self, tiny_config, chase):
        res, pf = run_with(chase, tiny_config, TriangelPrefetcher)
        tp = res.temporal
        assert tp.coverage > 0.3
        assert tp.accuracy > 0.8

    def test_confidence_rises_on_stable_stream(self, tiny_config):
        # A chase much larger than the L2 keeps the trained subsequence
        # stable (L2-resident blocks skip training and add noise).
        trace = chase_trace(nodes=8192, n=18000)
        _, pf = run_with(trace, tiny_config, TriangelPrefetcher)
        st = pf._pcs[0x400]
        assert st.pattern_conf >= 9   # enough for degree >= 2
        assert st.reuse_conf >= 8

    def test_scan_pc_bypasses_metadata(self, tiny_config):
        """The HS never sees reuse for a scanning PC, so reuse confidence
        collapses and inserts are bypassed (the mcf advantage)."""
        _, pf = run_with(scan_trace(8000), tiny_config,
                         lambda: TriangelPrefetcher(sample_rate=16,
                                                    resize_epoch=10**9))
        st = pf._pcs[0x500]
        assert st.reuse_conf < 6
        assert pf.bypassed_inserts > 0

    def test_degree_zero_for_unstable_pc(self, tiny_config):
        import numpy as np
        rng = np.random.default_rng(2)
        b = TraceBuilder("rand")
        for _ in range(6000):
            b.add(0x500, 0x40000000 + int(rng.integers(0, 4096)) * 64,
                  gap=4)
        res, pf = run_with(b.build(), tiny_config, TriangelPrefetcher)
        assert res.temporal.issued < 1000

    def test_resize_pays_rearrangement(self, tiny_config, chase):
        res, pf = run_with(chase, tiny_config,
                           lambda: TriangelPrefetcher(resize_epoch=400))
        # With frequent epochs the duel resizes at least once; if it
        # did, the moves were charged.
        moves = res.temporal.metadata_rearrange_moves
        assert moves >= 0  # counting is wired (exact count duel-driven)

    def test_dedicated_store_leaves_llc_alone(self, tiny_config, chase):
        _, pf = run_with(chase, tiny_config,
                         lambda: TriangelPrefetcher(dedicated=True))
        llc = pf.hier.uncore.llc
        assert all(llc.data_ways(s) == llc.ways
                   for s in range(llc.num_sets))

    def test_mrb_reduces_reads_vs_no_mrb(self, tiny_config, chase):
        res_a, _ = run_with(chase, tiny_config,
                            lambda: TriangelPrefetcher(mrb_blocks=32))
        res_b, _ = run_with(chase, tiny_config,
                            lambda: TriangelPrefetcher(mrb_blocks=0))
        assert res_a.temporal.metadata_reads <= \
            res_b.temporal.metadata_reads

    def test_rejects_bad_replacement(self):
        with pytest.raises(ValueError):
            TriangelPrefetcher(replacement="plru")
