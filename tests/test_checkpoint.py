"""Checkpoint subsystem: serializer, store, and save→restore identity.

The non-negotiable invariant (DESIGN.md "Checkpoint & resume"): a run
that snapshots at the warm-up boundary (or any later progress mark) and
restores into a fresh engine continues **bit-identically** — same
``SimResult``, same bus counters, same telemetry series — as the run
that never stopped.  These tests assert it for every registered
prefetcher, every replacement policy, single- and multi-core engines,
and the runner's resume/prewarm paths, plus corruption fallback.
"""

from __future__ import annotations

import dataclasses
import warnings

import numpy as np
import pytest

from repro.checkpoint import (CheckpointCorrupt, CheckpointStore, dump,
                              dumps_size, load, state_equal)
from repro.core.replacement import StoredEntry, make_stream_replacement
from repro.core.stream_entry import StreamEntry
from repro.memory.replacement import POLICIES, make_policy
from repro.runner import SimJob, SimRunner
from repro.runner.cache import ResultCache
from repro.runner.specs import _REGISTRY, spec
from repro.runner.traces import get_trace
from repro.sim.config import SystemConfig
from repro.sim.engine import Engine
from repro.sim.multicore import MulticoreResult, build_multicore
from repro.telemetry.config import TelemetryConfig

PREFETCHERS = sorted(_REGISTRY)


def small_engine(prefetcher: str, workload: str = "gap.pr",
                 n: int = 8000, warmup: float = 0.5,
                 telemetry=None) -> Engine:
    config = dataclasses.replace(
        SystemConfig().scaled_down(4).scaled(num_cores=1),
        warmup_fraction=warmup, telemetry=telemetry)
    trace = get_trace(workload, n, 42)
    return Engine([trace], config, l2_prefetchers=[spec(prefetcher).build])


# -- serializer ------------------------------------------------------------


def test_serializer_roundtrip(tmp_path):
    state = {
        "ints": [1, -2, 3],
        "mixed": [None, True, False, 1.5, "s"],
        "nested": {"a": {"b": [np.arange(6, dtype=np.int64)]}},
        "arr2d": np.zeros((3, 4), dtype=bool),
        "tuple": (1, 2),
    }
    path = tmp_path / "x.npz"
    dump(str(path), state, {"phase": "test"})
    meta, loaded = load(str(path))
    assert meta == {"phase": "test"}
    assert state_equal(state, loaded)
    # Tuples come back as lists — state_equal treats them as equal.
    assert loaded["tuple"] == [1, 2]
    assert dumps_size(state) > 0


def test_serializer_rejects_bad_trees(tmp_path):
    with pytest.raises(TypeError):
        dump(str(tmp_path / "a.npz"), {1: "non-string key"}, {})
    with pytest.raises(TypeError):
        dump(str(tmp_path / "b.npz"), {"__nd__": 0}, {})
    with pytest.raises(TypeError):
        dump(str(tmp_path / "c.npz"), {"obj": object()}, {})


def test_serializer_detects_corruption(tmp_path):
    path = tmp_path / "x.npz"
    dump(str(path), {"a": np.arange(100)}, {})
    raw = bytearray(path.read_bytes())
    raw[len(raw) // 2] ^= 0xFF
    path.write_bytes(bytes(raw))
    with pytest.raises(CheckpointCorrupt):
        load(str(path))


def test_serializer_detects_truncation(tmp_path):
    path = tmp_path / "x.npz"
    dump(str(path), {"a": np.arange(100)}, {})
    path.write_bytes(path.read_bytes()[:64])
    with pytest.raises(CheckpointCorrupt):
        load(str(path))


def test_state_equal_semantics():
    assert state_equal((1, 2), [1, 2])
    assert not state_equal(True, 1)          # bool is not int here
    assert not state_equal(np.arange(3), np.arange(3, dtype=np.int32))
    assert state_equal({"a": np.arange(3)}, {"a": np.arange(3)})
    assert not state_equal({"a": 1}, {"b": 1})


# -- store ----------------------------------------------------------------


def test_store_roundtrip_and_gc(tmp_path):
    store = CheckpointStore(tmp_path)
    store.put("k1", {"x": 1}, {"phase": "warmup"})
    store.put("k2", {"y": 2}, {"phase": "progress"})
    assert store.has("k1")
    assert store.get("missing") is None
    meta, state = store.get_with_meta("k1")
    assert meta["phase"] == "warmup" and state == {"x": 1}
    assert store.verify("k2")["phase"] == "progress"
    assert set(store.entries()) == {"k1", "k2"}
    dropped = store.gc(keep=1)
    assert len(dropped) == 1 and len(store.entries()) == 1


def test_store_corrupt_entry_degrades_to_miss(tmp_path):
    store = CheckpointStore(tmp_path)
    store.put("k", {"x": np.arange(50)}, {})
    path = store.path("k")
    path.write_bytes(b"not a zip archive at all")
    with pytest.warns(UserWarning, match="corrupt"):
        assert store.get("k") is None
    assert not path.exists()  # unlinked, so the next run re-simulates


def test_store_rejects_bad_keys(tmp_path):
    store = CheckpointStore(tmp_path)
    with pytest.raises(ValueError):
        store.path("../escape")
    with pytest.raises(ValueError):
        store.path("a/b")


# -- component round-trips -------------------------------------------------


@pytest.mark.parametrize("name", PREFETCHERS)
def test_prefetcher_state_roundtrip(name, tmp_path):
    """Mid-run prefetcher state survives self- and npz round-trips."""
    engine = small_engine(name)
    engine.run_warmup()
    snap = engine.state_dict()
    path = tmp_path / "snap.npz"
    dump(str(path), snap, {})
    _, loaded = load(str(path))
    assert state_equal(snap, loaded)

    fresh = small_engine(name)
    fresh.load_state(loaded)
    for pf, restored_pf in zip(engine.prefetchers, fresh.prefetchers):
        assert state_equal(pf.state_dict(), restored_pf.state_dict())


@pytest.mark.parametrize("name", PREFETCHERS)
def test_prefetcher_resume_bit_identity(name):
    """Restored engine finishes with the exact straight-run SimResult."""
    straight = small_engine(name).run().collect()[0]
    warm = small_engine(name)
    warm.run_warmup()
    resumed_engine = small_engine(name)
    resumed_engine.load_state(warm.state_dict())
    assert resumed_engine.run().collect()[0] == straight


@pytest.mark.parametrize("name", sorted(POLICIES))
def test_cache_policy_roundtrip(name):
    """Replacement policies continue identically after a round-trip."""
    sets, ways = 8, 4

    def drive(policy, start, steps):
        victims = []
        for i in range(start, start + steps):
            set_idx = i % sets
            policy.on_fill(set_idx, i % ways, blk=i * 7, pc=i % 13)
            if i % 3 == 0:
                policy.on_hit(set_idx, (i // 3) % ways)
            victims.append(policy.victim(set_idx, range(ways)))
        return victims

    a = make_policy(name, sets, ways)
    drive(a, 0, 200)
    b = make_policy(name, sets, ways)
    b.load_state(a.state_dict())
    assert state_equal(a.state_dict(), b.state_dict())
    assert drive(a, 200, 100) == drive(b, 200, 100)
    assert state_equal(a.state_dict(), b.state_dict())


@pytest.mark.parametrize("name", ["srrip", "tp-mockingjay"])
def test_stream_replacement_roundtrip(name):
    def drive(policy, pools, start, steps):
        victims = []
        for i in range(start, start + steps):
            set_idx = i % len(pools)
            pool = pools[set_idx]
            entry = StreamEntry(i * 5, 4, [i * 5 + 1], pc=i % 7)
            stored = StoredEntry(entry)
            policy.observe_correlation(set_idx, i, entry.trigger,
                                       entry.targets[0], entry.pc)
            policy.on_insert(set_idx, i, stored)
            pool.append(stored)
            if len(pool) > 4:
                victim = policy.victim(set_idx, i, pool)
                victims.append((victim.entry.trigger, victim.rrpv))
                pool.remove(victim)
            policy.on_access(set_idx, i, pool[0])
        return victims

    a = make_stream_replacement(name)
    pools_a = [[] for _ in range(4)]
    drive(a, pools_a, 0, 120)
    b = make_stream_replacement(name)
    b.load_state(a.state_dict())
    # Per-entry state (rrpv/pred_level) lives in StoredEntry: clone pools.
    pools_b = [[StoredEntry(s.entry.copy(), s.rrpv, s.pred_level,
                            s.inserted_clock) for s in pool]
               for pool in pools_a]
    assert state_equal(a.state_dict(), b.state_dict())
    assert drive(a, pools_a, 120, 80) == drive(b, pools_b, 120, 80)
    assert state_equal(a.state_dict(), b.state_dict())


# -- engine-level identity -------------------------------------------------


@pytest.mark.parametrize("workload", ["gap.pr", "gap.bfs", "06.mcf"])
@pytest.mark.parametrize("prefetcher", ["streamline", "triangel"])
def test_engine_resume_matrix(workload, prefetcher):
    """The acceptance matrix: ≥3 workloads × 2 prefetchers, all exact."""
    straight_engine = small_engine(prefetcher, workload)
    straight = straight_engine.run().collect()[0]
    events = straight_engine.bus.counts_flat()

    warm = small_engine(prefetcher, workload)
    warm.run_warmup()
    resumed_engine = small_engine(prefetcher, workload)
    resumed_engine.load_state(warm.state_dict())
    resumed = resumed_engine.run().collect()[0]
    assert resumed == straight
    # Bus conservation counters must match too, not just the SimResult.
    assert resumed_engine.bus.counts_flat() == events


def test_engine_mark_resume_bit_identity():
    """Resume from a mid-measured-region progress mark, not just warmup."""
    marks = []
    straight_engine = small_engine("streamline")
    straight_engine.set_mark_hook(1000, lambda e: marks.append(
        e.state_dict()))
    straight = straight_engine.run().collect()[0]
    assert len(marks) >= 2
    resumed_engine = small_engine("streamline")
    resumed_engine.load_state(marks[-1])
    assert resumed_engine.run().collect()[0] == straight


def test_multicore_resume_bit_identity():
    def build():
        config = dataclasses.replace(
            SystemConfig().scaled_down(4).scaled(num_cores=2),
            warmup_fraction=0.5)
        traces = [get_trace("gap.pr", 5000, 42),
                  get_trace("06.mcf", 5000, 42)]
        return build_multicore(traces, config,
                               l2_prefetchers=[spec("streamline").build])

    straight = MulticoreResult(cores=build().run().collect())
    warm = build()
    warm.run_warmup()
    resumed_engine = build()
    resumed_engine.load_state(warm.state_dict())
    assert MulticoreResult(cores=resumed_engine.run().collect()) \
        == straight


def test_telemetry_series_identical_across_resume():
    tel = TelemetryConfig()
    straight_engine = small_engine("streamline", telemetry=tel)
    straight_engine.run()
    straight_export = straight_engine.telemetry.export()
    straight = straight_engine.collect()[0]

    warm = small_engine("streamline", telemetry=tel)
    warm.run_warmup()
    resumed_engine = small_engine("streamline", telemetry=tel)
    resumed_engine.load_state(warm.state_dict())
    resumed_engine.run()
    assert resumed_engine.telemetry.export() == straight_export
    assert resumed_engine.collect()[0] == straight

    # A telemetry-off snapshot restores into a telemetry-on engine
    # (observers are bit-neutral, so warm-ups are shared across them).
    warm_off = small_engine("streamline")
    warm_off.run_warmup()
    cross = small_engine("streamline", telemetry=tel)
    cross.load_state(warm_off.state_dict())
    cross.run()
    assert cross.telemetry.export() == straight_export
    assert cross.collect()[0] == straight


def test_load_state_validates_shape():
    warm = small_engine("streamline")
    warm.run_warmup()
    snap = warm.state_dict()
    mismatched = small_engine("triangel")
    with pytest.raises(ValueError, match="prefetchers"):
        mismatched.load_state(snap)
    stale = small_engine("streamline")
    stale.run_warmup()
    with pytest.raises(RuntimeError, match="fresh"):
        stale.load_state(snap)


# -- runner integration ----------------------------------------------------


def run_config():
    return dataclasses.replace(
        SystemConfig().scaled_down(4), warmup_fraction=0.5)


def test_job_resume_and_overrides_bit_identity(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CKPT_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_CKPT", "1")

    def job(degree, resume):
        # Fixed-degree streamline so the override changes behaviour even
        # at this tiny scale (the stability controller would sit at
        # degree 1 for the whole short run).
        return SimJob.single(
            "gap.pr", 8000, run_config(),
            l2=[spec("streamline", stability_degree=False)],
            measure_overrides=(("degree", degree),), resume=resume)

    straight = {d: job(d, False).execute().single for d in (1, 4)}
    assert straight[1] != straight[4]  # the override really bites
    store = CheckpointStore(tmp_path)
    assert store.entries() == []  # resume=False never touches the store

    first = job(1, True).execute().single       # records the warm-up
    assert len(store.entries()) == 1
    second = job(4, True).execute().single      # restores it
    assert first == straight[1]
    assert second == straight[4]


def test_job_fingerprints():
    base = SimJob.single("gap.pr", 8000, run_config(), l2=["streamline"])
    j1 = dataclasses.replace(base, measure_overrides=(("degree", 1),))
    j4 = dataclasses.replace(base, measure_overrides=(("degree", 4),))
    # Overrides: distinct results, shared warm-up.
    assert j1.fingerprint() != j4.fingerprint()
    assert j1.warmup_fingerprint() == j4.warmup_fingerprint()
    # resume is pure execution strategy: same result identity.
    assert dataclasses.replace(j1, resume=True).fingerprint() \
        == j1.fingerprint()
    # Different workload/seed: different warm-up.
    other = SimJob.single("gap.bfs", 8000, run_config(),
                          l2=["streamline"])
    assert other.warmup_fingerprint() != base.warmup_fingerprint()
    assert dataclasses.replace(base, seed=7).warmup_fingerprint() \
        != base.warmup_fingerprint()


def test_job_progress_mark_resume(tmp_path, monkeypatch):
    """An interrupted job restarts from its last progress mark."""
    monkeypatch.setenv("REPRO_CKPT_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_CKPT", "1")
    monkeypatch.setenv("REPRO_CKPT_MARK", "1000")
    job = SimJob.single("gap.pr", 8000, run_config(), l2=["streamline"],
                        resume=True)
    straight = job.execute().single
    store = CheckpointStore(tmp_path)
    # Completion removed the progress entry; the warm-up one remains.
    assert [k for k in store.entries() if k.startswith("p-")] == []

    # Fake an interruption: plant a mid-run progress state, then rerun.
    marks = []
    engine = SimJob.single("gap.pr", 8000, run_config(),
                           l2=["streamline"])._build_engine()
    engine.set_mark_hook(1000, lambda e: marks.append(e.state_dict()))
    engine.run()
    store.put("p-" + job.fingerprint(), marks[-1],
              {"phase": "progress"})
    assert job.execute().single == straight
    assert [k for k in store.entries() if k.startswith("p-")] == []


def test_job_corrupt_checkpoint_falls_back(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CKPT_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_CKPT", "1")
    job = SimJob.single("gap.pr", 8000, run_config(), l2=["streamline"],
                        resume=True)
    straight = job.execute().single
    store = CheckpointStore(tmp_path)
    key = job.warmup_fingerprint()
    assert store.has(key)
    store.path(key).write_bytes(b"garbage")
    with pytest.warns(UserWarning, match="corrupt"):
        assert job.execute().single == straight
    assert store.has(key)  # re-recorded after the fallback re-simulation


def test_ckpt_disabled_skips_store(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CKPT_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_CKPT", "0")
    job = SimJob.single("gap.pr", 6000, run_config(), l2=["stride"],
                        resume=True)
    job.execute()
    assert CheckpointStore(tmp_path).entries() == []


def test_runner_prewarm_shares_warmup(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CKPT_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_CKPT", "1")
    jobs = [SimJob.single("gap.pr", 8000, run_config(),
                          l2=["streamline"],
                          measure_overrides=(("degree", d),),
                          resume=True)
            for d in (1, 2, 4)]
    runner = SimRunner(jobs=1, cache=ResultCache())
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # no corrupt/unusable fallbacks
        results = runner.run(jobs)
    assert len(CheckpointStore(tmp_path).entries()) == 1  # one warm-up
    straight = [dataclasses.replace(j, resume=False).execute().single
                for j in jobs]
    assert [r.single for r in results] == straight
