"""Unit tests for the set-associative cache model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.cache import Cache


def make_cache(size=4096, ways=4, latency=5, replacement="lru"):
    return Cache("T", size, ways, latency, replacement)


class TestGeometry:
    def test_sets_derived_from_size(self):
        c = make_cache(size=4096, ways=4)       # 4096/(64*4) = 16 sets
        assert c.num_sets == 16

    def test_rejects_non_pow2_sets(self):
        with pytest.raises(ValueError, match="power of two"):
            Cache("bad", 3 * 64 * 4, 4, 1)

    def test_set_mapping_uses_low_bits(self):
        c = make_cache()
        assert c.set_of(17) == 17 % c.num_sets


class TestLookupAndFill:
    def test_miss_then_hit(self):
        c = make_cache()
        assert not c.lookup(5, 0.0).hit
        c.fill(5, ready=0.0)
        assert c.lookup(5, 1.0).hit

    def test_hit_latency(self):
        c = make_cache(latency=7)
        c.fill(5, ready=0.0)
        assert c.lookup(5, 1.0).latency == 7

    def test_late_fill_adds_residual_latency(self):
        c = make_cache(latency=5)
        c.fill(5, ready=100.0)
        r = c.lookup(5, now=40.0)
        assert r.hit
        assert r.latency == 5 + 60.0

    def test_write_sets_dirty_and_eviction_reports_writeback(self):
        c = make_cache(size=64 * 2, ways=2)  # 1 set, 2 ways
        c.fill(0, 0.0)
        c.lookup(0, 0.0, is_write=True)
        c.fill(1, 0.0)
        evicted = c.fill(2, 0.0)
        assert evicted is not None and evicted.blk == 0 and evicted.dirty
        assert c.stats.writebacks == 1

    def test_eviction_follows_lru(self):
        c = make_cache(size=64 * 2, ways=2)
        c.fill(0, 0.0)
        c.fill(1, 0.0)
        c.lookup(0, 1.0)              # 1 becomes LRU
        evicted = c.fill(2, 0.0)
        assert evicted.blk == 1

    def test_refill_in_place_does_not_evict(self):
        c = make_cache(size=64 * 2, ways=2)
        c.fill(0, 0.0)
        c.fill(1, 0.0)
        assert c.fill(0, 0.0) is None

    def test_invalidate(self):
        c = make_cache()
        c.fill(9, 0.0)
        assert c.invalidate(9)
        assert not c.lookup(9, 0.0).hit
        assert not c.invalidate(9)


class TestPrefetchTracking:
    def test_first_touch_credits_prefetch_once(self):
        c = make_cache()
        c.fill(5, 0.0, prefetch=True, owner=3)
        r1 = c.lookup(5, 1.0)
        r2 = c.lookup(5, 2.0)
        assert r1.was_prefetched and r1.owner == 3
        assert not r2.was_prefetched
        assert c.stats.useful_prefetches == 1

    def test_late_prefetch_counted(self):
        c = make_cache()
        c.fill(5, ready=50.0, prefetch=True)
        c.lookup(5, now=10.0)
        assert c.stats.late_prefetch_hits == 1

    def test_evicted_line_carries_prefetch_state(self):
        c = make_cache(size=64 * 2, ways=2)
        c.fill(0, 0.0, prefetch=True, owner=7)
        c.fill(1, 0.0)
        evicted = c.fill(2, 0.0)
        assert evicted.prefetched and not evicted.pf_touched
        assert evicted.owner == 7


class TestPartitioning:
    def test_shrink_invalidates_ceded_ways(self):
        c = make_cache(size=64 * 4, ways=4)  # 1 set
        for blk in range(4):
            c.fill(blk, 0.0)
        dropped = c.set_data_ways(0, 2)
        assert dropped == 2
        assert c.stats.partition_invalidations == 2

    def test_lookup_ignores_ceded_ways(self):
        c = make_cache(size=64 * 4, ways=4)
        for blk in range(4):
            c.fill(blk, 0.0)
        c.set_data_ways(0, 2)
        hits = sum(c.lookup(blk, 0.0).hit for blk in range(4))
        assert hits == sum(1 for blk in range(2) if c.probe(blk))

    def test_zero_ways_bypasses_fill(self):
        c = make_cache(size=64 * 4, ways=4)
        c.set_data_ways(0, 0)
        assert c.fill(0, 0.0) is None
        assert not c.probe(0)

    def test_grow_restores_capacity(self):
        c = make_cache(size=64 * 4, ways=4)
        c.set_data_ways(0, 2)
        c.set_data_ways(0, 4)
        for blk in range(4):
            c.fill(blk, 0.0)
        assert all(c.probe(blk) for blk in range(4))

    def test_rejects_out_of_range(self):
        c = make_cache()
        with pytest.raises(ValueError):
            c.set_data_ways(0, 5)


class TestStats:
    def test_miss_rate(self):
        c = make_cache()
        c.lookup(1, 0.0)
        c.fill(1, 0.0)
        c.lookup(1, 0.0)
        assert c.stats.miss_rate == pytest.approx(0.5)

    def test_occupancy(self):
        c = make_cache(size=64 * 4, ways=4)
        assert c.occupancy() == 0.0
        c.fill(0, 0.0)
        assert c.occupancy() == pytest.approx(0.25)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=200), min_size=1,
                max_size=300))
def test_capacity_never_exceeded(blocks):
    """Property: valid lines never exceed ways per set."""
    c = make_cache(size=64 * 8, ways=2)  # 4 sets x 2 ways
    for blk in blocks:
        if not c.lookup(blk, 0.0).hit:
            c.fill(blk, 0.0)
    for set_idx in range(c.num_sets):
        valid = [l for l in c.lines[set_idx] if l.valid]
        assert len(valid) <= 2
        assert len({l.blk for l in valid}) == len(valid)  # no dup tags
