"""Tests for the pairwise metadata store (Triage/Triangel substrate)."""

import pytest

from repro.memory.metadata_store import PartitionController
from repro.prefetchers.pairwise import (PairwiseStore, TargetLUT,
                                        TrainingUnit)


def make_store(sets=64, **kwargs):
    ctl = PartitionController(None, max_bytes=sets * 8 * 64)
    initial_ways = kwargs.pop("initial_ways", 4)
    defaults = dict(entries_per_block=12, max_ways=8, mrb_blocks=0,
                    compressed=False)
    defaults.update(kwargs)
    store = PairwiseStore(sets, ctl, **defaults)
    store.resize(initial_ways)
    return store, ctl


class TestLUT:
    def test_encode_decode_roundtrip(self):
        lut = TargetLUT()
        slot, off = lut.encode(0x123456)
        assert lut.decode(slot, off) == 0x123456

    def test_slot_reuse_corrupts_old_entries(self):
        """The documented Triage accuracy loss: replaced LUT regions make
        stale entries decode into the new region."""
        lut = TargetLUT()
        slot, off = lut.encode(0x123456)
        # Exhaust all 1024 slots with fresh regions.
        for i in range(TargetLUT.SLOTS + 1):
            lut.encode((0x1000 + i) << TargetLUT.OFFSET_BITS)
        decoded = lut.decode(slot, off)
        assert decoded is not None and decoded != 0x123456
        assert lut.replacements > 0


class TestStore:
    def test_insert_lookup(self):
        store, _ = make_store()
        store.insert(100, 200)
        assert store.lookup(100) == 200

    def test_confidence_bit_protects_target(self):
        """Triage's update rule: first disagreement clears conf, the
        second replaces."""
        store, _ = make_store()
        store.insert(100, 200)
        store.insert(100, 200)   # conf = 1
        store.insert(100, 999)   # conf cleared, target kept
        assert store.lookup(100) == 200
        store.insert(100, 999)   # now replaced
        assert store.lookup(100) == 999

    def test_zero_ways_stores_nothing(self):
        store, _ = make_store()
        store.resize(0)
        store.insert(100, 200)
        assert store.lookup(100) is None

    def test_block_overflow_evicts(self):
        store, _ = make_store(sets=1, entries_per_block=2, initial_ways=1)
        # All triggers map to set 0 / way 0: third insert evicts.
        seen = []
        for t in range(3):
            store.insert(t, t + 1000)
        assert store.valid_entries() <= 2

    def test_compressed_store_roundtrip(self):
        store, _ = make_store(compressed=True, entries_per_block=16)
        store.insert(100, 12345)
        assert store.lookup(100) == 12345


class TestResize:
    def test_rearranged_entries_still_found(self):
        store, ctl = make_store(sets=64, initial_ways=8)
        triggers = list(range(0, 4000, 7))
        for t in triggers:
            store.insert(t, t + 1)
        store.resize(3)
        found = sum(store.lookup(t) == t + 1 for t in triggers)
        assert found > len(triggers) * 0.5

    def test_rearrangement_traffic_charged(self):
        store, ctl = make_store(sets=64, initial_ways=8)
        for t in range(0, 4000, 7):
            store.insert(t, t + 1)
        moved = store.resize(3)
        assert moved > 0
        assert ctl.traffic.rearrange_moves == moved

    def test_unrearranged_resize_drops_misplaced(self):
        store, ctl = make_store(sets=64, initial_ways=8)
        for t in range(0, 4000, 7):
            store.insert(t, t + 1)
        before = store.valid_entries()
        store.resize(3, rearrange=False)
        assert store.valid_entries() < before
        assert ctl.traffic.rearrange_moves == 0

    def test_resize_bounds(self):
        store, _ = make_store()
        with pytest.raises(ValueError):
            store.resize(9)


class TestMRB:
    def test_mrb_absorbs_repeated_reads(self):
        with_mrb, ctl_a = make_store(mrb_blocks=32)
        without, ctl_b = make_store(mrb_blocks=0)
        for store in (with_mrb, without):
            store.insert(100, 200)
        for store in (with_mrb, without):
            for _ in range(10):
                store.lookup(100)
        assert ctl_a.traffic.reads < ctl_b.traffic.reads

    def test_mrb_coalesces_writes(self):
        with_mrb, ctl_a = make_store(mrb_blocks=32)
        without, ctl_b = make_store(mrb_blocks=0)
        for store in (with_mrb, without):
            for i in range(10):
                store.insert(100, 200 + i)  # same block, changing target
        with_mrb.flush_mrb()
        assert ctl_a.traffic.writes < ctl_b.traffic.writes


class TestTrainingUnit:
    def test_returns_previous_history(self):
        tu = TrainingUnit(size=4, depth=2)
        assert tu.update(1, 10) == []
        assert tu.update(1, 11) == [10]
        assert tu.update(1, 12) == [11, 10]
        assert tu.update(1, 13) == [12, 11]  # depth capped

    def test_lru_eviction(self):
        tu = TrainingUnit(size=2)
        tu.update(1, 10)
        tu.update(2, 20)
        tu.update(1, 11)  # touch 1
        tu.update(3, 30)  # evicts 2
        assert tu.update(2, 21) == []  # 2 was forgotten
