"""Stats-conservation checks over the request pipeline and event bus.

Every demand access that misses a level must show up exactly once at
the level below, and the event-bus counters must agree with the
per-cache ``CacheStats`` counters maintained independently inside
``Cache``.  Any double-count or dropped-count bug in the generic
``CacheLevel`` chain breaks one of these identities.
"""

from repro.core.streamline import StreamlinePrefetcher
from repro.memory.cache import Cache
from repro.memory.dram import DRAM
from repro.memory.events import EV
from repro.memory.hierarchy import CoreHierarchy, SharedUncore
from repro.prefetchers.base import Prefetcher
from repro.prefetchers.stride import StridePrefetcher
from repro.sim.engine import Engine
from repro.sim.multicore import build_multicore

from conftest import chase_trace


def build(l1_kb=4, l2_kb=16, llc_kb=64):
    l1 = Cache("L1D", l1_kb * 1024, 4, 5)
    l2 = Cache("L2", l2_kb * 1024, 8, 10)
    llc = Cache("LLC", llc_kb * 1024, 16, 20, replacement="srrip")
    uncore = SharedUncore(llc, DRAM(channels=1, base_latency=100.0))
    return CoreHierarchy(0, l1, l2, uncore), uncore


class EveryOther(Prefetcher):
    """Prefetches the next block on every other training event."""

    name = "every-other"
    train_scope = "all_l2"

    def __init__(self):
        super().__init__()
        self._n = 0

    def train(self, pc, blk, hit, prefetch_hit, now):
        self._n += 1
        return [blk + 1] if self._n % 2 == 0 else []


def check_identities(bus, l1d, l2, llc, cores=(0,)):
    """The conservation identities every finished run must satisfy."""
    # Bus lookup counts vs. each cache's own hit/miss counters.
    assert bus.count(EV.LOOKUP_HIT, "l1d") == l1d.stats.hits
    assert bus.count(EV.LOOKUP_MISS, "l1d") == l1d.stats.misses
    assert bus.count(EV.LOOKUP_HIT, "l2") == l2.stats.hits
    assert bus.count(EV.LOOKUP_MISS, "l2") == l2.stats.misses
    assert bus.count(EV.LOOKUP_HIT, "llc") == llc.stats.hits
    assert bus.count(EV.LOOKUP_MISS, "llc") == llc.stats.misses
    # Level-to-level flow: every L1D demand miss descends to exactly one
    # L2 lookup (and completes exactly once), every L2 demand miss to
    # exactly one LLC demand access.
    assert l2.stats.accesses == l1d.stats.misses
    assert bus.count(EV.DEMAND_COMPLETE) == l2.stats.accesses
    assert bus.count(EV.ACCESS, "llc", origin="demand") == l2.stats.misses
    # Eviction and prefetch bookkeeping.
    assert bus.count(EV.EVICTION, "l1d") == l1d.stats.evictions
    assert bus.count(EV.EVICTION, "l2") == l2.stats.evictions
    assert bus.count(EV.EVICTION, "llc") == llc.stats.evictions
    assert bus.count(EV.FILL, "l1d", origin="prefetch") == \
        l1d.stats.prefetch_fills
    assert bus.count(EV.FILL, "l2", origin="prefetch") == \
        l2.stats.prefetch_fills
    assert bus.count(EV.PREFETCH_USEFUL, "l1d") == l1d.stats.useful_prefetches
    assert bus.count(EV.PREFETCH_USEFUL, "l2") == l2.stats.useful_prefetches


class TestHierarchyConservation:
    def test_demand_only(self):
        core, uncore = build(l1_kb=1, l2_kb=4, llc_kb=16)
        for i in range(5000):
            addr = (i * 7919) % 1024 * 64
            core.access(0x1, addr, is_write=(i % 13 == 0), now=float(i))
        check_identities(uncore.bus, core.l1d, core.l2, uncore.llc)
        assert core.l1d.stats.misses > 0  # the run exercised every level
        assert uncore.llc.stats.misses > 0

    def test_with_l2_prefetcher(self):
        core, uncore = build(l1_kb=1, l2_kb=4, llc_kb=16)
        pf = EveryOther()
        core.attach_l2_prefetcher(pf)
        for i in range(5000):
            addr = (i * 7919) % 1024 * 64
            core.access(0x1, addr, False, float(i))
        check_identities(uncore.bus, core.l1d, core.l2, uncore.llc)
        assert pf.stats.issued > 0
        assert uncore.bus.count(EV.PREFETCH_ISSUED) == pf.stats.issued
        assert uncore.bus.count(EV.PREFETCH_DROPPED) == pf.stats.dropped
        assert uncore.bus.count(EV.PREFETCH_USELESS) == \
            pf.stats.useless_evictions

    def test_metadata_events_counted(self):
        core, uncore = build()
        core.metadata_access(0.0)
        core.metadata_access(1.0, is_write=True)
        assert uncore.bus.count(EV.METADATA_READ) == 1
        assert uncore.bus.count(EV.METADATA_WRITE) == 1
        assert uncore.metadata_llc_accesses == 2


class TestEngineConservation:
    def test_single_core(self, tiny_config):
        """Post-warmup identities hold: the warm-up reset clears cache
        stats and bus counters at the same access boundary."""
        engine = Engine([chase_trace(n=6000)], tiny_config,
                        l1_prefetcher=StridePrefetcher,
                        l2_prefetchers=[StreamlinePrefetcher])
        results = engine.run().collect()
        core, uncore = engine.cores[0], engine.uncore
        check_identities(engine.bus, core.l1d, core.l2, uncore.llc)
        # The flat counters on the result are the same bus counters.
        assert results[0].events == engine.bus.counts_flat()
        assert results[0].events[
            f"{EV.LOOKUP_MISS}@l1d:demand"] == core.l1d.stats.misses

    def test_multicore(self, tiny_config):
        """With staggered per-core warm-up resets the global bus counts
        are not comparable, so conservation is checked unwarmed."""
        cfg = tiny_config.scaled(warmup_fraction=0.0)
        engine = build_multicore(
            [chase_trace("a", seed=1, n=4000),
             chase_trace("b", seed=2, n=4000)],
            cfg, l2_prefetchers=[StreamlinePrefetcher])
        engine.run().collect()
        bus = engine.bus
        for level, caches in (
                ("l1d", [c.l1d for c in engine.cores]),
                ("l2", [c.l2 for c in engine.cores]),
                ("llc", [engine.uncore.llc])):
            assert bus.count(EV.LOOKUP_HIT, level) == \
                sum(c.stats.hits for c in caches)
            assert bus.count(EV.LOOKUP_MISS, level) == \
                sum(c.stats.misses for c in caches)
            assert bus.count(EV.EVICTION, level) == \
                sum(c.stats.evictions for c in caches)
        assert bus.count(EV.DEMAND_COMPLETE) == \
            sum(c.l2.stats.accesses for c in engine.cores)
        assert bus.count(EV.ACCESS, "llc", origin="demand") == \
            sum(c.l2.stats.misses for c in engine.cores)

    def test_uncore_reset_clears_bus_counts(self):
        core, uncore = build()
        core.access(0x1, 0x1000, False, 0.0)
        assert uncore.bus.counts
        uncore.reset_stats()
        assert not uncore.bus.counts
