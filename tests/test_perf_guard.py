"""The CI perf guard: single-run baseline compare and trend mode.

Trend mode's contract is the interesting part: one noisy CI run must
never fail the job, while a sustained regression (the injected 40%
slowdown below) must — the verdict is the median of the trailing
window, not the latest sample.
"""

from __future__ import annotations

import importlib.util
import json
import pathlib

import pytest

_GUARD_PATH = pathlib.Path(__file__).resolve().parent.parent \
    / "benchmarks" / "perf_guard.py"


def _load_guard():
    spec = importlib.util.spec_from_file_location(
        "perf_guard_under_test", _GUARD_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture()
def guard(tmp_path, monkeypatch):
    pg = _load_guard()
    monkeypatch.setattr(pg, "RESULTS_DIR", tmp_path / "results")
    monkeypatch.setattr(pg, "BASELINE", tmp_path / "perf_baseline.json")
    monkeypatch.delenv("REPRO_PERF_GUARD", raising=False)
    monkeypatch.delenv("REPRO_PERF_SCALE", raising=False)
    pg.RESULTS_DIR.mkdir()
    pg.BASELINE.write_text(json.dumps(
        {"benches": {"fig9": {"wall_seconds": 1.0}}}))
    return pg


def _record(pg, wall: float) -> None:
    (pg.RESULTS_DIR / "fig9.json").write_text(
        json.dumps({"wall_seconds": wall}))


def _history(pg, hist: pathlib.Path, wall: float) -> int:
    _record(pg, wall)
    return pg.main(["fig9", "--history", "--history-file", str(hist)])


class TestSingleRunMode:
    def test_regression_fails_and_ok_passes(self, guard):
        _record(guard, 1.2)
        assert guard.main(["fig9"]) == 0
        _record(guard, 1.4)  # past the 1.30 factor
        assert guard.main(["fig9"]) == 1

    def test_skip_knob(self, guard, monkeypatch):
        monkeypatch.setenv("REPRO_PERF_GUARD", "0")
        _record(guard, 99.0)
        assert guard.main(["fig9"]) == 0


class TestTrendMode:
    def test_appends_and_defers_until_window_fills(self, guard,
                                                   tmp_path, capsys):
        hist = tmp_path / "perf_history.jsonl"
        for i in range(3):
            assert _history(guard, hist, 1.0) == 0
        lines = hist.read_text().splitlines()
        assert len(lines) == 3
        record = json.loads(lines[0])
        assert record["exp_id"] == "fig9"
        assert record["wall_seconds"] == 1.0
        assert record["ts"] > 0
        assert "deferred" in capsys.readouterr().out

    def test_single_noisy_run_is_tolerated(self, guard, tmp_path):
        hist = tmp_path / "perf_history.jsonl"
        for _ in range(4):
            assert _history(guard, hist, 1.0) == 0
        # The same 2x sample fails single-run mode but not the trend:
        # the median of [1.0, 1.0, 1.0, 1.0, 2.0] is healthy.
        _record(guard, 2.0)
        assert guard.main(["fig9"]) == 1
        assert _history(guard, hist, 2.0) == 0

    def test_sustained_regression_is_flagged(self, guard, tmp_path,
                                             capsys):
        hist = tmp_path / "perf_history.jsonl"
        # An injected 40% regression, persisting across a full window.
        codes = [_history(guard, hist, 1.4) for _ in range(5)]
        assert codes[:4] == [0, 0, 0, 0]  # deferred while filling
        assert codes[4] == 1
        assert "sustained regression" in capsys.readouterr().out

    def test_recovery_clears_the_verdict(self, guard, tmp_path):
        hist = tmp_path / "perf_history.jsonl"
        for _ in range(5):
            _history(guard, hist, 1.4)
        # Three healthy runs flip the median of the trailing 5 back.
        assert _history(guard, hist, 1.0) == 1
        assert _history(guard, hist, 1.0) == 1
        assert _history(guard, hist, 1.0) == 0

    def test_malformed_history_lines_are_skipped(self, guard, tmp_path):
        hist = tmp_path / "perf_history.jsonl"
        hist.write_text('not json\n{"exp_id": "fig9"}\n')
        for _ in range(4):
            assert _history(guard, hist, 1.0) == 0
        assert _history(guard, hist, 1.0) == 0  # window of 5 clean rows

    def test_no_baseline_still_appends(self, guard, tmp_path):
        guard.BASELINE.write_text(json.dumps({"benches": {}}))
        hist = tmp_path / "perf_history.jsonl"
        assert _history(guard, hist, 1.0) == 0
        assert len(hist.read_text().splitlines()) == 1

    def test_window_flag(self, guard, tmp_path):
        hist = tmp_path / "perf_history.jsonl"
        _record(guard, 1.4)
        assert guard.main(["fig9", "--history", "--history-file",
                           str(hist), "--window", "1"]) == 1
