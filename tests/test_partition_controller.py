"""Tests for the LLC PartitionController (way/set/hybrid + striping)."""

import pytest

from repro.memory.cache import Cache
from repro.memory.metadata_store import (MetadataTraffic,
                                         PartitionController)


def make_llc(kb=64):
    return Cache("LLC", kb * 1024, 16, 20)


class TestWayPartition:
    def test_cedes_ways_everywhere(self):
        llc = make_llc()
        ctl = PartitionController(llc, 1 << 20)
        ctl.apply_way_partition(4)
        assert all(llc.data_ways(s) == 12 for s in range(llc.num_sets))
        assert ctl.current_bytes == 4 * llc.num_sets * 64

    def test_shrink_reports_invalidations(self):
        llc = make_llc()
        for blk in range(16):  # fill set 0
            llc.fill(blk * llc.num_sets, 0.0)
        ctl = PartitionController(llc, 1 << 20)
        dropped = ctl.apply_way_partition(8)
        assert dropped == 8

    def test_dedicated_store_no_llc(self):
        ctl = PartitionController(None, 1 << 20)
        assert ctl.apply_way_partition(8) == 0


class TestSetPartition:
    def test_every_other_set(self):
        llc = make_llc()
        ctl = PartitionController(llc, 1 << 20)
        ctl.apply_set_partition(2, meta_ways=8)
        for s in range(llc.num_sets):
            expected = 8 if s % 2 == 0 else 16
            assert llc.data_ways(s) == expected

    def test_zero_size_keeps_permanent(self):
        llc = make_llc()
        ctl = PartitionController(llc, 1 << 20)
        ctl.apply_set_partition(0, meta_ways=8, permanent_every=8)
        ceded = [s for s in range(llc.num_sets) if llc.data_ways(s) < 16]
        assert ceded == [s for s in range(llc.num_sets) if s % 8 == 0]

    def test_hybrid_uses_fewer_ways(self):
        llc = make_llc()
        ctl = PartitionController(llc, 1 << 20)
        ctl.apply_hybrid_partition(2, meta_ways=4)
        assert llc.data_ways(0) == 12
        assert llc.data_ways(1) == 16


class TestStriping:
    def test_stripes_disjoint(self):
        llc = make_llc()
        a = PartitionController(llc, 1 << 20, stripe_offset=0,
                                stripe_step=2)
        b = PartitionController(llc, 1 << 20, stripe_offset=1,
                                stripe_step=2)
        a.apply_way_partition(8)
        b.apply_way_partition(4)
        for s in range(llc.num_sets):
            assert llc.data_ways(s) == (8 if s % 2 == 0 else 12)

    def test_own_sets(self):
        llc = make_llc()
        ctl = PartitionController(llc, 1 << 20, stripe_offset=1,
                                  stripe_step=4)
        assert ctl.own_sets == llc.num_sets // 4

    def test_invalid_stripe_rejected(self):
        with pytest.raises(ValueError):
            PartitionController(None, 1, stripe_offset=2, stripe_step=2)
        with pytest.raises(ValueError):
            PartitionController(None, 1, stripe_step=0)


class TestTraffic:
    def test_accounting_arithmetic(self):
        t = MetadataTraffic(reads=3, writes=2, rearrange_moves=4)
        assert t.total_accesses == 3 + 2 + 8
        assert t.bytes == 64 * 13

    def test_record_helpers(self):
        ctl = PartitionController(None, 1)
        ctl.record_read()
        ctl.record_write(2)
        ctl.record_rearrangement(5)
        assert ctl.traffic.reads == 1
        assert ctl.traffic.writes == 2
        assert ctl.traffic.rearrange_moves == 5
