"""Representative sampling: clustering determinism, plan persistence,
windowed execution, warm-up sharing, error bounds, and knob hygiene.

The non-negotiable invariant mirrors the fastpath/serve subsystems:
with ``REPRO_SAMPLING`` off (the default everywhere but fig9s), nothing
in this package may change what any experiment computes — full jobs are
untouched by the knob, and sampled (windowed) jobs key their own cache
entries via ``SimJob.window``.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.experiments.common import experiment_config
from repro.runner import SimJob, SimRunner, execute_job, spec
from repro.sampling import (DEFAULT_ERROR_BOUNDS, FEATURE_NAMES,
                            PlanStore, build_plan, extract_features,
                            get_plan, kmeans, pick_representatives,
                            sampled_jobs, sampling_dir, sampling_enabled,
                            sampling_k, validate_sampling)
from repro.sampling.plan import plan_key

CFG = experiment_config()
STRIDE = spec("stride")


# -- clustering ----------------------------------------------------------------

class TestCluster:
    def test_kmeans_deterministic(self):
        rng = np.random.default_rng(7)
        pts = rng.normal(size=(40, 5))
        l1, c1 = kmeans(pts, 4, seed=11)
        l2, c2 = kmeans(pts, 4, seed=11)
        assert np.array_equal(l1, l2) and np.allclose(c1, c2)
        l3, _ = kmeans(pts, 4, seed=12)
        assert len(l3) == 40  # different seed still clusters everything

    def test_kmeans_separates_obvious_clusters(self):
        pts = np.concatenate([np.zeros((10, 3)), np.ones((10, 3)) * 9])
        labels, _ = kmeans(pts, 2, seed=1)
        assert len(set(labels[:10].tolist())) == 1
        assert len(set(labels[10:].tolist())) == 1
        assert labels[0] != labels[-1]

    def test_picks_weighted_and_sorted(self):
        rng = np.random.default_rng(3)
        pts = rng.normal(size=(30, 4))
        starts = np.arange(30) * 1000
        picks = pick_representatives(pts, starts, 5, seed=5)
        assert picks == pick_representatives(pts, starts, 5, seed=5)
        assert abs(sum(p.weight for p in picks) - 1.0) < 1e-9
        assert [p.start for p in picks] == sorted(p.start for p in picks)

    def test_uniform_features_still_yield_k_stratified_picks(self):
        # One degenerate cluster must not collapse to one interval:
        # picks are stratified over time to average simulation-state
        # drift the features cannot see.
        pts = np.zeros((24, 4))
        starts = np.arange(24) * 500
        picks = pick_representatives(pts, starts, 6, seed=2)
        assert len(picks) == 6
        assert len({p.start for p in picks}) == 6
        spread = max(p.start for p in picks) - min(p.start for p in picks)
        assert spread > 24 * 500 // 2
        assert all(abs(p.weight - 1 / 6) < 1e-9 for p in picks)


# -- features ------------------------------------------------------------------

class TestFeatures:
    def test_deterministic_and_shaped(self):
        a = extract_features("gap.pr", 6000, 500)
        b = extract_features("gap.pr", 6000, 500)
        assert np.array_equal(a.matrix, b.matrix)
        assert np.array_equal(a.starts, b.starts)
        assert a.matrix.shape == (12, len(FEATURE_NAMES))
        assert np.isfinite(a.matrix).all()

    def test_rejects_bad_intervals(self):
        with pytest.raises(ValueError):
            extract_features("gap.pr", 1000, 1)
        with pytest.raises(ValueError):
            extract_features("gap.pr", 100, 500)


# -- plans ---------------------------------------------------------------------

class TestPlanStore:
    def test_round_trip(self, tmp_path):
        store = PlanStore(tmp_path)
        plan = build_plan("gap.pr", 12000, interval=1000, k=3)
        store.put(plan)
        back = store.get(plan.key)
        assert back is not None
        assert back.to_dict() == plan.to_dict()
        assert back.digest() == plan.digest()

    def test_corruption_evicts_to_miss(self, tmp_path):
        store = PlanStore(tmp_path)
        plan = build_plan("gap.pr", 12000, interval=1000, k=3)
        path = store.put(plan)
        record = json.loads(path.read_text())
        record["payload"]["representatives"][0]["start"] += 1000
        path.write_text(json.dumps(record))
        with pytest.warns(UserWarning, match="corrupt"):
            assert store.get(plan.key) is None
        assert not path.exists()  # evicted, next get_plan rebuilds

    def test_get_plan_builds_then_restores(self, tmp_path):
        store = PlanStore(tmp_path)
        plan = get_plan("gap.pr", 12000, interval=1000, k=3, store=store)
        assert store.has(plan.key)
        again = get_plan("gap.pr", 12000, interval=1000, k=3,
                         store=store)
        assert again.digest() == plan.digest()

    def test_plans_deterministic(self):
        p1 = build_plan("06.mcf", 12000, interval=1000, k=4)
        p2 = build_plan("06.mcf", 12000, interval=1000, k=4)
        assert p1.digest() == p2.digest()
        assert p1.error_bounds == DEFAULT_ERROR_BOUNDS
        assert p1.key == plan_key("06.mcf", 12000, p1.seed, 1000, 4)

    def test_representatives_in_measured_region(self):
        plan = build_plan("gap.pr", 12000, interval=1000, k=4)
        for rep in plan.representatives:
            assert plan.measured_from <= rep.start <= plan.n - plan.interval


# -- windowed jobs -------------------------------------------------------------

class TestWindowedJobs:
    def test_window_validation(self):
        with pytest.raises(ValueError):
            SimJob.single("gap.pr", 4000, CFG, window=(100, 50, 2000))
        with pytest.raises(ValueError):
            SimJob.single("gap.pr", 4000, CFG, window=(0, 1000, 5000))

    def test_window_enters_fingerprint(self):
        base = SimJob.single("gap.pr", 8000, CFG, l1=STRIDE)
        win = SimJob.single("gap.pr", 8000, CFG, l1=STRIDE,
                            window=(2000, 3000, 5000))
        win2 = SimJob.single("gap.pr", 8000, CFG, l1=STRIDE,
                             window=(2000, 3000, 6000))
        assert base.fingerprint() != win.fingerprint()
        assert win.fingerprint() != win2.fingerprint()

    def test_windowed_job_measures_only_the_interval(self):
        job = SimJob.single("gap.pr", 8000, CFG, l1=STRIDE,
                            window=(2000, 3000, 5000),
                            probes=("sampling",))
        res = execute_job(job)
        assert res.single.accesses == 2000  # [warm, stop)
        payload = res.probes["sampling"]
        assert payload["windows"] == [[2000, 5000]]
        assert payload["warmups"] == [1000]
        assert payload["simulated"] == [3000]

    @pytest.mark.parametrize("workload", ["gap.pr", "06.mcf",
                                          "06.omnetpp"])
    @pytest.mark.parametrize("l2", ["triangel", "streamline"])
    def test_knob_cannot_change_full_jobs(self, workload, l2,
                                          monkeypatch):
        """REPRO_SAMPLING is an experiment-selection knob, never an
        execution knob: a full job is bit-identical either way."""
        job = SimJob.single(workload, 2500, CFG, l1=STRIDE,
                            l2=(spec(l2),))
        monkeypatch.setenv("REPRO_SAMPLING", "0")
        off = execute_job(job).single
        monkeypatch.setenv("REPRO_SAMPLING", "1")
        on = execute_job(job).single
        assert off == on


# -- shared warm-up ------------------------------------------------------------

class TestWarmupSharing:
    def test_sweep_arms_share_window_warmup(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CKPT", "1")
        monkeypatch.setenv("REPRO_CKPT_DIR", str(tmp_path))
        from repro.checkpoint.store import get_store
        window = (1000, 3000, 5000)

        def arm(degree, resume):
            # Fixed-degree streamline so the override changes behaviour
            # at this scale (mirrors the checkpoint suite).
            return SimJob.single(
                "gap.pr", 8000, CFG, l1=STRIDE,
                l2=[spec("streamline", stability_degree=False)],
                window=window, resume=resume,
                measure_overrides=(("degree", degree),))

        arms = [arm(1, True), arm(4, True)]
        fps = {job.warmup_fingerprint() for job in arms}
        assert len(fps) == 1  # measure sweeps share the warm-up
        straight = [execute_job(arm(d, False)).single for d in (1, 4)]
        results = SimRunner(jobs=1).run(arms)
        assert get_store().has(arms[0].warmup_fingerprint())
        for got, want in zip(results, straight):
            assert got.single == want  # restore is bit-identical
        assert straight[0] != straight[1]  # the sweep actually swept


# -- estimates vs full runs ----------------------------------------------------

class TestEstimateAccuracy:
    def test_estimate_within_declared_bounds(self, tmp_path):
        rows = validate_sampling(
            ["gap.pr"], 24000, CFG, {"baseline": ()}, l1=STRIDE,
            store=PlanStore(tmp_path), runner=SimRunner())
        assert rows, "validation produced no comparisons"
        for row in rows:
            assert row.ok, (row.metric, row.rel_error, row.bound)

    def test_sampled_jobs_match_plan(self):
        plan = build_plan("gap.pr", 24000, interval=2000, k=4)
        jobs = sampled_jobs(plan, CFG, l1=STRIDE)
        assert len(jobs) == len(plan.representatives)
        for job, rep in zip(jobs, plan.representatives):
            start, warm, stop = job.window
            assert warm == rep.start and stop == rep.start + plan.interval
            assert start == max(0, rep.start - plan.warmup)
            assert job.resume


# -- knobs ---------------------------------------------------------------------

class TestKnobs:
    def test_default_off(self):
        # conftest pins REPRO_SAMPLING=0: even sampling-flavoured
        # callers (fig9s passes default=True) resolve to off.
        assert sampling_enabled() is False
        assert sampling_enabled(default=True) is False

    def test_tristate_validation_names_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_SAMPLING", "banana")
        with pytest.raises(ValueError, match="REPRO_SAMPLING"):
            sampling_enabled()
        monkeypatch.setenv("REPRO_SAMPLING", "auto")
        assert sampling_enabled(default=True) is True

    def test_k_validation_names_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_SAMPLING_K", "0")
        with pytest.raises(ValueError, match="REPRO_SAMPLING_K"):
            sampling_k()
        monkeypatch.setenv("REPRO_SAMPLING_K", "junk")
        with pytest.raises(ValueError, match="REPRO_SAMPLING_K"):
            sampling_k()
        monkeypatch.setenv("REPRO_SAMPLING_K", "5")
        assert sampling_k() == 5
        monkeypatch.delenv("REPRO_SAMPLING_K")
        assert sampling_k(7) == 7

    def test_dir_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SAMPLING_DIR", str(tmp_path))
        assert sampling_dir() == tmp_path
        assert PlanStore().directory == tmp_path


# -- fig9s ---------------------------------------------------------------------

class TestFig9s:
    def test_disabled_delegates_to_full_fig9(self):
        from repro.experiments import fig9, fig9s
        wl = ["gap.pr", "06.lbm"]
        sampled = fig9s.run(n=4000, workloads=wl)
        full = fig9.run(n=4000, workloads=wl)
        assert sampled.name == "fig9s"
        assert sampled.headers == full.headers
        assert sampled.rows == full.rows
        assert "REPRO_SAMPLING=0" in sampled.notes
