"""Tests for the timing-proxy core model and the single-core engine."""

import pytest

from repro.prefetchers.stride import StridePrefetcher
from repro.sim.config import SystemConfig
from repro.sim.engine import CoreModel, run_single
from repro.sim.trace import TraceBuilder

from conftest import chase_trace


def stream_trace(n=2000, stride=64):
    b = TraceBuilder("stream")
    for i in range(n):
        b.add(0x400, 0x10000000 + i * stride, gap=2)
    return b.build()


class TestCoreModel:
    def cfg(self, **kw):
        return SystemConfig().scaled(**kw) if kw else SystemConfig()

    def test_advance_throughput(self):
        m = CoreModel(self.cfg())
        m.advance(5)  # 6 instructions at width 6 = 1 cycle
        assert m.clock == pytest.approx(1.0)
        assert m.instrs == 6

    def test_mlp_limits_overlap(self):
        m = CoreModel(self.cfg(mlp=2))
        for _ in range(3):
            issue = m.issue_time(False)
            m.complete_access(issue, 100.0, False)
        # Third load had to wait for the first to complete.
        assert m.clock >= 100.0

    def test_independent_loads_overlap(self):
        m = CoreModel(self.cfg(mlp=16))
        for _ in range(4):
            m.advance(0)
            issue = m.issue_time(False)
            m.complete_access(issue, 100.0, False)
        m.drain()
        assert m.clock < 200.0  # overlapped, not 400

    def test_dep_loads_serialize(self):
        m = CoreModel(self.cfg(mlp=16))
        for _ in range(4):
            m.advance(0)
            issue = m.issue_time(True)
            m.complete_access(issue, 100.0, False)
        m.drain()
        assert m.clock >= 400.0  # fully serial chain

    def test_stores_do_not_block(self):
        m = CoreModel(self.cfg(mlp=1))
        for _ in range(10):
            issue = m.issue_time(False)
            m.complete_access(issue, 500.0, True)
        assert m.clock < 10.0

    def test_rob_backpressure(self):
        cfg = self.cfg(rob_size=8, mlp=64)
        m = CoreModel(cfg)
        m.advance(0)
        m.complete_access(m.issue_time(False), 1000.0, False)
        # Dispatch far more than the ROB can hold past the stalled load.
        for _ in range(5):
            m.advance(5)
        assert m.clock >= 1000.0

    def test_drain_waits_for_all(self):
        m = CoreModel(self.cfg())
        m.complete_access(0.0, 123.0, False)
        assert m.drain() >= 123.0


class TestRunSingle:
    def test_deterministic(self, tiny_config, chase):
        a = run_single(chase, tiny_config)
        b = run_single(chase, tiny_config)
        assert a.cycles == b.cycles
        assert a.ipc == b.ipc

    def test_ipc_positive_and_bounded(self, tiny_config, chase):
        r = run_single(chase, tiny_config)
        assert 0 < r.ipc <= tiny_config.commit_width

    def test_stride_prefetcher_speeds_up_stream(self, tiny_config):
        t = stream_trace(stride=256)  # 4-block stride: every access misses
        base = run_single(t, tiny_config)
        pf = run_single(t, tiny_config, l1_prefetcher=StridePrefetcher)
        assert pf.ipc > base.ipc
        assert pf.prefetchers[0].useful > 0

    def test_stride_prefetcher_useless_on_chase(self, tiny_config, chase):
        r = run_single(chase, tiny_config,
                       l1_prefetcher=StridePrefetcher)
        assert r.prefetchers[0].issued == 0

    def test_warmup_excluded_from_stats(self, tiny_config, chase):
        r = run_single(chase, tiny_config)
        warm = int(len(chase) * tiny_config.warmup_fraction)
        assert r.accesses == len(chase) - warm
        assert r.instructions < chase.instructions

    def test_multicore_config_coerced_to_one_core(self, chase):
        cfg = SystemConfig(num_cores=4).scaled_down(8)
        r = run_single(chase, cfg)
        assert r.ipc > 0

    def test_result_fields_populated(self, tiny_config, chase):
        r = run_single(chase, tiny_config)
        assert r.workload == chase.name
        assert r.cycles > 0
        assert 0 <= r.l1d_miss_rate <= 1
        assert r.llc_mpki >= 0
        assert r.uncovered_misses > 0  # chase misses a lot


class TestDepTiming:
    def test_dep_chase_slower_than_independent(self, tiny_config):
        dep = chase_trace(dep=True)
        indep = chase_trace(dep=False)
        r_dep = run_single(dep, tiny_config)
        r_ind = run_single(indep, tiny_config)
        assert r_dep.ipc < r_ind.ipc
