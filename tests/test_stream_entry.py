"""Unit tests for stream-based metadata entries."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.stream_entry import (ENTRIES_PER_BLOCK, StreamEntry,
                                     correlations_per_block)


class TestPacking:
    def test_paper_packing_arithmetic(self):
        # Figure 12a: lengths 2/3/5 hold 14/15/15; 4/8/16 hold 16.
        assert correlations_per_block(2) == 14
        assert correlations_per_block(3) == 15
        assert correlations_per_block(4) == 16
        assert correlations_per_block(5) == 15
        assert correlations_per_block(8) == 16
        assert correlations_per_block(16) == 16

    def test_length_four_beats_pairwise_by_a_third(self):
        # The paper's headline: 16 vs 12 correlations per block = +33%.
        pairwise = 12
        assert correlations_per_block(4) / pairwise == pytest.approx(4 / 3)

    def test_unsupported_length_rejected(self):
        with pytest.raises(ValueError, match="unsupported"):
            correlations_per_block(7)


class TestStreamEntry:
    def test_append_until_full(self):
        e = StreamEntry(10, 4)
        for t in (11, 12, 13, 14):
            e.append(t)
        assert e.full
        with pytest.raises(ValueError):
            e.append(15)

    def test_addresses_and_last(self):
        e = StreamEntry(1, 4, [2, 3])
        assert e.addresses == [1, 2, 3]
        assert e.last == 3
        assert StreamEntry(9, 4).last == 9

    def test_contains_and_position(self):
        e = StreamEntry(1, 4, [2, 3, 4, 5])
        assert e.contains(1) and e.contains(5)
        assert not e.contains(6)
        assert e.position_of(1) == 0
        assert e.position_of(4) == 3
        assert e.position_of(99) == -1

    def test_successors_after(self):
        e = StreamEntry(1, 4, [2, 3, 4, 5])
        assert e.successors_after(1) == [2, 3, 4, 5]
        assert e.successors_after(3) == [4, 5]
        assert e.successors_after(5) == []
        assert e.successors_after(42) == []

    def test_correlations_counts_targets(self):
        assert StreamEntry(1, 4, [2, 3]).correlations == 2

    def test_too_many_targets_rejected(self):
        with pytest.raises(ValueError):
            StreamEntry(1, 2, [2, 3, 4])

    def test_bad_length_rejected(self):
        with pytest.raises(ValueError):
            StreamEntry(1, 0)

    def test_copy_is_independent(self):
        e = StreamEntry(1, 4, [2], pc=7)
        c = e.copy()
        c.append(3)
        assert e.targets == [2]
        assert c.pc == 7

    def test_hashed_trigger_and_partial_tag_ranges(self):
        e = StreamEntry(0xDEADBEEF, 4)
        assert 0 <= e.hashed_trigger < 1024
        assert 0 <= e.partial_tag < 64


@given(st.integers(min_value=0, max_value=2**30),
       st.lists(st.integers(min_value=0, max_value=2**30), min_size=0,
                max_size=4))
def test_successors_property(trigger, targets):
    """For any address in the entry, successors are the exact suffix."""
    e = StreamEntry(trigger, 4, targets)
    addrs = e.addresses
    for i, a in enumerate(addrs):
        # With duplicates, position_of finds the first occurrence.
        first = addrs.index(a)
        assert e.successors_after(a) == addrs[first + 1:]
