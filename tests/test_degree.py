"""Tests for stability-based degree control (Section IV-E6)."""

import pytest

from repro.core.degree import (FixedDegreeController,
                               StabilityDegreeController)
from repro.core.training_unit import PCEntry


class TestThresholds:
    def test_paper_thresholds_at_paper_epoch(self):
        c = StabilityDegreeController(epoch=1024)
        assert c.degree_for(0) == 4
        assert c.degree_for(399) == 4
        assert c.degree_for(400) == 3
        assert c.degree_for(599) == 3
        assert c.degree_for(600) == 2
        assert c.degree_for(799) == 2
        assert c.degree_for(800) == 1
        assert c.degree_for(1024) == 1

    def test_thresholds_scale_with_epoch(self):
        c = StabilityDegreeController(epoch=512)
        assert c.degree_for(199) == 4    # 400 * 512/1024 = 200
        assert c.degree_for(200) == 3

    def test_max_degree_caps(self):
        c = StabilityDegreeController(max_degree=2)
        assert c.degree_for(0) == 2

    def test_stable_pc_hits_buffer_three_quarters(self):
        """The paper's motivating arithmetic: a stable stream-length-4 PC
        inserts once per 4 accesses = 256/1024 < 400 -> degree 4."""
        c = StabilityDegreeController(epoch=1024)
        assert c.degree_for(1024 // 4) == 4


class TestEpoching:
    def test_degree_updates_at_epoch_boundary(self):
        c = StabilityDegreeController(epoch=10)
        st = PCEntry(1)
        st.epoch_insertions = 9   # very unstable for a 10-access epoch
        for _ in range(9):
            assert c.on_access(st) == 1  # initial degree
        assert c.on_access(st) == 1      # boundary: recomputed -> 1
        assert st.epoch_insertions == 0  # counters reset

    def test_stable_pc_reaches_degree_four(self):
        c = StabilityDegreeController(epoch=8)
        st = PCEntry(1)
        for i in range(8):
            if i % 4 == 0:
                st.epoch_insertions += 1
            c.on_access(st)
        assert st.degree == 4

    def test_rejects_bad_epoch(self):
        with pytest.raises(ValueError):
            StabilityDegreeController(epoch=0)


class TestFixed:
    def test_constant(self):
        c = FixedDegreeController(3)
        st = PCEntry(1)
        assert all(c.on_access(st) == 3 for _ in range(5))

    def test_rejects_bad_degree(self):
        with pytest.raises(ValueError):
            FixedDegreeController(0)
