"""Tests for the results-report assembler."""

import pathlib

from repro.experiments.report import ORDER, TITLES, assemble, collect, main


def test_order_covers_all_experiments():
    from repro.experiments import ALL_EXPERIMENTS
    assert set(ORDER) == set(ALL_EXPERIMENTS)
    assert set(TITLES) == set(ORDER)


def test_assemble_orders_and_flags_missing():
    report = assemble({"fig9": "TABLE9", "table1": "TABLE1"})
    assert report.index("Table I") < report.index("Figure 9")
    assert "TABLE1" in report and "TABLE9" in report
    assert "Missing" in report


def test_assemble_includes_unknown_extras():
    report = assemble({"custom": "X"})
    assert "## custom" in report


def test_collect_and_main(tmp_path):
    results = tmp_path / "results"
    results.mkdir()
    (results / "fig9.txt").write_text("hello fig9")
    out = tmp_path / "report.md"
    assert main([str(results), str(out)]) == 0
    assert "hello fig9" in out.read_text()


def test_main_missing_dir(tmp_path):
    assert main([str(tmp_path / "nope"), str(tmp_path / "r.md")]) == 1
