"""Tests for the per-PC training unit and metadata buffer."""

import pytest

from repro.core.stream_entry import StreamEntry
from repro.core.training_unit import PCEntry, StreamTrainingUnit


class TestPCEntry:
    def test_buffer_find_promotes_to_mru(self):
        st = PCEntry(1, buffer_size=3)
        a = StreamEntry(10, 4, [11])
        b = StreamEntry(20, 4, [21])
        st.buffer_insert(a)
        st.buffer_insert(b)          # b is MRU
        assert st.buffer_find(11) is a
        assert st.buffer[0] is a     # promoted

    def test_buffer_find_matches_any_position(self):
        st = PCEntry(1)
        st.buffer_insert(StreamEntry(10, 4, [11, 12, 13, 14]))
        assert st.buffer_find(13) is not None
        assert st.buffer_find(99) is None

    def test_buffer_evicts_lru_beyond_capacity(self):
        st = PCEntry(1, buffer_size=2)
        entries = [StreamEntry(i * 10, 4) for i in range(1, 4)]
        for e in entries:
            st.buffer_insert(e)
        assert len(st.buffer) == 2
        assert st.buffer_find(10) is None  # oldest evicted

    def test_same_trigger_replaces(self):
        st = PCEntry(1, buffer_size=3)
        st.buffer_insert(StreamEntry(10, 4, [11]))
        st.buffer_insert(StreamEntry(10, 4, [99]))
        assert len(st.buffer) == 1
        assert st.buffer[0].targets == [99]

    def test_zero_size_buffer_is_inert(self):
        st = PCEntry(1, buffer_size=0)
        st.buffer_insert(StreamEntry(10, 4))
        assert st.buffer == []


class TestStreamTrainingUnit:
    def test_get_allocates_and_reuses(self):
        tu = StreamTrainingUnit(size=4)
        a = tu.get(100)
        assert tu.get(100) is a
        assert len(tu) == 1

    def test_lru_eviction_at_capacity(self):
        tu = StreamTrainingUnit(size=2)
        tu.get(1)
        tu.get(2)
        tu.get(1)       # touch 1: 2 becomes LRU
        tu.get(3)       # evicts 2
        assert len(tu) == 2
        pcs = {e.pc for e in tu.entries()}
        assert pcs == {1, 3}

    def test_entries_carry_buffer_size(self):
        tu = StreamTrainingUnit(size=4, buffer_size=5)
        assert tu.get(1).buffer_size == 5

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            StreamTrainingUnit(size=0)
