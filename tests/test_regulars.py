"""Tests for the regular-prefetcher baselines (stride/Berti/IPCP/Bingo/SPP)."""

import pytest

from repro.prefetchers.berti import BertiPrefetcher
from repro.prefetchers.bingo import BingoPrefetcher
from repro.prefetchers.ipcp import IPCPPrefetcher
from repro.prefetchers.spp import SPPPrefetcher
from repro.prefetchers.stride import StridePrefetcher


def feed(pf, blocks, pc=0x400):
    out = []
    for i, blk in enumerate(blocks):
        out.append(pf.train(pc, blk, False, False, float(i)))
    return out


class TestStride:
    def test_learns_constant_stride(self):
        pf = StridePrefetcher(degree=2)
        outs = feed(pf, [10, 13, 16, 19, 22])
        assert outs[-1] == [25, 28]

    def test_needs_confirmations(self):
        pf = StridePrefetcher(min_confidence=2)
        outs = feed(pf, [10, 13, 16])
        assert outs[0] == [] and outs[1] == []

    def test_stride_change_resets(self):
        pf = StridePrefetcher()
        feed(pf, [10, 13, 16, 19])
        assert pf.train(0x400, 100, False, False, 0.0) == []

    def test_pcs_independent(self):
        pf = StridePrefetcher()
        feed(pf, [10, 13, 16, 19], pc=1)
        assert pf.train(2, 100, False, False, 0.0) == []

    def test_table_eviction(self):
        pf = StridePrefetcher(table_size=2)
        for pc in range(5):
            pf.train(pc, 10, False, False, 0.0)
        assert len(pf._table) <= 2

    def test_rejects_bad_degree(self):
        with pytest.raises(ValueError):
            StridePrefetcher(degree=0)


class TestBerti:
    def test_learns_timely_deltas(self):
        """On a +3 stream Berti selects *timely* multiples of the stride
        (far enough ahead to beat the demand), not the raw +3."""
        pf = BertiPrefetcher(epoch=64, min_score=10, timely_distance=4)
        blocks = [i * 3 for i in range(200)]
        outs = feed(pf, blocks)
        assert outs[-1], "no prefetches after training"
        deltas = [c - blocks[-1] for c in outs[-1]]
        assert all(d % 3 == 0 for d in deltas)
        assert all(d >= 3 * pf.timely_distance for d in deltas)

    def test_no_deltas_on_random(self):
        import numpy as np
        rng = np.random.default_rng(0)
        pf = BertiPrefetcher(epoch=64)
        outs = feed(pf, [int(b) for b in rng.integers(0, 10**9, 400)])
        assert outs[-1] == []


class TestIPCP:
    def test_cs_class_prefetches_stride(self):
        pf = IPCPPrefetcher()
        outs = feed(pf, [i * 5 for i in range(10)])
        assert outs[-1][:2] == [50, 55]

    def test_gs_class_streams_dense_region(self):
        pf = IPCPPrefetcher()
        # Mixed strides inside one dense region defeat CS but trip GS.
        blocks = []
        for i in range(0, 32):
            blocks.append(i if i % 2 == 0 else 32 - i)
        outs = feed(pf, blocks)
        assert any(out for out in outs)

    def test_idle_on_sparse_random(self):
        import numpy as np
        rng = np.random.default_rng(1)
        pf = IPCPPrefetcher()
        outs = feed(pf, [int(b) for b in rng.integers(0, 10**9, 200)])
        assert sum(len(o) for o in outs[-50:]) < 20


class TestBingo:
    def test_replays_footprint_on_region_reentry(self):
        pf = BingoPrefetcher(trackers=2)
        region = [1000, 1003, 1007, 1010]
        feed(pf, region)
        # Leave: touch other regions to evict and commit the tracker.
        feed(pf, [5000, 9000, 13000])
        outs = feed(pf, [1000])
        assert set(outs[-1]) == {1003, 1007, 1010}

    def test_short_event_generalizes_across_regions(self):
        pf = BingoPrefetcher(trackers=1)
        feed(pf, [1000, 1001, 1002])
        feed(pf, [5000])  # evict+commit the first region
        # New region, same PC and same offset-in-region (1024*k + 8).
        outs = feed(pf, [2024])
        assert outs == [[]] or isinstance(outs[-1], list)

    def test_no_prediction_without_history(self):
        pf = BingoPrefetcher()
        assert pf.train(1, 123, False, False, 0.0) == []


class TestSPP:
    def test_signature_path_prefetches_pattern(self):
        pf = SPPPrefetcher()
        # Repeating +2 deltas inside one page.
        blocks = [i % 60 for i in range(0, 600, 2)]
        outs = feed(pf, blocks)
        assert any(outs[-i] for i in range(1, 10))

    def test_stops_at_page_boundary(self):
        pf = SPPPrefetcher(lookahead=8, confidence_threshold=0.0)
        outs = feed(pf, list(range(50, 64)))  # near page end
        for out in outs:
            for cand in out:
                assert cand // 64 == 0  # never crosses the page

    def test_filter_learns_from_uselessness(self):
        pf = SPPPrefetcher()
        blocks = [i % 60 for i in range(0, 300, 2)]
        feed(pf, blocks)
        issued = [c for out in feed(pf, blocks) for c in out]
        for cand in issued:
            pf.note_useless(cand, 0.0)
        assert all(w <= 0 for w in pf._weights.values()) or \
            sum(pf._weights.values()) < len(pf._weights)
