"""Observability subsystem: profiler purity, span trees, run logs,
progress, knobs, trace contexts, metrics, and the report CLI."""

from __future__ import annotations

import dataclasses
import io
import json
import os
import pickle
import subprocess
import sys
import pathlib

import pytest

from repro.envknobs import env_flag, env_int
from repro.obs import metrics, profile, progress, report, runlog, trace
from repro.runner import SimJob, SimRunner, spec
from repro.runner.cache import ResultCache
from repro.sim.config import SystemConfig


def _tiny_job(workload: str = "gap.pr", pf: str = "stride",
              n: int = 3000) -> SimJob:
    return SimJob.single(workload, n, SystemConfig().scaled_down(8),
                         l1="stride", l2=(spec(pf),))


def _runner() -> SimRunner:
    return SimRunner(jobs=1, cache=ResultCache(persistent=False))


# -- env knobs -----------------------------------------------------------------

class TestEnvKnobs:
    def test_env_int_default_and_valid(self, monkeypatch):
        monkeypatch.delenv("REPRO_N", raising=False)
        assert env_int("REPRO_N", 42) == 42
        monkeypatch.setenv("REPRO_N", "1000")
        assert env_int("REPRO_N", 42) == 1000

    @pytest.mark.parametrize("bad", ["abc", "1.5", "0", "-3"])
    def test_env_int_rejects_junk_and_nonpositive(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_N", bad)
        with pytest.raises(ValueError, match="REPRO_N"):
            env_int("REPRO_N", 42)

    def test_env_flag_strict(self, monkeypatch):
        monkeypatch.delenv("REPRO_QUICK", raising=False)
        assert env_flag("REPRO_QUICK", False) is False
        monkeypatch.setenv("REPRO_QUICK", "1")
        assert env_flag("REPRO_QUICK", False) is True
        monkeypatch.setenv("REPRO_QUICK", "0")
        assert env_flag("REPRO_QUICK", True) is False
        monkeypatch.setenv("REPRO_QUICK", "yes")
        with pytest.raises(ValueError, match="REPRO_QUICK"):
            env_flag("REPRO_QUICK", False)

    def test_experiment_knobs_use_validation(self, monkeypatch):
        from repro.experiments.common import env_n, quick_mode
        monkeypatch.setenv("REPRO_N", "oops")
        with pytest.raises(ValueError, match="REPRO_N"):
            env_n()
        monkeypatch.setenv("REPRO_N", "-1")
        with pytest.raises(ValueError, match="REPRO_N"):
            env_n()
        monkeypatch.setenv("REPRO_QUICK", "junk")
        with pytest.raises(ValueError, match="REPRO_QUICK"):
            quick_mode()


# -- span profiler -------------------------------------------------------------

class TestSpanProfiler:
    def test_nesting_and_aggregation(self):
        prof = profile.SpanProfiler()
        prof.start("job")
        prof.start("a")
        with prof.span("b"):
            pass
        with prof.span("b"):
            pass
        prof.stop()
        prof.stop()
        spans = {s["path"]: s for s in prof.spans()}
        assert set(spans) == {"job", "job/a", "job/a/b"}
        assert spans["job/a/b"]["count"] == 2
        # Child total <= parent total, self <= total, everywhere.
        assert spans["job/a/b"]["total"] <= spans["job/a"]["total"]
        assert spans["job/a"]["total"] <= spans["job"]["total"]
        for s in spans.values():
            assert 0.0 <= s["self"] <= s["total"] + 1e-12

    def test_report_phases_and_components(self):
        prof = profile.SpanProfiler()
        prof.start(profile.ROOT)
        with prof.span("measure"):
            with prof.span("lookup:l1d"):
                with prof.span("lookup:l2"):
                    pass
        prof.stop()
        rep = prof.report()
        assert rep["enabled"] and rep["wall_seconds"] > 0
        assert set(rep["phases"]) == {"measure"}
        assert {"measure", "lookup:l1d", "lookup:l2",
                profile.ROOT} <= set(rep["components"])
        # Self-times partition the root: their sum equals the wall.
        total_self = sum(c["seconds"] for c in rep["components"].values())
        assert total_self == pytest.approx(rep["wall_seconds"], rel=0.2)

    def test_close_pops_abandoned_spans(self):
        prof = profile.SpanProfiler()
        prof.start("job")
        prof.start("leak")
        prof.close()
        assert {s["path"] for s in prof.spans()} == {"job", "job/leak"}

    def test_enabled_knob_strict(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "maybe")
        with pytest.raises(ValueError, match="REPRO_PROFILE"):
            profile.enabled()

    def test_start_job_off_is_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        assert profile.start_job() is None
        assert profile.current() is None


class TestProfiledExecution:
    def test_off_runs_bit_identical_and_unprofiled(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        job = _tiny_job()
        a, b = job.execute(), job.execute()
        assert a.single == b.single
        assert a.single.profile is None

    def test_profiled_run_pure_and_well_formed(self, monkeypatch):
        job = _tiny_job()
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        plain = job.execute()
        monkeypatch.setenv("REPRO_PROFILE", "1")
        profiled = job.execute()
        payload = profiled.single.profile
        assert payload is not None
        # Purity: masking the profile recovers the plain result exactly.
        masked = dataclasses.replace(profiled.single, profile=None)
        assert masked == plain.single
        # Well-formedness: phases partition the wall; spans nest.
        wall = payload["wall_seconds"]
        assert 0 < sum(payload["phases"].values()) <= wall * 1.1
        comp_total = sum(c["seconds"]
                         for c in payload["components"].values())
        assert comp_total <= wall * 1.1
        by_path = {s["path"]: s for s in payload["spans"]}
        for path, s in by_path.items():
            assert s["self"] <= s["total"] + 1e-9
            parent = path.rpartition("/")[0]
            if parent:
                assert s["total"] <= by_path[parent]["total"] + 1e-9
        assert {"lookup:l1d", "lookup:l2", "lookup:llc"} <= \
            set(payload["components"])
        # The active profiler never leaks past the job.
        assert profile.current() is None

    def test_profiled_run_bypasses_cache(self, monkeypatch):
        runner = _runner()
        job = _tiny_job()
        monkeypatch.setenv("REPRO_PROFILE", "1")
        runner.run_one(job)
        assert runner.cache.stats.snapshot() == \
            {"memo_hits": 0, "disk_hits": 0, "misses": 0, "stores": 0,
             "evictions": 0}
        monkeypatch.delenv("REPRO_PROFILE")
        runner.run_one(job)
        assert runner.cache.stats.misses == 1


# -- run logs ------------------------------------------------------------------

class TestRunLog:
    def test_writer_envelope_and_merge_ordering(self, tmp_path):
        log = runlog.RunLog("r1", tmp_path / "r1")
        log.directory.mkdir(parents=True)
        # Interleave two "workers" with deliberately equal timestamps to
        # exercise the (ts, pid, seq) tie-break.
        for pid, name in ((2, "worker-2"), (1, "worker-1")):
            with open(log.directory / f"{name}.jsonl", "w") as fh:
                for seq in range(3):
                    fh.write(json.dumps({"ts": 100.0, "pid": pid,
                                         "seq": seq, "event": "e"}) + "\n")
        merged = log.merge()
        records = runlog.load_runlog(merged)
        assert [(r["pid"], r["seq"]) for r in records] == \
            [(1, 0), (1, 1), (1, 2), (2, 0), (2, 1), (2, 2)]
        # Shards are consumed by the merge.
        assert sorted(p.name for p in log.directory.iterdir()) == \
            ["runlog.jsonl"]

    def test_merge_skips_torn_lines(self, tmp_path):
        log = runlog.RunLog("r2", tmp_path / "r2")
        log.directory.mkdir(parents=True)
        (log.directory / "worker-9.jsonl").write_text(
            json.dumps({"ts": 1.0, "pid": 9, "seq": 0, "event": "ok"})
            + "\n" + '{"ts": 2.0, "pid": 9, "se')  # killed mid-write
        records = runlog.load_runlog(log.merge())
        assert [r["event"] for r in records] == ["ok"]

    def test_enabled_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "0")
        assert not runlog.enabled()
        monkeypatch.setenv("REPRO_OBS", "1")
        assert runlog.enabled()
        monkeypatch.setenv("REPRO_OBS", "2")
        with pytest.raises(ValueError, match="REPRO_OBS"):
            runlog.enabled()

    def _sweep(self, workers: int, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "1")
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        jobs = [SimJob.single(wl, 3000, SystemConfig().scaled_down(8),
                              l1="stride", l2=(spec(pf),))
                for wl in ("gap.pr", "gap.bfs")
                for pf in ("stride", "streamline")]
        runner = SimRunner(jobs=workers,
                           cache=ResultCache(persistent=False))
        results = runner.run(jobs)
        runs = runlog.list_runs(tmp_path)
        assert len(runs) == 1
        return results, runlog.load_runlog(runs[0] / runlog.MERGED)

    def test_serial_sweep_logs_jobs(self, tmp_path, monkeypatch):
        _, records = self._sweep(1, tmp_path, monkeypatch)
        events = [r["event"] for r in records]
        assert events[0] == "run_start" and events[-1] == "run_end"
        assert events.count("job_start") == 4
        assert events.count("job_end") == 4
        start = next(r for r in records if r["event"] == "run_start")
        assert start["jobs"] == 4 and start["executed"] == 4

    def test_multiworker_merge_is_ordered_and_complete(self, tmp_path,
                                                       monkeypatch):
        results, records = self._sweep(2, tmp_path, monkeypatch)
        assert len(results) == 4
        # Global ordering: non-decreasing (ts, pid, seq).
        keys = [(r["ts"], r["pid"], r["seq"]) for r in records]
        assert keys == sorted(keys)
        # Per-writer order survives the merge.
        ends = [r for r in records if r["event"] == "job_end"]
        assert len(ends) == 4
        assert len({r["pid"] for r in ends}) >= 1
        for r in ends:
            assert r["wall_seconds"] > 0
            assert r["fingerprint"]
            assert r["profile"] is None  # REPRO_PROFILE off


# -- progress line -------------------------------------------------------------

class TestProgress:
    def test_silent_when_piped(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROGRESS", raising=False)
        buf = io.StringIO()  # not a TTY
        line = progress.ProgressLine(4, stream=buf)
        line.update(done=2)
        line.finish()
        assert buf.getvalue() == ""

    def test_renders_on_tty(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROGRESS", raising=False)

        class Tty(io.StringIO):
            def isatty(self):
                return True

        buf = Tty()
        line = progress.ProgressLine(4, stream=buf, min_interval=0.0)
        line.update(done=1, memo_hits=1)
        line.update(done=2)
        line.finish()
        out = buf.getvalue()
        assert "\r" in out and out.endswith("\n")
        assert "2/4 jobs" in out and "memo 1" in out

    def test_forced_on_and_off(self, monkeypatch):
        buf = io.StringIO()
        monkeypatch.setenv("REPRO_PROGRESS", "1")
        line = progress.ProgressLine(2, stream=buf, min_interval=0.0)
        line.update(done=1)
        assert "1/2 jobs" in buf.getvalue()

        class Tty(io.StringIO):
            def isatty(self):
                return True

        monkeypatch.setenv("REPRO_PROGRESS", "0")
        tty = Tty()
        line = progress.ProgressLine(2, stream=tty)
        line.update(done=1)
        line.finish()
        assert tty.getvalue() == ""

    def test_junk_value_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROGRESS", "loud")
        with pytest.raises(ValueError, match="REPRO_PROGRESS"):
            progress.wanted(io.StringIO())

    def test_eta_excludes_cache_hits(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROGRESS", "1")
        buf = io.StringIO()
        line = progress.ProgressLine(10, done=8, stream=buf,
                                     min_interval=0.0)
        # No executed jobs yet: no rate, so no (absurdly small) ETA.
        assert "eta" not in line.render_line()
        line.update(done=9)
        assert "eta" in line.render_line()

    def test_format_eta(self):
        assert progress.format_eta(41) == "0:41"
        assert progress.format_eta(3661) == "1:01:01"
        assert progress.format_eta(-5) == "0:00"


# -- report + CLI --------------------------------------------------------------

class TestReportCli:
    @pytest.fixture()
    def sweep_dir(self, tmp_path, monkeypatch):
        """A profiled 2-workload x 2-prefetcher sweep's obs directory."""
        monkeypatch.setenv("REPRO_OBS", "1")
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_PROFILE", "1")
        jobs = [SimJob.single(wl, 3000, SystemConfig().scaled_down(8),
                              l1="stride", l2=(spec(pf),))
                for wl in ("gap.pr", "gap.bfs")
                for pf in ("stride", "streamline")]
        SimRunner(jobs=1, cache=ResultCache(persistent=False)).run(jobs)
        return tmp_path

    def test_summarize_and_render(self, sweep_dir):
        runs = runlog.list_runs(sweep_dir)
        assert len(runs) == 1
        summary = report.summarize(runs[0])
        assert summary.total == 4 and summary.executed == 4
        assert len(summary.profiled_jobs) == 4
        components = summary.components()
        assert "lookup:l1d" in components
        text = report.render(summary)
        assert "Slowest jobs" in text
        assert "Time by component" in text
        assert "Span tree" in text
        assert "gap.pr" in text
        top = report.render_top(summary)
        assert "4 profiled jobs" in top

    def test_cli_smoke(self, sweep_dir):
        env = dict(os.environ,
                   REPRO_OBS_DIR=str(sweep_dir),
                   PYTHONPATH=str(pathlib.Path("src").resolve()))
        for args in (["list"], ["report"], ["top"],
                     ["report", "--top", "3"]):
            proc = subprocess.run(
                [sys.executable, "-m", "repro.obs"] + args,
                env=env, capture_output=True, text=True, timeout=120)
            assert proc.returncode == 0, proc.stderr
            assert proc.stdout.strip()

    def test_cli_unknown_run(self, sweep_dir):
        env = dict(os.environ,
                   REPRO_OBS_DIR=str(sweep_dir),
                   PYTHONPATH=str(pathlib.Path("src").resolve()))
        proc = subprocess.run(
            [sys.executable, "-m", "repro.obs", "report", "nope"],
            env=env, capture_output=True, text=True, timeout=120)
        assert proc.returncode == 1
        assert "no run matches" in proc.stderr

    def _cli(self, sweep_dir, *args):
        env = dict(os.environ,
                   REPRO_OBS_DIR=str(sweep_dir),
                   PYTHONPATH=str(pathlib.Path("src").resolve()))
        return subprocess.run(
            [sys.executable, "-m", "repro.obs"] + list(args),
            env=env, capture_output=True, text=True, timeout=120)

    def test_cli_list_columns(self, sweep_dir):
        proc = self._cli(sweep_dir, "list")
        assert proc.returncode == 0, proc.stderr
        header, row = proc.stdout.splitlines()[:2]
        for column in ("run", "started", "jobs", "exec", "cache",
                       "shards", "prof", "wall"):
            assert column in header
        run_id = runlog.list_runs(sweep_dir)[0].name
        assert row.startswith(run_id)
        assert " 4 " in row  # job count

    def test_cli_json_surfaces(self, sweep_dir):
        rep = json.loads(self._cli(sweep_dir, "report",
                                   "--json").stdout)
        assert rep["jobs"] == 4 and rep["executed"] == 4
        assert rep["shards"] >= 1 and rep["started"] > 0
        assert len(rep["slowest_jobs"]) == 4
        assert rep["metrics"]["jobs_with_metrics"] == 4
        top = json.loads(self._cli(sweep_dir, "top", "--json").stdout)
        assert top["profiled_jobs"] == 4 and top["components"]
        met = self._cli(sweep_dir, "metrics")
        assert met.returncode == 0 and "events" in met.stdout
        met_json = json.loads(self._cli(sweep_dir, "metrics",
                                        "--json").stdout)
        assert met_json["jobs_with_metrics"] == 4
        assert met_json["run_id"] == runlog.list_runs(sweep_dir)[0].name

    def test_cli_trace(self, sweep_dir):
        records = runlog.load_runlog(
            runlog.list_runs(sweep_dir)[0] / runlog.MERGED)
        trace_id = records[0]["trace_id"]
        proc = self._cli(sweep_dir, "report", "--trace", trace_id[:10])
        assert proc.returncode == 0, proc.stderr
        assert f"trace {trace_id}" in proc.stdout
        payload = json.loads(self._cli(
            sweep_dir, "report", "--trace", trace_id, "--json").stdout)
        assert payload["trace_id"] == trace_id
        missing = self._cli(sweep_dir, "report", "--trace", "f" * 32)
        assert missing.returncode == 1
        assert "no records carry trace" in missing.stderr


# -- runlog tailer (the serve event stream's source) ---------------------------

class TestRunLogTailer:
    def _emit(self, path: pathlib.Path, pid: int, seq: int,
              event: str = "job_end", **payload):
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "a") as fh:
            fh.write(json.dumps({"ts": float(seq), "pid": pid,
                                 "seq": seq, "event": event,
                                 **payload}) + "\n")

    def test_incremental_poll_sees_only_new_records(self, tmp_path):
        shard = tmp_path / "run1" / "worker-1.jsonl"
        tailer = runlog.RunLogTailer(tmp_path)
        assert tailer.poll() == []
        self._emit(shard, 1, 0, "job_start")
        self._emit(shard, 1, 1, "job_end")
        assert [r["event"] for r in tailer.poll()] == \
            ["job_start", "job_end"]
        assert tailer.poll() == []
        self._emit(shard, 1, 2)
        assert [r["seq"] for r in tailer.poll()] == [2]

    def test_torn_tail_is_deferred_until_complete(self, tmp_path):
        shard = tmp_path / "run1" / "worker-1.jsonl"
        self._emit(shard, 1, 0)
        with open(shard, "a") as fh:  # a writer killed mid-record
            fh.write('{"ts": 1.0, "pid": 1, "se')
        tailer = runlog.RunLogTailer(tmp_path)
        assert [r["seq"] for r in tailer.poll()] == [0]
        with open(shard, "a") as fh:
            fh.write('q": 1, "event": "late"}\n')
        assert [r["event"] for r in tailer.poll()] == ["late"]

    def test_merge_rewrite_does_not_replay_records(self, tmp_path):
        log = runlog.RunLog("r1", tmp_path / "r1")
        log.directory.mkdir(parents=True)
        for seq in range(3):
            self._emit(log.directory / "worker-7.jsonl", 7, seq)
        tailer = runlog.RunLogTailer(tmp_path)
        assert len(tailer.poll()) == 3
        # The merge deletes the shard and rewrites every record into
        # runlog.jsonl; the (ts, pid, seq) dedup must keep them silent.
        log.merge()
        assert tailer.poll() == []

    def test_multiple_runs_and_ordering(self, tmp_path):
        self._emit(tmp_path / "r1" / "worker-1.jsonl", 1, 5)
        self._emit(tmp_path / "r2" / "worker-2.jsonl", 2, 3)
        tailer = runlog.RunLogTailer(tmp_path)
        assert [(r["ts"], r["pid"]) for r in tailer.poll()] == \
            [(3.0, 2), (5.0, 1)]

    def test_rotated_shard_is_reopened_and_reread(self, tmp_path):
        # A log manager replacing the file under the tailer (new inode)
        # must not wedge the stream on the remembered offset.
        shard = tmp_path / "run1" / "worker-1.jsonl"
        self._emit(shard, 1, 0)
        self._emit(shard, 1, 1)
        tailer = runlog.RunLogTailer(tmp_path)
        assert [r["seq"] for r in tailer.poll()] == [0, 1]
        shard.unlink()
        self._emit(shard, 1, 7)  # shorter than the old offset
        assert [r["seq"] for r in tailer.poll()] == [7]

    def test_truncated_shard_is_reread_from_start(self, tmp_path):
        # Same inode, shrunk size (copytruncate-style rotation): the
        # offset is reset and the (ts, pid, seq) dedup absorbs any
        # record that survived the truncation.
        shard = tmp_path / "run1" / "worker-1.jsonl"
        self._emit(shard, 1, 0)
        self._emit(shard, 1, 1)
        tailer = runlog.RunLogTailer(tmp_path)
        assert len(tailer.poll()) == 2
        first = shard.read_text().splitlines()[0]
        shard.write_text(first + "\n")  # truncate to the first record
        assert tailer.poll() == []  # replay deduped
        self._emit(shard, 1, 9)
        assert [r["seq"] for r in tailer.poll()] == [9]


# -- trace contexts ------------------------------------------------------------

class TestTraceContext:
    def test_traceparent_roundtrip(self):
        context = trace.new_context()
        parsed = trace.from_traceparent(context.to_traceparent())
        assert parsed.trace_id == context.trace_id
        assert parsed.span_id == context.span_id
        assert parsed.parent_span is None

    def test_child_keeps_trace_and_records_parent(self):
        root = trace.new_context()
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.span_id != root.span_id
        assert child.parent_span == root.span_id
        fields = child.fields()
        assert fields["trace_id"] == root.trace_id
        assert fields["parent_span"] == root.span_id
        assert "parent_span" not in root.fields()

    @pytest.mark.parametrize("junk", [
        "", "junk", "00-dead-beef-01",
        "00-" + "g" * 32 + "-" + "0" * 15 + "1-01",   # non-hex
        "01-" + "a" * 32 + "-" + "b" * 16 + "-01",    # wrong version
        "00-" + "a" * 31 + "-" + "b" * 16 + "-01",    # short trace id
    ])
    def test_malformed_traceparent(self, junk):
        with pytest.raises(ValueError, match="traceparent"):
            trace.from_traceparent(junk)
        assert trace.parse_or_none(junk) is None
        assert trace.parse_or_none(None) is None

    def test_context_validation(self):
        with pytest.raises(ValueError, match="trace_id"):
            trace.TraceContext("0" * 32, "1" * 16)  # all-zero forbidden
        with pytest.raises(ValueError, match="span_id"):
            trace.TraceContext("a" * 32, "0" * 16)
        with pytest.raises(ValueError, match="trace_id"):
            trace.TraceContext("abc", "1" * 16)

    def test_knob(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert trace.enabled()
        monkeypatch.setenv("REPRO_TRACE", "0")
        assert not trace.enabled()
        assert trace.ambient() is None
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert trace.enabled()
        monkeypatch.setenv("REPRO_TRACE", "maybe")
        with pytest.raises(ValueError, match="REPRO_TRACE"):
            trace.enabled()

    def test_install_restore_and_ambient(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        context = trace.new_context()
        previous = trace.install(context)
        try:
            assert trace.current() is context
            # With a context installed, ambient inherits instead of
            # minting a new root.
            assert trace.ambient() is context
        finally:
            trace.install(previous)
        assert trace.current() is previous
        trace.uninstall()
        assert trace.current() is None
        # Nothing installed: each ambient() call is a fresh root.
        assert trace.ambient().trace_id != trace.ambient().trace_id


# -- metrics registry ----------------------------------------------------------

class TestMetricsRegistry:
    def test_naming_convention_enforced(self):
        registry = metrics.MetricsRegistry()
        with pytest.raises(ValueError, match="convention"):
            registry.counter("bad_name_total", "no repro_ prefix")
        with pytest.raises(ValueError, match="convention"):
            registry.gauge("repro_Depth", "uppercase")
        with pytest.raises(ValueError, match="_total"):
            registry.counter("repro_cache_hits", "counter sans _total")
        with pytest.raises(ValueError, match="_total"):
            registry.histogram("repro_job_wall_total", "histogram")
        registry.counter("repro_cache_hits_total", "ok")
        with pytest.raises(ValueError, match="already"):
            registry.counter("repro_cache_hits_total", "dup")

    def test_counter_semantics(self):
        registry = metrics.MetricsRegistry()
        c = registry.counter("repro_test_things_total", "things")
        c.inc()
        c.inc(2)
        assert c.value() == 3
        with pytest.raises(ValueError, match="only go up"):
            c.inc(-1)
        pull = registry.counter("repro_test_pulled_total", "pulled",
                                fn=lambda: 41)
        assert pull.value() == 41
        with pytest.raises(RuntimeError, match="pull"):
            pull.inc()

    def test_gauge_and_histogram(self):
        registry = metrics.MetricsRegistry()
        g = registry.gauge("repro_test_depth_jobs", "depth")
        g.set(5)
        g.inc()
        g.dec(2)
        assert g.value() == 4
        h = registry.histogram("repro_test_wait_seconds", "wait",
                               buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 0.5, 30.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["counts"] == [1, 2, 1]  # per-bucket, +Inf last
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(31.05)
        samples = dict(h.samples())
        assert samples['repro_test_wait_seconds_bucket{le="0.1"}'] == 1
        assert samples['repro_test_wait_seconds_bucket{le="1"}'] == 3
        assert samples['repro_test_wait_seconds_bucket{le="+Inf"}'] == 4
        assert samples["repro_test_wait_seconds_count"] == 4

    def test_render_parses_as_prometheus_text(self):
        registry = metrics.MetricsRegistry()
        registry.counter("repro_test_hits_total", "hits").inc(7)
        registry.gauge("repro_test_depth_jobs", "queue depth").set(2)
        registry.histogram("repro_test_wait_seconds", "wait",
                           buckets=(1.0,)).observe(0.5)
        families = metrics.parse_text(registry.render())
        assert families["repro_test_hits_total"]["type"] == "counter"
        assert families["repro_test_hits_total"]["samples"][
            "repro_test_hits_total"] == 7
        assert families["repro_test_depth_jobs"]["type"] == "gauge"
        hist = families["repro_test_wait_seconds"]
        assert hist["type"] == "histogram"
        assert hist["samples"][
            'repro_test_wait_seconds_bucket{le="+Inf"}'] == 1
        assert hist["samples"]["repro_test_wait_seconds_sum"] == 0.5

    def test_parse_text_lints(self):
        with pytest.raises(ValueError, match="before its"):
            metrics.parse_text("repro_orphan_total 3\n")
        with pytest.raises(ValueError, match="unknown TYPE"):
            metrics.parse_text("# HELP repro_x_total x\n"
                               "# TYPE repro_x_total summary\n")
        with pytest.raises(ValueError, match="negative"):
            metrics.parse_text("# HELP repro_x_total x\n"
                               "# TYPE repro_x_total counter\n"
                               "repro_x_total -1\n")
        with pytest.raises(ValueError, match="missing"):
            metrics.parse_text("# HELP repro_x_total x\n")
        with pytest.raises(ValueError, match="non-numeric"):
            metrics.parse_text("# HELP repro_x_total x\n"
                               "# TYPE repro_x_total counter\n"
                               "repro_x_total lots\n")

    def test_knob(self, monkeypatch):
        monkeypatch.delenv("REPRO_METRICS", raising=False)
        assert metrics.enabled()
        monkeypatch.setenv("REPRO_METRICS", "0")
        assert not metrics.enabled()
        monkeypatch.setenv("REPRO_METRICS", "loud")
        with pytest.raises(ValueError, match="REPRO_METRICS"):
            metrics.enabled()


# -- trace propagation through the runner --------------------------------------

class TestTracePropagation:
    def _sweep(self, workers: int, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "1")
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        jobs = [_tiny_job(wl, pf) for wl in ("gap.pr", "gap.bfs")
                for pf in ("stride", "streamline")]
        root = trace.new_context()
        previous = trace.install(root)
        try:
            SimRunner(jobs=workers,
                      cache=ResultCache(persistent=False)).run(jobs)
        finally:
            trace.install(previous)
        runs = runlog.list_runs(tmp_path)
        assert len(runs) == 1
        return root, runlog.load_runlog(runs[0] / runlog.MERGED)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_one_trace_id_on_every_record(self, workers, tmp_path,
                                          monkeypatch):
        root, records = self._sweep(workers, tmp_path, monkeypatch)
        assert records
        assert {r["trace_id"] for r in records} == {root.trace_id}
        # Batch records run under the root's span; each job is a child
        # span parented to its submitter's span.
        batch = next(r for r in records if r["event"] == "run_start")
        assert batch["span_id"] == root.span_id
        ends = [r for r in records if r["event"] == "job_end"]
        assert len(ends) == 4
        for r in ends:
            assert r["span_id"] != root.span_id
            assert r["parent_span"] == root.span_id

    def test_collect_and_render_trace(self, tmp_path, monkeypatch):
        root, records = self._sweep(2, tmp_path, monkeypatch)
        collected = report.collect_trace(root.trace_id[:12],
                                         root=tmp_path)
        assert len(collected) == len(records)
        tree = report.trace_tree(collected)
        assert len(tree) == 1  # the batch span roots the whole request
        assert {c["records"][0]["event"] for c in tree[0]["children"]} \
            <= {"job_start", "job_end"}
        text = report.render_trace(root.trace_id, collected)
        assert f"trace {root.trace_id}" in text
        assert "job gap.pr" in text
        payload = report.trace_to_json(root.trace_id, collected)
        assert payload["trace_id"] == root.trace_id
        assert payload["spans"][0]["children"]

    def test_trace_off_leaves_records_clean_and_results_identical(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "1")
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        jobs = [_tiny_job("gap.pr", pf)
                for pf in ("stride", "streamline")]
        monkeypatch.setenv("REPRO_TRACE", "0")
        monkeypatch.setenv("REPRO_METRICS", "0")
        off = SimRunner(jobs=1,
                        cache=ResultCache(persistent=False)).run(jobs)
        for r in runlog.load_runlog(
                runlog.list_runs(tmp_path)[-1] / runlog.MERGED):
            assert "trace_id" not in r and "span_id" not in r
            assert "metrics" not in r
        monkeypatch.setenv("REPRO_TRACE", "1")
        monkeypatch.setenv("REPRO_METRICS", "1")
        on = SimRunner(jobs=1,
                       cache=ResultCache(persistent=False)).run(jobs)
        # The observation plane never perturbs simulation results.
        assert [pickle.dumps(r) for r in on] == \
            [pickle.dumps(r) for r in off]

    def test_profiler_spans_carry_the_trace(self, tmp_path,
                                            monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "1")
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_PROFILE", "1")
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        root = trace.new_context()
        previous = trace.install(root)
        try:
            SimRunner(jobs=1, cache=ResultCache(persistent=False)).run(
                [_tiny_job()])
        finally:
            trace.install(previous)
        records = runlog.load_runlog(
            runlog.list_runs(tmp_path)[-1] / runlog.MERGED)
        end = next(r for r in records if r["event"] == "job_end")
        assert end["trace_id"] == root.trace_id
        payload = end["profile"]
        assert payload["enabled"]
        # The profiler stamps the job's own span, not the batch root's.
        assert payload["trace_id"] == root.trace_id
        assert payload["span_id"] == end["span_id"] != root.span_id

    def test_job_end_metrics_section(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "1")
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_METRICS", raising=False)
        SimRunner(jobs=1, cache=ResultCache(persistent=False)).run(
            [_tiny_job()])
        records = runlog.load_runlog(
            runlog.list_runs(tmp_path)[-1] / runlog.MERGED)
        end = next(r for r in records if r["event"] == "job_end")
        section = end["metrics"]
        assert section["events"] > 0
        assert section["sim_cycles"] > 0
        assert section["wall_seconds"] == pytest.approx(
            end["wall_seconds"])
        assert section["events_per_second"] > 0
        assert section["ckpt_restored"] == 0


# -- cache evictions in the run log --------------------------------------------

class TestCacheEvictRecords:
    def test_eviction_surfaces_in_run_start_and_cache_evict(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "1")
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path / "obs"))
        cache_dir = tmp_path / "sc"
        job = SimJob.single("gap.pr", 3000,
                            SystemConfig().scaled_down(8), l1="stride")
        SimRunner(jobs=1, cache=ResultCache(
            cache_dir, persistent=True)).run_one(job)
        # Corrupt the stored entry; the next batch's lookup evicts it.
        (cache_dir / f"{job.fingerprint()}.pkl").write_bytes(b"junk")
        fresh = ResultCache(cache_dir, persistent=True)
        with pytest.warns(UserWarning, match="evicting corrupt"):
            SimRunner(jobs=1, cache=fresh).run_one(job)
        runs = runlog.list_runs(tmp_path / "obs")
        records = runlog.load_runlog(runs[-1] / runlog.MERGED)
        start = next(r for r in records if r["event"] == "run_start")
        assert start["evictions"] == 1
        evict = next(r for r in records if r["event"] == "cache_evict")
        assert evict["fingerprint"] == job.fingerprint()
        assert "sha256" in evict["reason"]
