"""Engine fast path: bit-identity with the scalar loop.

The contract (DESIGN.md "Engine fast path"): with
``SystemConfig.fastpath=True`` the engine must produce the **same
bytes** as the scalar loop — ``SimResult`` including the bus event
counters, warm-up checkpoints, telemetry series — for every supported
configuration, and must stay off (scalar) by default.  These tests
sweep workloads × prefetcher sets × telemetry × checkpoint resume, pin
the Tier B edge cases (runs ending at the warm-up boundary, on a
dependent load, on a write), and assert the knob/fingerprint plumbing.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.checkpoint import state_equal
from repro.memory.cache import Cache
from repro.memory.events import EV
from repro.runner import SimJob
from repro.runner.specs import spec
from repro.runner.traces import get_trace
from repro.sim import fastpath
from repro.sim.config import SystemConfig
from repro.sim.engine import Engine
from repro.sim.trace import Trace
from repro.telemetry.config import TelemetryConfig


def build_engine(workload="gap.pr", n=5000, l1=None, l2s=(),
                 telemetry=None, fast=None, warmup=0.5, seed=42,
                 trace=None):
    config = dataclasses.replace(
        SystemConfig().scaled_down(4), warmup_fraction=warmup,
        telemetry=telemetry, fastpath=fast)
    if trace is None:
        trace = get_trace(workload, n, seed)
    l1f = spec(l1).build if l1 else None
    l2f = [spec(s).build for s in l2s]
    return Engine([trace], config, l1f, l2f)


def result_and_events(eng):
    res = eng.run().collect()[0]
    return res, eng.bus.counts_flat()


def assert_identical(**kwargs):
    """Fast and scalar runs of the same engine shape are equal bytes."""
    scalar = result_and_events(build_engine(fast=False, **kwargs))
    fast = result_and_events(build_engine(fast=True, **kwargs))
    assert fast == scalar


# -- the knob --------------------------------------------------------------


def test_env_knob_tristate(monkeypatch):
    cfg = SystemConfig()
    monkeypatch.delenv(fastpath.ENV_KNOB, raising=False)
    assert fastpath.resolve(cfg) is False
    monkeypatch.setenv(fastpath.ENV_KNOB, "1")
    assert fastpath.resolve(cfg) is True
    monkeypatch.setenv(fastpath.ENV_KNOB, "0")
    assert fastpath.resolve(cfg) is False
    monkeypatch.setenv(fastpath.ENV_KNOB, "auto")
    assert fastpath.resolve(cfg) is False  # defer -> default off


def test_env_knob_rejects_garbage(monkeypatch):
    monkeypatch.setenv(fastpath.ENV_KNOB, "yes")
    with pytest.raises(ValueError, match="REPRO_FASTPATH"):
        fastpath.resolve(SystemConfig())


def test_config_wins_over_env(monkeypatch):
    monkeypatch.setenv(fastpath.ENV_KNOB, "1")
    assert fastpath.resolve(
        dataclasses.replace(SystemConfig(), fastpath=False)) is False
    monkeypatch.setenv(fastpath.ENV_KNOB, "0")
    assert fastpath.resolve(
        dataclasses.replace(SystemConfig(), fastpath=True)) is True


def test_fastpath_excluded_from_fingerprint():
    """The knob is execution strategy: same job key either way, so
    result caches and checkpoints are shared across it."""
    def job(fast):
        cfg = dataclasses.replace(SystemConfig().scaled_down(4),
                                  fastpath=fast)
        return SimJob.single("gap.pr", 1000, cfg, l2=[spec("streamline")])
    assert job(True).fingerprint() == job(None).fingerprint()
    assert job(True).canonical() == job(False).canonical()


def test_profiler_conflict_is_loud(monkeypatch):
    from repro.obs import profile as obs_profile
    monkeypatch.setenv("REPRO_PROFILE", "1")
    cfg = dataclasses.replace(SystemConfig().scaled_down(4),
                              warmup_fraction=0.0, fastpath=True)
    prof = obs_profile.start_job()
    try:
        with pytest.warns(RuntimeWarning, match="fastpath"):
            eng = Engine([get_trace("gap.pr", 500, 42)], cfg)
        assert eng._fastpath_on is False
        eng.run().collect()
    finally:
        obs_profile.end_job(prof)


# -- bit-identity sweep ----------------------------------------------------


@pytest.mark.parametrize("workload", ["gap.pr", "06.mcf", "06.lbm"])
@pytest.mark.parametrize("l1,l2s", [
    (None, ()),                      # no prefetchers
    ("stride", ()),                  # L1 prefetcher (lookup subscribers)
    ("stride", ("streamline",)),     # + temporal L2 (metadata, dueling)
])
def test_bit_identity_matrix(workload, l1, l2s):
    assert_identical(workload=workload, l1=l1, l2s=l2s)


@pytest.mark.parametrize("l1,l2s", [(None, ()),
                                    ("stride", ("streamline",))])
def test_bit_identity_with_telemetry(l1, l2s):
    """Telemetry samplers force generic event delivery everywhere."""
    assert_identical(workload="gap.pr", l1=l1, l2s=l2s,
                     telemetry=TelemetryConfig(interval=500))


def test_bit_identity_triangel():
    assert_identical(workload="17.xalancbmk", l2s=("triangel",))


def test_default_path_is_scalar():
    """fastpath unset == fastpath off, byte for byte."""
    unset = result_and_events(build_engine(fast=None))
    off = result_and_events(build_engine(fast=False))
    assert unset == off


# -- checkpoints across the knob -------------------------------------------


def test_warm_checkpoint_identical_across_knob():
    """A fast warm-up writes the same snapshot as a scalar warm-up, so
    checkpoints are shared across the knob in either direction."""
    warm_fast = build_engine(l2s=("streamline",), fast=True)
    warm_fast.run_warmup()
    warm_scalar = build_engine(l2s=("streamline",), fast=False)
    warm_scalar.run_warmup()
    assert state_equal(warm_fast.state_dict(), warm_scalar.state_dict())


@pytest.mark.parametrize("warm_fast,resume_fast", [(True, False),
                                                   (False, True),
                                                   (True, True)])
def test_resume_bit_identity_across_knob(warm_fast, resume_fast):
    straight = result_and_events(build_engine(l2s=("streamline",),
                                              fast=False))
    warm = build_engine(l2s=("streamline",), fast=warm_fast)
    warm.run_warmup()
    resumed = build_engine(l2s=("streamline",), fast=resume_fast)
    resumed.load_state(warm.state_dict())
    assert result_and_events(resumed) == straight


# -- Tier B edges ----------------------------------------------------------


def hits_trace(n, dep_at=(), write_at=(), blocks=8, gap=35):
    """All accesses land on ``blocks`` distinct lines: after one cold
    pass everything is a pure L1D read hit.  The default ``gap`` keeps
    per-record clock advance ``(gap+1)/width`` above the L1 hit latency
    so completions drain between records — the low-IPC steady state
    Tier B's timing screen requires."""
    idx = np.arange(n)
    addrs = (idx % blocks) * 64
    writes = np.zeros(n, dtype=bool)
    writes[list(write_at)] = True
    deps = np.zeros(n, dtype=bool)
    deps[list(dep_at)] = True
    return Trace("synthetic.hits", np.full(n, 0x400, dtype=np.int64),
                 addrs.astype(np.int64), writes,
                 np.full(n, gap, dtype=np.int32), deps)


def force_tierb(monkeypatch):
    """Shrink the screening thresholds so short synthetic traces
    exercise Tier B instead of needing 4k-record runs."""
    monkeypatch.setattr(fastpath, "MIN_RUN", 8)
    monkeypatch.setattr(fastpath, "STREAK_TRIGGER", 4)
    monkeypatch.setattr(fastpath, "CHUNK", 64)


def tierb_runs(monkeypatch, trace, warmup=0.5):
    """(scalar, fast) results for ``trace``, with Tier B engagement
    asserted via a screen spy."""
    screens = []
    orig = fastpath.FastLoop._screen_run

    def spy(self, *args, **kwargs):
        out = orig(self, *args, **kwargs)
        screens.append(out[0])
        return out

    scalar = result_and_events(build_engine(trace=trace, fast=False,
                                            warmup=warmup))
    monkeypatch.setattr(fastpath.FastLoop, "_screen_run", spy)
    fast = result_and_events(build_engine(trace=trace, fast=True,
                                          warmup=warmup))
    assert any(length > 0 for length in screens), \
        "Tier B never executed a run; the edge case was not exercised"
    return scalar, fast


def test_tierb_run_ends_at_warm_boundary(monkeypatch):
    force_tierb(monkeypatch)
    scalar, fast = tierb_runs(monkeypatch, hits_trace(400), warmup=0.5)
    assert fast == scalar


def test_tierb_run_ends_on_dep_load(monkeypatch):
    force_tierb(monkeypatch)
    scalar, fast = tierb_runs(
        monkeypatch, hits_trace(400, dep_at=(100, 101, 230)), warmup=0.0)
    assert fast == scalar


def test_tierb_run_ends_on_write(monkeypatch):
    force_tierb(monkeypatch)
    scalar, fast = tierb_runs(
        monkeypatch, hits_trace(400, write_at=(90, 250)), warmup=0.0)
    assert fast == scalar


def test_reused_event_delivery_is_field_identical(monkeypatch):
    """Generic delivery reuses pooled events (the non-retention
    contract on ``EventBus.subscribe``): field copies are identical to
    scalar publishes, while retained references are overwritten."""
    def recording(eng):
        fields, retained = [], []

        def on_fill(ev):
            fields.append((ev.kind, ev.level, ev.blk, ev.pc, ev.origin,
                           ev.now, ev.owner, ev.dirty))
            retained.append(ev)
        eng.bus.subscribe(EV.FILL, on_fill)
        eng.run()
        return fields, retained

    fields_s, retained_s = recording(build_engine(fast=False))
    fields_f, retained_f = recording(build_engine(fast=True))
    assert fields_f == fields_s
    # Scalar publish allocates per event; the fast path must not.
    assert len({id(ev) for ev in retained_s}) == len(retained_s)
    assert len({id(ev) for ev in retained_f}) < len(retained_f)


# -- free-way bookkeeping --------------------------------------------------


def test_cache_free_ways_stays_exact():
    """``Cache.free_ways`` (added for O(1) install decisions) must
    track the invalid-way count through fills, invalidations, and
    partition resizes."""
    cache = Cache("L", 64 * 4 * 8, 4, 1)

    def recount():
        return [sum(1 for line in row[:nd] if not line.valid)
                for row, nd in zip(cache.lines, cache._data_ways)]

    rng = np.random.default_rng(7)
    for blk in rng.integers(0, 256, size=400).tolist():
        cache.fill(int(blk), 0.0)
        assert cache.free_ways == recount()
    for blk in rng.integers(0, 256, size=64).tolist():
        cache.invalidate(int(blk))
        assert cache.free_ways == recount()
    for s in range(cache.num_sets):
        cache.set_data_ways(s, 2)
        assert cache.free_ways == recount()
        cache.set_data_ways(s, 4)
        assert cache.free_ways == recount()
    state = cache.state_dict()
    fresh = Cache("L", 64 * 4 * 8, 4, 1)
    fresh.load_state(state)
    assert fresh.free_ways == cache.free_ways
