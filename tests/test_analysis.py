"""Tests for the offline analyses (TP-MIN, redundancy, Table I)."""

import pytest

from repro.analysis.partition_table import (build_table, classify,
                                            render_table)
from repro.analysis.redundancy import measure
from repro.analysis.tpmin import compare, replay
from repro.core.metadata_store import StreamStore
from repro.core.stream_entry import StreamEntry
from repro.memory.metadata_store import PartitionController
from repro.sim.trace import TraceBuilder


def corr_trace(pairs, pc=1):
    """Trace whose per-PC correlation events are exactly ``pairs``."""
    b = TraceBuilder("t")
    seq = [pairs[0][0]]
    for t, x in pairs:
        assert t == seq[-1]
        seq.append(x)
    for blk in seq:
        b.add(pc, blk * 64)
    return b.build()


class TestTPMIN:
    def test_figure6_example(self):
        """Fig. 6: trigger B's target alternates; trigger A's is stable.
        With one entry, MIN keeps hot-trigger B (0 correlation hits);
        TP-MIN keeps (A -> B) and covers."""
        seq = [10, 20, 99, 20, 98, 10, 20, 97, 20, 96, 10, 20]
        b = TraceBuilder("fig6")
        for blk in seq:
            b.add(1, blk * 64)
        res = compare(b.build(), capacity=1)
        assert res["tp-min"].correlation_hit_rate >= \
            res["min"].correlation_hit_rate

    def test_stable_pairs_hit_under_both(self):
        b = TraceBuilder("loop")
        for _ in range(10):
            for blk in (1, 2, 3, 4):
                b.add(1, blk * 64)
        res = compare(b.build(), capacity=64)
        assert res["min"].correlation_hit_rate > 0.8
        assert res["tp-min"].correlation_hit_rate > 0.8

    def test_capacity_one_extreme(self):
        b = TraceBuilder("x")
        for _ in range(4):
            for blk in (1, 2, 3):
                b.add(1, blk * 64)
        r = replay(b.build(), capacity=1, policy="tp-min")
        assert r.lookups > 0

    def test_validation(self):
        b = TraceBuilder("v")
        b.add(1, 64)
        with pytest.raises(ValueError):
            replay(b.build(), 0)
        with pytest.raises(ValueError):
            replay(b.build(), 4, policy="lru")

    def test_pc_localized_events(self):
        """Correlations never cross PCs."""
        b = TraceBuilder("pcs")
        b.add(1, 64)
        b.add(2, 128)
        b.add(1, 192)
        r = replay(b.build(), 16, "min")
        assert r.lookups == 1  # only (1 -> 3) for pc 1


class TestRedundancy:
    def _store_with(self, entries):
        ctl = PartitionController(None, 1 << 20)
        store = StreamStore(64, ctl, permanent_sets=0)
        for e in entries:
            store._sets.setdefault((0, -1), []).append(
                __import__("repro.core.replacement",
                           fromlist=["StoredEntry"]).StoredEntry(e))
        return store

    def test_no_redundancy_for_disjoint_entries(self):
        store = self._store_with([StreamEntry(1, 4, [2, 3]),
                                  StreamEntry(10, 4, [11, 12])])
        rep = measure(store)
        assert rep.redundancy_rate == 0.0

    def test_overlapping_entries_detected(self):
        """Fig. 3a: misaligned entries store the overlap twice."""
        store = self._store_with([StreamEntry(1, 4, [2, 3, 4, 5]),
                                  StreamEntry(2, 4, [3, 4, 5, 6])])
        rep = measure(store)
        # Addresses 2,3,4,5 each stored twice: 8 redundant of 10.
        assert rep.redundant_correlations == 8
        assert rep.redundancy_rate == pytest.approx(0.8)

    def test_benign_redundancy_distinct_contexts(self):
        """The paper's (C,A,T) vs (D,A,Y) example: address A is stored
        twice, but the distinct predecessors disambiguate, so the copies
        are benign."""
        C, D, A, T, Y = 100, 200, 50, 7, 8
        store = self._store_with([StreamEntry(C, 4, [A, T]),
                                  StreamEntry(D, 4, [A, Y])])
        rep = measure(store)
        assert rep.redundant_correlations == 2  # the two copies of A
        assert rep.benign_fraction == 1.0

    def test_trigger_copies_are_not_benign(self):
        """A duplicate with no predecessor context cannot disambiguate."""
        store = self._store_with([StreamEntry(50, 4, [7]),
                                  StreamEntry(100, 4, [50, 9])])
        rep = measure(store)
        assert rep.redundant_correlations == 2
        assert rep.benign_fraction == 0.0


class TestPartitionTable:
    def test_eight_rows_paper_order(self):
        rows = build_table()
        assert [r.code for r in rows] == [
            "RUW", "FUW", "RUS", "FUS", "RTW", "FTW", "RTS", "FTS"]

    def test_only_fts_is_fully_good(self):
        for r in build_table():
            fully_good = (not r.low_assoc_small and not r.low_assoc_big
                          and r.cheap_repartitioning)
            assert fully_good == (r.code == "FTS")

    def test_matches_paper_cells(self):
        by_code = {r.code: r for r in build_table()}
        # Paper Table I: RTS fixes associativity but not repartitioning.
        assert not by_code["RTS"].low_assoc_small
        assert not by_code["RTS"].cheap_repartitioning
        # Tagged-way fixes big sizes only.
        assert by_code["RTW"].low_assoc_small
        assert not by_code["RTW"].low_assoc_big

    def test_classify_validation(self):
        with pytest.raises(ValueError):
            classify("sorted", True, "set")
        with pytest.raises(ValueError):
            classify("filtered", True, "diag")

    def test_render_contains_all_codes(self):
        text = render_table()
        for code in ("RUW", "FTS"):
            assert code in text
