"""Shared fixtures: tiny configs and traces so the suite stays fast."""

from __future__ import annotations

import os
import tempfile

import pytest

from repro.sim.config import SystemConfig
from repro.sim.trace import TraceBuilder

# Keep the suite hermetic: never read results persisted by earlier (and
# possibly semantically different) builds.  Cache tests opt back in with
# explicit ResultCache instances.
os.environ.setdefault("REPRO_CACHE", "0")
# Likewise don't litter benchmarks/.obs with run logs from every runner
# test; obs tests opt back in with REPRO_OBS=1 + a tmp REPRO_OBS_DIR.
os.environ.setdefault("REPRO_OBS", "0")
# And keep sampling off (experiments stay exact) with any plans a test
# does build going to a throwaway directory, not benchmarks/.splans;
# sampling tests opt back in with explicit PlanStore instances.
os.environ.setdefault("REPRO_SAMPLING", "0")
os.environ.setdefault("REPRO_SAMPLING_DIR",
                      tempfile.mkdtemp(prefix="repro-splans-"))


@pytest.fixture
def tiny_config() -> SystemConfig:
    """1/8-scale hierarchy: big enough to partition, small enough to
    pressure with a few thousand accesses."""
    return SystemConfig().scaled_down(8)


@pytest.fixture
def small_config() -> SystemConfig:
    """The experiments' 1/4-scale hierarchy."""
    return SystemConfig().scaled_down(4)


def chase_trace(name: str = "chase", nodes: int = 4096, n: int = 12288,
                pc: int = 0x400, seed: int = 3, dep: bool = True):
    """A deterministic pointer chase over a fixed permutation."""
    import numpy as np
    rng = np.random.default_rng(seed)
    perm = rng.permutation(nodes)
    base = 0x10000000 + (seed << 32)  # distinct data region per seed
    b = TraceBuilder(name)
    for i in range(n):
        b.add(pc, base + int(perm[i % nodes]) * 64, gap=4, dep=dep)
    return b.build()


@pytest.fixture
def chase():
    return chase_trace()
