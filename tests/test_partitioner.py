"""Tests for utility-aware dynamic partitioning (Section IV-D2/E4)."""

import pytest

from repro.core.partitioner import (ACCURACY_SCORES, DATA_HIT_SCORE,
                                    UtilityAwarePartitioner,
                                    accuracy_score)


def make(llc_sets=256, **kwargs):
    defaults = dict(llc_ways=16, meta_ways=8, epoch=100,
                    permanent_every=8)
    defaults.update(kwargs)
    return UtilityAwarePartitioner(llc_sets, **defaults)


class TestAccuracyScore:
    def test_paper_bands(self):
        assert accuracy_score(0.99) == 8
        assert accuracy_score(0.92) == 7
        assert accuracy_score(0.80) == 6
        assert accuracy_score(0.60) == 4
        assert accuracy_score(0.30) == 3
        assert accuracy_score(0.15) == 2
        assert accuracy_score(0.05) == 1

    def test_bands_monotone(self):
        scores = [accuracy_score(a / 100) for a in range(0, 101, 5)]
        assert scores == sorted(scores)


class TestObservations:
    def test_data_hits_favor_no_partition_under_pressure(self):
        """Blocks at stack distance 8..15 hit only without metadata."""
        p = make()
        set_idx = 1  # a sampled set
        blocks = [set_idx + i * 256 for i in range(12)]
        for _ in range(8):
            for blk in blocks:  # distance 11 on reuse
                p.observe_data(blk)
        assert p.scores[0] > p.scores[1]

    def test_short_distance_hits_count_everywhere(self):
        p = make()
        blk = 1  # sampled set
        for _ in range(10):
            p.observe_data(blk)
        # Distance 0 hits at every size (even with metadata allocated).
        assert p.scores[0] == p.scores[2] == p.scores[1] > 0

    def test_metadata_hits_scale_with_unfiltered_fraction(self):
        p = make()
        p.observe_metadata_hit(0, accuracy=1.0)
        assert p.scores[1] == pytest.approx(2 * p.scores[2])
        assert p.scores[2] == pytest.approx(4 * p.scores[0])

    def test_equal_weights_uses_data_score(self):
        p = make(equal_weights=True)
        p.observe_metadata_hit(0, accuracy=0.01)
        q = make(equal_weights=False)
        q.observe_metadata_hit(0, accuracy=0.01)
        assert p.scores[1] > q.scores[1]

    def test_correlations_per_hit_multiplier(self):
        p = make(correlations_per_hit=4)
        q = make(correlations_per_hit=1)
        p.observe_metadata_hit(0, accuracy=1.0)
        q.observe_metadata_hit(0, accuracy=1.0)
        assert p.scores[1] == pytest.approx(4 * q.scores[1])

    def test_unsampled_sets_ignored_for_data(self):
        p = make()
        for _ in range(10):
            p.observe_data(4)  # set 4: not in SAMPLE_OFFSETS mod 8
        assert all(v == 0 for v in p.scores.values())


class TestDecide:
    def test_metadata_heavy_epoch_picks_full(self):
        p = make()
        for _ in range(50):
            p.observe_metadata_hit(0, accuracy=1.0)
        assert p.decide(current=1) == 1

    def test_data_heavy_epoch_shrinks_one_rung(self):
        p = make()
        set_idx = 1
        blocks = [set_idx + i * 256 for i in range(12)]
        for _ in range(20):
            for blk in blocks:
                p.observe_data(blk)
        # Resizes move one rung per epoch: full -> half first ...
        assert p.decide(current=1) == 2
        # ... and with pressure on an even (half-size-allocated) sampled
        # set, half -> none on the next epoch.
        blocks = [2 + i * 256 for i in range(12)]
        for _ in range(20):
            for blk in blocks:
                p.observe_data(blk)
        assert p.decide(current=2) == 0

    def test_tie_keeps_current(self):
        p = make()
        assert p.decide(current=2) == 2

    def test_hysteresis_blocks_marginal_challenger(self):
        p = make()
        p.scores[0] = 100.0
        p.scores[1] = 95.0
        # 100 < 1.5 * 95: shrinking needs a decisive win.
        assert p.decide(current=1, hysteresis=1.10) == 1
        p.scores[0] = 200.0
        p.scores[1] = 95.0
        # Decisive, but resizes are gradual: one rung toward 0.
        assert p.decide(current=1, hysteresis=1.10) == 2

    def test_decide_resets_epoch(self):
        p = make(epoch=5)
        for _ in range(5):
            p.observe_metadata_hit(0, 1.0)
        assert p.epoch_elapsed
        p.decide(current=1)
        assert not p.epoch_elapsed
        assert all(v == 0 for v in p.scores.values())

    def test_decisions_recorded(self):
        p = make()
        p.decide(current=1)
        p.decide(current=1)
        assert len(p.decisions) == 2
