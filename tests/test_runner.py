"""The runner subsystem: specs, fingerprints, cache, and determinism.

The headline invariant (DESIGN.md §4: every experiment is
deterministic) is asserted here end-to-end: a serial run
(``REPRO_JOBS=1`` path) and a process-pool run of the same job matrix
produce bit-identical ``SimResult``s.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import experiment_config
from repro.prefetchers.stride import StridePrefetcher
from repro.prefetchers.triangel import TriangelPrefetcher
from repro.runner import (PrefetcherSpec, ResultCache, SimJob, SimRunner,
                          as_spec, env_jobs, spec)
from repro.runner import traces

TINY_N = 2500
CFG = experiment_config()


def _matrix_jobs():
    jobs = []
    for wl in ("gap.pr", "06.lbm"):
        jobs.append(SimJob.single(wl, TINY_N, CFG, l1="stride"))
        jobs.append(SimJob.single(wl, TINY_N, CFG, l1="stride",
                                  l2=(spec("triangel"),)))
    return jobs


def _mem_runner(workers: int) -> SimRunner:
    return SimRunner(jobs=workers, cache=ResultCache(persistent=False))


# -- specs ---------------------------------------------------------------------

def test_spec_kwargs_order_is_canonical():
    a = spec("streamline", degree=2, stream_length=8)
    b = spec("streamline", stream_length=8, degree=2)
    assert a == b and hash(a) == hash(b)
    assert a.canonical() == b.canonical()


def test_spec_builds_prefetcher():
    pf = spec("triangel", degree=2).build()
    assert isinstance(pf, TriangelPrefetcher)
    assert spec("triangel").build() is not spec("triangel").build()


def test_as_spec_coercions():
    assert as_spec(None) is None
    assert as_spec("stride") == PrefetcherSpec.of("stride")
    assert as_spec(StridePrefetcher) == PrefetcherSpec.of("stride")
    s = spec("berti")
    assert as_spec(s) is s
    with pytest.raises(TypeError):
        as_spec(lambda: StridePrefetcher())


def test_variant_spec_resolves():
    pf = spec("variant:+MB").build()
    assert pf.buffer_size > 0


def test_unknown_spec_raises():
    with pytest.raises(ValueError):
        spec("no-such-prefetcher").build()


# -- fingerprints --------------------------------------------------------------

def test_fingerprint_is_stable_and_param_sensitive():
    job = SimJob.single("gap.pr", TINY_N, CFG, l1="stride")
    same = SimJob.single("gap.pr", TINY_N, CFG, l1="stride")
    assert job.fingerprint() == same.fingerprint()
    assert job.fingerprint() != SimJob.single(
        "gap.pr", TINY_N + 1, CFG, l1="stride").fingerprint()
    assert job.fingerprint() != SimJob.single(
        "gap.pr", TINY_N, CFG, l1="stride", seed=5).fingerprint()
    assert job.fingerprint() != SimJob.single(
        "gap.cc", TINY_N, CFG, l1="stride").fingerprint()


def test_fingerprint_covers_config_and_specs():
    job = SimJob.single("gap.pr", TINY_N, CFG, l1="stride")
    other_cfg = CFG.scaled(l2_size=CFG.l2_size * 2)
    assert job.fingerprint() != SimJob.single(
        "gap.pr", TINY_N, other_cfg, l1="stride").fingerprint()
    assert job.fingerprint() != SimJob.single(
        "gap.pr", TINY_N, CFG, l1="stride",
        l2=(spec("streamline", degree=2),)).fingerprint()
    assert SimJob.single(
        "gap.pr", TINY_N, CFG, l1="stride",
        l2=(spec("streamline", degree=2),)).fingerprint() != \
        SimJob.single(
            "gap.pr", TINY_N, CFG, l1="stride",
            l2=(spec("streamline", degree=4),)).fingerprint()


# -- determinism ---------------------------------------------------------------

def test_serial_and_parallel_results_are_bit_identical():
    jobs = _matrix_jobs()
    serial = _mem_runner(1).run(jobs)
    parallel = _mem_runner(4).run(jobs)
    for s, p in zip(serial, parallel):
        assert s.single == p.single  # dataclass eq: every field matches


def test_multicore_job_matches_direct_engine_call():
    from repro.sim.multicore import run_multicore
    from repro.workloads import make
    cfg = experiment_config(num_cores=2)
    job = SimJob.multi(("gap.pr", "06.lbm"), TINY_N, cfg, l1="stride")
    via_runner = _mem_runner(1).run_one(job).multicore
    direct = run_multicore([make("gap.pr", TINY_N), make("06.lbm", TINY_N)],
                           cfg, l1_prefetcher=StridePrefetcher)
    assert via_runner.cores == direct.cores


# -- caching -------------------------------------------------------------------

def test_memo_hit_and_batch_dedup():
    runner = _mem_runner(1)
    job = SimJob.single("gap.pr", TINY_N, CFG, l1="stride")
    first = runner.run([job, job])   # in-batch dup computed once
    assert runner.cache.stats.misses == 1
    again = runner.run_one(job)
    assert runner.cache.stats.memo_hits == 1
    assert again.single == first[0].single


def test_disk_cache_round_trip(tmp_path):
    job = SimJob.single("gap.pr", TINY_N, CFG, l1="stride")
    warm = SimRunner(jobs=1, cache=ResultCache(tmp_path, persistent=True))
    first = warm.run_one(job)
    assert warm.cache.stats.misses == 1 and warm.cache.stats.stores == 1
    # A fresh process-equivalent (empty memo) hits the disk level.
    cold = SimRunner(jobs=1, cache=ResultCache(tmp_path, persistent=True))
    second = cold.run_one(job)
    assert cold.cache.stats.disk_hits == 1 and cold.cache.stats.misses == 0
    assert second.single == first.single


def test_config_change_invalidates(tmp_path):
    cache = ResultCache(tmp_path, persistent=True)
    runner = SimRunner(jobs=1, cache=cache)
    runner.run_one(SimJob.single("gap.pr", TINY_N, CFG, l1="stride"))
    changed = CFG.scaled(mlp=CFG.mlp // 2)
    runner.run_one(SimJob.single("gap.pr", TINY_N, changed, l1="stride"))
    assert cache.stats.misses == 2  # new fingerprint, no false hit


def test_corrupt_disk_entry_is_recomputed(tmp_path):
    cache = ResultCache(tmp_path, persistent=True)
    runner = SimRunner(jobs=1, cache=cache)
    job = SimJob.single("gap.pr", TINY_N, CFG, l1="stride")
    runner.run_one(job)
    path = cache._path(job.fingerprint())
    # "garbage\n" starts with the pickle GET opcode, whose operand parse
    # raises ValueError rather than UnpicklingError — both must be misses.
    for junk in (b"not a pickle", b"garbage\n"):
        path.write_bytes(junk)
        fresh = ResultCache(tmp_path, persistent=True)
        result = SimRunner(jobs=1, cache=fresh).run_one(job)
        assert result.single.ipc > 0
        assert fresh.stats.misses == 1


def test_probe_results_travel_with_cache(tmp_path):
    cache = ResultCache(tmp_path, persistent=True)
    job = SimJob.single("gap.pr", TINY_N, CFG, l1="stride",
                        l2=(spec("streamline"),),
                        probes=("store_stats", "alignment"))
    first = SimRunner(jobs=1, cache=cache).run_one(job)
    assert first.probes["store_stats"]["lookups"] > 0
    reloaded = SimRunner(
        jobs=1, cache=ResultCache(tmp_path, persistent=True)).run_one(job)
    assert reloaded.probes == first.probes


# -- knobs ---------------------------------------------------------------------

def test_repro_jobs_env(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "4")
    assert env_jobs() == 4
    assert SimRunner(cache=ResultCache(persistent=False)).workers == 4
    monkeypatch.setenv("REPRO_JOBS", "")
    assert env_jobs() >= 1


def test_repro_cache_opt_out(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE", "0")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "sc"))
    cache = ResultCache()
    SimRunner(jobs=1, cache=cache).run_one(
        SimJob.single("gap.pr", TINY_N, CFG, l1="stride"))
    assert not (tmp_path / "sc").exists()  # nothing persisted


def test_trace_cache_memoizes_and_bounds(monkeypatch):
    traces.clear()
    t1 = traces.get_trace("gap.pr", 2000, 1234)
    t2 = traces.get_trace("gap.pr", 2000, 1234)
    assert t1 is t2
    assert traces.get_trace("gap.pr", 2000, 99) is not t1
    monkeypatch.setenv("REPRO_TRACE_CACHE", "2")
    for i in range(4):
        traces.get_trace("gap.pr", 1000 + i, 1234)
    assert traces.cache_size() <= 2
    traces.clear()


# -- cache integrity -----------------------------------------------------------

def _put_racer(directory, fingerprint, result, barrier):
    """Child-process body for the concurrent-put race (fork target)."""
    cache = ResultCache(directory, persistent=True)
    barrier.wait(timeout=30)
    cache.put(fingerprint, result)


class TestCacheIntegrity:
    def _stored(self, tmp_path):
        cache = ResultCache(tmp_path, persistent=True)
        job = SimJob.single("gap.pr", TINY_N, CFG, l1="stride")
        SimRunner(jobs=1, cache=cache).run_one(job)
        return cache, job.fingerprint()

    def test_put_writes_verifiable_sha256_sidecar(self, tmp_path):
        cache, fp = self._stored(tmp_path)
        sidecar = cache._digest_path(fp)
        assert sidecar.is_file()
        import hashlib
        blob = cache._path(fp).read_bytes()
        assert sidecar.read_text().strip() == \
            hashlib.sha256(blob).hexdigest()
        assert cache.verify(fp) == len(blob)

    def test_digest_mismatch_evicts_to_miss(self, tmp_path):
        _, fp = self._stored(tmp_path)
        fresh = ResultCache(tmp_path, persistent=True)
        # Valid pickle, wrong bytes: only the digest can catch it.
        fresh._path(fp).write_bytes(b"\x80\x04N.")  # pickle of None
        with pytest.warns(UserWarning, match="evicting corrupt"):
            assert fresh.get(fp) is None
        assert fresh.stats.evictions == 1
        assert fresh.stats.misses == 1
        assert not fresh._path(fp).exists()
        assert not fresh._digest_path(fp).exists()
        drained = fresh.drain_evictions()
        assert len(drained) == 1 and drained[0]["fingerprint"] == fp
        assert "sha256" in drained[0]["reason"]
        assert fresh.drain_evictions() == []  # drained means drained

    def test_missing_sidecar_evicts_to_miss(self, tmp_path):
        _, fp = self._stored(tmp_path)
        fresh = ResultCache(tmp_path, persistent=True)
        fresh._digest_path(fp).unlink()
        with pytest.warns(UserWarning, match="sidecar"):
            assert fresh.get(fp) is None
        assert fresh.stats.evictions == 1
        assert not fresh._path(fp).exists()

    def test_verify_reports_without_evicting(self, tmp_path):
        from repro.runner import CacheCorrupt
        _, fp = self._stored(tmp_path)
        fresh = ResultCache(tmp_path, persistent=True)
        fresh._path(fp).write_bytes(b"junk")
        with pytest.raises(CacheCorrupt):
            fresh.verify(fp)
        assert fresh._path(fp).exists()  # verify reports, get repairs
        assert fresh.stats.evictions == 0

    def test_concurrent_puts_leave_readable_winner(self, tmp_path):
        import multiprocessing
        cache, fp = self._stored(tmp_path)
        result = cache.get(fp)
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(2)
        procs = [ctx.Process(target=_put_racer,
                             args=(tmp_path, fp, result, barrier))
                 for _ in range(2)]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        # Whatever interleaving happened, the entry verifies and loads.
        fresh = ResultCache(tmp_path, persistent=True)
        assert fresh.verify(fp) > 0
        reloaded = fresh.get(fp)
        assert reloaded is not None
        assert reloaded.single == result.single
        assert fresh.stats.evictions == 0


class TestCacheCli:
    def _stored(self, tmp_path, count=2):
        cache = ResultCache(tmp_path, persistent=True)
        runner = SimRunner(jobs=1, cache=cache)
        fingerprints = []
        for wl in ("gap.pr", "06.lbm")[:count]:
            job = SimJob.single(wl, TINY_N, CFG, l1="stride")
            runner.run_one(job)
            fingerprints.append(job.fingerprint())
        return cache, fingerprints

    def test_list_and_verify_ok(self, tmp_path, capsys):
        from repro.runner.__main__ import main
        _, fingerprints = self._stored(tmp_path)
        assert main(["cache", "--dir", str(tmp_path), "list"]) == 0
        out = capsys.readouterr().out
        for fp in fingerprints:
            assert fp in out and "KiB" in out
        assert main(["cache", "--dir", str(tmp_path), "verify"]) == 0
        assert "ok" in capsys.readouterr().out

    def test_verify_flags_corruption(self, tmp_path, capsys):
        from repro.runner.__main__ import main
        cache, fingerprints = self._stored(tmp_path, count=1)
        cache._path(fingerprints[0]).write_bytes(b"junk")
        assert main(["cache", "--dir", str(tmp_path), "verify"]) == 1
        assert "CORRUPT" in capsys.readouterr().err
        assert main(["cache", "--dir", str(tmp_path), "list"]) == 0
        assert "CORRUPT" in capsys.readouterr().out

    def test_gc_keeps_most_recent(self, tmp_path, capsys):
        import os
        from repro.runner.__main__ import main
        cache, fingerprints = self._stored(tmp_path)
        # Make mtime order unambiguous for the oldest-first policy.
        os.utime(cache._path(fingerprints[0]), (1, 1))
        assert main(["cache", "--dir", str(tmp_path), "gc",
                     "--keep", "1"]) == 0
        assert fingerprints[0] in capsys.readouterr().out
        left = ResultCache(tmp_path, persistent=True).entries()
        assert left == [fingerprints[1]]
