"""The harness: one object binding samplers to an engine's event bus.

The engine builds a :class:`TelemetryHarness` when its config carries a
:class:`~repro.telemetry.config.TelemetryConfig`, resets it at the
warm-up boundary (in the same breath as the uncore/bus reset, so every
telemetry number describes steady state), finalizes it in ``collect``,
and exposes it as ``engine.telemetry``.  The ``telemetry`` runner probe
(:mod:`repro.runner.probes`) ships :meth:`export`'s plain-data payload
with the :class:`~repro.runner.jobs.JobResult`, so telemetry travels and
caches like any other probe output.

Everything here observes the bus; nothing publishes, nothing touches
simulation state, so telemetry-on runs produce numerically identical
``SimResult``s (asserted by ``benchmarks/bench_telemetry_overhead.py``).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..memory.events import EventBus
from .config import TelemetryConfig
from .intervals import IntervalSampler
from .lifecycle import PrefetchLifecycleTracer

#: Version of the exported payload/JSONL layout (independent of the
#: runner's cache schema; bump when export fields change shape).
TELEMETRY_SCHEMA_VERSION = 1


class TelemetryHarness:
    """Owns the sampler/tracer pair for one simulated system."""

    def __init__(self, bus: EventBus, config: TelemetryConfig,
                 num_cores: int = 1,
                 owner_names: Optional[Dict[int, str]] = None,
                 gauges: Optional[Dict[str, Callable[[], float]]] = None):
        self.bus = bus
        self.config = config
        self.num_cores = num_cores
        self.owner_names: Dict[int, str] = dict(owner_names or {})
        self.sampler: Optional[IntervalSampler] = \
            IntervalSampler(bus, config, gauges) if config.intervals \
            else None
        self.tracer: Optional[PrefetchLifecycleTracer] = \
            PrefetchLifecycleTracer(bus) if config.lifecycle else None
        self._finalized = False

    # -- engine-driven lifecycle -------------------------------------------

    def reset(self) -> None:
        """The warm-up boundary: drop everything observed so far."""
        if self.sampler is not None:
            self.sampler.reset()
        if self.tracer is not None:
            self.tracer.reset()
        self._finalized = False

    def finalize(self) -> None:
        """End of run: flush the partial interval, settle in-flights."""
        if self._finalized:
            return
        self._finalized = True
        if self.sampler is not None:
            self.sampler.flush()
        if self.tracer is not None:
            self.tracer.finalize()

    def detach(self) -> None:
        """Unsubscribe everything from the bus (idempotent)."""
        if self.sampler is not None:
            self.sampler.detach()
        if self.tracer is not None:
            self.tracer.detach()

    # -- checkpointing ------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        return {
            "sampler": (self.sampler.state_dict()
                        if self.sampler is not None else None),
            "tracer": (self.tracer.state_dict()
                       if self.tracer is not None else None),
            "finalized": self._finalized,
        }

    def load_state(self, state: Dict[str, object]) -> None:
        if self.sampler is not None:
            if state["sampler"] is not None:
                self.sampler.load_state(state["sampler"])
            else:
                self.sampler.reset()
        if self.tracer is not None:
            if state["tracer"] is not None:
                self.tracer.load_state(state["tracer"])
            else:
                self.tracer.reset()
        self._finalized = bool(state["finalized"])

    # -- results ------------------------------------------------------------

    def export(self) -> Dict[str, object]:
        """The whole harness as plain picklable/JSON-serializable data."""
        self.finalize()
        return {
            "schema": TELEMETRY_SCHEMA_VERSION,
            "enabled": True,
            "num_cores": self.num_cores,
            "interval": self.config.interval,
            "intervals": (self.sampler.series()
                          if self.sampler is not None else None),
            "lifecycle": (self.tracer.summary(self.owner_names)
                          if self.tracer is not None else None),
        }
