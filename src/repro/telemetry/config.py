"""Telemetry configuration.

:class:`TelemetryConfig` is the opt-in knob carried by
:class:`repro.sim.config.SystemConfig` (``telemetry=None`` keeps the
engine exactly as it was — no subscribers, no overhead, bit-identical
results).  It lives here, not in ``repro.sim``, so the telemetry package
never has to import the simulator: everything in ``repro.telemetry``
observes the :class:`repro.memory.events.EventBus` and nothing else.

Because the config is a frozen dataclass nested inside ``SystemConfig``,
it participates in job fingerprints: enabling telemetry (or changing the
sampling interval) keys distinct cache entries, so telemetry-on results
never shadow the golden telemetry-off ones.

Environment knobs (read by :meth:`TelemetryConfig.from_env`, used by the
experiment layer):

* ``REPRO_TELEMETRY=1`` — enable telemetry in experiments that support
  it (fig9 gains timeliness columns; default off keeps goldens stable).
* ``REPRO_TELEMETRY_INTERVAL=<n>`` — demand accesses per interval
  sample (default :data:`DEFAULT_INTERVAL`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Tuple

#: Default sampling period, in committed demand accesses.
DEFAULT_INTERVAL = 1000

#: The standard counter set sampled per interval; see
#: :data:`repro.telemetry.intervals.COUNTER_SPECS` for definitions.
DEFAULT_COUNTERS: Tuple[str, ...] = (
    "l1d_misses", "l2_misses", "llc_misses",
    "pf_issued", "pf_dropped", "pf_fills", "pf_useful", "pf_useless",
    "meta_reads", "meta_writes",
)


def _env_int(name: str, default: int, minimum: int = 1) -> int:
    """A validated integer env knob (clear error naming the variable)."""
    raw = os.environ.get(name, "")
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{name} must be an integer >= {minimum}, got {raw!r}") \
            from None
    if value < minimum:
        raise ValueError(
            f"{name} must be an integer >= {minimum}, got {raw!r}")
    return value


@dataclass(frozen=True)
class TelemetryConfig:
    """What to observe, and how often to sample.

    ``interval``
        Demand accesses between interval snapshots.
    ``intervals`` / ``lifecycle``
        Independently toggle the time-series sampler and the
        prefetch-lifecycle tracer.
    ``counters``
        Names from ``repro.telemetry.intervals.COUNTER_SPECS`` sampled
        each interval (the gauge columns are always sampled).
    ``max_intervals``
        Safety bound on the series length; sampling stops (with a
        ``truncated`` marker in the export) once reached.
    """

    interval: int = DEFAULT_INTERVAL
    intervals: bool = True
    lifecycle: bool = True
    counters: Tuple[str, ...] = DEFAULT_COUNTERS
    max_intervals: int = 100_000

    def __post_init__(self) -> None:
        if self.interval < 1:
            raise ValueError("telemetry interval must be >= 1")
        if self.max_intervals < 1:
            raise ValueError("max_intervals must be >= 1")
        if not self.intervals and not self.lifecycle:
            raise ValueError(
                "telemetry config enables neither intervals nor lifecycle; "
                "use SystemConfig(telemetry=None) to disable telemetry")

    @classmethod
    def from_env(cls) -> Optional["TelemetryConfig"]:
        """The experiment-layer opt-in: None unless ``REPRO_TELEMETRY=1``."""
        if os.environ.get("REPRO_TELEMETRY", "") in ("", "0"):
            return None
        return cls(interval=_env_int("REPRO_TELEMETRY_INTERVAL",
                                     DEFAULT_INTERVAL))
