"""Prefetch-lifecycle tracing: issue → fill → first use / eviction.

Whole-run accuracy says *whether* a prefetch was touched; it says
nothing about *when* the fill landed relative to the demand that needed
it — and timeliness is the metric Triangel and the paper argue actually
separates on-chip temporal prefetchers.  The
:class:`PrefetchLifecycleTracer` reconstructs each prefetch's life from
bus events alone and classifies it:

* **on-time** — the fill completed at or before the demand's issue time;
  the demand paid a hit.
* **late** — the demand arrived while the fill was still in flight; it
  paid the *remaining* latency (partial credit — the cache model already
  charges exactly this, see ``Cache.lookup``).  The tracer also
  accumulates how late (fill-ready minus demand-issue cycles).
* **unused** — evicted without a demand touch (pure pollution), or
  silently invalidated by a partition resize and then re-prefetched.
* **in-flight** — still resident and untouched when the run ended;
  neither credited nor condemned.

Per prefetcher (owner) and per core, the identity

``issued == on_time + late + unused + in_flight``

holds by construction and is asserted by :meth:`check_conservation`,
which the telemetry tests run against the bus's own
``prefetch-issued`` counters.

Event plumbing detail: the hierarchy publishes the prefetch ``fill``
(carrying the fill-completion time) immediately *before* the matching
``prefetch-issued`` event, so the tracer stages fill times in a pending
map and binds them when the issue event names the owner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..memory.events import EV, EventBus, HierarchyEvent

#: Lifecycle classes, in export order.
ON_TIME = "on_time"
LATE = "late"
UNUSED = "unused"
IN_FLIGHT = "in_flight"
CLASSES = (ON_TIME, LATE, UNUSED, IN_FLIGHT)

#: Prefetches are tracked at the levels they are issued into.
_TRACKED_LEVELS = ("l1d", "l2")

Key = Tuple[str, int]  # (level, blk): at most one live prefetch per line


@dataclass
class _Record:
    """One outstanding prefetch."""

    __slots__ = ("owner", "core_id", "issued_at", "ready")

    owner: int
    core_id: int
    issued_at: float
    ready: float


@dataclass
class LifecycleCounts:
    """Per-(owner, core) lifecycle tallies."""

    issued: int = 0
    on_time: int = 0
    late: int = 0
    unused: int = 0
    in_flight: int = 0
    late_cycles: float = 0.0    # summed (ready - demand issue) over lates

    @property
    def resolved(self) -> int:
        return self.on_time + self.late + self.unused

    def as_dict(self) -> Dict[str, object]:
        d: Dict[str, object] = {
            "issued": self.issued, "on_time": self.on_time,
            "late": self.late, "unused": self.unused,
            "in_flight": self.in_flight,
        }
        d["avg_late_cycles"] = (self.late_cycles / self.late
                                if self.late else 0.0)
        return d

    def merge(self, other: "LifecycleCounts") -> None:
        self.issued += other.issued
        self.on_time += other.on_time
        self.late += other.late
        self.unused += other.unused
        self.in_flight += other.in_flight
        self.late_cycles += other.late_cycles


class PrefetchLifecycleTracer:
    """Follows every prefetch from issue to resolution, via bus events."""

    def __init__(self, bus: EventBus):
        self.bus = bus
        self._pending_fill: Dict[Key, float] = {}
        self._records: Dict[Key, _Record] = {}
        self.counts: Dict[Tuple[int, int], LifecycleCounts] = {}
        self._finalized = False
        self._handlers = [
            (EV.FILL, self._on_fill),
            (EV.PREFETCH_ISSUED, self._on_issued),
            (EV.PREFETCH_USEFUL, self._on_useful),
            (EV.PREFETCH_USELESS, self._on_useless),
        ]
        for kind, fn in self._handlers:
            bus.subscribe(kind, fn)

    def _counts(self, owner: int, core_id: int) -> LifecycleCounts:
        key = (owner, core_id)
        c = self.counts.get(key)
        if c is None:
            c = self.counts[key] = LifecycleCounts()
        return c

    # -- event handlers -----------------------------------------------------

    def _on_fill(self, ev: HierarchyEvent) -> None:
        if ev.origin == "prefetch" and ev.level in _TRACKED_LEVELS:
            # ev.now is the fill-completion ("ready") time.
            self._pending_fill[(ev.level, ev.blk)] = ev.now

    def _on_issued(self, ev: HierarchyEvent) -> None:
        if ev.level not in _TRACKED_LEVELS:
            return
        key = (ev.level, ev.blk)
        stale = self._records.pop(key, None)
        if stale is not None:
            # The line vanished without an eviction event (a partition
            # resize invalidates ceded ways silently): it was never
            # used, so the old prefetch resolves as unused.
            self._counts(stale.owner, stale.core_id).unused += 1
        ready = self._pending_fill.pop(key, ev.now)
        self._records[key] = _Record(ev.owner, ev.core_id, ev.now, ready)
        self._counts(ev.owner, ev.core_id).issued += 1

    def _on_useful(self, ev: HierarchyEvent) -> None:
        rec = self._records.pop((ev.level, ev.blk), None)
        if rec is None:
            return  # issued before the warm-up reset; not ours to classify
        c = self._counts(rec.owner, rec.core_id)
        if rec.ready <= ev.now:
            c.on_time += 1
        else:
            c.late += 1
            c.late_cycles += rec.ready - ev.now

    def _on_useless(self, ev: HierarchyEvent) -> None:
        rec = self._records.pop((ev.level, ev.blk), None)
        if rec is None:
            return
        self._counts(rec.owner, rec.core_id).unused += 1

    # -- lifecycle ----------------------------------------------------------

    def finalize(self) -> None:
        """Classify still-outstanding prefetches as in-flight."""
        if self._finalized:
            return
        self._finalized = True
        for rec in self._records.values():
            self._counts(rec.owner, rec.core_id).in_flight += 1

    def reset(self) -> None:
        """Drop warm-up observations, including unresolved records: a
        prefetch issued before the reset must not be classified after it
        (the issue counters it would be checked against were reset too).
        """
        self._pending_fill.clear()
        self._records.clear()
        self.counts.clear()
        self._finalized = False

    def detach(self) -> None:
        for kind, fn in self._handlers:
            self.bus.unsubscribe(kind, fn)
        self._handlers = []

    # -- checkpointing ------------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "pending_fill": [[lvl, blk, t] for (lvl, blk), t
                             in self._pending_fill.items()],
            "records": [[lvl, blk, r.owner, r.core_id, r.issued_at,
                         r.ready]
                        for (lvl, blk), r in self._records.items()],
            "counts": [[owner, core, c.issued, c.on_time, c.late,
                        c.unused, c.in_flight, c.late_cycles]
                       for (owner, core), c in self.counts.items()],
            "finalized": self._finalized,
        }

    def load_state(self, state: dict) -> None:
        self._pending_fill = {(str(lvl), int(blk)): float(t)
                              for lvl, blk, t in state["pending_fill"]}
        self._records = {
            (str(lvl), int(blk)): _Record(int(owner), int(core),
                                          float(issued_at), float(ready))
            for lvl, blk, owner, core, issued_at, ready
            in state["records"]}
        self.counts = {
            (int(owner), int(core)): LifecycleCounts(
                issued=int(issued), on_time=int(on_time), late=int(late),
                unused=int(unused), in_flight=int(in_flight),
                late_cycles=float(late_cycles))
            for owner, core, issued, on_time, late, unused, in_flight,
            late_cycles in state["counts"]}
        self._finalized = bool(state["finalized"])

    # -- results ------------------------------------------------------------

    def by_owner(self) -> Dict[int, LifecycleCounts]:
        out: Dict[int, LifecycleCounts] = {}
        for (owner, _core), c in self.counts.items():
            agg = out.get(owner)
            if agg is None:
                agg = out[owner] = LifecycleCounts()
            agg.merge(c)
        return out

    def summary(self, owner_names: Dict[int, str]) -> Dict[str, object]:
        """Per-prefetcher (merged across cores sharing a name) tallies,
        with a per-core breakdown nested under each."""
        per_name: Dict[str, LifecycleCounts] = {}
        per_name_core: Dict[str, Dict[int, LifecycleCounts]] = {}
        for (owner, core), c in sorted(self.counts.items()):
            name = owner_names.get(owner, f"owner{owner}")
            agg = per_name.get(name)
            if agg is None:
                agg = per_name[name] = LifecycleCounts()
            agg.merge(c)
            cores = per_name_core.setdefault(name, {})
            core_agg = cores.get(core)
            if core_agg is None:
                core_agg = cores[core] = LifecycleCounts()
            core_agg.merge(c)
        out: Dict[str, object] = {}
        for name, agg in per_name.items():
            entry = agg.as_dict()
            entry["per_core"] = {str(core): c.as_dict()
                                 for core, c in
                                 sorted(per_name_core[name].items())}
            out[name] = entry
        return out

    def check_conservation(self) -> List[str]:
        """Violations of issued == on_time + late + unused + in_flight
        (empty after :meth:`finalize` unless the tracer has a bug)."""
        errors = []
        for (owner, core), c in sorted(self.counts.items()):
            if c.issued != c.resolved + c.in_flight:
                errors.append(
                    f"owner {owner} core {core}: issued {c.issued} != "
                    f"{c.on_time}+{c.late}+{c.unused}+{c.in_flight}")
        return errors
