"""Human-readable rendering of a telemetry payload.

Turns one harness export (or a cached ``telemetry`` probe payload —
same thing) into the two tables the paper's discussion needs: the
interval time-series (what happened when) and the timeliness breakdown
(whether each prefetcher's wins arrived before the demand).  Used by the
``python -m repro.telemetry`` CLI and handy from notebooks.

Self-contained on purpose: this module formats plain dicts and must not
import ``repro.sim`` (``repro.sim.config`` imports the telemetry
package, and a back-edge here would be a cycle).
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def _table(headers: Sequence[str],
           rows: Sequence[Sequence[object]]) -> str:
    cells = [[str(h) for h in headers]] + [[str(c) for c in row]
                                           for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for i, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _fmt(x: object) -> object:
    if isinstance(x, float):
        return round(x, 3)
    return x


def render_intervals(series: Dict[str, object],
                     max_rows: int = 20) -> str:
    """The interval time-series as a table (evenly subsampled rows)."""
    index: List[int] = list(series.get("index", []))  # type: ignore[arg-type]
    if not index:
        return "(no interval samples)"
    counters: Dict[str, List[int]] = series.get("counters", {})  # type: ignore[assignment]
    gauges: Dict[str, List[float]] = series.get("gauges", {})  # type: ignore[assignment]
    n = len(index)
    step = max(1, (n + max_rows - 1) // max_rows)
    picked = list(range(0, n, step))
    if picked[-1] != n - 1:
        picked.append(n - 1)
    headers = ["i", "access", "clock"] + list(counters) + list(gauges)
    rows = []
    access = series.get("access", [])
    clock = series.get("clock", [])
    for i in picked:
        row: List[object] = [index[i], access[i], _fmt(clock[i])]
        row += [col[i] for col in counters.values()]
        row += [_fmt(col[i]) for col in gauges.values()]
        rows.append(row)
    text = _table(headers, rows)
    if step > 1:
        text += f"\n({n} intervals total, showing every {step}th)"
    if series.get("truncated"):
        text += "\n(series truncated at max_intervals)"
    return text


def render_lifecycle(lifecycle: Dict[str, Dict[str, object]]) -> str:
    """The timeliness taxonomy per prefetcher."""
    if not lifecycle:
        return "(no prefetch lifecycles traced)"
    headers = ["prefetcher", "issued", "on_time", "late", "unused",
               "in_flight", "on_time%", "late%", "avg_late_cyc"]
    rows = []
    for name, e in lifecycle.items():
        issued = int(e.get("issued", 0)) or 0
        denom = issued if issued else 1
        rows.append([
            name, issued, e.get("on_time", 0), e.get("late", 0),
            e.get("unused", 0), e.get("in_flight", 0),
            _fmt(100.0 * int(e.get("on_time", 0)) / denom),
            _fmt(100.0 * int(e.get("late", 0)) / denom),
            _fmt(e.get("avg_late_cycles", 0.0)),
        ])
    return _table(headers, rows)


def render(payload: Dict[str, object], max_rows: int = 20) -> str:
    """The full report for one telemetry payload."""
    if not payload.get("enabled"):
        return "telemetry was not enabled for this run"
    parts = [f"telemetry report (interval={payload.get('interval')}, "
             f"cores={payload.get('num_cores')})"]
    lifecycle = payload.get("lifecycle")
    if isinstance(lifecycle, dict):
        parts.append("timeliness (prefetch lifecycle):")
        parts.append(render_lifecycle(lifecycle))
    series = payload.get("intervals")
    if isinstance(series, dict):
        parts.append("interval time-series:")
        parts.append(render_intervals(series, max_rows=max_rows))
    return "\n\n".join(parts)
