"""CLI: telemetry reports for cached or freshly simulated runs.

Usage::

    python -m repro.telemetry run <workload> [--prefetcher streamline]
        [--l1 stride] [--n 40000] [--interval 1000] [--seed 1234]
        [--jsonl out.jsonl]
    python -m repro.telemetry list
    python -m repro.telemetry report <fingerprint-prefix>
        [--jsonl out.jsonl]
    python -m repro.telemetry validate <file.jsonl> [--schema schema.json]

``run`` goes through the shared :class:`~repro.runner.SimRunner`, so a
run you already paid for (same workload/config/probe set) comes straight
from the result cache; ``list``/``report`` browse the on-disk cache for
entries that carry a ``telemetry`` probe payload and render them without
simulating anything.

Heavy imports (runner, workloads) happen inside the subcommands, so
``validate`` works even where numpy is unavailable.
"""

from __future__ import annotations

import argparse
import pickle
import sys
from typing import Dict, List, Optional, Tuple

from .export import SCHEMA, load_schema, validate_jsonl, write_jsonl
from .report import render


def _cached_payloads(limit: Optional[int] = None
                     ) -> List[Tuple[str, Dict[str, object], object]]:
    """(fingerprint, telemetry payload, JobResult) for cached runs."""
    from ..runner import default_cache_dir
    directory = default_cache_dir()
    out = []
    if not directory.is_dir():
        return out
    for path in sorted(directory.glob("*.pkl")):
        try:
            with open(path, "rb") as fh:
                result = pickle.load(fh)
        except Exception:
            continue  # stale or torn entry; the cache treats it as a miss
        payload = getattr(result, "probes", {}).get("telemetry")
        if isinstance(payload, dict) and payload.get("enabled"):
            out.append((path.stem, payload, result))
            if limit is not None and len(out) >= limit:
                break
    return out


def _describe(result: object) -> str:
    value = getattr(result, "value", None)
    workload = getattr(value, "workload", None)
    if workload is None:
        cores = getattr(value, "cores", None)
        if cores:
            workload = "+".join(c.workload for c in cores)
    names = [p.name for p in getattr(value, "prefetchers", [])] or ["-"]
    return f"{workload or '?'} [{','.join(names)}]"


def cmd_list(_args: argparse.Namespace) -> int:
    entries = _cached_payloads()
    if not entries:
        print("no cached runs with telemetry payloads "
              "(run one with: python -m repro.telemetry run <workload>)")
        return 0
    for fingerprint, payload, result in entries:
        series = payload.get("intervals") or {}
        samples = len(series.get("index", []))
        print(f"{fingerprint[:16]}  {_describe(result):<40} "
              f"interval={payload.get('interval')} samples={samples}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    matches = [(fp, payload) for fp, payload, _ in _cached_payloads()
               if fp.startswith(args.fingerprint)]
    if not matches:
        print(f"no cached telemetry payload matches {args.fingerprint!r}",
              file=sys.stderr)
        return 1
    if len(matches) > 1:
        print(f"ambiguous prefix {args.fingerprint!r}: "
              + ", ".join(fp[:16] for fp, _ in matches), file=sys.stderr)
        return 1
    fingerprint, payload = matches[0]
    print(f"== {fingerprint[:16]} ==")
    print(render(payload, max_rows=args.rows))
    if args.jsonl:
        n = write_jsonl(payload, args.jsonl)
        print(f"\nwrote {n} records to {args.jsonl}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    from ..runner import SimJob, get_runner, spec
    from .config import TelemetryConfig

    # Late import: repro.sim pulls numpy via the trace machinery.
    from ..sim.config import SystemConfig

    tcfg = TelemetryConfig(interval=args.interval)
    config = SystemConfig().scaled_down(args.scale).scaled(telemetry=tcfg)
    l2 = (spec(args.prefetcher),) if args.prefetcher else ()
    job = SimJob.single(args.workload, args.n, config, l1=args.l1, l2=l2,
                        seed=args.seed, probes=("telemetry",))
    result = get_runner().run_one(job)
    payload = result.probes["telemetry"]
    print(f"== {job.fingerprint()[:16]} "
          f"{args.workload} [{args.prefetcher or 'no L2 pf'}] ==")
    print(render(payload, max_rows=args.rows))
    if args.jsonl:
        n = write_jsonl(payload, args.jsonl)
        print(f"\nwrote {n} records to {args.jsonl}")
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    schema = load_schema(args.schema) if args.schema else SCHEMA
    errors = validate_jsonl(args.path, schema)
    if errors:
        for err in errors:
            print(f"INVALID: {err}", file=sys.stderr)
        return 1
    print(f"{args.path}: valid")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="interval/timeliness reports for simulation runs")
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="simulate (or fetch from cache) "
                                       "one run with telemetry")
    p_run.add_argument("workload")
    p_run.add_argument("--prefetcher", default="streamline",
                       help="L2 prefetcher spec name ('' for none)")
    p_run.add_argument("--l1", default="stride")
    p_run.add_argument("--n", type=int, default=40_000)
    p_run.add_argument("--interval", type=int, default=1000)
    p_run.add_argument("--seed", type=int, default=1234)
    p_run.add_argument("--scale", type=int, default=4,
                       help="hierarchy scale-down factor (DESIGN.md §4)")
    p_run.add_argument("--rows", type=int, default=20)
    p_run.add_argument("--jsonl", help="also export records to this path")
    p_run.set_defaults(fn=cmd_run)

    p_list = sub.add_parser("list", help="cached runs carrying telemetry")
    p_list.set_defaults(fn=cmd_list)

    p_rep = sub.add_parser("report", help="render one cached run")
    p_rep.add_argument("fingerprint", help="job fingerprint prefix")
    p_rep.add_argument("--rows", type=int, default=20)
    p_rep.add_argument("--jsonl", help="also export records to this path")
    p_rep.set_defaults(fn=cmd_report)

    p_val = sub.add_parser("validate", help="validate a JSONL export")
    p_val.add_argument("path")
    p_val.add_argument("--schema", help="schema JSON "
                                        "(default: built-in SCHEMA)")
    p_val.set_defaults(fn=cmd_validate)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
