"""Interval time-series: periodic snapshots of hierarchy counters.

The :class:`IntervalSampler` subscribes to bus events, accumulates a
configurable set of cumulative counters, and every ``interval`` demand
accesses appends one row to a compact columnar time-series (parallel
lists, one per column — cheap to append, trivial to export).  Nothing is
pushed from the hot path: the demand path publishes the same events it
always did, and the sampler is just one more subscriber.

Pacing is driven by L1D lookups, which fire exactly once per committed
demand access, so "every N accesses" means the same thing for every
configuration of prefetchers.

Two kinds of columns exist:

* **counter deltas** — per-interval differences of bus-event counters
  (misses per level, prefetch issues/fills/hits, metadata traffic);
  their interval sums are conserved: summed over the whole series (the
  final partial interval included) they equal the end-of-run bus/cache
  totals, which ``tests/test_telemetry.py`` asserts per counter.
* **gauges** — values pulled at snapshot time from callables the engine
  registers (metadata-store occupancy, LLC occupancy).  Pull-based, so
  they cost nothing between snapshots.

A per-core access rate (accesses per cycle of that core's local clock —
the IPC proxy: the synthetic traces carry a fixed instruction gap per
access) is always sampled.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..memory.events import EV, EventBus, HierarchyEvent
from .config import TelemetryConfig

#: Counter name -> (event kind, level filter, origin filter); empty
#: string matches any level/origin.  The menu ``TelemetryConfig.counters``
#: selects from.
COUNTER_SPECS: Dict[str, Tuple[str, str, str]] = {
    "l1d_misses": (EV.LOOKUP_MISS, "l1d", ""),
    "l2_misses": (EV.LOOKUP_MISS, "l2", ""),
    "llc_misses": (EV.LOOKUP_MISS, "llc", ""),
    "l1d_hits": (EV.LOOKUP_HIT, "l1d", ""),
    "l2_hits": (EV.LOOKUP_HIT, "l2", ""),
    "llc_hits": (EV.LOOKUP_HIT, "llc", ""),
    "pf_issued": (EV.PREFETCH_ISSUED, "", ""),
    "pf_dropped": (EV.PREFETCH_DROPPED, "", ""),
    "pf_fills": (EV.FILL, "", "prefetch"),
    "pf_useful": (EV.PREFETCH_USEFUL, "", ""),
    "pf_useless": (EV.PREFETCH_USELESS, "", ""),
    "meta_reads": (EV.METADATA_READ, "", ""),
    "meta_writes": (EV.METADATA_WRITE, "", ""),
    "evictions": (EV.EVICTION, "", ""),
    "demand_completes": (EV.DEMAND_COMPLETE, "", ""),
}

Gauge = Callable[[], float]


class IntervalSampler:
    """Columnar per-interval counter snapshots, fed by bus events."""

    def __init__(self, bus: EventBus, config: TelemetryConfig,
                 gauges: Optional[Dict[str, Gauge]] = None):
        unknown = [c for c in config.counters if c not in COUNTER_SPECS]
        if unknown:
            raise ValueError(
                f"unknown telemetry counters {unknown}; "
                f"available: {sorted(COUNTER_SPECS)}")
        self.bus = bus
        self.interval = config.interval
        self.max_intervals = config.max_intervals
        self.counters: Tuple[str, ...] = tuple(config.counters)
        self.gauges: Dict[str, Gauge] = dict(gauges or {})
        self.truncated = False
        # Cumulative counters, reset with the warm-up boundary.
        self._cum: Dict[str, int] = {c: 0 for c in self.counters}
        self._prev: Dict[str, int] = dict(self._cum)
        self._accesses = 0
        self._clock = 0.0
        # Per-core pacing state: accesses and local clock at last snapshot.
        self._core_acc: Dict[int, int] = {}
        self._core_clock: Dict[int, float] = {}
        self._core_prev: Dict[int, Tuple[int, float]] = {}
        # The columnar series.
        self._index: List[int] = []
        self._access_col: List[int] = []
        self._clock_col: List[float] = []
        self._delta_cols: Dict[str, List[int]] = {c: [] for c in self.counters}
        self._gauge_cols: Dict[str, List[float]] = \
            {g: [] for g in self.gauges}
        self._core_rate_cols: Dict[int, List[float]] = {}
        # One handler per event kind, fanning into the matching counters.
        self._by_kind: Dict[str, List[str]] = {}
        for name in self.counters:
            kind = COUNTER_SPECS[name][0]
            self._by_kind.setdefault(kind, []).append(name)
        self._handlers: List[Tuple[str, Callable[[HierarchyEvent], None]]] = []
        for kind in self._by_kind:
            handler = self._make_handler(kind)
            self._handlers.append((kind, handler))
            bus.subscribe(kind, handler)
        # Pacing subscriptions (shared with counting when l1d hits/misses
        # are themselves sampled — the handlers above only count).
        for kind in (EV.LOOKUP_HIT, EV.LOOKUP_MISS):
            self._handlers.append((kind, self._on_l1d_lookup))
            bus.subscribe(kind, self._on_l1d_lookup)

    # -- event side ---------------------------------------------------------

    def _make_handler(self, kind: str):
        names = self._by_kind[kind]
        specs = [COUNTER_SPECS[n] for n in names]
        cum = self._cum

        def handle(ev: HierarchyEvent) -> None:
            for name, (_, level, origin) in zip(names, specs):
                if level and ev.level != level:
                    continue
                if origin and ev.origin != origin:
                    continue
                cum[name] += 1
        return handle

    def _on_l1d_lookup(self, ev: HierarchyEvent) -> None:
        """Pacing: one L1D lookup == one committed demand access."""
        if ev.level != "l1d":
            return
        self._accesses += 1
        if ev.now > self._clock:
            self._clock = ev.now
        core = ev.core_id
        self._core_acc[core] = self._core_acc.get(core, 0) + 1
        prev = self._core_clock.get(core, 0.0)
        if ev.now > prev:
            self._core_clock[core] = ev.now
        if self._accesses % self.interval == 0:
            self._snapshot()

    # -- snapshotting -------------------------------------------------------

    def _snapshot(self) -> None:
        if len(self._index) >= self.max_intervals:
            self.truncated = True
            return
        self._index.append(len(self._index))
        self._access_col.append(self._accesses)
        self._clock_col.append(self._clock)
        for name in self.counters:
            cum = self._cum[name]
            self._delta_cols[name].append(cum - self._prev[name])
            self._prev[name] = cum
        for gname, fn in self.gauges.items():
            self._gauge_cols[gname].append(float(fn()))
        rows_before = len(self._index) - 1
        for core, acc in self._core_acc.items():
            col = self._core_rate_cols.setdefault(core, [])
            while len(col) < rows_before:
                col.append(0.0)  # core appeared mid-series
            prev_acc, prev_clk = self._core_prev.get(core, (0, 0.0))
            clk = self._core_clock.get(core, 0.0)
            dt = clk - prev_clk
            col.append((acc - prev_acc) / dt if dt > 0 else 0.0)
            self._core_prev[core] = (acc, clk)

    def flush(self) -> None:
        """Capture the final partial interval (conservation needs it)."""
        last = self._access_col[-1] if self._access_col else 0
        if self._accesses > last:
            self._snapshot()

    # -- results ------------------------------------------------------------

    @property
    def num_samples(self) -> int:
        return len(self._index)

    def series(self) -> Dict[str, object]:
        """The columnar time-series as plain (picklable/JSON) data."""
        return {
            "interval": self.interval,
            "truncated": self.truncated,
            "index": list(self._index),
            "access": list(self._access_col),
            "clock": list(self._clock_col),
            "counters": {c: list(v) for c, v in self._delta_cols.items()},
            "gauges": {g: list(v) for g, v in self._gauge_cols.items()},
            # Pad cores that went quiet before the series ended.
            "core_rate": {str(c): list(v) + [0.0] * (len(self._index)
                                                     - len(v))
                          for c, v in sorted(self._core_rate_cols.items())},
        }

    def totals(self) -> Dict[str, int]:
        """Cumulative counter values (== summed deltas after flush)."""
        return dict(self._cum)

    # -- lifecycle ----------------------------------------------------------

    def reset(self) -> None:
        """Drop everything observed so far (the warm-up boundary)."""
        for name in self.counters:
            self._cum[name] = 0
            self._prev[name] = 0
            self._delta_cols[name].clear()
        self._accesses = 0
        self._clock = 0.0
        self._core_acc.clear()
        self._core_clock.clear()
        self._core_prev.clear()
        self._index.clear()
        self._access_col.clear()
        self._clock_col.clear()
        for col in self._gauge_cols.values():
            col.clear()
        self._core_rate_cols.clear()
        self.truncated = False

    def detach(self) -> None:
        """Unsubscribe every handler (idempotent)."""
        for kind, fn in self._handlers:
            self.bus.unsubscribe(kind, fn)
        self._handlers.clear()

    # -- checkpointing ------------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "truncated": self.truncated,
            "cum": [[c, self._cum[c]] for c in self.counters],
            "prev": [[c, self._prev[c]] for c in self.counters],
            "accesses": self._accesses,
            "clock": self._clock,
            "core_acc": [[c, n] for c, n in self._core_acc.items()],
            "core_clock": [[c, t] for c, t in self._core_clock.items()],
            "core_prev": [[c, a, t]
                          for c, (a, t) in self._core_prev.items()],
            "index": list(self._index),
            "access_col": list(self._access_col),
            "clock_col": list(self._clock_col),
            "delta": [[c, list(self._delta_cols[c])]
                      for c in self.counters],
            "gauge": [[g, list(col)]
                      for g, col in self._gauge_cols.items()],
            "core_rate": [[c, list(col)]
                          for c, col in self._core_rate_cols.items()],
        }

    def load_state(self, state: dict) -> None:
        self.truncated = bool(state["truncated"])
        # The counting handlers close over _cum: mutate it in place.
        for name, v in state["cum"]:
            self._cum[str(name)] = int(v)
        self._prev = {str(name): int(v) for name, v in state["prev"]}
        self._accesses = int(state["accesses"])
        self._clock = float(state["clock"])
        self._core_acc = {int(c): int(n) for c, n in state["core_acc"]}
        self._core_clock = {int(c): float(t)
                            for c, t in state["core_clock"]}
        self._core_prev = {int(c): (int(a), float(t))
                           for c, a, t in state["core_prev"]}
        self._index = [int(i) for i in state["index"]]
        self._access_col = [int(a) for a in state["access_col"]]
        self._clock_col = [float(t) for t in state["clock_col"]]
        self._delta_cols = {str(c): [int(v) for v in col]
                            for c, col in state["delta"]}
        self._gauge_cols = {str(g): [float(v) for v in col]
                            for g, col in state["gauge"]}
        self._core_rate_cols = {int(c): [float(v) for v in col]
                                for c, col in state["core_rate"]}
