"""JSONL export and schema validation for telemetry payloads.

The harness exports one nested dict (columnar series + lifecycle
summary); this module flattens it into line-delimited JSON — one ``meta``
record, one ``interval`` record per sample row, one ``lifecycle`` record
per prefetcher — the shape downstream plotting tools want.

The expected record shapes are described by :data:`SCHEMA` (a plain
field->type map per record type, checked in as
``benchmarks/telemetry_schema.json`` so CI validates real exports
against an explicit artifact).  The validator is deliberately tiny and
dependency-free: the container has no ``jsonschema``, and required
fields + primitive types are all the smoke check needs.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Iterator, List, Union

#: field name -> type tag, per record type.  Type tags: "int", "float"
#: (accepts ints), "str", "bool", "object", "array".
SCHEMA: Dict[str, Dict[str, str]] = {
    "meta": {
        "type": "str", "schema": "int", "enabled": "bool",
        "num_cores": "int", "interval": "int",
    },
    "interval": {
        "type": "str", "index": "int", "access": "int", "clock": "float",
        "counters": "object", "gauges": "object", "core_rate": "object",
    },
    "lifecycle": {
        "type": "str", "prefetcher": "str", "issued": "int",
        "on_time": "int", "late": "int", "unused": "int",
        "in_flight": "int", "avg_late_cycles": "float",
        "per_core": "object",
    },
}

_CHECKERS = {
    "int": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "float": lambda v: isinstance(v, (int, float))
    and not isinstance(v, bool),
    "str": lambda v: isinstance(v, str),
    "bool": lambda v: isinstance(v, bool),
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
}


def iter_records(payload: Dict[str, object]) -> Iterator[Dict[str, object]]:
    """Flatten one harness export into JSONL-ready records."""
    yield {"type": "meta",
           "schema": payload.get("schema", 0),
           "enabled": bool(payload.get("enabled", False)),
           "num_cores": payload.get("num_cores", 1),
           "interval": payload.get("interval", 0)}
    series = payload.get("intervals")
    if isinstance(series, dict):
        counters = series.get("counters", {})
        gauges = series.get("gauges", {})
        core_rate = series.get("core_rate", {})
        for i, (idx, access, clock) in enumerate(
                zip(series.get("index", ()), series.get("access", ()),
                    series.get("clock", ()))):
            yield {
                "type": "interval", "index": idx, "access": access,
                "clock": clock,
                "counters": {c: col[i] for c, col in counters.items()},
                "gauges": {g: col[i] for g, col in gauges.items()},
                "core_rate": {c: col[i] for c, col in core_rate.items()
                              if i < len(col)},
            }
    lifecycle = payload.get("lifecycle")
    if isinstance(lifecycle, dict):
        for name, entry in lifecycle.items():
            rec: Dict[str, object] = {"type": "lifecycle",
                                      "prefetcher": name}
            rec.update(entry)
            yield rec


def to_jsonl(payload: Dict[str, object]) -> str:
    return "\n".join(json.dumps(rec, sort_keys=True)
                     for rec in iter_records(payload)) + "\n"


def write_jsonl(payload: Dict[str, object],
                path: Union[str, pathlib.Path]) -> int:
    """Write the flattened payload; returns the record count."""
    records = list(iter_records(payload))
    text = "\n".join(json.dumps(rec, sort_keys=True)
                     for rec in records) + "\n"
    pathlib.Path(path).write_text(text)
    return len(records)


# -- validation -----------------------------------------------------------------

def load_schema(path: Union[str, pathlib.Path]) -> Dict[str, Dict[str, str]]:
    return json.loads(pathlib.Path(path).read_text())


def validate_records(records: List[Dict[str, object]],
                     schema: Dict[str, Dict[str, str]] = SCHEMA
                     ) -> List[str]:
    """Structural errors in ``records`` (empty list == valid)."""
    errors: List[str] = []
    if not records:
        return ["no records"]
    for i, rec in enumerate(records):
        rtype = rec.get("type")
        fields = schema.get(str(rtype))
        if fields is None:
            errors.append(f"record {i}: unknown type {rtype!r}")
            continue
        for name, tag in fields.items():
            if name not in rec:
                errors.append(f"record {i} ({rtype}): missing {name!r}")
            elif not _CHECKERS[tag](rec[name]):
                errors.append(
                    f"record {i} ({rtype}): field {name!r} should be "
                    f"{tag}, got {type(rec[name]).__name__}")
    if not any(r.get("type") == "meta" for r in records):
        errors.append("no meta record")
    return errors


def validate_jsonl(path: Union[str, pathlib.Path],
                   schema: Dict[str, Dict[str, str]] = SCHEMA
                   ) -> List[str]:
    """Validate a JSONL file; returns error strings (empty == valid)."""
    records: List[Dict[str, object]] = []
    for lineno, line in enumerate(
            pathlib.Path(path).read_text().splitlines(), 1):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            return [f"line {lineno}: invalid JSON ({exc})"]
    return validate_records(records, schema)
