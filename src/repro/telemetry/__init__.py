"""repro.telemetry: interval time-series + prefetch-lifecycle tracing.

The observability subsystem over the hierarchy's
:class:`~repro.memory.events.EventBus`.  Three pillars:

* :mod:`repro.telemetry.intervals` — :class:`IntervalSampler`, a
  columnar time-series of counter deltas (misses, prefetch traffic,
  metadata traffic, occupancy gauges, per-core rate) every N demand
  accesses.
* :mod:`repro.telemetry.lifecycle` — :class:`PrefetchLifecycleTracer`,
  following each prefetch from issue through fill to first demand use or
  eviction, classified on-time / late / unused / in-flight.
* :mod:`repro.telemetry.export` / :mod:`repro.telemetry.report` — JSONL
  export with a checked-in schema, and text reports; both also power the
  ``python -m repro.telemetry`` CLI.

Opt in by putting a :class:`TelemetryConfig` on
``SystemConfig(telemetry=...)``; add the ``"telemetry"`` probe to a
:class:`~repro.runner.jobs.SimJob` to ship the payload with the cached
result.  Everything subscribes; nothing hooks the hot path, so disabled
runs are bit-identical to a build without this package.
"""

from .config import (DEFAULT_COUNTERS, DEFAULT_INTERVAL, TelemetryConfig)
from .export import (SCHEMA, iter_records, load_schema, to_jsonl,
                     validate_jsonl, validate_records, write_jsonl)
from .harness import TELEMETRY_SCHEMA_VERSION, TelemetryHarness
from .intervals import COUNTER_SPECS, IntervalSampler
from .lifecycle import (CLASSES, IN_FLIGHT, LATE, ON_TIME, UNUSED,
                        LifecycleCounts, PrefetchLifecycleTracer)
from .report import render, render_intervals, render_lifecycle

__all__ = [
    "DEFAULT_COUNTERS", "DEFAULT_INTERVAL", "TelemetryConfig",
    "SCHEMA", "iter_records", "load_schema", "to_jsonl",
    "validate_jsonl", "validate_records", "write_jsonl",
    "TELEMETRY_SCHEMA_VERSION", "TelemetryHarness",
    "COUNTER_SPECS", "IntervalSampler",
    "CLASSES", "IN_FLIGHT", "LATE", "ON_TIME", "UNUSED",
    "LifecycleCounts", "PrefetchLifecycleTracer",
    "render", "render_intervals", "render_lifecycle",
]
