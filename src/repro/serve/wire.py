"""The serve wire protocol: jobs and results as JSON payloads.

The job wire format *is* the canonical fingerprint JSON
(:meth:`repro.runner.SimJob.canonical`, already schema-versioned via
``repro.runner.jobs.SCHEMA_VERSION``): the client sends exactly the
dictionary its fingerprint hashes, plus the fingerprint it computed.
The server reconstructs a :class:`SimJob` from that dictionary and
recomputes the fingerprint; any mismatch — a non-JSON-clean kwarg, a
schema skew between client and server, a tampered field — is rejected
loudly instead of silently keying a different simulation.

Results travel as the pickled :class:`repro.runner.JobResult` bytes
(base64 inside the JSON envelope, sha256-guarded), i.e. the exact
payload the on-disk result cache stores — which is what makes a served
result *byte-identical* to a direct :class:`SimRunner` call, not merely
numerically equal.  Unpickling executes arbitrary bytecode, so the
client only ever talks to servers it trusts exactly as much as its own
``benchmarks/.simcache`` directory (the server is a loopback/LAN
deployment of this same codebase, not a public endpoint).

Sharding is part of the protocol: :class:`ShardMap` deterministically
maps the fingerprint keyspace onto N server addresses (hash-mod over
the leading fingerprint hex — the fingerprint is already a sha256, so
the prefix is uniform), and both sides compute it, so a client can
route up front and a server can prove ownership before executing.
"""

from __future__ import annotations

import base64
import dataclasses
import hashlib
import pickle
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..runner.jobs import SCHEMA_VERSION, JobResult, SimJob
from ..runner.specs import PrefetcherSpec
from ..sim.config import SystemConfig
from ..telemetry.config import TelemetryConfig

#: Version of the HTTP/JSON envelope (bump when routes or payload
#: shapes change; the job schema itself is versioned separately by
#: ``repro.runner.jobs.SCHEMA_VERSION`` inside the canonical form).
WIRE_VERSION = 1

#: How many leading fingerprint hex digits the shard function consumes.
#: 12 digits = 48 bits, far beyond any realistic shard count.
_SHARD_PREFIX = 12


class WireError(ValueError):
    """A payload that cannot be (safely) decoded."""


# -- jobs ----------------------------------------------------------------------

def job_to_wire(job: SimJob,
                traceparent: Optional[str] = None) -> Dict[str, Any]:
    """Encode one job: its canonical form plus the claimed fingerprint.

    ``traceparent`` (the submitting request's ``repro.obs.trace``
    context in W3C string form) rides the envelope as an *optional*
    key: old servers never look for it, old clients never send it, and
    it stays outside the fingerprinted ``job`` object — tracing must
    not split cache entries.
    """
    payload = {"wire": WIRE_VERSION, "job": job.canonical(),
               "fingerprint": job.fingerprint()}
    if traceparent:
        payload["traceparent"] = traceparent
    return payload


def _spec_from(payload: Optional[Dict[str, Any]]) \
        -> Optional[PrefetcherSpec]:
    if payload is None:
        return None
    try:
        return PrefetcherSpec.of(payload["name"], **payload["kwargs"])
    except (KeyError, TypeError) as exc:
        raise WireError(f"malformed prefetcher spec {payload!r}: {exc}") \
            from None


def _config_from(payload: Dict[str, Any]) -> SystemConfig:
    fields = {f.name for f in dataclasses.fields(SystemConfig)}
    unknown = set(payload) - fields
    if unknown:
        raise WireError(f"unknown SystemConfig fields {sorted(unknown)}")
    kwargs = dict(payload)
    telemetry = kwargs.pop("telemetry", None)
    if telemetry is not None:
        try:
            telemetry = TelemetryConfig(**{
                k: tuple(v) if isinstance(v, list) else v
                for k, v in telemetry.items()})
        except (TypeError, ValueError) as exc:
            raise WireError(f"malformed telemetry config: {exc}") from None
    try:
        return SystemConfig(telemetry=telemetry, **kwargs)
    except (TypeError, ValueError) as exc:
        raise WireError(f"malformed system config: {exc}") from None


def job_from_wire(payload: Dict[str, Any]) -> Tuple[SimJob, str]:
    """Decode and *verify* one job; returns ``(job, fingerprint)``.

    The reconstructed job's own fingerprint must equal the claimed one —
    that round-trip is the integrity check that keeps the server's
    cache keyed exactly like every direct caller's.
    """
    if payload.get("wire") != WIRE_VERSION:
        raise WireError(
            f"wire version mismatch: got {payload.get('wire')!r}, "
            f"this server speaks {WIRE_VERSION}")
    try:
        canonical = payload["job"]
        claimed = payload["fingerprint"]
    except (KeyError, TypeError) as exc:
        raise WireError(f"malformed job payload: {exc}") from None
    if not isinstance(canonical, dict):
        raise WireError("job payload must be the canonical JSON object")
    if canonical.get("schema") != SCHEMA_VERSION:
        raise WireError(
            f"job schema mismatch: got {canonical.get('schema')!r}, "
            f"this server speaks {SCHEMA_VERSION}")
    try:
        job = SimJob(
            kind=canonical["kind"],
            workloads=tuple(canonical["workloads"]),
            n=canonical["n"],
            seed=canonical["seed"],
            config=_config_from(canonical["config"]),
            l1=_spec_from(canonical["l1"]),
            l2=tuple(_spec_from(s) for s in canonical["l2"]),
            probes=tuple(canonical["probes"]),
            measure_overrides=tuple(
                (k, v) for k, v in canonical["measure_overrides"]),
        )
    except WireError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"malformed job payload: {exc}") from None
    fingerprint = job.fingerprint()
    if fingerprint != claimed:
        raise WireError(
            f"fingerprint mismatch: client claimed {claimed!r} but the "
            f"reconstructed job keys as {fingerprint!r} (non-JSON-clean "
            f"parameter, or client/server schema skew)")
    return job, fingerprint


# -- results -------------------------------------------------------------------

def result_to_wire(result: JobResult) -> Dict[str, Any]:
    """Encode one result as guarded pickle bytes."""
    blob = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
    return {"wire": WIRE_VERSION,
            "pickle": base64.b64encode(blob).decode("ascii"),
            "sha256": hashlib.sha256(blob).hexdigest()}


def result_from_wire(payload: Dict[str, Any]) -> JobResult:
    """Decode one result, verifying the digest before unpickling."""
    if payload.get("wire") != WIRE_VERSION:
        raise WireError(
            f"wire version mismatch: got {payload.get('wire')!r}, "
            f"this client speaks {WIRE_VERSION}")
    try:
        blob = base64.b64decode(payload["pickle"].encode("ascii"))
        digest = payload["sha256"]
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"malformed result payload: {exc}") from None
    if hashlib.sha256(blob).hexdigest() != digest:
        raise WireError("result payload failed its sha256 check")
    try:
        result = pickle.loads(blob)
    except Exception as exc:
        raise WireError(f"result payload failed to unpickle: {exc}") \
            from None
    if not isinstance(result, JobResult):
        raise WireError(
            f"result payload decoded to {type(result).__name__}, "
            f"expected JobResult")
    return result


# -- sharding ------------------------------------------------------------------

def shard_of(fingerprint: str, count: int) -> int:
    """Deterministic hash-mod shard index for one fingerprint."""
    if count < 1:
        raise ValueError("shard count must be >= 1")
    return int(fingerprint[:_SHARD_PREFIX], 16) % count


@dataclass(frozen=True)
class ShardMap:
    """The config-declared partition of the fingerprint keyspace.

    ``urls`` is the full ordered ring of server base addresses (every
    instance is launched with the same list, e.g. via
    ``REPRO_SERVE_SHARDS``); ``index`` is this instance's slot.  A
    single unsharded server is the one-entry ring.
    """

    urls: Tuple[str, ...]
    index: int

    def __post_init__(self) -> None:
        if not self.urls:
            raise ValueError("shard map needs at least one address")
        if not 0 <= self.index < len(self.urls):
            raise ValueError(
                f"shard index {self.index} out of range for "
                f"{len(self.urls)} shard(s)")

    @property
    def count(self) -> int:
        return len(self.urls)

    def owner_index(self, fingerprint: str) -> int:
        return shard_of(fingerprint, self.count)

    def owner_of(self, fingerprint: str) -> str:
        return self.urls[self.owner_index(fingerprint)]

    def owns(self, fingerprint: str) -> bool:
        return self.owner_index(fingerprint) == self.index

    def describe(self) -> Dict[str, Any]:
        return {"index": self.index, "count": self.count,
                "urls": list(self.urls)}


def partition(fingerprints: List[str], count: int) -> Dict[int, List[str]]:
    """Group fingerprints by owning shard (client-side routing helper)."""
    groups: Dict[int, List[str]] = {}
    for fp in fingerprints:
        groups.setdefault(shard_of(fp, count), []).append(fp)
    return groups
