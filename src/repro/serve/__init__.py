"""Simulation-as-a-service: an async job server over the result cache.

``python -m repro.serve`` promotes :mod:`repro.runner` from a library
into a long-running service: a stdlib-only asyncio HTTP/JSON API that
accepts :class:`~repro.runner.SimJob` batches in their canonical
fingerprint JSON (:mod:`repro.serve.wire`), routes them through an
async producer–consumer queue onto the existing process pool
(:mod:`repro.serve.broker`), deduplicates in-flight work by
fingerprint, serves cached results directly from the two-level result
cache, and streams per-job progress from the :mod:`repro.obs` runlog
to any number of concurrent clients (:mod:`repro.serve.server`).
N instances split the fingerprint keyspace by config-declared hash-mod
sharding and survive restarts via the on-disk result-cache and
checkpoint stores.  :mod:`repro.serve.client` is the matching thin
client (``REPRO_SERVE_URL`` re-points experiment drivers at it).

Served results are byte-identical to direct :class:`SimRunner` calls —
the wire moves the same pickled :class:`JobResult` payloads the cache
stores — pinned by ``tests/test_serve.py``.  See DESIGN.md §8.

Observability (DESIGN.md §10): every submission can carry a
``traceparent`` envelope key that follows the job through broker, pool
worker, and runlog; ``GET /metrics`` exposes each instance's
:class:`repro.obs.metrics.MetricsRegistry` in Prometheus text format,
and ``GET /v1/healthz`` is the cheap load-balancer subset.
"""

from .broker import BrokerStats, JobBroker
from .client import ServeClient, ServeRunner, ServeUnavailable, serve_url
from .server import Server, ServerThread, pick_free_port, serve_forever
from .wire import (WIRE_VERSION, ShardMap, WireError, job_from_wire,
                   job_to_wire, result_from_wire, result_to_wire,
                   shard_of)

__all__ = ["BrokerStats", "JobBroker", "ServeClient", "ServeRunner",
           "ServeUnavailable", "serve_url", "Server", "ServerThread",
           "pick_free_port", "serve_forever", "WIRE_VERSION", "ShardMap",
           "WireError", "job_from_wire", "job_to_wire",
           "result_from_wire", "result_to_wire", "shard_of"]
