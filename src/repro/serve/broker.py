"""The job broker: async producer–consumer queue over ``SimRunner``.

Submissions land on an :class:`asyncio.Queue`; one consumer task drains
whatever has accumulated (up to ``max_batch``) and hands it to the
blocking :meth:`repro.runner.SimRunner.run` on a single executor
thread.  While a batch simulates, new submissions pile up into the next
batch — the classic producer–consumer shape, which is what lets many
concurrent HTTP clients share one process pool without stepping on each
other.

Two dedup layers sit in front of execution:

* **cache-aside** — a fingerprint already in the two-level result cache
  resolves immediately, without touching the queue (and the runner
  would re-check anyway, so a race only costs a memo lookup);
* **in-flight sharing** — a fingerprint already queued or executing
  returns the *same* future, so two clients posting the identical job
  observe exactly one execution (pinned by ``tests/test_serve.py``).
"""

from __future__ import annotations

import asyncio
import functools
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..obs.trace import TraceContext
from ..runner.cache import ResultCache
from ..runner.jobs import JobResult, SimJob
from ..runner.runner import SimRunner


@dataclass
class BrokerStats:
    """Served/executed counters, exposed on ``/v1/stats``."""

    submitted: int = 0      # jobs received (after wire decode)
    cache_hits: int = 0     # resolved straight from the result cache
    joined: int = 0         # shared an already-in-flight execution
    enqueued: int = 0       # entered the work queue
    executed: int = 0       # ran on the SimRunner (cold work)
    batches: int = 0        # consumer drains handed to the runner
    failures: int = 0       # jobs whose execution raised

    def snapshot(self) -> Dict[str, int]:
        return dict(vars(self))


class JobBroker:
    """Owns the queue, the in-flight map, and the runner thread."""

    def __init__(self, runner: Optional[SimRunner] = None,
                 max_batch: int = 64):
        self.runner = runner if runner is not None else SimRunner()
        self.max_batch = max_batch
        self.stats = BrokerStats()
        #: Set by the owning server to its queue-wait histogram's
        #: ``observe`` — the broker measures, the server's registry owns
        #: the series (keeping two in-process instances separate).
        self.on_queue_wait: Optional[Callable[[float], None]] = None
        self._inflight: Dict[str, "asyncio.Future[JobResult]"] = {}
        # Queue items: (fingerprint, job, submit context, enqueue time).
        self._queue: "asyncio.Queue[Tuple[str, SimJob, "\
            "Optional[TraceContext], float]]" = asyncio.Queue()
        # One thread: batches serialize, submissions accumulate behind
        # the running batch, and the runner's own process pool provides
        # the intra-batch parallelism.
        self._pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-runner")
        self._consumer: Optional["asyncio.Task[None]"] = None

    @property
    def cache(self) -> ResultCache:
        return self.runner.cache

    @property
    def queue_depth(self) -> int:
        """Jobs waiting in the queue (not yet drained into a batch)."""
        return self._queue.qsize()

    @property
    def inflight_count(self) -> int:
        """Jobs queued or executing whose futures are unresolved."""
        return len(self._inflight)

    def start(self) -> None:
        if self._consumer is None:
            self._consumer = asyncio.get_running_loop().create_task(
                self._consume())

    async def close(self) -> None:
        if self._consumer is not None:
            self._consumer.cancel()
            try:
                await self._consumer
            except asyncio.CancelledError:
                pass
            self._consumer = None
        for future in self._inflight.values():
            if not future.done():
                future.cancelled() or future.set_exception(
                    RuntimeError("server shutting down"))
        self._inflight.clear()
        self._pool.shutdown(wait=True)

    # -- submission ------------------------------------------------------------

    def submit(self, job: SimJob, fingerprint: str,
               context: Optional[TraceContext] = None) \
            -> "asyncio.Future[JobResult]":
        """Route one job; returns a future for its result.

        Must run on the event-loop thread (the HTTP handlers do).
        ``context`` is the submitting request's trace hop; it rides the
        queue so the runner executes the job under the client's trace.
        """
        self.stats.submitted += 1
        inflight = self._inflight.get(fingerprint)
        if inflight is not None:
            self.stats.joined += 1
            return inflight
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[JobResult]" = loop.create_future()
        cached = self.cache.get(fingerprint)
        if cached is not None:
            self.stats.cache_hits += 1
            future.set_result(cached)
            return future
        self.stats.enqueued += 1
        self._inflight[fingerprint] = future
        self._queue.put_nowait((fingerprint, job, context,
                                time.monotonic()))
        return future

    def is_inflight(self, fingerprint: str) -> bool:
        return fingerprint in self._inflight

    def lookup(self, fingerprint: str) \
            -> Optional["asyncio.Future[JobResult]"]:
        """The in-flight future for a fingerprint, or a resolved one
        from the cache — None when the server has never seen it."""
        inflight = self._inflight.get(fingerprint)
        if inflight is not None:
            return inflight
        cached = self.cache.get(fingerprint)
        if cached is None:
            return None
        future: "asyncio.Future[JobResult]" = \
            asyncio.get_running_loop().create_future()
        future.set_result(cached)
        return future

    # -- the consumer ----------------------------------------------------------

    async def _consume(self) -> None:
        while True:
            batch: List[Tuple[str, SimJob, Optional[TraceContext],
                              float]] = [await self._queue.get()]
            while len(batch) < self.max_batch:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            await self._run_batch(batch)

    async def _run_batch(self, batch: List[Tuple[
            str, SimJob, Optional[TraceContext], float]]) -> None:
        loop = asyncio.get_running_loop()
        jobs = [job for _, job, _, _ in batch]
        contexts = [context for _, _, context, _ in batch]
        if self.on_queue_wait is not None:
            drained = time.monotonic()
            for _, _, _, enqueued_at in batch:
                self.on_queue_wait(drained - enqueued_at)
        self.stats.batches += 1
        try:
            results = await loop.run_in_executor(
                self._pool, functools.partial(
                    self.runner.run, jobs, contexts=contexts))
        except Exception as exc:  # surface to every waiter, keep serving
            self.stats.failures += len(batch)
            for fingerprint, _, _, _ in batch:
                future = self._inflight.pop(fingerprint, None)
                if future is not None and not future.done():
                    future.set_exception(
                        RuntimeError(f"job execution failed: {exc}"))
            return
        self.stats.executed += len(batch)
        for (fingerprint, _, _, _), result in zip(batch, results):
            future = self._inflight.pop(fingerprint, None)
            if future is not None and not future.done():
                future.set_result(result)
