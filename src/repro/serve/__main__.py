"""Serve CLI.

``python -m repro.serve`` (no subcommand) runs a server:

* ``--host`` / ``--port`` — bind address (``REPRO_SERVE_PORT`` sets the
  default port; ``0`` asks the OS and prints the pick).
* ``--shards a,b,...`` — the full shard ring (``REPRO_SERVE_SHARDS``
  default).  This instance finds its slot by ``--shard-index``, or by
  matching its own ``host:port`` against the ring.
* ``--jobs`` — worker processes for this instance's ``SimRunner``.
* ``--max-batch`` — queue drain bound per runner batch.

``python -m repro.serve ping [URL]`` health-checks an instance (URL
defaults to ``REPRO_SERVE_URL``), optionally waiting for it to come up
— which is how the CI smoke step synchronizes with a server it just
backgrounded.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from typing import Optional

from ..envknobs import env_int, env_url, env_url_list
from ..runner.runner import SimRunner
from .broker import JobBroker
from .client import ServeClient, ServeUnavailable
from .server import Server, serve_forever
from .wire import ShardMap

#: Default port when neither --port nor REPRO_SERVE_PORT says otherwise.
DEFAULT_PORT = 8023


def _shard_map(args) -> Optional[ShardMap]:
    urls = tuple(u.strip().rstrip("/")
                 for u in args.shards.split(",")) if args.shards \
        else (env_url_list("REPRO_SERVE_SHARDS") or ())
    if not urls:
        if args.shard_index is not None:
            raise SystemExit(
                "--shard-index given but no shard ring: pass --shards "
                "or set REPRO_SERVE_SHARDS")
        return None
    index = args.shard_index
    if index is None:
        mine = {f"http://{args.host}:{args.port}",
                f"https://{args.host}:{args.port}"}
        matches = [i for i, u in enumerate(urls) if u in mine]
        if len(matches) != 1:
            raise SystemExit(
                f"cannot infer this instance's shard slot: "
                f"{args.host}:{args.port} matches {len(matches)} of "
                f"{list(urls)}; pass --shard-index")
        index = matches[0]
    return ShardMap(urls=urls, index=index)


def cmd_serve(args) -> int:
    shard_map = _shard_map(args)
    runner = SimRunner(jobs=args.jobs)
    broker = JobBroker(runner=runner, max_batch=args.max_batch)
    server = Server(broker, host=args.host, port=args.port,
                    shard_map=shard_map)

    async def main() -> None:
        await server.start()
        shard = f" shard {shard_map.index}/{shard_map.count}" \
            if shard_map else ""
        print(f"repro.serve listening on {server.url}{shard} "
              f"({runner.workers} worker(s), cache "
              f"{broker.cache.directory})", flush=True)
        try:
            await asyncio.Event().wait()
        finally:
            await server.stop()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        print("repro.serve: shutting down", flush=True)
    return 0


def cmd_ping(args) -> int:
    url = args.url or env_url("REPRO_SERVE_URL")
    if not url:
        print("ping: no URL given and REPRO_SERVE_URL unset",
              file=sys.stderr)
        return 2
    client = ServeClient(url, timeout=5.0)
    deadline = time.monotonic() + args.wait
    while True:
        try:
            payload = client.healthz()
            print(json.dumps(payload, indent=2, sort_keys=True))
            return 0
        except ServeUnavailable as exc:
            if time.monotonic() >= deadline:
                print(f"ping: {exc}", file=sys.stderr)
                return 1
            time.sleep(0.2)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Run (or probe) the simulation job server.")
    sub = parser.add_subparsers(dest="command")

    p_serve = sub.add_parser("serve", help="run a server (the default)")
    for p in (parser, p_serve):
        p.add_argument("--host", default="127.0.0.1")
        p.add_argument(
            "--port", type=int,
            default=env_int("REPRO_SERVE_PORT", DEFAULT_PORT,
                            minimum=0, maximum=65535),
            help=f"bind port (default: REPRO_SERVE_PORT or "
                 f"{DEFAULT_PORT}; 0 = OS-assigned)")
        p.add_argument(
            "--shards", default=None,
            help="comma-separated shard ring base URLs "
                 "(default: REPRO_SERVE_SHARDS)")
        p.add_argument("--shard-index", type=int, default=None,
                       help="this instance's slot in the ring "
                            "(default: match host:port)")
        p.add_argument("--jobs", type=int, default=None,
                       help="SimRunner worker processes "
                            "(default: REPRO_JOBS / all cores)")
        p.add_argument("--max-batch", type=int, default=64,
                       help="max jobs per runner batch (default 64)")

    p_ping = sub.add_parser("ping", help="health-check an instance")
    p_ping.add_argument("url", nargs="?", default=None,
                        help="base URL (default: REPRO_SERVE_URL)")
    p_ping.add_argument("--wait", type=float, default=0.0,
                        help="keep retrying for up to this many seconds")

    args = parser.parse_args(argv)
    if args.command == "ping":
        return cmd_ping(args)
    return cmd_serve(args)


if __name__ == "__main__":
    sys.exit(main())
