"""The thin client: stdlib ``urllib`` against a serve instance.

:class:`ServeClient` speaks the wire protocol (submit a batch, follow
shard rejections to the owning instance, long-poll results, tail the
SSE event stream); :class:`ServeRunner` wraps it in the
:meth:`repro.runner.SimRunner.run` interface — same signature, same
input-order/dedup semantics — so any experiment driver becomes a thin
client by swapping its runner (``experiments.common.serve_runner()``
does exactly that from ``REPRO_SERVE_URL``).

The client computes fingerprints locally from the real :class:`SimJob`
objects it holds, so routing decisions (which shard owns which job) are
made without a round trip, and the server's fingerprint verification
closes the loop.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Iterator, List, Optional, Sequence

from ..envknobs import env_url
from ..obs import trace as obs_trace
from ..runner.jobs import JobResult, SimJob
from .wire import WIRE_VERSION, WireError, job_to_wire, result_from_wire


def serve_url() -> Optional[str]:
    """The client-side opt-in: a base URL from ``REPRO_SERVE_URL``, or
    None (unset/empty/``0``) meaning "execute in-process as always".

    A pure execution-routing knob, like ``resume`` and ``fastpath``: it
    never enters job fingerprints, so served and direct runs share
    cache entries (and must be byte-identical — pinned by
    ``tests/test_serve.py``).
    """
    return env_url("REPRO_SERVE_URL")


class ServeUnavailable(RuntimeError):
    """The server could not be reached or refused the request."""


class ServeClient:
    """One logical endpoint (possibly a shard ring behind it)."""

    def __init__(self, base_url: str, timeout: float = 60.0,
                 poll_timeout: float = 20.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.poll_timeout = poll_timeout
        #: The trace context of the most recent :meth:`submit` — the
        #: handle callers pass to ``python -m repro.obs report --trace``.
        self.last_context: Optional[obs_trace.TraceContext] = None

    # -- low-level HTTP --------------------------------------------------------

    def _request(self, url: str, body: Optional[Dict[str, Any]] = None,
                 timeout: Optional[float] = None) -> Dict[str, Any]:
        data = json.dumps(body).encode("utf-8") if body is not None \
            else None
        request = urllib.request.Request(
            url, data=data,
            headers={"Content-Type": "application/json"} if data else {})
        try:
            with urllib.request.urlopen(
                    request, timeout=timeout or self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            # Structured errors (404/421/...) carry a JSON body worth
            # keeping; re-raise with it attached.
            try:
                payload = json.loads(exc.read().decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError, OSError):
                payload = {"error": str(exc)}
            payload["http_status"] = exc.code
            raise ServeUnavailable(
                f"{url} -> HTTP {exc.code}: "
                f"{payload.get('error', '?')}") from None
        except (urllib.error.URLError, OSError, TimeoutError) as exc:
            raise ServeUnavailable(f"{url} unreachable: {exc}") from None

    def _get_raw(self, url: str, timeout: Optional[float] = None):
        """GET returning ``(status, json payload)`` without raising on
        structured non-200s (long-polling needs 202/421 as data)."""
        request = urllib.request.Request(url)
        try:
            with urllib.request.urlopen(
                    request, timeout=timeout or self.timeout) as response:
                return response.status, json.loads(
                    response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                return exc.code, json.loads(exc.read().decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError, OSError):
                raise ServeUnavailable(
                    f"{url} -> HTTP {exc.code}") from None
        except (urllib.error.URLError, OSError, TimeoutError) as exc:
            raise ServeUnavailable(f"{url} unreachable: {exc}") from None

    # -- endpoints -------------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        return self._request(f"{self.base_url}/healthz")

    def health(self) -> Dict[str, Any]:
        """The ``/v1/healthz`` load-balancer view: shard identity,
        queue depth, in-flight count, cache stats."""
        return self._request(f"{self.base_url}/v1/healthz")

    def stats(self) -> Dict[str, Any]:
        return self._request(f"{self.base_url}/v1/stats")

    def submit(self, jobs: Sequence[SimJob]) -> List[JobResult]:
        """Run a batch through the service; results in input order.

        Mirrors :meth:`SimRunner.run`: duplicate fingerprints are
        submitted once and fan back out.  Jobs rejected as out-of-shard
        are re-posted to the owner the server named, and each result is
        long-polled at the address that accepted its job.

        This is an outermost tracing entry point: one root context is
        minted per call (or inherited from an installed ambient one)
        and sent with every job's wire envelope, so the whole batch —
        across every shard it lands on — shares one trace_id
        (``self.last_context`` keeps the handle).
        """
        self.last_context = obs_trace.ambient()
        fingerprints = [job.fingerprint() for job in jobs]
        unique: Dict[str, SimJob] = {}
        for job, fingerprint in zip(jobs, fingerprints):
            unique.setdefault(fingerprint, job)
        owners = self._place(unique)
        results = {fp: self._await_result(owners[fp], fp)
                   for fp in unique}
        return [results[fp] for fp in fingerprints]

    def _place(self, unique: Dict[str, SimJob]) -> Dict[str, str]:
        """Post every unique job until some instance accepts it;
        returns fingerprint -> accepting base URL."""
        traceparent = self.last_context.to_traceparent() \
            if self.last_context is not None else None
        owners: Dict[str, str] = {}
        to_place = {self.base_url: list(unique.items())}
        hops = 0
        while to_place:
            hops += 1
            if hops > 16:  # a healthy ring settles in 2 hops
                raise ServeUnavailable(
                    "shard routing did not converge (rings disagree "
                    "about ownership?)")
            url, entries = to_place.popitem()
            payload = {"wire": WIRE_VERSION,
                       "jobs": [job_to_wire(job, traceparent)
                                for _, job in entries]}
            reply = self._request(f"{url}/v1/jobs", body=payload)
            for (fingerprint, job), status in zip(entries,
                                                  reply.get("jobs", [])):
                state = status.get("status")
                if state in ("accepted", "cached", "joined"):
                    owners[fingerprint] = url
                elif state == "rejected":
                    owner = status.get("owner")
                    if not owner:
                        raise ServeUnavailable(
                            f"job {fingerprint} rejected without an "
                            f"owner address")
                    to_place.setdefault(owner, []).append(
                        (fingerprint, job))
                else:
                    raise WireError(
                        f"server refused job {fingerprint}: "
                        f"{status.get('error', state)}")
        return owners

    def _await_result(self, url: str, fingerprint: str) -> JobResult:
        deadline = time.monotonic() + self.timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServeUnavailable(
                    f"timed out waiting for result {fingerprint}")
            wait = min(self.poll_timeout, remaining)
            status, payload = self._get_raw(
                f"{url}/v1/results/{fingerprint}?timeout={wait:g}",
                timeout=wait + self.timeout)
            if status == 200:
                return result_from_wire(payload)
            if status == 202:
                continue  # still executing; poll again
            if status == 421 and payload.get("owner"):
                url = payload["owner"]  # ring moved underneath us
                continue
            raise ServeUnavailable(
                f"result {fingerprint}: HTTP {status} "
                f"{payload.get('error', payload)}")

    def events(self, fingerprint: Optional[str] = None,
               timeout: Optional[float] = None) \
            -> Iterator[Dict[str, Any]]:
        """Yield progress records from the server's event stream.

        Blocks on the socket between events; stops when the server
        closes the stream or the read times out.  Callers break out
        once they have seen what they were waiting for (e.g. the
        ``job_end`` of their fingerprint).
        """
        url = f"{self.base_url}/v1/events"
        if fingerprint:
            url += f"?fingerprint={fingerprint}"
        request = urllib.request.Request(url)
        try:
            response = urllib.request.urlopen(
                request, timeout=timeout or self.timeout)
        except (urllib.error.URLError, OSError) as exc:
            raise ServeUnavailable(f"{url} unreachable: {exc}") from None
        try:
            for raw in response:
                line = raw.decode("utf-8").rstrip("\n")
                if line.startswith("data: "):
                    try:
                        yield json.loads(line[len("data: "):])
                    except json.JSONDecodeError:
                        continue
        except (OSError, TimeoutError):
            return  # stream closed / idle timeout: subscriber is done
        finally:
            response.close()


class ServeRunner:
    """A drop-in for :class:`repro.runner.SimRunner` backed by HTTP.

    Only the run interface is provided — cache and worker management
    belong to the server side.  Experiment helpers that take a
    ``runner=`` argument accept this unchanged.
    """

    def __init__(self, client: ServeClient):
        self.client = client

    @classmethod
    def from_env(cls) -> Optional["ServeRunner"]:
        url = serve_url()
        return cls(ServeClient(url)) if url else None

    def run(self, jobs: Sequence[SimJob]) -> List[JobResult]:
        return self.client.submit(jobs)

    def run_one(self, job: SimJob) -> JobResult:
        return self.run([job])[0]
