"""The asyncio HTTP/JSON simulation server.

A deliberately small HTTP/1.1 implementation over
``asyncio.start_server`` — stdlib only, one connection per request
(``Connection: close``), JSON in and out — fronting a
:class:`repro.serve.broker.JobBroker`:

* ``GET  /healthz``                  — liveness + shard + wire version.
* ``GET  /v1/stats``                 — broker/cache counters.
* ``POST /v1/jobs``                  — submit a batch; per-job status
  (``cached`` / ``accepted`` / ``joined`` / ``rejected`` + owner).
* ``GET  /v1/results/<fp>``          — long-poll one result
  (``?timeout=<s>``); 200 result, 202 still pending, 404 unknown,
  421 wrong shard (body names the owner).
* ``GET  /v1/events``                — server-sent events tailing the
  ``repro.obs`` runlog (``?fingerprint=<fp>`` filters to one job);
  delivers ``job_start``/``job_end``/``prewarm``/``run_*`` records to
  any number of concurrent clients while batches execute.
* ``GET  /v1/healthz``               — the load-balancer subset:
  shard identity, queue depth, in-flight count, cache stats as JSON.
* ``GET  /metrics``                  — Prometheus text exposition of
  this instance's :class:`repro.obs.metrics.MetricsRegistry`: broker
  and cache counters are *pulled* from their already-monotone stats at
  render time; per-job series (wall time, events/s, restores) are
  *folded* from tailed ``job_end`` runlog records, which is how worker
  processes ship their metrics shard across the process boundary.
  Broker/cache series are instance-local; folded job series cover every
  run under the obs root this instance tails.

Sharding: with a :class:`repro.serve.wire.ShardMap`, this instance owns
a deterministic hash-mod slice of the fingerprint keyspace and rejects
the rest, naming the owning address so clients re-route — the
partitioning pattern (SNIPPETS.md Snippet 2) applied to a keyspace that
was already content-addressed.  Restart needs no recovery protocol: all
durable state lives in the result cache / checkpoint stores, so a fresh
instance serves its predecessor's results from disk.
"""

from __future__ import annotations

import asyncio
import json
import socket
from typing import Any, Dict, List, Optional, Set, Tuple
from urllib.parse import parse_qs, urlsplit

from ..obs import metrics as obs_metrics
from ..obs import runlog as obs_runlog
from ..obs import trace as obs_trace
from ..version import __version__
from .broker import JobBroker
from .wire import (WIRE_VERSION, ShardMap, WireError, job_from_wire,
                   result_to_wire)

#: Events forwarded to ``/v1/events`` subscribers (the progress-relevant
#: subset of the runlog taxonomy; unknown future kinds pass through the
#: filter only when unfiltered clients ask for everything).
PROGRESS_EVENTS = ("run_start", "prewarm", "job_start", "job_end",
                   "run_end", "cache_evict")

#: Hard cap on request bodies (a batch of canonical jobs is a few KiB
#: each; anything near this is a client bug, not a workload).
MAX_BODY = 32 * 1024 * 1024

#: Default long-poll patience for ``/v1/results`` (seconds).
RESULT_WAIT = 30.0


class _HttpError(Exception):
    def __init__(self, status: int, message: str,
                 extra: Optional[Dict[str, Any]] = None):
        super().__init__(message)
        self.status = status
        self.payload = {"error": message, **(extra or {})}


_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed",
            421: "Misdirected Request", 500: "Internal Server Error"}


class Server:
    """One serve instance: HTTP front end + broker + event hub."""

    def __init__(self, broker: Optional[JobBroker] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 shard_map: Optional[ShardMap] = None,
                 obs_root=None, poll_interval: float = 0.15):
        self.broker = broker if broker is not None else JobBroker()
        self.host = host
        self.port = port
        self.shard_map = shard_map
        self.poll_interval = poll_interval
        self._tailer = obs_runlog.RunLogTailer(obs_root)
        self._subscribers: Set[Tuple[asyncio.Queue, Optional[str]]] = set()
        self._server: Optional[asyncio.AbstractServer] = None
        self._tail_task: Optional["asyncio.Task[None]"] = None
        self.metrics_on = obs_metrics.enabled()
        self.metrics = self._build_registry()

    # -- metrics ---------------------------------------------------------------

    def _build_registry(self) -> obs_metrics.MetricsRegistry:
        """This instance's metric series.

        Broker and cache series are pull collectors over counters their
        owners already maintain monotonically — no hot-path
        instrumentation, and each in-process ``Server`` reads *its own*
        broker, so two instances of a test shard ring never merge.
        """
        registry = obs_metrics.MetricsRegistry()
        broker = self.broker
        registry.counter(
            "repro_broker_jobs_total",
            "jobs executed by this instance's runner (cold work)",
            fn=lambda: broker.stats.executed)
        registry.counter(
            "repro_broker_submitted_total",
            "jobs received after wire decode",
            fn=lambda: broker.stats.submitted)
        registry.counter(
            "repro_broker_joined_total",
            "jobs that shared an already-in-flight execution",
            fn=lambda: broker.stats.joined)
        registry.counter(
            "repro_broker_batches_total",
            "consumer drains handed to the runner",
            fn=lambda: broker.stats.batches)
        registry.counter(
            "repro_broker_failures_total",
            "jobs whose execution raised",
            fn=lambda: broker.stats.failures)
        registry.counter(
            "repro_cache_hits_total",
            "jobs resolved straight from the result cache (cache-aside)",
            fn=lambda: broker.stats.cache_hits)
        registry.counter(
            "repro_cache_memo_hits_total",
            "result-cache in-memory hits",
            fn=lambda: broker.cache.stats.memo_hits)
        registry.counter(
            "repro_cache_disk_hits_total",
            "result-cache on-disk hits",
            fn=lambda: broker.cache.stats.disk_hits)
        registry.counter(
            "repro_cache_misses_total",
            "result-cache misses",
            fn=lambda: broker.cache.stats.misses)
        registry.counter(
            "repro_cache_evictions_total",
            "corrupt result-cache entries evicted on read",
            fn=lambda: broker.cache.stats.evictions)
        registry.gauge(
            "repro_broker_queue_depth",
            "jobs waiting in the broker queue",
            fn=lambda: broker.queue_depth)
        registry.gauge(
            "repro_broker_inflight_jobs",
            "jobs queued or executing with unresolved futures",
            fn=lambda: broker.inflight_count)
        registry.gauge(
            "repro_serve_sse_clients",
            "connected /v1/events subscribers",
            fn=lambda: len(self._subscribers))
        queue_wait = registry.histogram(
            "repro_broker_queue_wait_seconds",
            "seconds a job waited in the queue before its batch drained")
        broker.on_queue_wait = queue_wait.observe
        # Folded from tailed job_end records (the workers' metric
        # shards): see _fold_record.
        registry.histogram(
            "repro_job_wall_seconds",
            "per-job wall-clock execution seconds")
        registry.counter(
            "repro_job_events_total",
            "simulated accesses across completed jobs")
        registry.counter(
            "repro_ckpt_restores_total",
            "jobs that restored a warm-up/progress checkpoint")
        registry.counter(
            "repro_trace_store_hits_total",
            "on-disk trace store hits across completed jobs")
        registry.gauge(
            "repro_engine_events_per_second",
            "simulated accesses per wall second of the last folded job")
        return registry

    def _fold_record(self, record: Dict[str, Any]) -> None:
        """Fold one tailed ``job_end`` record's metrics section in."""
        if record.get("event") != "job_end":
            return
        section = record.get("metrics")
        if not isinstance(section, dict):
            return
        wall = float(section.get("wall_seconds", 0.0))
        self.metrics.get("repro_job_wall_seconds").observe(wall)
        self.metrics.get("repro_job_events_total").inc(
            float(section.get("events", 0)))
        self.metrics.get("repro_ckpt_restores_total").inc(
            float(section.get("ckpt_restored", 0)))
        self.metrics.get("repro_trace_store_hits_total").inc(
            float(section.get("trace_store_hits", 0)))
        self.metrics.get("repro_engine_events_per_second").set(
            float(section.get("events_per_second", 0.0)))

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        self.broker.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]
        if self.metrics_on:
            # Prime the tailer past pre-existing runlogs: folded job
            # metrics are live-only, not a replay of every old run
            # under the obs root.  (SSE semantics are unchanged — the
            # tail loop only dispatched to subscribers that existed
            # when a record was polled, so history was never theirs.)
            await asyncio.get_running_loop().run_in_executor(
                None, self._tailer.poll)
        self._tail_task = asyncio.get_running_loop().create_task(
            self._tail_loop())

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._tail_task is not None:
            self._tail_task.cancel()
            try:
                await self._tail_task
            except asyncio.CancelledError:
                pass
            self._tail_task = None
        # Wake event-stream handlers (blocked on their queues) so their
        # connections close instead of being destroyed with the loop.
        for queue, _fingerprint in list(self._subscribers):
            queue.put_nowait(None)
        await asyncio.sleep(0)
        await self.broker.close()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- event hub -------------------------------------------------------------

    async def _tail_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            if self._subscribers or self.metrics_on:
                # File I/O off the loop thread; records fan out on it.
                records = await loop.run_in_executor(
                    None, self._tailer.poll)
                for record in records:
                    if self.metrics_on:
                        self._fold_record(record)
                    self._dispatch(record)
            await asyncio.sleep(self.poll_interval)

    def _dispatch(self, record: Dict[str, Any]) -> None:
        event = record.get("event")
        if event not in PROGRESS_EVENTS:
            return
        for queue, fingerprint in self._subscribers:
            if fingerprint is not None \
                    and record.get("fingerprint") != fingerprint:
                continue
            queue.put_nowait(record)

    # -- connection handling ---------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            method, path, query, body = await self._read_request(reader)
            await self._route(method, path, query, body, writer)
        except _HttpError as exc:
            await self._send_json(writer, exc.status, exc.payload)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request/stream
        except Exception as exc:  # never kill the accept loop
            try:
                await self._send_json(writer, 500, {"error": repr(exc)})
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        request_line = (await reader.readline()).decode(
            "latin-1").rstrip("\r\n")
        parts = request_line.split()
        if len(parts) != 3:
            raise _HttpError(400, f"malformed request line "
                                  f"{request_line!r}")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY:
            raise _HttpError(400, f"request body of {length} bytes "
                                  f"exceeds the {MAX_BODY} limit")
        body = await reader.readexactly(length) if length else b""
        split = urlsplit(target)
        query = {k: v[-1] for k, v in parse_qs(split.query).items()}
        return method, split.path, query, body

    async def _send_json(self, writer: asyncio.StreamWriter, status: int,
                         payload: Dict[str, Any]) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        head = (f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n").encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    async def _send_text(self, writer: asyncio.StreamWriter, status: int,
                         text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        head = (f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n").encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # -- routing ---------------------------------------------------------------

    async def _route(self, method: str, path: str, query: Dict[str, str],
                     body: bytes, writer: asyncio.StreamWriter) -> None:
        if path == "/healthz" and method == "GET":
            await self._send_json(writer, 200, self._describe())
        elif path == "/v1/healthz" and method == "GET":
            await self._send_json(writer, 200, self._health())
        elif path == "/metrics" and method == "GET":
            if not self.metrics_on:
                raise _HttpError(404, "metrics disabled "
                                      "(REPRO_METRICS=0)")
            await self._send_text(
                writer, 200, self.metrics.render(),
                "text/plain; version=0.0.4; charset=utf-8")
        elif path == "/v1/stats" and method == "GET":
            await self._send_json(writer, 200, {
                "broker": self.broker.stats.snapshot(),
                "cache": self.broker.cache.stats.snapshot(),
                "subscribers": len(self._subscribers)})
        elif path == "/v1/jobs":
            if method != "POST":
                raise _HttpError(405, "POST /v1/jobs")
            await self._handle_jobs(body, writer)
        elif path.startswith("/v1/results/"):
            if method != "GET":
                raise _HttpError(405, "GET /v1/results/<fingerprint>")
            await self._handle_result(
                path[len("/v1/results/"):], query, writer)
        elif path == "/v1/events":
            if method != "GET":
                raise _HttpError(405, "GET /v1/events")
            await self._handle_events(query, writer)
        else:
            raise _HttpError(404, f"no route {method} {path}")

    def _describe(self) -> Dict[str, Any]:
        return {"status": "ok", "wire": WIRE_VERSION,
                "version": __version__,
                "shard": self.shard_map.describe()
                if self.shard_map else None,
                "workers": self.broker.runner.workers}

    def _health(self) -> Dict[str, Any]:
        """The load-balancer subset: cheap gauges, no histogram walk."""
        return {"status": "ok",
                "shard": self.shard_map.describe()
                if self.shard_map else None,
                "queue_depth": self.broker.queue_depth,
                "inflight": self.broker.inflight_count,
                "cache": self.broker.cache.stats.snapshot(),
                "subscribers": len(self._subscribers)}

    async def _handle_jobs(self, body: bytes,
                           writer: asyncio.StreamWriter) -> None:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise _HttpError(400, f"request body is not JSON: {exc}") \
                from None
        if not isinstance(payload, dict) \
                or payload.get("wire") != WIRE_VERSION:
            raise _HttpError(400, f"expected a wire-version-{WIRE_VERSION}"
                                  f" envelope")
        jobs = payload.get("jobs")
        if not isinstance(jobs, list) or not jobs:
            raise _HttpError(400, "envelope carries no jobs")
        statuses: List[Dict[str, Any]] = []
        for entry in jobs:
            try:
                job, fingerprint = job_from_wire(entry)
            except WireError as exc:
                statuses.append({"status": "invalid", "error": str(exc),
                                 "fingerprint": None})
                continue
            if self.shard_map is not None \
                    and not self.shard_map.owns(fingerprint):
                statuses.append({
                    "status": "rejected", "fingerprint": fingerprint,
                    "owner": self.shard_map.owner_of(fingerprint)})
                continue
            # The optional traceparent envelope key: this hop runs as a
            # *child* span of the client's context, so the runlog shows
            # client -> server -> job causality.  Absent or malformed
            # values (old clients, junk) simply mean an untraced job.
            context = None
            if obs_trace.enabled():
                parent = obs_trace.parse_or_none(
                    entry.get("traceparent")
                    if isinstance(entry, dict) else None)
                context = parent.child() if parent is not None else None
            was_inflight = self.broker.is_inflight(fingerprint)
            future = self.broker.submit(job, fingerprint, context)
            status = "cached" if future.done() \
                else ("joined" if was_inflight else "accepted")
            statuses.append({"status": status, "fingerprint": fingerprint})
        await self._send_json(writer, 200,
                              {"wire": WIRE_VERSION, "jobs": statuses})

    async def _handle_result(self, fingerprint: str, query: Dict[str, str],
                             writer: asyncio.StreamWriter) -> None:
        if self.shard_map is not None \
                and not self.shard_map.owns(fingerprint):
            raise _HttpError(
                421, f"fingerprint {fingerprint} is not in this shard",
                {"owner": self.shard_map.owner_of(fingerprint)})
        try:
            timeout = float(query.get("timeout", RESULT_WAIT))
        except ValueError:
            raise _HttpError(400, "timeout must be a number") from None
        future = self.broker.lookup(fingerprint)
        if future is None:
            raise _HttpError(
                404, f"fingerprint {fingerprint} was never submitted "
                     f"here and is not cached")
        try:
            result = await asyncio.wait_for(
                asyncio.shield(future), timeout=max(0.0, timeout))
        except asyncio.TimeoutError:
            await self._send_json(writer, 202, {"status": "pending"})
            return
        except Exception as exc:
            raise _HttpError(500, f"job failed: {exc}") from None
        await self._send_json(writer, 200, result_to_wire(result))

    async def _handle_events(self, query: Dict[str, str],
                             writer: asyncio.StreamWriter) -> None:
        fingerprint = query.get("fingerprint")
        queue: "asyncio.Queue[Dict[str, Any]]" = asyncio.Queue()
        subscription = (queue, fingerprint)
        self._subscribers.add(subscription)
        head = ("HTTP/1.1 200 OK\r\n"
                "Content-Type: text/event-stream\r\n"
                "Cache-Control: no-cache\r\n"
                "Connection: close\r\n\r\n").encode("latin-1")
        try:
            writer.write(head)
            await writer.drain()
            while True:
                record = await queue.get()
                if record is None:  # server shutting down
                    break
                data = json.dumps(record, sort_keys=True)
                writer.write(f"data: {data}\n\n".encode("utf-8"))
                await writer.drain()
        finally:
            self._subscribers.discard(subscription)


def pick_free_port(host: str = "127.0.0.1") -> int:
    """An OS-assigned free TCP port (tests and shard harnesses bind the
    ring's addresses before any instance starts)."""
    with socket.socket() as sock:
        sock.bind((host, 0))
        return sock.getsockname()[1]


async def serve_forever(server: Server) -> None:
    """Run until cancelled (the ``python -m repro.serve`` main loop)."""
    await server.start()
    try:
        await asyncio.Event().wait()
    finally:
        await server.stop()


class ServerThread:
    """An in-process server on a background event loop.

    The tests' two-instance shard harness and the CI smoke bench run
    instances this way: same process, real sockets, no subprocess
    plumbing.  ``start()`` blocks until the port is bound; ``stop()``
    tears the loop down cleanly.
    """

    def __init__(self, server: Server):
        self.server = server
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread = None

    def start(self, timeout: float = 10.0) -> "ServerThread":
        import threading
        started = threading.Event()
        failure: List[BaseException] = []

        def main() -> None:
            loop = asyncio.new_event_loop()
            self._loop = loop
            asyncio.set_event_loop(loop)

            async def boot() -> None:
                try:
                    await self.server.start()
                finally:
                    started.set()

            try:
                loop.run_until_complete(boot())
                loop.run_forever()
            except BaseException as exc:  # surfaced by start()
                failure.append(exc)
                started.set()
            finally:
                loop.close()

        self._thread = threading.Thread(
            target=main, name="repro-serve", daemon=True)
        self._thread.start()
        if not started.wait(timeout):
            raise RuntimeError("server thread did not start in time")
        if failure:
            raise RuntimeError(
                f"server thread failed to start: {failure[0]!r}")
        return self

    @property
    def url(self) -> str:
        return self.server.url

    def stop(self, timeout: float = 10.0) -> None:
        loop, thread = self._loop, self._thread
        if loop is None or thread is None:
            return

        def shutdown() -> None:
            task = loop.create_task(self.server.stop())
            task.add_done_callback(lambda _t: loop.stop())

        loop.call_soon_threadsafe(shutdown)
        thread.join(timeout)
        self._loop = None
        self._thread = None
