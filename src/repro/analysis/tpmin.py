"""Offline replacement oracles: Belady's MIN vs. TP-MIN (Section IV-D1).

Both policies manage a metadata store of fixed capacity (in pairwise
correlations) against a known future.  The difference is the oracle
question asked at eviction time:

* **MIN** evicts the correlation whose *trigger* is accessed furthest in
  the future (the Triage interpretation: maximize trigger hits).
* **TP-MIN** evicts the correlation *used* furthest in the future, where
  a correlation (t -> x) is "used" only when t is accessed *and* the
  next access is x -- i.e. when the stored metadata would actually have
  produced a correct prefetch.

Figure 6's point falls out directly: a trigger with an unstable target
is worthless to keep, however often the trigger itself recurs.
:func:`compare` replays a trace through both policies and reports the
correlation hit rate of each.
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..memory.address import block_of
from ..sim.trace import Trace

INFINITY = 1 << 60


@dataclass
class OracleResult:
    """Outcome of one offline replay."""

    policy: str
    capacity: int
    lookups: int
    trigger_hits: int
    correlation_hits: int

    @property
    def trigger_hit_rate(self) -> float:
        return self.trigger_hits / self.lookups if self.lookups else 0.0

    @property
    def correlation_hit_rate(self) -> float:
        return self.correlation_hits / self.lookups if self.lookups else 0.0


def _correlation_events(trace: Trace) -> List[Tuple[int, int]]:
    """Per-PC (trigger, target) pairs in program order."""
    last: Dict[int, int] = {}
    events: List[Tuple[int, int]] = []
    for pc, addr, _w, _g, _d in trace:
        blk = block_of(addr)
        prev = last.get(pc)
        if prev is not None and prev != blk:
            events.append((prev, blk))
        last[pc] = blk
    return events


def _next_use_index(events: Sequence[Tuple[int, int]], mode: str
                    ) -> List[int]:
    """For each event i, the next index j > i at which the stored
    correlation would be *relevant* again.

    mode="trigger": next occurrence of the same trigger.
    mode="correlation": next occurrence of the same (trigger, target).
    """
    positions: Dict[object, List[int]] = defaultdict(list)
    for i, (t, x) in enumerate(events):
        key = t if mode == "trigger" else (t, x)
        positions[key].append(i)
    nxt = [INFINITY] * len(events)
    for i, (t, x) in enumerate(events):
        key = t if mode == "trigger" else (t, x)
        plist = positions[key]
        j = bisect.bisect_right(plist, i)
        if j < len(plist):
            nxt[i] = plist[j]
    return nxt


def replay(trace: Trace, capacity: int, policy: str = "tp-min"
           ) -> OracleResult:
    """Replay correlation events through an offline-optimal store.

    ``policy`` is ``"min"`` (trigger-based Belady) or ``"tp-min"``.
    The store holds one (trigger -> target) pair per trigger, capacity
    pairs total; on overflow it evicts the pair with the furthest next
    use per the policy's definition of "use".
    """
    if policy not in ("min", "tp-min"):
        raise ValueError("policy must be 'min' or 'tp-min'")
    if capacity < 1:
        raise ValueError("capacity must be >= 1")
    events = _correlation_events(trace)
    mode = "trigger" if policy == "min" else "correlation"
    nxt = _next_use_index(events, mode)

    import heapq

    store: Dict[int, Tuple[int, int]] = {}  # trigger -> (target, next_use)
    # Max-heap of (-next_use, trigger) with lazy deletion for O(log n)
    # furthest-future victim selection.
    heap: List[Tuple[int, int]] = []
    lookups = trigger_hits = correlation_hits = 0
    for i, (trigger, target) in enumerate(events):
        lookups += 1
        held = store.get(trigger)
        if held is not None:
            trigger_hits += 1
            if held[0] == target:
                correlation_hits += 1
        # Update/insert the fresh correlation with its next relevant use.
        if held is not None or len(store) < capacity:
            store[trigger] = (target, nxt[i])
            heapq.heappush(heap, (-nxt[i], trigger))
        else:
            # Pop until the heap top reflects a live entry.
            while heap:
                neg_use, victim = heap[0]
                live = store.get(victim)
                if live is None or live[1] != -neg_use:
                    heapq.heappop(heap)  # stale
                    continue
                break
            if heap and -heap[0][0] > nxt[i]:
                _, victim = heapq.heappop(heap)
                del store[victim]
                store[trigger] = (target, nxt[i])
                heapq.heappush(heap, (-nxt[i], trigger))
    return OracleResult(policy, capacity, lookups, trigger_hits,
                        correlation_hits)


def compare(trace: Trace, capacity: int) -> Dict[str, OracleResult]:
    """Replay with both oracles; the paper's Section V-D3 comparison."""
    return {p: replay(trace, capacity, p) for p in ("min", "tp-min")}
