"""Table I: properties of the eight partitioning schemes.

The paper's Table I classifies every combination of
Rearranged/Filtered indexing x Untagged/Tagged x Way/Set partitioning by
whether it (a) avoids low associativity at small and big partition
sizes and (b) avoids expensive repartitioning.  Rather than hard-coding
the table, this module *derives* each cell from the mechanics the rest
of the package implements, so the table doubles as a consistency check
of the model:

* associativity: untagged schemes pin an entry to one way (4 stream
  entries of reach); tagged-way schemes gain the ways at big sizes but a
  1-2 way partition still collapses; tagged-set keeps 8 ways x 4 entries
  at every size.
* repartitioning: rearranged indexing moves misplaced blocks on every
  resize; filtered indexing never does.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import List

from ..core.stream_entry import ENTRIES_PER_BLOCK

GOOD_ASSOCIATIVITY = 16   # entries of reach needed to call a scheme "ok"


@dataclass(frozen=True)
class SchemeProperties:
    """One row of Table I."""

    code: str                       # e.g. "FTS"
    indexing: str                   # rearranged | filtered
    tagged: bool
    axis: str                       # way | set
    assoc_small: int                # entry reach at the smallest size
    assoc_big: int                  # entry reach at the largest size
    cheap_repartitioning: bool

    @property
    def low_assoc_small(self) -> bool:
        return self.assoc_small < GOOD_ASSOCIATIVITY

    @property
    def low_assoc_big(self) -> bool:
        return self.assoc_big < GOOD_ASSOCIATIVITY


def _associativity(tagged: bool, axis: str, meta_ways: int,
                   stream_length: int) -> int:
    """Entries a trigger can occupy at a given partition configuration."""
    epb = ENTRIES_PER_BLOCK[stream_length]
    if not tagged:
        return epb                     # pinned to one way by the index
    return meta_ways * epb             # free placement within the set


def classify(indexing: str, tagged: bool, axis: str,
             stream_length: int = 4, llc_ways: int = 16) -> SchemeProperties:
    """Derive one Table I row from the partitioning mechanics."""
    if indexing not in ("rearranged", "filtered"):
        raise ValueError("indexing must be 'rearranged' or 'filtered'")
    if axis not in ("way", "set"):
        raise ValueError("axis must be 'way' or 'set'")
    # Smallest/biggest useful sizes: 1 way vs. half the LLC for the way
    # axis; the set axis always dedicates 8 ways per allocated set.
    small_ways = 1 if axis == "way" else llc_ways // 2
    big_ways = llc_ways // 2
    code = "".join((indexing[0].upper(), "T" if tagged else "U",
                    axis[0].upper()))
    return SchemeProperties(
        code=code,
        indexing=indexing,
        tagged=tagged,
        axis=axis,
        assoc_small=_associativity(tagged, axis, small_ways, stream_length),
        assoc_big=_associativity(tagged, axis, big_ways, stream_length),
        cheap_repartitioning=(indexing == "filtered"),
    )


def build_table(stream_length: int = 4) -> List[SchemeProperties]:
    """All eight rows, in the paper's order (RUW ... FTS)."""
    rows = []
    for axis, tagged, indexing in product(
            ("way", "set"), (False, True), ("rearranged", "filtered")):
        rows.append(classify(indexing, tagged, axis, stream_length))
    order = ["RUW", "FUW", "RUS", "FUS", "RTW", "FTW", "RTS", "FTS"]
    rows.sort(key=lambda r: order.index(r.code))
    return rows


def render_table(stream_length: int = 4) -> str:
    """Plain-text Table I."""
    def mark(bad: bool) -> str:
        return "X" if bad else "OK"

    lines = [f"{'Scheme':<8}{'SmallAssoc':<12}{'BigAssoc':<12}"
             f"{'Repartitioning':<14}",
             "-" * 46]
    for r in build_table(stream_length):
        lines.append(
            f"{r.code:<8}{mark(r.low_assoc_small):<12}"
            f"{mark(r.low_assoc_big):<12}"
            f"{'cheap' if r.cheap_repartitioning else 'EXPENSIVE':<14}")
    return "\n".join(lines)
