"""Metadata redundancy measurement (Figure 12b and Section V-C2).

A correlation (a -> b) is *redundant* when it is stored by more than one
live stream entry.  The paper distinguishes **benign** redundancy --
copies that disambiguate different stream contexts, like (C,A,T) vs.
(D,A,Y) where the shared address A has different predecessors -- from
plain duplication, and shows that stream alignment halves the overall
redundancy rate.

:func:`measure` inspects a live :class:`~repro.core.metadata_store.StreamStore`
and reports both rates; the figure-12b bench runs Streamline with and
without alignment and compares.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.metadata_store import StreamStore


@dataclass
class RedundancyReport:
    """Share of stored correlations that are duplicated."""

    total_correlations: int
    redundant_correlations: int
    benign_correlations: int

    @property
    def redundancy_rate(self) -> float:
        if not self.total_correlations:
            return 0.0
        return self.redundant_correlations / self.total_correlations

    @property
    def benign_fraction(self) -> float:
        """Fraction of the redundancy that is context-disambiguating."""
        if not self.redundant_correlations:
            return 0.0
        return self.benign_correlations / self.redundant_correlations


def _address_occurrences(store: StreamStore
                         ) -> List[Tuple[int, int]]:
    """All stored (address, predecessor-context) pairs.

    Redundancy in the paper's sense is *storage* redundancy: the same
    address held by more than one live entry (Fig. 1a's pairwise waste,
    Fig. 3a's overlap waste).  The context is the address immediately
    before it within its entry (-1 for triggers, which have none);
    distinct contexts make a duplicate benign because they disambiguate
    which stream is running (the (C,A,T) vs (D,A,Y) example).
    """
    out: List[Tuple[int, int]] = []
    for pool in store._sets.values():
        for stored in pool:
            addrs = stored.entry.addresses
            for i, a in enumerate(addrs):
                context = addrs[i - 1] if i > 0 else -1
                out.append((a, context))
    return out


def measure(store: StreamStore) -> RedundancyReport:
    """Count duplicated addresses in the live store."""
    by_addr: Dict[int, List[int]] = defaultdict(list)
    for addr, context in _address_occurrences(store):
        by_addr[addr].append(context)
    total = redundant = benign = 0
    for contexts in by_addr.values():
        total += len(contexts)
        if len(contexts) <= 1:
            continue
        redundant += len(contexts)
        # Copies with pairwise-distinct predecessor contexts are benign;
        # an unknown (-1) context cannot disambiguate anything.
        distinct = {c for c in contexts if c != -1}
        if len(distinct) == len(contexts):
            benign += len(contexts)
    return RedundancyReport(total, redundant, benign)
