"""Offline analyses: replacement oracles, redundancy, Table I."""

from .partition_table import (SchemeProperties, build_table, classify,
                              render_table)
from .redundancy import RedundancyReport, measure
from .tpmin import OracleResult, compare, replay

__all__ = [
    "SchemeProperties", "build_table", "classify", "render_table",
    "RedundancyReport", "measure",
    "OracleResult", "compare", "replay",
]
