"""Trace characterization: footprints, reuse, and metadata demand.

These analyses answer the sizing questions behind the paper's
evaluation choices:

* :func:`characterize` - block footprint, reuse-distance profile, and
  per-PC statistics of a trace (is it memory-intensive? irregular?).
* :func:`metadata_demand` - how many pairwise vs. stream correlations a
  trace needs for full temporal coverage, i.e. the 33%-capacity
  argument of Figure 1 measured on a concrete trace.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from ..core.stream_entry import ENTRIES_PER_BLOCK
from ..memory.address import block_of
from ..sim.trace import Trace


@dataclass
class TraceProfile:
    """Summary statistics for one trace."""

    name: str
    accesses: int
    footprint_blocks: int
    unique_pcs: int
    dependent_fraction: float
    median_reuse_distance: float   # in distinct blocks; inf if no reuse
    irregular_fraction: float      # accesses whose block delta is not
                                   # one of the PC's two hottest strides

    @property
    def footprint_bytes(self) -> int:
        return 64 * self.footprint_blocks


def characterize(trace: Trace, reuse_sample: int = 4096) -> TraceProfile:
    """Profile a trace (reuse distances are sampled for tractability)."""
    blocks = np.asarray(trace.addrs) >> 6
    # Reuse distances via last-seen positions and distinct-count proxy.
    last_pos: Dict[int, int] = {}
    distances: List[int] = []
    stride = max(1, len(blocks) // reuse_sample)
    for i, blk in enumerate(blocks.tolist()):
        prev = last_pos.get(blk)
        if prev is not None and i % stride == 0:
            distances.append(i - prev)  # time distance proxy
        last_pos[blk] = i
    median = float(np.median(distances)) if distances else float("inf")
    # Irregularity: per PC, how often the delta is off the top-2 strides.
    deltas: Dict[int, Dict[int, int]] = defaultdict(lambda: defaultdict(int))
    last_blk: Dict[int, int] = {}
    pcs = trace.pcs.tolist()
    for pc, blk in zip(pcs, blocks.tolist()):
        if pc in last_blk:
            deltas[pc][blk - last_blk[pc]] += 1
        last_blk[pc] = blk
    irregular = total = 0
    for pc, table in deltas.items():
        counts = sorted(table.values(), reverse=True)
        pc_total = sum(counts)
        total += pc_total
        irregular += pc_total - sum(counts[:2])
    return TraceProfile(
        name=trace.name,
        accesses=len(trace),
        footprint_blocks=int(np.unique(blocks).size),
        unique_pcs=trace.unique_pcs(),
        dependent_fraction=float(trace.deps.mean()) if len(trace) else 0.0,
        median_reuse_distance=median,
        irregular_fraction=irregular / total if total else 0.0,
    )


@dataclass
class MetadataDemand:
    """Correlations needed for full temporal coverage of a trace."""

    pairwise_correlations: int
    stream_entries: int            # at the given stream length
    stream_correlations: int       # entries * length
    stream_length: int

    @property
    def pairwise_blocks(self) -> int:
        """64B blocks for the pairwise format (12 corr/block)."""
        return -(-self.pairwise_correlations // 12)

    @property
    def stream_blocks(self) -> int:
        epb = ENTRIES_PER_BLOCK[self.stream_length]
        return -(-self.stream_entries // epb)

    @property
    def capacity_advantage(self) -> float:
        """Pairwise blocks / stream blocks (paper: ~4/3 at length 4)."""
        if not self.stream_blocks:
            return 1.0
        return self.pairwise_blocks / self.stream_blocks


def metadata_demand(trace: Trace, stream_length: int = 4
                    ) -> MetadataDemand:
    """Count the distinct correlations a trace's PC-localized history
    contains, in both formats.

    Pairwise: one (trigger -> target) pair per distinct consecutive
    block pair per PC.  Stream: entries of ``stream_length`` successors
    carved from each PC's access sequence (greedy, as the training unit
    would with perfectly aligned streams).
    """
    if stream_length not in ENTRIES_PER_BLOCK:
        raise ValueError(f"unsupported stream length {stream_length}")
    per_pc: Dict[int, List[int]] = defaultdict(list)
    for pc, addr, _w, _g, _d in trace:
        blk = block_of(addr)
        seq = per_pc[pc]
        if not seq or seq[-1] != blk:
            seq.append(blk)
    pairs = set()
    entries = set()
    for pc, seq in per_pc.items():
        for a, b in zip(seq, seq[1:]):
            pairs.add((pc, a, b))
        for i in range(0, len(seq) - 1, stream_length):
            window = tuple(seq[i:i + stream_length + 1])
            entries.add((pc,) + window)
    return MetadataDemand(
        pairwise_correlations=len(pairs),
        stream_entries=len(entries),
        stream_correlations=len(entries) * stream_length,
        stream_length=stream_length,
    )
