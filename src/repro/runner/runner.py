"""The batch runner: cache lookup, dedup, and process-pool fan-out.

``SimRunner.run(jobs)`` preserves input order, computes each distinct
fingerprint at most once, serves repeats from the two-level cache, and
spreads cold jobs over a ``ProcessPoolExecutor``.  Worker count comes
from ``REPRO_JOBS`` (default ``os.cpu_count()``); ``REPRO_JOBS=1``
bypasses the pool entirely — a pure in-process serial path for debugging
and determinism checks.  Simulations are seeded and deterministic, so
serial and parallel runs are bit-identical (asserted by
``tests/test_runner.py``).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Dict, List, Optional, Sequence

from ..checkpoint import checkpoint_enabled, get_store
from ..obs import profile as obs_profile
from ..obs import runlog as obs_runlog
from ..obs import trace as obs_trace
from ..obs.progress import ProgressLine
from .cache import ResultCache
from .jobs import JobResult, SimJob, execute_job, prewarm_job


def env_jobs() -> int:
    """Worker count from ``REPRO_JOBS`` (default: all cores).

    A malformed value raises immediately with the env var named, rather
    than surfacing as a bare ``int()`` traceback deep in runner setup.
    """
    raw = os.environ.get("REPRO_JOBS", "")
    if not raw:
        return os.cpu_count() or 1
    try:
        jobs = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_JOBS must be an integer, got {raw!r}") from None
    if jobs <= 0:
        raise ValueError(f"REPRO_JOBS must be >= 1, got {jobs}")
    return jobs


class SimRunner:
    """Executes batches of :class:`SimJob` with caching and parallelism."""

    def __init__(self, jobs: Optional[int] = None,
                 cache: Optional[ResultCache] = None):
        self._jobs = jobs
        self.cache = cache if cache is not None else ResultCache()

    @property
    def workers(self) -> int:
        return self._jobs if self._jobs is not None else env_jobs()

    def run_one(self, job: SimJob) -> JobResult:
        return self.run([job])[0]

    def run(self, jobs: Sequence[SimJob],
            contexts: Optional[Sequence[
                Optional[obs_trace.TraceContext]]] = None
            ) -> List[JobResult]:
        """Run a batch; returns results in input order.

        Profiled runs (``REPRO_PROFILE=1``) bypass the result cache in
        both directions: a cached result has no fresh timing to offer,
        and a profiled result must not displace the golden cached one
        (``SimResult.profile`` would make it compare unequal to an
        unprofiled rerun).

        ``contexts`` optionally carries one trace context per job (the
        serve broker passes the submitting client's); when absent and
        tracing is on, this call *is* the outermost entry point and the
        whole batch runs under one freshly minted (or ambient) root.
        Contexts are a pure observation channel — they never touch
        fingerprints or results.
        """
        fingerprints = [job.fingerprint() for job in jobs]
        if contexts is None:
            root = obs_trace.ambient()
            contexts = [root] * len(jobs)
        elif len(contexts) != len(jobs):
            raise ValueError("contexts must align 1:1 with jobs")
        profiled = obs_profile.enabled()
        # Dedup within the batch and against the cache.
        results: Dict[str, JobResult] = {}
        pending: Dict[str, SimJob] = {}
        pending_ctx: Dict[str, Optional[obs_trace.TraceContext]] = {}
        before = self.cache.stats.snapshot()
        for job, fp, context in zip(jobs, fingerprints, contexts):
            if fp in pending or fp in results:
                continue
            cached = None if profiled else self.cache.get(fp)
            if cached is not None:
                results[fp] = cached
            else:
                pending[fp] = job
                pending_ctx[fp] = context
        if pending or results:
            # Fully cache-served batches still go through _execute (with
            # nothing to run) so the run log records them — a warm sweep
            # is the cache's best case, not a non-event.
            after = self.cache.stats.snapshot()
            executed = self._execute(
                list(pending.values()),
                total=len(pending) + len(results),
                memo_hits=after["memo_hits"] - before["memo_hits"],
                disk_hits=after["disk_hits"] - before["disk_hits"],
                evictions=after["evictions"] - before["evictions"],
                contexts=[pending_ctx[fp] for fp in pending],
                batch_context=next(
                    (c for c in contexts if c is not None), None))
            for fp, result in zip(pending, executed):
                results[fp] = result
                if not profiled:
                    self.cache.put(fp, result)
        return [results[fp] for fp in fingerprints]

    def _execute(self, jobs: List[SimJob], total: Optional[int] = None,
                 memo_hits: int = 0, disk_hits: int = 0,
                 evictions: int = 0,
                 contexts: Optional[List[
                     Optional[obs_trace.TraceContext]]] = None,
                 batch_context: Optional[obs_trace.TraceContext] = None
                 ) -> List[JobResult]:
        total = len(jobs) if total is None else total
        if contexts is None:
            contexts = [None] * len(jobs)
        # Batch-level records (run_start/run_end/prewarm/cache_evict)
        # run under the first traced job's context; a multi-trace batch
        # can only pin them to one trace, and "the request that caused
        # this batch" is the first one.  ``batch_context`` covers the
        # fully cache-served case (no pending jobs, so ``contexts`` is
        # empty, but run_start/run_end still want the trace).
        batch_ctx = next((c for c in contexts if c is not None),
                         batch_context)
        if batch_ctx is None:
            return self._execute_batch(jobs, total, memo_hits, disk_hits,
                                       evictions, contexts)
        prev_ctx = obs_trace.install(batch_ctx)
        try:
            return self._execute_batch(jobs, total, memo_hits, disk_hits,
                                       evictions, contexts)
        finally:
            obs_trace.install(prev_ctx)

    def _execute_batch(self, jobs: List[SimJob], total: int,
                       memo_hits: int, disk_hits: int, evictions: int,
                       contexts: List[Optional[obs_trace.TraceContext]]
                       ) -> List[JobResult]:
        parents = [c.to_traceparent() if c is not None else None
                   for c in contexts]
        log: Optional[obs_runlog.RunLog] = None
        writer: Optional[obs_runlog.RunLogWriter] = None
        if obs_runlog.enabled():
            log = obs_runlog.RunLog.create()
            writer = log.parent_writer()
        ckpt_hits = self._prewarm(jobs, writer)
        workers = min(self.workers, len(jobs))
        if writer is not None:
            writer.emit("run_start", run_id=log.run_id,
                        schema=obs_runlog.RUNLOG_SCHEMA_VERSION,
                        jobs=total, executed=len(jobs),
                        memo_hits=memo_hits, disk_hits=disk_hits,
                        evictions=evictions, workers=workers,
                        profiled=obs_profile.enabled())
            # Corrupt entries the batch's cache lookups evicted: one
            # record each, so reports can name what was lost and why.
            for evicted in self.cache.drain_evictions():
                writer.emit("cache_evict", **evicted)
        line = ProgressLine(total, done=memo_hits + disk_hits)
        line.update(memo_hits=memo_hits, disk_hits=disk_hits,
                    ckpt_hits=ckpt_hits)
        t0 = time.perf_counter()
        try:
            if workers <= 1:
                # Serial in-process path: log into a shard of our own so
                # the merged view looks the same as a pooled run.
                if log is not None:
                    obs_runlog.init_worker(str(log.directory))
                try:
                    results = []
                    # Route through execute_job so the serial path mints
                    # the same per-job child spans as pool workers.
                    for job, tp in zip(jobs, parents):
                        results.append(execute_job(job, tp))
                        line.update(done=line.done + 1)
                finally:
                    if log is not None:
                        shard = obs_runlog.current()
                        obs_runlog.uninstall()
                        if shard is not None:
                            shard.close()
            else:
                initializer = obs_runlog.init_worker \
                    if log is not None else None
                initargs = (str(log.directory),) if log is not None else ()
                with ProcessPoolExecutor(max_workers=workers,
                                         initializer=initializer,
                                         initargs=initargs) as pool:
                    futures = [pool.submit(execute_job, job, tp)
                               for job, tp in zip(jobs, parents)]
                    for future in as_completed(futures):
                        future.result()  # surface worker failures now
                        line.update(done=line.done + 1)
                    results = [future.result() for future in futures]
        finally:
            line.finish()
            if writer is not None:
                writer.emit("run_end", run_id=log.run_id,
                            wall_seconds=time.perf_counter() - t0,
                            ckpt_hits=ckpt_hits)
                writer.close()
                log.merge()
        return results

    def _prewarm(self, jobs: List[SimJob],
                 writer: Optional[obs_runlog.RunLogWriter] = None) -> int:
        """Snapshot each shared warm-up prefix once, before fan-out.

        Jobs that opt into ``resume`` and share a warm-up fingerprint
        would otherwise each re-simulate the identical warm-up region
        (or race to write the same snapshot); one representative per
        missing fingerprint runs the prefix and records it, and the
        batch proper then restores it N times.

        Returns how many of this batch's jobs will restore a warm-up
        snapshot (the progress line's ``ckpt`` counter).
        """
        if not checkpoint_enabled():
            return 0
        store = get_store()
        groups: Dict[str, List[SimJob]] = {}
        for job in jobs:
            if job.resume:
                groups.setdefault(job.warmup_fingerprint(), []).append(job)
        if not groups:
            return 0
        representatives = [
            members[0] for fp, members in groups.items()
            if len(members) > 1 and not store.has(fp)]
        if representatives:
            workers = min(self.workers, len(representatives))
            if workers <= 1:
                for job in representatives:
                    job.prewarm(store)
            else:
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    list(pool.map(prewarm_job, representatives))
            if writer is not None:
                writer.emit("prewarm", snapshots=len(representatives))
        return sum(len(members) for fp, members in groups.items()
                   if store.has(fp))


_DEFAULT_CACHE: Optional[ResultCache] = None
_DEFAULT_RUNNER: Optional[SimRunner] = None


def get_runner() -> SimRunner:
    """The process-wide default runner (shared memo across experiments)."""
    global _DEFAULT_CACHE, _DEFAULT_RUNNER
    if _DEFAULT_RUNNER is None:
        _DEFAULT_CACHE = ResultCache()
        _DEFAULT_RUNNER = SimRunner(cache=_DEFAULT_CACHE)
    return _DEFAULT_RUNNER


def reset_runner() -> None:
    """Drop the default runner (tests re-point the cache via env knobs)."""
    global _DEFAULT_CACHE, _DEFAULT_RUNNER
    _DEFAULT_CACHE = None
    _DEFAULT_RUNNER = None
