"""The batch runner: cache lookup, dedup, and process-pool fan-out.

``SimRunner.run(jobs)`` preserves input order, computes each distinct
fingerprint at most once, serves repeats from the two-level cache, and
spreads cold jobs over a ``ProcessPoolExecutor``.  Worker count comes
from ``REPRO_JOBS`` (default ``os.cpu_count()``); ``REPRO_JOBS=1``
bypasses the pool entirely — a pure in-process serial path for debugging
and determinism checks.  Simulations are seeded and deterministic, so
serial and parallel runs are bit-identical (asserted by
``tests/test_runner.py``).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence

from ..checkpoint import checkpoint_enabled, get_store
from .cache import ResultCache
from .jobs import JobResult, SimJob, execute_job, prewarm_job


def env_jobs() -> int:
    """Worker count from ``REPRO_JOBS`` (default: all cores).

    A malformed value raises immediately with the env var named, rather
    than surfacing as a bare ``int()`` traceback deep in runner setup.
    """
    raw = os.environ.get("REPRO_JOBS", "")
    if not raw:
        return os.cpu_count() or 1
    try:
        jobs = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_JOBS must be an integer, got {raw!r}") from None
    if jobs <= 0:
        raise ValueError(f"REPRO_JOBS must be >= 1, got {jobs}")
    return jobs


class SimRunner:
    """Executes batches of :class:`SimJob` with caching and parallelism."""

    def __init__(self, jobs: Optional[int] = None,
                 cache: Optional[ResultCache] = None):
        self._jobs = jobs
        self.cache = cache if cache is not None else ResultCache()

    @property
    def workers(self) -> int:
        return self._jobs if self._jobs is not None else env_jobs()

    def run_one(self, job: SimJob) -> JobResult:
        return self.run([job])[0]

    def run(self, jobs: Sequence[SimJob]) -> List[JobResult]:
        """Run a batch; returns results in input order."""
        fingerprints = [job.fingerprint() for job in jobs]
        # Dedup within the batch and against the cache.
        pending: Dict[str, SimJob] = {}
        for job, fp in zip(jobs, fingerprints):
            if fp in pending:
                continue
            if self.cache.get(fp) is None:
                pending[fp] = job
        if pending:
            for fp, result in zip(pending,
                                  self._execute(list(pending.values()))):
                self.cache.put(fp, result)
        out = []
        for fp in fingerprints:
            result = self.cache.memo.get(fp)
            assert result is not None, f"job {fp} produced no result"
            out.append(result)
        return out

    def _execute(self, jobs: List[SimJob]) -> List[JobResult]:
        self._prewarm(jobs)
        workers = min(self.workers, len(jobs))
        if workers <= 1:
            return [job.execute() for job in jobs]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(execute_job, jobs))

    def _prewarm(self, jobs: List[SimJob]) -> None:
        """Snapshot each shared warm-up prefix once, before fan-out.

        Jobs that opt into ``resume`` and share a warm-up fingerprint
        would otherwise each re-simulate the identical warm-up region
        (or race to write the same snapshot); one representative per
        missing fingerprint runs the prefix and records it, and the
        batch proper then restores it N times.
        """
        if not checkpoint_enabled():
            return
        store = get_store()
        groups: Dict[str, List[SimJob]] = {}
        for job in jobs:
            if job.resume:
                groups.setdefault(job.warmup_fingerprint(), []).append(job)
        representatives = [
            members[0] for fp, members in groups.items()
            if len(members) > 1 and not store.has(fp)]
        if not representatives:
            return
        workers = min(self.workers, len(representatives))
        if workers <= 1:
            for job in representatives:
                job.prewarm(store)
            return
        with ProcessPoolExecutor(max_workers=workers) as pool:
            list(pool.map(prewarm_job, representatives))


_DEFAULT_CACHE: Optional[ResultCache] = None
_DEFAULT_RUNNER: Optional[SimRunner] = None


def get_runner() -> SimRunner:
    """The process-wide default runner (shared memo across experiments)."""
    global _DEFAULT_CACHE, _DEFAULT_RUNNER
    if _DEFAULT_RUNNER is None:
        _DEFAULT_CACHE = ResultCache()
        _DEFAULT_RUNNER = SimRunner(cache=_DEFAULT_CACHE)
    return _DEFAULT_RUNNER


def reset_runner() -> None:
    """Drop the default runner (tests re-point the cache via env knobs)."""
    global _DEFAULT_CACHE, _DEFAULT_RUNNER
    _DEFAULT_CACHE = None
    _DEFAULT_RUNNER = None
