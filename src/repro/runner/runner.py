"""The batch runner: cache lookup, dedup, and process-pool fan-out.

``SimRunner.run(jobs)`` preserves input order, computes each distinct
fingerprint at most once, serves repeats from the two-level cache, and
spreads cold jobs over a ``ProcessPoolExecutor``.  Worker count comes
from ``REPRO_JOBS`` (default ``os.cpu_count()``); ``REPRO_JOBS=1``
bypasses the pool entirely — a pure in-process serial path for debugging
and determinism checks.  Simulations are seeded and deterministic, so
serial and parallel runs are bit-identical (asserted by
``tests/test_runner.py``).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Dict, List, Optional, Sequence

from ..checkpoint import checkpoint_enabled, get_store
from ..obs import profile as obs_profile
from ..obs import runlog as obs_runlog
from ..obs.progress import ProgressLine
from .cache import ResultCache
from .jobs import JobResult, SimJob, execute_job, prewarm_job


def env_jobs() -> int:
    """Worker count from ``REPRO_JOBS`` (default: all cores).

    A malformed value raises immediately with the env var named, rather
    than surfacing as a bare ``int()`` traceback deep in runner setup.
    """
    raw = os.environ.get("REPRO_JOBS", "")
    if not raw:
        return os.cpu_count() or 1
    try:
        jobs = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_JOBS must be an integer, got {raw!r}") from None
    if jobs <= 0:
        raise ValueError(f"REPRO_JOBS must be >= 1, got {jobs}")
    return jobs


class SimRunner:
    """Executes batches of :class:`SimJob` with caching and parallelism."""

    def __init__(self, jobs: Optional[int] = None,
                 cache: Optional[ResultCache] = None):
        self._jobs = jobs
        self.cache = cache if cache is not None else ResultCache()

    @property
    def workers(self) -> int:
        return self._jobs if self._jobs is not None else env_jobs()

    def run_one(self, job: SimJob) -> JobResult:
        return self.run([job])[0]

    def run(self, jobs: Sequence[SimJob]) -> List[JobResult]:
        """Run a batch; returns results in input order.

        Profiled runs (``REPRO_PROFILE=1``) bypass the result cache in
        both directions: a cached result has no fresh timing to offer,
        and a profiled result must not displace the golden cached one
        (``SimResult.profile`` would make it compare unequal to an
        unprofiled rerun).
        """
        fingerprints = [job.fingerprint() for job in jobs]
        profiled = obs_profile.enabled()
        # Dedup within the batch and against the cache.
        results: Dict[str, JobResult] = {}
        pending: Dict[str, SimJob] = {}
        before = self.cache.stats.snapshot()
        for job, fp in zip(jobs, fingerprints):
            if fp in pending or fp in results:
                continue
            cached = None if profiled else self.cache.get(fp)
            if cached is not None:
                results[fp] = cached
            else:
                pending[fp] = job
        if pending or results:
            # Fully cache-served batches still go through _execute (with
            # nothing to run) so the run log records them — a warm sweep
            # is the cache's best case, not a non-event.
            after = self.cache.stats.snapshot()
            executed = self._execute(
                list(pending.values()),
                total=len(pending) + len(results),
                memo_hits=after["memo_hits"] - before["memo_hits"],
                disk_hits=after["disk_hits"] - before["disk_hits"],
                evictions=after["evictions"] - before["evictions"])
            for fp, result in zip(pending, executed):
                results[fp] = result
                if not profiled:
                    self.cache.put(fp, result)
        return [results[fp] for fp in fingerprints]

    def _execute(self, jobs: List[SimJob], total: Optional[int] = None,
                 memo_hits: int = 0, disk_hits: int = 0,
                 evictions: int = 0) -> List[JobResult]:
        total = len(jobs) if total is None else total
        log: Optional[obs_runlog.RunLog] = None
        writer: Optional[obs_runlog.RunLogWriter] = None
        if obs_runlog.enabled():
            log = obs_runlog.RunLog.create()
            writer = log.parent_writer()
        ckpt_hits = self._prewarm(jobs, writer)
        workers = min(self.workers, len(jobs))
        if writer is not None:
            writer.emit("run_start", run_id=log.run_id,
                        schema=obs_runlog.RUNLOG_SCHEMA_VERSION,
                        jobs=total, executed=len(jobs),
                        memo_hits=memo_hits, disk_hits=disk_hits,
                        evictions=evictions, workers=workers,
                        profiled=obs_profile.enabled())
            # Corrupt entries the batch's cache lookups evicted: one
            # record each, so reports can name what was lost and why.
            for evicted in self.cache.drain_evictions():
                writer.emit("cache_evict", **evicted)
        line = ProgressLine(total, done=memo_hits + disk_hits)
        line.update(memo_hits=memo_hits, disk_hits=disk_hits,
                    ckpt_hits=ckpt_hits)
        t0 = time.perf_counter()
        try:
            if workers <= 1:
                # Serial in-process path: log into a shard of our own so
                # the merged view looks the same as a pooled run.
                if log is not None:
                    obs_runlog.init_worker(str(log.directory))
                try:
                    results = []
                    for job in jobs:
                        results.append(job.execute())
                        line.update(done=line.done + 1)
                finally:
                    if log is not None:
                        shard = obs_runlog.current()
                        obs_runlog.uninstall()
                        if shard is not None:
                            shard.close()
            else:
                initializer = obs_runlog.init_worker \
                    if log is not None else None
                initargs = (str(log.directory),) if log is not None else ()
                with ProcessPoolExecutor(max_workers=workers,
                                         initializer=initializer,
                                         initargs=initargs) as pool:
                    futures = [pool.submit(execute_job, job)
                               for job in jobs]
                    for future in as_completed(futures):
                        future.result()  # surface worker failures now
                        line.update(done=line.done + 1)
                    results = [future.result() for future in futures]
        finally:
            line.finish()
            if writer is not None:
                writer.emit("run_end", run_id=log.run_id,
                            wall_seconds=time.perf_counter() - t0,
                            ckpt_hits=ckpt_hits)
                writer.close()
                log.merge()
        return results

    def _prewarm(self, jobs: List[SimJob],
                 writer: Optional[obs_runlog.RunLogWriter] = None) -> int:
        """Snapshot each shared warm-up prefix once, before fan-out.

        Jobs that opt into ``resume`` and share a warm-up fingerprint
        would otherwise each re-simulate the identical warm-up region
        (or race to write the same snapshot); one representative per
        missing fingerprint runs the prefix and records it, and the
        batch proper then restores it N times.

        Returns how many of this batch's jobs will restore a warm-up
        snapshot (the progress line's ``ckpt`` counter).
        """
        if not checkpoint_enabled():
            return 0
        store = get_store()
        groups: Dict[str, List[SimJob]] = {}
        for job in jobs:
            if job.resume:
                groups.setdefault(job.warmup_fingerprint(), []).append(job)
        if not groups:
            return 0
        representatives = [
            members[0] for fp, members in groups.items()
            if len(members) > 1 and not store.has(fp)]
        if representatives:
            workers = min(self.workers, len(representatives))
            if workers <= 1:
                for job in representatives:
                    job.prewarm(store)
            else:
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    list(pool.map(prewarm_job, representatives))
            if writer is not None:
                writer.emit("prewarm", snapshots=len(representatives))
        return sum(len(members) for fp, members in groups.items()
                   if store.has(fp))


_DEFAULT_CACHE: Optional[ResultCache] = None
_DEFAULT_RUNNER: Optional[SimRunner] = None


def get_runner() -> SimRunner:
    """The process-wide default runner (shared memo across experiments)."""
    global _DEFAULT_CACHE, _DEFAULT_RUNNER
    if _DEFAULT_RUNNER is None:
        _DEFAULT_CACHE = ResultCache()
        _DEFAULT_RUNNER = SimRunner(cache=_DEFAULT_CACHE)
    return _DEFAULT_RUNNER


def reset_runner() -> None:
    """Drop the default runner (tests re-point the cache via env knobs)."""
    global _DEFAULT_CACHE, _DEFAULT_RUNNER
    _DEFAULT_CACHE = None
    _DEFAULT_RUNNER = None
