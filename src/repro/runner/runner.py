"""The batch runner: cache lookup, dedup, and process-pool fan-out.

``SimRunner.run(jobs)`` preserves input order, computes each distinct
fingerprint at most once, serves repeats from the two-level cache, and
spreads cold jobs over a ``ProcessPoolExecutor``.  Worker count comes
from ``REPRO_JOBS`` (default ``os.cpu_count()``); ``REPRO_JOBS=1``
bypasses the pool entirely — a pure in-process serial path for debugging
and determinism checks.  Simulations are seeded and deterministic, so
serial and parallel runs are bit-identical (asserted by
``tests/test_runner.py``).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence

from .cache import ResultCache
from .jobs import JobResult, SimJob, execute_job


def env_jobs() -> int:
    """Worker count from ``REPRO_JOBS`` (default: all cores).

    A malformed value raises immediately with the env var named, rather
    than surfacing as a bare ``int()`` traceback deep in runner setup.
    """
    raw = os.environ.get("REPRO_JOBS", "")
    if not raw:
        return os.cpu_count() or 1
    try:
        jobs = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_JOBS must be an integer, got {raw!r}") from None
    if jobs <= 0:
        raise ValueError(f"REPRO_JOBS must be >= 1, got {jobs}")
    return jobs


class SimRunner:
    """Executes batches of :class:`SimJob` with caching and parallelism."""

    def __init__(self, jobs: Optional[int] = None,
                 cache: Optional[ResultCache] = None):
        self._jobs = jobs
        self.cache = cache if cache is not None else ResultCache()

    @property
    def workers(self) -> int:
        return self._jobs if self._jobs is not None else env_jobs()

    def run_one(self, job: SimJob) -> JobResult:
        return self.run([job])[0]

    def run(self, jobs: Sequence[SimJob]) -> List[JobResult]:
        """Run a batch; returns results in input order."""
        fingerprints = [job.fingerprint() for job in jobs]
        # Dedup within the batch and against the cache.
        pending: Dict[str, SimJob] = {}
        for job, fp in zip(jobs, fingerprints):
            if fp in pending:
                continue
            if self.cache.get(fp) is None:
                pending[fp] = job
        if pending:
            for fp, result in zip(pending,
                                  self._execute(list(pending.values()))):
                self.cache.put(fp, result)
        out = []
        for fp in fingerprints:
            result = self.cache.memo.get(fp)
            assert result is not None, f"job {fp} produced no result"
            out.append(result)
        return out

    def _execute(self, jobs: List[SimJob]) -> List[JobResult]:
        workers = min(self.workers, len(jobs))
        if workers <= 1:
            return [job.execute() for job in jobs]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(execute_job, jobs))


_DEFAULT_CACHE: Optional[ResultCache] = None
_DEFAULT_RUNNER: Optional[SimRunner] = None


def get_runner() -> SimRunner:
    """The process-wide default runner (shared memo across experiments)."""
    global _DEFAULT_CACHE, _DEFAULT_RUNNER
    if _DEFAULT_RUNNER is None:
        _DEFAULT_CACHE = ResultCache()
        _DEFAULT_RUNNER = SimRunner(cache=_DEFAULT_CACHE)
    return _DEFAULT_RUNNER


def reset_runner() -> None:
    """Drop the default runner (tests re-point the cache via env knobs)."""
    global _DEFAULT_CACHE, _DEFAULT_RUNNER
    _DEFAULT_CACHE = None
    _DEFAULT_RUNNER = None
