"""Two-level result cache: per-process memo + on-disk store.

Level 1 is a plain dict keyed by job fingerprint, shared by every
experiment in the process, so cross-figure duplicates (the same stride
baseline appears in Fig. 9, Fig. 10d/e, Fig. 13a, ...) are computed
once.  Level 2 persists pickled :class:`JobResult`s under
``benchmarks/.simcache/`` so re-running a bench after an unrelated code
change is near-instant.

Knobs:

* ``REPRO_CACHE=0`` — disable the on-disk level (memo still applies).
* ``REPRO_CACHE_DIR`` — override the cache directory.

The fingerprint covers every job parameter plus a schema version
(:data:`repro.runner.jobs.SCHEMA_VERSION`); it does *not* hash the
simulator source, so bump the schema (or ``clear()`` / delete the
directory) after semantically changing the engine.
"""

from __future__ import annotations

import os
import pathlib
import pickle
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Dict, Optional

from .jobs import JobResult


def cache_enabled() -> bool:
    return os.environ.get("REPRO_CACHE", "1") not in ("", "0")


def default_cache_dir() -> pathlib.Path:
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return pathlib.Path(override)
    # Editable/source checkouts keep the cache next to the bench results.
    repo_root = pathlib.Path(__file__).resolve().parents[3]
    if (repo_root / "benchmarks").is_dir():
        return repo_root / "benchmarks" / ".simcache"
    return pathlib.Path.home() / ".cache" / "repro-simcache"


@dataclass
class CacheStats:
    """Hit/miss counters; the bench harness snapshots these."""

    memo_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {"memo_hits": self.memo_hits, "disk_hits": self.disk_hits,
                "misses": self.misses, "stores": self.stores}


class ResultCache:
    """Fingerprint-keyed memo with an optional pickle directory behind it."""

    def __init__(self, directory: Optional[pathlib.Path] = None,
                 persistent: Optional[bool] = None):
        self.persistent = cache_enabled() if persistent is None \
            else persistent
        self.directory = pathlib.Path(directory) if directory \
            else default_cache_dir()
        self.memo: Dict[str, JobResult] = {}
        self.stats = CacheStats()

    def _path(self, fingerprint: str) -> pathlib.Path:
        return self.directory / f"{fingerprint}.pkl"

    def get(self, fingerprint: str) -> Optional[JobResult]:
        hit = self.memo.get(fingerprint)
        if hit is not None:
            self.stats.memo_hits += 1
            return hit
        if self.persistent:
            path = self._path(fingerprint)
            try:
                with open(path, "rb") as fh:
                    result = pickle.load(fh)
            # pickle.load raises essentially anything on garbage bytes
            # (ValueError, KeyError, ... beyond UnpicklingError), so any
            # unreadable entry is a miss — never a crashed run.
            except Exception:
                pass  # missing or stale entry: recompute
            else:
                self.memo[fingerprint] = result
                self.stats.disk_hits += 1
                return result
        self.stats.misses += 1
        return None

    def put(self, fingerprint: str, result: JobResult) -> None:
        self.memo[fingerprint] = result
        self.stats.stores += 1
        if not self.persistent:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        # Atomic write: a killed run must never leave a torn pickle.
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, self._path(fingerprint))
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def clear(self, disk: bool = True) -> None:
        self.memo.clear()
        if disk and self.directory.is_dir():
            shutil.rmtree(self.directory, ignore_errors=True)
