"""Two-level result cache: per-process memo + on-disk store.

Level 1 is a plain dict keyed by job fingerprint, shared by every
experiment in the process, so cross-figure duplicates (the same stride
baseline appears in Fig. 9, Fig. 10d/e, Fig. 13a, ...) are computed
once.  Level 2 persists pickled :class:`JobResult`s under
``benchmarks/.simcache/`` so re-running a bench after an unrelated code
change is near-instant.

Every disk entry carries a sha256 sidecar (``<fp>.pkl.sha256``) written
in the same atomic-replace dance as the pickle; reads verify it, and a
corrupt entry — truncated pickle, digest mismatch, missing sidecar —
is *evicted to a miss* exactly like the checkpoint store handles a bad
``.npz``: the files are removed, the eviction is counted
(``CacheStats.evictions``), a ``warnings.warn`` names the entry, and
the runner surfaces it as a ``cache_evict`` run-log record.  The
``python -m repro.runner cache`` CLI lists/verifies/gc's the store.

Knobs:

* ``REPRO_CACHE=0`` — disable the on-disk level (memo still applies).
* ``REPRO_CACHE_DIR`` — override the cache directory.

The fingerprint covers every job parameter plus a schema version
(:data:`repro.runner.jobs.SCHEMA_VERSION`); it does *not* hash the
simulator source, so bump the schema (or ``clear()`` / delete the
directory) after semantically changing the engine.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import pickle
import shutil
import tempfile
import warnings
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from .jobs import JobResult

#: Sidecar suffix holding each entry's hex sha256.
DIGEST_SUFFIX = ".sha256"


def cache_enabled() -> bool:
    return os.environ.get("REPRO_CACHE", "1") not in ("", "0")


def default_cache_dir() -> pathlib.Path:
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return pathlib.Path(override)
    # Editable/source checkouts keep the cache next to the bench results.
    repo_root = pathlib.Path(__file__).resolve().parents[3]
    if (repo_root / "benchmarks").is_dir():
        return repo_root / "benchmarks" / ".simcache"
    return pathlib.Path.home() / ".cache" / "repro-simcache"


class CacheCorrupt(RuntimeError):
    """A disk entry that failed its integrity check (CLI ``verify``)."""


@dataclass
class CacheStats:
    """Hit/miss counters; the bench harness snapshots these."""

    memo_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Corrupt disk entries removed on read (each also queues a
    #: ``cache_evict`` run-log record; see ``drain_evictions``).
    evictions: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {"memo_hits": self.memo_hits, "disk_hits": self.disk_hits,
                "misses": self.misses, "stores": self.stores,
                "evictions": self.evictions}


def _atomic_write(directory: pathlib.Path, target: pathlib.Path,
                  blob: bytes) -> None:
    """Write-then-rename so a killed run never leaves a torn file, and
    two processes racing the same target both leave a readable winner
    (``os.replace`` is atomic on one filesystem)."""
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(blob)
        os.replace(tmp, target)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass


class ResultCache:
    """Fingerprint-keyed memo with an optional pickle directory behind it."""

    def __init__(self, directory: Optional[pathlib.Path] = None,
                 persistent: Optional[bool] = None):
        self.persistent = cache_enabled() if persistent is None \
            else persistent
        self.directory = pathlib.Path(directory) if directory \
            else default_cache_dir()
        self.memo: Dict[str, JobResult] = {}
        self.stats = CacheStats()
        self._evicted: List[Dict[str, Any]] = []

    def _path(self, fingerprint: str) -> pathlib.Path:
        return self.directory / f"{fingerprint}.pkl"

    def _digest_path(self, fingerprint: str) -> pathlib.Path:
        return self.directory / f"{fingerprint}.pkl{DIGEST_SUFFIX}"

    # -- integrity -------------------------------------------------------------

    def _read_verified(self, fingerprint: str) -> bytes:
        """The entry's pickle bytes, digest-verified.

        Raises ``FileNotFoundError`` for a plain miss and
        ``CacheCorrupt`` for an entry that exists but cannot be
        trusted (missing sidecar, digest mismatch).
        """
        blob = self._path(fingerprint).read_bytes()
        try:
            expected = self._digest_path(fingerprint) \
                .read_text(encoding="ascii").strip()
        except (FileNotFoundError, UnicodeDecodeError):
            raise CacheCorrupt(
                f"cache entry {fingerprint} has no readable sha256 "
                f"sidecar (pre-integrity entry or torn write)") from None
        actual = hashlib.sha256(blob).hexdigest()
        if actual != expected:
            raise CacheCorrupt(
                f"cache entry {fingerprint} failed its sha256 check "
                f"(expected {expected[:12]}..., got {actual[:12]}...)")
        return blob

    def _evict(self, fingerprint: str, reason: str) -> None:
        """Remove a corrupt entry so it degrades to a recomputable miss."""
        self.stats.evictions += 1
        self._evicted.append({"fingerprint": fingerprint,
                              "reason": reason})
        warnings.warn(
            f"evicting corrupt result-cache entry {fingerprint}: "
            f"{reason}", stacklevel=3)
        for path in (self._path(fingerprint),
                     self._digest_path(fingerprint)):
            try:
                path.unlink()
            except OSError:
                pass

    def drain_evictions(self) -> List[Dict[str, Any]]:
        """Evictions since the last drain (the runner turns these into
        ``cache_evict`` run-log records)."""
        drained, self._evicted = self._evicted, []
        return drained

    # -- the two-level protocol ------------------------------------------------

    def get(self, fingerprint: str) -> Optional[JobResult]:
        hit = self.memo.get(fingerprint)
        if hit is not None:
            self.stats.memo_hits += 1
            return hit
        if self.persistent:
            try:
                blob = self._read_verified(fingerprint)
            except FileNotFoundError:
                pass  # plain miss
            except CacheCorrupt as exc:
                self._evict(fingerprint, str(exc))
            else:
                try:
                    result = pickle.loads(blob)
                # pickle.loads raises essentially anything on garbage
                # bytes (ValueError, KeyError, ... beyond
                # UnpicklingError) — and a digest-valid entry can still
                # predate a class-layout change.
                except Exception as exc:
                    self._evict(fingerprint,
                                f"failed to unpickle: {exc!r}")
                else:
                    self.memo[fingerprint] = result
                    self.stats.disk_hits += 1
                    return result
        self.stats.misses += 1
        return None

    def put(self, fingerprint: str, result: JobResult) -> None:
        self.memo[fingerprint] = result
        self.stats.stores += 1
        if not self.persistent:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        blob = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(blob).hexdigest()
        # Sidecar first: a crash between the two replaces leaves either
        # a dangling sidecar (harmless: the pickle read misses) or a
        # matched pair — never a pickle that fails verification.
        _atomic_write(self.directory, self._digest_path(fingerprint),
                      (digest + "\n").encode("ascii"))
        _atomic_write(self.directory, self._path(fingerprint), blob)

    def clear(self, disk: bool = True) -> None:
        self.memo.clear()
        if disk and self.directory.is_dir():
            shutil.rmtree(self.directory, ignore_errors=True)

    # -- maintenance (the ``python -m repro.runner cache`` CLI) ---------------

    def entries(self) -> List[str]:
        """On-disk fingerprints, oldest first (by mtime, like the
        checkpoint store)."""
        if not self.directory.is_dir():
            return []
        paths = sorted(self.directory.glob("*.pkl"),
                       key=lambda p: (p.stat().st_mtime, p.name))
        return [p.stem for p in paths]

    def verify(self, fingerprint: str) -> int:
        """Integrity-check one entry; returns its size in bytes.

        Raises ``FileNotFoundError`` / ``CacheCorrupt`` without
        evicting — ``verify`` reports, ``get`` repairs.
        """
        return len(self._read_verified(fingerprint))

    def gc(self, keep: int = 0) -> List[str]:
        """Drop all but the ``keep`` most recent entries."""
        victims = self.entries()
        if keep > 0:
            victims = victims[:-keep] if keep < len(victims) else []
        for fingerprint in victims:
            for path in (self._path(fingerprint),
                         self._digest_path(fingerprint)):
                try:
                    path.unlink()
                except OSError:
                    pass
            self.memo.pop(fingerprint, None)
        return victims
