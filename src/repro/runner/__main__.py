"""Runner-store maintenance CLI.

``python -m repro.runner cache <command>`` mirrors the checkpoint and
tracestream store CLIs for the on-disk result cache:

* ``list``   — stored fingerprints with size and integrity status.
* ``verify`` — sha256-verify one entry (or all of them).
* ``gc``     — drop all but the N most recent entries.
"""

from __future__ import annotations

import argparse
import sys

from .cache import CacheCorrupt, ResultCache, default_cache_dir


def cmd_list(cache: ResultCache, args) -> int:
    fingerprints = cache.entries()
    if not fingerprints:
        print(f"no cached results under {cache.directory}")
        return 0
    print(f"{len(fingerprints)} cached result(s) under {cache.directory}")
    for fingerprint in fingerprints:
        try:
            size_kb = cache.verify(fingerprint) / 1024.0
            status = f"{size_kb:8.1f} KiB"
        except FileNotFoundError:
            status = "MISSING"
        except CacheCorrupt:
            status = "CORRUPT"
        print(f"  {fingerprint}  {status}")
    return 0


def cmd_verify(cache: ResultCache, args) -> int:
    fingerprints = [args.fingerprint] if args.fingerprint \
        else cache.entries()
    if not fingerprints:
        print(f"no cached results under {cache.directory}")
        return 0
    bad = 0
    for fingerprint in fingerprints:
        try:
            cache.verify(fingerprint)
            print(f"  ok      {fingerprint}")
        except FileNotFoundError:
            print(f"  missing {fingerprint}", file=sys.stderr)
            bad += 1
        except CacheCorrupt as exc:
            print(f"  CORRUPT {fingerprint}: {exc}", file=sys.stderr)
            bad += 1
    return 1 if bad else 0


def cmd_gc(cache: ResultCache, args) -> int:
    dropped = cache.gc(keep=args.keep)
    print(f"dropped {len(dropped)} cached result(s), kept {args.keep}")
    for fingerprint in dropped:
        print(f"  {fingerprint}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner",
        description="Inspect and maintain the runner's stores.")
    sub = parser.add_subparsers(dest="command", required=True)

    p_cache = sub.add_parser("cache", help="the on-disk result cache")
    p_cache.add_argument(
        "--dir", default=None,
        help=f"cache directory (default: {default_cache_dir()})")
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)

    cache_sub.add_parser("list", help="list cached results")

    p_verify = cache_sub.add_parser("verify",
                                    help="sha256-verify entries")
    p_verify.add_argument("fingerprint", nargs="?", default=None,
                          help="one fingerprint (default: every entry)")

    p_gc = cache_sub.add_parser("gc", help="drop old entries")
    p_gc.add_argument("--keep", type=int, default=0,
                      help="most-recent entries to keep (default 0 = "
                           "all dropped)")

    args = parser.parse_args(argv)
    cache = ResultCache(directory=args.dir, persistent=True)
    handlers = {"list": cmd_list, "verify": cmd_verify, "gc": cmd_gc}
    return handlers[args.cache_command](cache, args)


if __name__ == "__main__":
    sys.exit(main())
