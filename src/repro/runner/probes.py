"""Named post-run probes.

Several figures need component statistics that live on the simulation's
live objects (store hit rates, alignment counters, redundancy analyses,
event-bus counters).  With jobs executing in worker processes those
objects never reach the caller, so jobs name *probes*: registered
functions run in-worker right after the simulation, over a
:class:`ProbeContext` exposing the engine the job constructed, returning
plain data that travels (and caches) with the
:class:`~repro.runner.jobs.JobResult`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence

from ..prefetchers.base import Prefetcher

if TYPE_CHECKING:
    from ..memory.events import EventBus
    from ..memory.hierarchy import CoreHierarchy, SharedUncore
    from ..sim.engine import Engine


@dataclass
class ProbeContext:
    """What a probe can see: the finished simulation, still in memory.

    ``prefetchers`` are the job's L2 prefetcher instances in attach
    order across cores (the view the original probe API exposed);
    ``engine`` is the whole simulated system, giving probes the event
    bus, per-core hierarchies, and the shared uncore.
    """

    prefetchers: Sequence[Prefetcher]
    engine: Optional["Engine"] = None

    @property
    def bus(self) -> Optional["EventBus"]:
        return self.engine.bus if self.engine is not None else None

    @property
    def cores(self) -> Sequence["CoreHierarchy"]:
        return self.engine.cores if self.engine is not None else ()

    @property
    def uncore(self) -> Optional["SharedUncore"]:
        return self.engine.uncore if self.engine is not None else None


ProbeFn = Callable[[ProbeContext], Any]

_PROBES: Dict[str, ProbeFn] = {}


def register_probe(name: str, fn: ProbeFn) -> None:
    _PROBES[name] = fn


def get_probe(name: str) -> ProbeFn:
    try:
        return _PROBES[name]
    except KeyError:
        raise ValueError(f"unknown probe {name!r}; "
                         f"registered: {sorted(_PROBES)}") from None


def run_probes(names: Sequence[str],
               context: ProbeContext) -> Dict[str, Any]:
    return {name: get_probe(name)(context) for name in names}


# -- built-ins -----------------------------------------------------------------

def _with_store(context: ProbeContext) -> List[Prefetcher]:
    return [pf for pf in context.prefetchers
            if getattr(pf, "store", None) is not None]


def _store_stats(context: ProbeContext) -> Dict[str, int]:
    """Metadata-store lookup/hit totals (trigger hit rate)."""
    hits = lookups = 0
    for pf in _with_store(context):
        hits += pf.store.stats.hits
        lookups += pf.store.stats.lookups
    return {"hits": hits, "lookups": lookups}


def _redundancy(context: ProbeContext) -> Dict[str, float]:
    """Redundancy analysis over the first metadata store (Fig. 12b)."""
    from ..analysis.redundancy import measure
    for pf in _with_store(context):
        report = measure(pf.store)
        return {"redundancy_rate": report.redundancy_rate,
                "benign_fraction": report.benign_fraction}
    return {"redundancy_rate": 0.0, "benign_fraction": 0.0}


def _alignment(context: ProbeContext) -> Dict[str, int]:
    """Stream completion/alignment counters (Fig. 12c)."""
    completed = alignments = 0
    for pf in context.prefetchers:
        if hasattr(pf, "completed_streams"):
            completed += pf.completed_streams
            alignments += pf.alignments
    return {"completed_streams": completed, "alignments": alignments}


def _bus_counts(context: ProbeContext) -> Dict[str, int]:
    """Event-bus counters (``"kind@level:origin" -> n``) after the run."""
    bus = context.bus
    return bus.counts_flat() if bus is not None else {}


def _telemetry(context: ProbeContext) -> Dict[str, Any]:
    """The telemetry harness payload (interval series + lifecycle).

    Requires the job's ``SystemConfig`` to carry a ``TelemetryConfig``;
    without one the engine built no harness and the probe reports
    ``{"enabled": False}`` instead of failing, so a job can name the
    probe unconditionally.
    """
    harness = getattr(context.engine, "telemetry", None)
    if harness is None:
        return {"enabled": False}
    return harness.export()


def _sampling(context: ProbeContext) -> Dict[str, Any]:
    """Windowed-execution evidence for :mod:`repro.sampling`.

    Records how much work the engine actually simulated (per-core
    record counts and warm-up boundaries) plus the measured-region
    cache counters — what the extrapolation reporter needs to audit a
    sampled estimate (a windowed job's simulated-access count is the
    numerator of the speedup claim) without reaching into live objects.
    """
    eng = context.engine
    if eng is None:
        return {"enabled": False}
    return {
        "enabled": True,
        # Private by convention, stable by contract: the fast path and
        # the checkpoint layer read the same stepping counters.
        "simulated": list(eng._counts),
        "warmups": list(eng._warmups),
        "trace_lengths": [len(t) for t in eng.traces],
        "windows": [[t.start, t.stop]
                    if hasattr(t, "start") and hasattr(t, "stop")
                    else None
                    for t in eng.traces],
        "caches": [{"l1d": core.l1d.stats.as_dict(),
                    "l2": core.l2.stats.as_dict()}
                   for core in eng.cores],
        "llc": eng.uncore.llc.stats.as_dict(),
    }


register_probe("store_stats", _store_stats)
register_probe("sampling", _sampling)
register_probe("redundancy", _redundancy)
register_probe("alignment", _alignment)
register_probe("bus_counts", _bus_counts)
register_probe("telemetry", _telemetry)
