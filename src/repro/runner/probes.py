"""Named post-run probes.

Several figures need component statistics that live on the prefetcher
instance (store hit rates, alignment counters, redundancy analyses).
With jobs executing in worker processes the instance never reaches the
caller, so jobs name *probes*: registered functions run in-worker right
after the simulation, over the L2 prefetcher instances the job
constructed, returning plain data that travels (and caches) with the
:class:`~repro.runner.jobs.JobResult`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Sequence

from ..prefetchers.base import Prefetcher

ProbeFn = Callable[[Sequence[Prefetcher]], Any]

_PROBES: Dict[str, ProbeFn] = {}


def register_probe(name: str, fn: ProbeFn) -> None:
    _PROBES[name] = fn


def get_probe(name: str) -> ProbeFn:
    try:
        return _PROBES[name]
    except KeyError:
        raise ValueError(f"unknown probe {name!r}; "
                         f"registered: {sorted(_PROBES)}") from None


def run_probes(names: Sequence[str],
               prefetchers: Sequence[Prefetcher]) -> Dict[str, Any]:
    return {name: get_probe(name)(prefetchers) for name in names}


# -- built-ins -----------------------------------------------------------------

def _with_store(prefetchers: Sequence[Prefetcher]) -> List[Prefetcher]:
    return [pf for pf in prefetchers
            if getattr(pf, "store", None) is not None]


def _store_stats(prefetchers: Sequence[Prefetcher]) -> Dict[str, int]:
    """Metadata-store lookup/hit totals (trigger hit rate)."""
    hits = lookups = 0
    for pf in _with_store(prefetchers):
        hits += pf.store.stats.hits
        lookups += pf.store.stats.lookups
    return {"hits": hits, "lookups": lookups}


def _redundancy(prefetchers: Sequence[Prefetcher]) -> Dict[str, float]:
    """Redundancy analysis over the first metadata store (Fig. 12b)."""
    from ..analysis.redundancy import measure
    for pf in _with_store(prefetchers):
        report = measure(pf.store)
        return {"redundancy_rate": report.redundancy_rate,
                "benign_fraction": report.benign_fraction}
    return {"redundancy_rate": 0.0, "benign_fraction": 0.0}


def _alignment(prefetchers: Sequence[Prefetcher]) -> Dict[str, int]:
    """Stream completion/alignment counters (Fig. 12c)."""
    completed = alignments = 0
    for pf in prefetchers:
        if hasattr(pf, "completed_streams"):
            completed += pf.completed_streams
            alignments += pf.alignments
    return {"completed_streams": completed, "alignments": alignments}


register_probe("store_stats", _store_stats)
register_probe("redundancy", _redundancy)
register_probe("alignment", _alignment)
