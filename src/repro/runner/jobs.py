"""Simulation job descriptors.

A :class:`SimJob` canonically keys one simulation:
``(workloads, n, seed, config, l1 spec, l2 specs, probes)``.  Jobs are
frozen, picklable (they cross process boundaries), and fingerprintable
(the sha256 of their canonical JSON keys the result cache), so the same
logical run — say the stride baseline on ``gap.pr`` that Fig. 9,
Fig. 10d/e, and Fig. 13a all need — is computed exactly once.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Tuple, Union

from ..sim.config import SystemConfig
from ..sim.multicore import MulticoreResult
from ..sim.stats import SimResult
from ..workloads import DEFAULT_SEED
from .probes import ProbeContext, run_probes
from .specs import PrefetcherSpec, as_spec
from .traces import get_trace

#: Bump to invalidate every on-disk cache entry after a semantic change
#: to the engine or workload generators.
#: v2: unified Engine + request-pipeline/event-bus hierarchy (results are
#: numerically identical to v1, but SimResult gained the ``events``
#: payload, so cached v1 pickles are conservatively invalidated).
#: v3: telemetry subsystem.  ``SystemConfig`` gained the ``telemetry``
#: field (now part of the canonical config dict) and jobs may carry the
#: ``telemetry`` probe; timing numbers are unchanged, but v2 pickles are
#: conservatively invalidated rather than risking canonical-form
#: collisions across the field addition.
SCHEMA_VERSION = 3

SINGLE = "single"
MULTI = "multi"


@dataclass(frozen=True)
class SimJob:
    """One simulation, canonically keyed."""

    kind: str                           # SINGLE | MULTI
    workloads: Tuple[str, ...]
    n: int                              # accesses (per core for MULTI)
    seed: int
    config: SystemConfig
    l1: Optional[PrefetcherSpec] = None
    l2: Tuple[PrefetcherSpec, ...] = ()
    probes: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in (SINGLE, MULTI):
            raise ValueError(f"kind must be {SINGLE!r} or {MULTI!r}")
        if self.kind == SINGLE and len(self.workloads) != 1:
            raise ValueError("single-core jobs take exactly one workload")
        if not self.workloads:
            raise ValueError("job needs at least one workload")

    # -- construction ------------------------------------------------------

    @classmethod
    def single(cls, workload: str, n: int, config: SystemConfig,
               l1=None, l2: Sequence = (), seed: int = DEFAULT_SEED,
               probes: Sequence[str] = ()) -> "SimJob":
        return cls(SINGLE, (workload,), n, seed, config, as_spec(l1),
                   tuple(as_spec(s) for s in l2), tuple(probes))

    @classmethod
    def multi(cls, workloads: Sequence[str], n_per_core: int,
              config: SystemConfig, l1=None, l2: Sequence = (),
              seed: int = DEFAULT_SEED,
              probes: Sequence[str] = ()) -> "SimJob":
        return cls(MULTI, tuple(workloads), n_per_core, seed, config,
                   as_spec(l1), tuple(as_spec(s) for s in l2),
                   tuple(probes))

    # -- identity ----------------------------------------------------------

    def canonical(self) -> Dict[str, Any]:
        """JSON-friendly, key-sorted description of the job."""
        return {
            "schema": SCHEMA_VERSION,
            "kind": self.kind,
            "workloads": list(self.workloads),
            "n": self.n,
            "seed": self.seed,
            "config": dataclasses.asdict(self.config),
            "l1": self.l1.canonical() if self.l1 else None,
            "l2": [s.canonical() for s in self.l2],
            "probes": list(self.probes),
        }

    def fingerprint(self) -> str:
        blob = json.dumps(self.canonical(), sort_keys=True,
                          default=repr).encode()
        return hashlib.sha256(blob).hexdigest()

    # -- execution ---------------------------------------------------------

    def execute(self) -> "JobResult":
        """Run the simulation in this process (deterministic)."""
        from ..sim.engine import Engine
        from ..sim.multicore import build_multicore

        l1_factory = self.l1.factory() if self.l1 else None
        l2_factories = [s.build for s in self.l2]
        if self.kind == SINGLE:
            trace = get_trace(self.workloads[0], self.n, self.seed)
            config = self.config
            if config.num_cores != 1:
                config = config.scaled(num_cores=1)
            engine = Engine([trace], config, l1_prefetcher=l1_factory,
                            l2_prefetchers=l2_factories)
            value: Union[SimResult, MulticoreResult] = \
                engine.run().collect()[0]
        else:
            traces = [get_trace(wl, self.n, self.seed)
                      for wl in self.workloads]
            engine = build_multicore(traces, self.config,
                                     l1_prefetcher=l1_factory,
                                     l2_prefetchers=l2_factories)
            value = MulticoreResult(cores=engine.run().collect())
        context = ProbeContext(prefetchers=engine.l2_prefetchers,
                               engine=engine)
        probe_values = run_probes(self.probes, context)
        return JobResult(value=value, probes=probe_values)


@dataclass
class JobResult:
    """What a job yields: the engine result plus any probe payloads."""

    value: Union[SimResult, MulticoreResult]
    probes: Dict[str, Any] = field(default_factory=dict)

    @property
    def single(self) -> SimResult:
        if not isinstance(self.value, SimResult):
            raise TypeError("job produced a multi-core result")
        return self.value

    @property
    def multicore(self) -> MulticoreResult:
        if not isinstance(self.value, MulticoreResult):
            raise TypeError("job produced a single-core result")
        return self.value


def execute_job(job: SimJob) -> JobResult:
    """Module-level entry point (picklable) for pool workers."""
    return job.execute()
