"""Simulation job descriptors.

A :class:`SimJob` canonically keys one simulation:
``(workloads, n, seed, config, l1 spec, l2 specs, probes)``.  Jobs are
frozen, picklable (they cross process boundaries), and fingerprintable
(the sha256 of their canonical JSON keys the result cache), so the same
logical run — say the stride baseline on ``gap.pr`` that Fig. 9,
Fig. 10d/e, and Fig. 13a all need — is computed exactly once.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
import warnings
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, ContextManager, Dict, Optional, Sequence, Tuple, \
    Union

from ..checkpoint import FORMAT_VERSION as CKPT_FORMAT_VERSION
from ..checkpoint import CheckpointStore, checkpoint_enabled, get_store, \
    mark_interval
from ..obs import metrics as obs_metrics
from ..obs import profile as obs_profile
from ..obs import runlog as obs_runlog
from ..obs import trace as obs_trace
from ..obs.profile import SpanProfiler
from ..sim.config import SystemConfig
from ..sim.multicore import MulticoreResult
from ..sim.stats import SimResult
from ..workloads import DEFAULT_SEED
from .probes import ProbeContext, run_probes
from .specs import PrefetcherSpec, as_spec
from .traces import get_trace
from .traces import store_stats as trace_store_stats

#: Bump to invalidate every on-disk cache entry after a semantic change
#: to the engine or workload generators.
#: v2: unified Engine + request-pipeline/event-bus hierarchy (results are
#: numerically identical to v1, but SimResult gained the ``events``
#: payload, so cached v1 pickles are conservatively invalidated).
#: v3: telemetry subsystem.  ``SystemConfig`` gained the ``telemetry``
#: field (now part of the canonical config dict) and jobs may carry the
#: ``telemetry`` probe; timing numbers are unchanged, but v2 pickles are
#: conservatively invalidated rather than risking canonical-form
#: collisions across the field addition.
#: v4: checkpoint/resume subsystem.  Jobs gained ``measure_overrides``
#: (post-warm-up prefetcher overrides, part of the canonical form:
#: overridden runs are distinct results) and ``resume`` (pure execution
#: strategy, excluded — a resumed run is bit-identical to a straight
#: one); v3 pickles are conservatively invalidated.
#: v5: observability subsystem.  ``SimResult`` gained the ``profile``
#: payload (``REPRO_PROFILE=1`` span timings; None on the default path).
#: Timing numbers are unchanged, but v4 pickles predate the field and
#: are conservatively invalidated.
#: v6: representative sampling.  Jobs gained ``window`` (simulate only
#: records ``[start, stop)`` with a bounded warm-up to ``warm``; part
#: of the canonical form — a windowed run is a different, exactly
#: reproducible computation, never a stand-in for the full run's cache
#: entry).  Un-windowed results are numerically identical to v5, but
#: the canonical form gained a key, so v5 pickles are conservatively
#: invalidated.
SCHEMA_VERSION = 6

SINGLE = "single"
MULTI = "multi"


@dataclass(frozen=True)
class SimJob:
    """One simulation, canonically keyed."""

    kind: str                           # SINGLE | MULTI
    workloads: Tuple[str, ...]
    n: int                              # accesses (per core for MULTI)
    seed: int
    config: SystemConfig
    l1: Optional[PrefetcherSpec] = None
    l2: Tuple[PrefetcherSpec, ...] = ()
    probes: Tuple[str, ...] = ()
    #: Post-warm-up overrides applied to every L2 prefetcher (e.g.
    #: ``(("degree", 2),)``): the warm-up runs at the spec's config, the
    #: measured region at the overridden one — which is what lets a
    #: degree sweep share a single warm-up checkpoint.
    measure_overrides: Tuple[Tuple[str, Any], ...] = ()
    #: Execution strategy only (excluded from the fingerprint): restore
    #: the warm-up region from the checkpoint store when possible, and
    #: resume interrupted runs from their last progress mark.
    resume: bool = False
    #: Representative-interval window ``(start, warm, stop)``: simulate
    #: only records ``[start, stop)`` of the trace, with the warm-up
    #: boundary at ``warm`` (records ``[start, warm)`` warm the caches
    #: and prefetchers, ``[warm, stop)`` is the measured region).  Part
    #: of the canonical form: a windowed job is a distinct — exactly
    #: reproducible and therefore cacheable — computation, not an
    #: approximation of the full job.  See :mod:`repro.sampling`.
    window: Optional[Tuple[int, int, int]] = None

    def __post_init__(self) -> None:
        if self.kind not in (SINGLE, MULTI):
            raise ValueError(f"kind must be {SINGLE!r} or {MULTI!r}")
        if self.kind == SINGLE and len(self.workloads) != 1:
            raise ValueError("single-core jobs take exactly one workload")
        if not self.workloads:
            raise ValueError("job needs at least one workload")
        if self.window is not None:
            if self.kind != SINGLE:
                raise ValueError("windowed jobs are single-core only")
            start, warm, stop = self.window
            if not 0 <= start <= warm < stop <= self.n:
                raise ValueError(
                    f"window (start={start}, warm={warm}, stop={stop}) "
                    f"must satisfy 0 <= start <= warm < stop <= n={self.n}")

    # -- construction ------------------------------------------------------

    @classmethod
    def single(cls, workload: str, n: int, config: SystemConfig,
               l1=None, l2: Sequence = (), seed: int = DEFAULT_SEED,
               probes: Sequence[str] = (),
               measure_overrides: Sequence[Tuple[str, Any]] = (),
               resume: bool = False,
               window: Optional[Tuple[int, int, int]] = None) -> "SimJob":
        win = (int(window[0]), int(window[1]), int(window[2])) \
            if window is not None else None
        return cls(SINGLE, (workload,), n, seed, config, as_spec(l1),
                   tuple(as_spec(s) for s in l2), tuple(probes),
                   tuple(measure_overrides), resume, win)

    @classmethod
    def multi(cls, workloads: Sequence[str], n_per_core: int,
              config: SystemConfig, l1=None, l2: Sequence = (),
              seed: int = DEFAULT_SEED,
              probes: Sequence[str] = (),
              measure_overrides: Sequence[Tuple[str, Any]] = (),
              resume: bool = False) -> "SimJob":
        return cls(MULTI, tuple(workloads), n_per_core, seed, config,
                   as_spec(l1), tuple(as_spec(s) for s in l2),
                   tuple(probes), tuple(measure_overrides), resume)

    # -- identity ----------------------------------------------------------

    def canonical(self) -> Dict[str, Any]:
        """JSON-friendly, key-sorted description of the job.

        ``resume`` is deliberately absent: resumed and straight runs are
        bit-identical, so they must share one cache entry.  For the same
        reason ``config.fastpath`` is dropped: it is a pure execution
        strategy (repro.sim.fastpath) whose results are bit-identical to
        the scalar path, so fast and scalar runs share cache entries and
        the canonical form is unchanged from before the field existed
        (no schema bump needed).
        """
        config = dataclasses.asdict(self.config)
        config.pop("fastpath", None)
        return {
            "schema": SCHEMA_VERSION,
            "kind": self.kind,
            "workloads": list(self.workloads),
            "n": self.n,
            "seed": self.seed,
            "config": config,
            "l1": self.l1.canonical() if self.l1 else None,
            "l2": [s.canonical() for s in self.l2],
            "probes": list(self.probes),
            "measure_overrides": [[k, v]
                                  for k, v in self.measure_overrides],
            "window": list(self.window) if self.window is not None
            else None,
        }

    def fingerprint(self) -> str:
        blob = json.dumps(self.canonical(), sort_keys=True,
                          default=repr).encode()
        return hashlib.sha256(blob).hexdigest()

    def warmup_canonical(self) -> Dict[str, Any]:
        """Canonical form of the *warm-up-relevant* part of the job.

        Anything that cannot change a single warmed-up simulated state
        is excluded: probes (post-run), measure overrides (applied only
        after the boundary), telemetry (pure observer, snapshot-or-reset
        on restore), and ``resume`` itself.  Includes the checkpoint
        format version so a format bump orphans old snapshots instead of
        misreading them.
        """
        config = dataclasses.asdict(self.config)
        config["telemetry"] = None
        config.pop("fastpath", None)   # execution strategy, like resume
        return {
            "schema": SCHEMA_VERSION,
            "ckpt_format": CKPT_FORMAT_VERSION,
            "kind": self.kind,
            "workloads": list(self.workloads),
            "n": self.n,
            "seed": self.seed,
            "config": config,
            "l1": self.l1.canonical() if self.l1 else None,
            "l2": [s.canonical() for s in self.l2],
            "window": list(self.window) if self.window is not None
            else None,
        }

    def warmup_fingerprint(self) -> str:
        """Key of the warm-up snapshot this job can share."""
        blob = json.dumps(self.warmup_canonical(), sort_keys=True,
                          default=repr).encode()
        return hashlib.sha256(blob).hexdigest()

    # -- execution ---------------------------------------------------------

    def _build_engine(self):
        """A fresh engine for this job (deterministic)."""
        from ..sim.engine import Engine
        from ..sim.multicore import build_multicore

        l1_factory = self.l1.factory() if self.l1 else None
        l2_factories = [s.build for s in self.l2]
        if self.kind == SINGLE:
            trace = get_trace(self.workloads[0], self.n, self.seed)
            config = self.config
            if config.num_cores != 1:
                config = config.scaled(num_cores=1)
            if self.window is not None:
                # Representative-interval execution: simulate only the
                # window, warming up over its bounded prefix.  The
                # window view satisfies the TraceSource protocol, so
                # scalar and fast paths both run unchanged.
                from ..sim.trace import TraceWindow
                start, warm, stop = self.window
                win = TraceWindow(trace, start, stop)
                return Engine([win], config, l1_prefetcher=l1_factory,
                              l2_prefetchers=l2_factories,
                              warmup_counts=[warm - start])
            return Engine([trace], config, l1_prefetcher=l1_factory,
                          l2_prefetchers=l2_factories)
        traces = [get_trace(wl, self.n, self.seed)
                  for wl in self.workloads]
        return build_multicore(traces, self.config,
                               l1_prefetcher=l1_factory,
                               l2_prefetchers=l2_factories)

    def _apply_overrides(self, engine) -> None:
        """Apply measure overrides to every L2 prefetcher.

        Runs at the warm-up boundary on every path — straight, warm-up
        restore, and progress-mark restore (overrides touch constructor
        config, which snapshots deliberately do not carry).
        """
        for pf in engine.l2_prefetchers:
            for key, value in self.measure_overrides:
                pf.apply_override(key, value)

    def _ckpt_meta(self, phase: str) -> Dict[str, Any]:
        return {
            "phase": phase,
            "kind": self.kind,
            "workloads": list(self.workloads),
            "n": self.n,
            "seed": self.seed,
            "warmup_fingerprint": self.warmup_fingerprint(),
            "window": list(self.window) if self.window is not None
            else None,
        }

    def prewarm(self, store: Optional[CheckpointStore] = None) -> bool:
        """Simulate the warm-up region once and snapshot it.

        Returns True when a snapshot was written (False when one already
        exists or the job has no warm-up boundary to snapshot).
        """
        store = store if store is not None else get_store()
        key = self.warmup_fingerprint()
        if store.has(key):
            return False
        engine = self._build_engine()
        engine.run_warmup()
        if not engine.warmed:
            return False  # zero-length warm-up: nothing to share
        store.put(key, engine.state_dict(), self._ckpt_meta("warmup"))
        return True

    def _label(self) -> str:
        """Short prefetcher label for run logs and reports."""
        parts = [s.name for s in self.l2]
        if self.l1 is not None:
            parts.insert(0, f"l1:{self.l1.name}")
        return "+".join(parts) if parts else "none"

    def execute(self) -> "JobResult":
        """Run the simulation in this process (deterministic).

        With ``resume=True`` (and ``REPRO_CKPT`` not disabled) the
        warm-up region is restored from the checkpoint store when a
        snapshot exists — and recorded when it doesn't — and, when
        ``REPRO_CKPT_MARK`` is set, periodic progress marks make an
        interrupted run restartable from its last mark.  Every path
        produces bit-identical results to a straight run.

        Under ``REPRO_PROFILE=1`` the run is additionally wrapped in a
        span profiler (the engine and hierarchy pick it up at build
        time); simulated numbers stay bit-identical, and the profile is
        attached to single-core results and to the ``job_end`` run-log
        record.  Run-log records are emitted whenever a writer is
        installed for this process (the runner's pool initializer).
        """
        prof = obs_profile.start_job()
        log = obs_runlog.current()
        fp = self.fingerprint() if (log is not None) else ""
        t0 = time.perf_counter()
        store0 = trace_store_stats()
        if log is not None:
            log.emit("job_start", fingerprint=fp, kind=self.kind,
                     workloads=list(self.workloads), n=self.n,
                     prefetcher=self._label())
        try:
            result, restored = self._execute_impl(prof)
        finally:
            obs_profile.end_job(prof)
        if prof is not None and self.kind == SINGLE:
            result = JobResult(
                value=dataclasses.replace(result.single,
                                          profile=prof.report()),
                probes=result.probes)
        if log is not None:
            # On-disk trace store effectiveness, as this job's delta of
            # the per-process counters (all-zero unless
            # REPRO_TRACE_STREAM routes acquisition through the store).
            store1 = trace_store_stats()
            wall = time.perf_counter() - t0
            store_delta = {k: store1[k] - store0[k] for k in store1}
            extra: Dict[str, Any] = {}
            if obs_metrics.enabled():
                # The job's metrics shard: it rides the runlog (which
                # already crosses the process boundary and gets merged)
                # instead of pushing to any shared registry.
                extra["metrics"] = self._job_metrics(
                    result, wall, restored, store_delta)
            log.emit("job_end", fingerprint=fp, kind=self.kind,
                     workloads=list(self.workloads), n=self.n,
                     prefetcher=self._label(),
                     wall_seconds=wall,
                     restored=restored,
                     trace_store=store_delta,
                     profile=prof.report() if prof is not None else None,
                     **extra)
        return result

    def _job_metrics(self, result: "JobResult", wall: float,
                     restored: bool,
                     store_delta: Dict[str, int]) -> Dict[str, Any]:
        """The ``metrics`` section of this job's ``job_end`` record."""
        if self.kind == SINGLE:
            singles = [result.single]
        else:
            singles = list(result.multicore.cores)
        events = sum(s.accesses for s in singles)
        cycles = max((s.cycles for s in singles), default=0)
        return {
            "wall_seconds": wall,
            "sim_cycles": cycles,
            "events": events,
            "events_per_second": events / wall if wall > 0 else 0.0,
            "ckpt_restored": int(restored),
            "trace_store_hits": int(store_delta.get("hits", 0)),
        }

    def _execute_impl(self, prof: Optional[SpanProfiler]) \
            -> Tuple["JobResult", bool]:
        """The execution body; returns (result, restored-from-ckpt)."""

        def span(name: str) -> ContextManager[None]:
            return prof.span(name) if prof is not None else nullcontext()

        with span("build"):
            engine = self._build_engine()
        store = get_store() if (self.resume and checkpoint_enabled()) \
            else None
        progress_key = "p-" + self.fingerprint()
        restored = False
        if store is not None:
            with span("ckpt:load"):
                state = store.get(progress_key)
            if state is None:
                warm_key = self.warmup_fingerprint()
                with span("ckpt:load"):
                    state = store.get(warm_key)
                if state is not None:
                    try:
                        with span("ckpt:load"):
                            engine.load_state(state)
                        restored = True
                    except (ValueError, RuntimeError, KeyError,
                            TypeError) as exc:
                        warnings.warn(
                            f"discarding unusable warm-up checkpoint "
                            f"{warm_key}: {exc}", stacklevel=2)
                        store.remove(warm_key)
                        with span("build"):
                            engine = self._build_engine()
                if not restored:
                    engine.run_warmup()
                    if engine.warmed:
                        with span("ckpt:save"):
                            store.put(warm_key, engine.state_dict(),
                                      self._ckpt_meta("warmup"))
            else:
                try:
                    with span("ckpt:load"):
                        engine.load_state(state)
                    restored = True
                except (ValueError, RuntimeError, KeyError,
                        TypeError) as exc:
                    warnings.warn(
                        f"discarding unusable progress checkpoint: "
                        f"{exc}", stacklevel=2)
                    store.remove(progress_key)
                    with span("build"):
                        engine = self._build_engine()
                    engine.run_warmup()
        else:
            engine.run_warmup()
        self._apply_overrides(engine)
        if store is not None:
            every = mark_interval()
            if every:
                meta = self._ckpt_meta("progress")

                def on_mark(e) -> None:
                    store.put(progress_key, e.state_dict(), meta)

                engine.set_mark_hook(every, on_mark)
        engine.run()
        if store is not None:
            store.remove(progress_key)
        if self.kind == SINGLE:
            value: Union[SimResult, MulticoreResult] = \
                engine.collect()[0]
        else:
            value = MulticoreResult(cores=engine.collect())
        with span("probes"):
            context = ProbeContext(prefetchers=engine.l2_prefetchers,
                                   engine=engine)
            probe_values = run_probes(self.probes, context)
        return JobResult(value=value, probes=probe_values), restored


@dataclass
class JobResult:
    """What a job yields: the engine result plus any probe payloads."""

    value: Union[SimResult, MulticoreResult]
    probes: Dict[str, Any] = field(default_factory=dict)

    @property
    def single(self) -> SimResult:
        if not isinstance(self.value, SimResult):
            raise TypeError("job produced a multi-core result")
        return self.value

    @property
    def multicore(self) -> MulticoreResult:
        if not isinstance(self.value, MulticoreResult):
            raise TypeError("job produced a single-core result")
        return self.value


def execute_job(job: SimJob,
                traceparent: Optional[str] = None) -> JobResult:
    """Module-level entry point (picklable) for pool workers.

    ``traceparent`` is the submitting request's context in wire form
    (strings cross the ``ProcessPoolExecutor`` boundary; frozen
    dataclasses would too, but the wire form keeps one parse path with
    the serve envelope).  The job runs under a *child* span of it, so
    its runlog records and profiler spans carry the request's trace_id
    with this hop's own span identity.
    """
    context = obs_trace.parse_or_none(traceparent)
    if context is None or not obs_trace.enabled():
        return job.execute()
    previous = obs_trace.install(context.child())
    try:
        return job.execute()
    finally:
        obs_trace.install(previous)


def prewarm_job(job: SimJob) -> bool:
    """Module-level prewarm entry point (picklable) for pool workers."""
    return job.prewarm()
