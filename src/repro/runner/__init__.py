"""Parallel experiment runner with a persistent result cache.

The experiment layer describes work as :class:`SimJob` batches —
serializable descriptors keyed by ``(workloads, n, seed, config,
prefetcher specs)`` — and hands them to a :class:`SimRunner`, which
dedups against a two-level result cache (per-process memo + on-disk
pickles under ``benchmarks/.simcache/``) and fans cold jobs out over a
process pool.

Knobs: ``REPRO_JOBS`` (worker count; ``1`` = in-process serial),
``REPRO_CACHE=0`` (disable the disk cache), ``REPRO_CACHE_DIR``
(relocate it), ``REPRO_CKPT``/``REPRO_CKPT_DIR``/``REPRO_CKPT_MARK``
(checkpoint & resume, see :mod:`repro.checkpoint`).  See DESIGN.md
"Execution model" and "Checkpoint & resume".
"""

from .cache import CacheCorrupt, CacheStats, ResultCache, \
    cache_enabled, default_cache_dir
from .jobs import JobResult, SimJob, execute_job, prewarm_job
from .probes import ProbeContext, register_probe, run_probes
from .runner import SimRunner, env_jobs, get_runner, reset_runner
from .specs import VARIANT_PREFIX, PrefetcherSpec, as_spec, register, \
    spec
from .traces import get_trace

__all__ = ["CacheCorrupt", "CacheStats", "ResultCache", "cache_enabled",
           "default_cache_dir", "JobResult", "SimJob", "execute_job",
           "prewarm_job", "ProbeContext", "register_probe", "run_probes",
           "SimRunner", "env_jobs",
           "get_runner", "reset_runner", "PrefetcherSpec", "as_spec",
           "register", "spec", "get_trace", "VARIANT_PREFIX"]
