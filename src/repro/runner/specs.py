"""Serializable prefetcher specifications.

Experiment jobs cross process boundaries, so the experiment layer cannot
hand the engine bare closures: a prefetcher is named by a
:class:`PrefetcherSpec` — a registry name plus constructor kwargs — which
is picklable, hashable, and canonically printable (the same spec always
fingerprints the same way, regardless of kwargs order).

The registry covers every baseline plus the Figure 14 ablation variants
(as ``variant:<name>``); :func:`register` adds new ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from ..core.streamline import StreamlinePrefetcher
from ..prefetchers.base import NullPrefetcher, Prefetcher
from ..prefetchers.berti import BertiPrefetcher
from ..prefetchers.bingo import BingoPrefetcher
from ..prefetchers.ipcp import IPCPPrefetcher
from ..prefetchers.spp import SPPPrefetcher
from ..prefetchers.stride import StridePrefetcher
from ..prefetchers.triage import IdealTriage, TriagePrefetcher
from ..prefetchers.triangel import TriangelPrefetcher

VARIANT_PREFIX = "variant:"

_REGISTRY: Dict[str, Callable[..., Prefetcher]] = {
    "null": NullPrefetcher,
    "stride": StridePrefetcher,
    "berti": BertiPrefetcher,
    "ipcp": IPCPPrefetcher,
    "bingo": BingoPrefetcher,
    "spp-ppf": SPPPrefetcher,
    "triage": TriagePrefetcher,
    "ideal-triage": IdealTriage,
    "triangel": TriangelPrefetcher,
    "streamline": StreamlinePrefetcher,
}

#: Reverse map so legacy callers passing a registered class still work.
_REVERSE: Dict[Callable, str] = {cls: name for name, cls in
                                 _REGISTRY.items()}


def register(name: str, factory: Callable[..., Prefetcher]) -> None:
    """Register a prefetcher constructor under ``name``."""
    _REGISTRY[name] = factory
    _REVERSE[factory] = name


def _resolve(name: str) -> Callable[..., Prefetcher]:
    if name in _REGISTRY:
        return _REGISTRY[name]
    if name.startswith(VARIANT_PREFIX):
        from ..core.variants import named_variants
        variants = named_variants()
        key = name[len(VARIANT_PREFIX):]
        if key in variants:
            return variants[key]
    raise ValueError(f"unknown prefetcher spec {name!r}; "
                     f"registered: {sorted(_REGISTRY)}")


@dataclass(frozen=True)
class PrefetcherSpec:
    """One prefetcher configuration: registry name + constructor kwargs.

    ``kwargs`` is stored as a sorted tuple of items so equal specs hash
    and fingerprint identically however they were written.
    """

    name: str
    kwargs: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def of(cls, name: str, **kwargs) -> "PrefetcherSpec":
        return cls(name, tuple(sorted(kwargs.items())))

    def canonical(self) -> Dict[str, Any]:
        """JSON-friendly form used in job fingerprints."""
        return {"name": self.name, "kwargs": dict(self.kwargs)}

    def build(self) -> Prefetcher:
        """Construct a fresh prefetcher instance."""
        factory = _resolve(self.name)
        return factory(**dict(self.kwargs))

    def factory(self) -> Callable[[], Prefetcher]:
        """Zero-arg factory form the engines consume."""
        return self.build

    def __str__(self) -> str:
        if not self.kwargs:
            return self.name
        args = ", ".join(f"{k}={v!r}" for k, v in self.kwargs)
        return f"{self.name}({args})"


def spec(name: str, **kwargs) -> PrefetcherSpec:
    """Shorthand for :meth:`PrefetcherSpec.of`."""
    return PrefetcherSpec.of(name, **kwargs)


def as_spec(obj) -> Optional[PrefetcherSpec]:
    """Coerce a spec, registry name, or registered class to a spec.

    ``None`` passes through (meaning "no prefetcher").  Arbitrary
    closures are rejected: they cannot cross process boundaries, which
    is the whole point of specs.
    """
    if obj is None or isinstance(obj, PrefetcherSpec):
        return obj
    if isinstance(obj, str):
        return PrefetcherSpec.of(obj)
    name = _REVERSE.get(obj)
    if name is not None:
        return PrefetcherSpec.of(name)
    raise TypeError(
        f"cannot convert {obj!r} to a PrefetcherSpec; pass a spec, a "
        f"registry name, or a registered class (see repro.runner.specs)")
