"""Per-process trace acquisition: in-memory LRU, optional on-disk store.

Trace generation is pure — ``make(workload, n, seed)`` always yields the
same trace — but not free (~100K-record numpy builds at bench scale,
100M+-record streams at paper scale), and one experiment asks for the
same trace dozens of times (baseline + every config, every mix
containing the workload).  Two layers cover the two scales:

* The default path memoizes fully materialized traces per process under
  a bounded LRU, so each ``(workload, n, seed)`` is generated once per
  worker.
* With ``REPRO_TRACE_STREAM=1`` acquisition routes through the chunked
  on-disk :class:`repro.tracestream.TraceStore`: the trace is generated
  once (by whichever worker gets there first), persisted, and every
  consumer replays it as an mmap-backed
  :class:`~repro.tracestream.StreamingTrace` in constant memory.
  Results are bit-identical to the in-memory path — the knob is a pure
  execution strategy and is excluded from job fingerprints (the
  ``config.fastpath`` precedent in :mod:`repro.runner.jobs`).
  ``REPRO_TRACE_STREAM=0`` forces the in-memory path; unset/``auto``
  currently defaults to in-memory.

Store traffic is counted per process (:func:`store_stats`) and reported
through the run-log ``job_end`` record for cache-effectiveness review
(``python -m repro.obs report``).
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from ..envknobs import env_tristate
from ..obs import profile as obs_profile
from ..sim.trace import Trace, TraceSource
from ..tracestream.store import StreamingTrace, TraceStore, default_root
from ..workloads import make, make_chunks

#: LRU bound; a trace is a few MB at bench scale.
DEFAULT_CAPACITY = 64

_cache: "OrderedDict[Tuple[str, int, int], Trace]" = OrderedDict()

#: Open streaming handles (mmap-backed; a handle is a header plus a
#: tiny chunk cache, so these are never evicted within a process).
_stream_handles: Dict[Tuple[str, int, int], StreamingTrace] = {}
_store: Optional[TraceStore] = None

#: Per-process store effectiveness counters (monotonic; job_end records
#: report deltas).  "hit" = replayed from disk, "miss" = generated and
#: persisted this call.
_stats = {"hits": 0, "misses": 0}


def _capacity() -> int:
    """LRU bound from ``REPRO_TRACE_CACHE`` (0 disables caching)."""
    raw = os.environ.get("REPRO_TRACE_CACHE", "")
    if not raw:
        return DEFAULT_CAPACITY
    try:
        cap = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_TRACE_CACHE must be an integer, got {raw!r}") from None
    if cap < 0:
        raise ValueError(f"REPRO_TRACE_CACHE must be >= 0, got {cap}")
    return cap


def streaming_enabled() -> bool:
    """Whether trace acquisition goes through the on-disk store.

    ``REPRO_TRACE_STREAM`` is validated tri-state (the ``REPRO_FASTPATH``
    convention): ``1`` forces streaming, ``0`` forces in-memory,
    unset/``auto`` defers to the default (in-memory for now — flipping
    the default is a one-line change here once streaming has soaked).
    """
    forced = env_tristate("REPRO_TRACE_STREAM")
    if forced is not None:
        return forced
    return False


def _get_store() -> TraceStore:
    global _store
    # Re-resolve when REPRO_TRACE_DIR changes (tests point it at tmp
    # dirs); TraceStore construction is cheap.
    root = default_root()
    if _store is None or _store.root != root:
        _store = TraceStore(root)
    return _store


def _get_streaming(workload: str, n: int, seed: int) -> StreamingTrace:
    key = (workload, n, seed)
    handle = _stream_handles.get(key)
    if handle is not None:
        return handle
    store = _get_store()
    prof = obs_profile.current()
    trace = store.get(workload, n, seed)
    if trace is None:
        _stats["misses"] += 1
        # Generate → persist → replay from disk; a racing worker's
        # entry is adopted atomically inside put().  Generation is the
        # expensive path worth attributing, like the in-memory miss.
        if prof is None:
            trace = store.put(workload, n, seed,
                              make_chunks(workload, n, seed))
        else:
            with prof.span("trace"):
                trace = store.put(workload, n, seed,
                                  make_chunks(workload, n, seed))
    else:
        _stats["hits"] += 1
    _stream_handles[key] = trace
    return trace


def get_trace(workload: str, n: int, seed: int) -> TraceSource:
    """The memoized trace for one workload instantiation.

    Returns an in-memory :class:`Trace` (default) or a disk-backed
    :class:`StreamingTrace` (``REPRO_TRACE_STREAM=1``); both satisfy
    :class:`~repro.sim.trace.TraceSource` and replay identical records.
    """
    if streaming_enabled():
        return _get_streaming(workload, n, seed)
    key = (workload, n, seed)
    hit = _cache.get(key)
    if hit is not None:
        _cache.move_to_end(key)
        return hit
    prof = obs_profile.current()
    if prof is None:
        trace = make(workload, n, seed)
    else:
        # Cache misses are the expensive path worth attributing; hits
        # are dict lookups and stay unspanned.
        with prof.span("trace"):
            trace = make(workload, n, seed)
    cap = _capacity()
    if cap > 0:
        _cache[key] = trace
        while len(_cache) > cap:
            _cache.popitem(last=False)
    return trace


def store_stats() -> Dict[str, int]:
    """Monotonic per-process trace-store counters (hits/misses)."""
    return dict(_stats)


def cache_size() -> int:
    return len(_cache)


def clear() -> None:
    _cache.clear()
    _stream_handles.clear()
    global _store
    _store = None
