"""Per-process trace cache.

Trace generation is pure — ``make(workload, n, seed)`` always yields the
same trace — but not free (~100K-record numpy builds), and one
experiment asks for the same trace dozens of times (baseline + every
config, every mix containing the workload).  This module memoizes traces
per process under a bounded LRU so each ``(workload, n, seed)`` is
generated once per worker.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Tuple

from ..obs import profile as obs_profile
from ..sim.trace import Trace
from ..workloads import make

#: LRU bound; a trace is a few MB at bench scale.
DEFAULT_CAPACITY = 64

_cache: "OrderedDict[Tuple[str, int, int], Trace]" = OrderedDict()


def _capacity() -> int:
    """LRU bound from ``REPRO_TRACE_CACHE`` (0 disables caching)."""
    raw = os.environ.get("REPRO_TRACE_CACHE", "")
    if not raw:
        return DEFAULT_CAPACITY
    try:
        cap = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_TRACE_CACHE must be an integer, got {raw!r}") from None
    if cap < 0:
        raise ValueError(f"REPRO_TRACE_CACHE must be >= 0, got {cap}")
    return cap


def get_trace(workload: str, n: int, seed: int) -> Trace:
    """The memoized trace for one workload instantiation."""
    key = (workload, n, seed)
    hit = _cache.get(key)
    if hit is not None:
        _cache.move_to_end(key)
        return hit
    prof = obs_profile.current()
    if prof is None:
        trace = make(workload, n, seed)
    else:
        # Cache misses are the expensive path worth attributing; hits
        # are dict lookups and stay unspanned.
        with prof.span("trace"):
            trace = make(workload, n, seed)
    cap = _capacity()
    if cap > 0:
        _cache[key] = trace
        while len(_cache) > cap:
            _cache.popitem(last=False)
    return trace


def cache_size() -> int:
    return len(_cache)


def clear() -> None:
    _cache.clear()
