"""Composable generator stages over chunk streams.

Every stage takes an iterator of :class:`~repro.tracestream.chunk.StreamItem`
(chunks interleaved with in-band :class:`Mark` items) and yields the
same.  Data transforms (:func:`bias`, :func:`shift`, :func:`sample`,
:func:`slice_stream`, :func:`interleave`) are pure chunk→chunk numpy
ops; marks bypass them untouched and in order, so control metadata
rides the stream without the stage knowing it exists (talkpipe's
bypass design).  :func:`insert_marks` splits chunks at mark positions,
which is what makes in-order pass-through position-exact.

The terminal stages are :func:`records` (flatten to the engine's
``(pc, addr, is_write, gap, dep)`` scalar tuples, firing a callback at
each mark) and :func:`to_trace` (materialize an in-memory
:class:`~repro.sim.trace.Trace`); :meth:`repro.tracestream.store.TraceStore.put`
is the persistent sink.
"""

from __future__ import annotations

from typing import (Callable, Iterable, Iterator, List, Optional,
                    Sequence, Tuple)

import numpy as np

from .chunk import (CHUNK_RECORDS, Mark, StreamItem, TraceChunk,
                    concat_chunks)

#: One engine record: (pc, addr, is_write, gap, dep).
Record = Tuple[int, int, bool, int, bool]


# -- sources -------------------------------------------------------------------

def chunks_of(source, start: int = 0,
              size: int = CHUNK_RECORDS) -> Iterator[TraceChunk]:
    """Chunk stream over any :class:`~repro.sim.trace.TraceSource`.

    Uses the source's ``chunk_at`` so an mmap-backed source never
    materializes more than ``size`` records at once.
    """
    n = len(source)
    for lo in range(start, n, size):
        yield source.chunk_at(lo, min(n, lo + size))


# -- transforms (marks bypass untouched) ---------------------------------------

def _map_chunks(stream: Iterable[StreamItem],
                fn: Callable[[TraceChunk], TraceChunk]
                ) -> Iterator[StreamItem]:
    for item in stream:
        yield fn(item) if isinstance(item, TraceChunk) else item


def bias(stream: Iterable[StreamItem], core: int,
         region_bits: int) -> Iterator[StreamItem]:
    """Fold addresses into ``core``'s private region (multicore mixes).

    Vectorized equivalent of the per-record
    ``(addr & mask) | core << region_bits`` fold.
    """
    mask = (1 << region_bits) - 1
    region = core << region_bits

    def fold(c: TraceChunk) -> TraceChunk:
        return c.replace(addrs=(c.addrs & mask) | region)

    return _map_chunks(stream, fold)


def shift(stream: Iterable[StreamItem], pc_offset: int = 0,
          addr_offset: int = 0) -> Iterator[StreamItem]:
    """Relocate PCs/addresses (phase composition, tenant isolation)."""

    def move(c: TraceChunk) -> TraceChunk:
        return c.replace(pcs=c.pcs + pc_offset,
                         addrs=c.addrs + addr_offset)

    return _map_chunks(stream, move)


def sample(stream: Iterable[StreamItem], every: int) -> Iterator[StreamItem]:
    """Keep every ``every``-th record (systematic sampling).

    Phase is continuous across chunk boundaries: record ``i`` of the
    input survives iff ``i % every == 0``.  Mark positions refer to the
    *input* stream and are not rescaled.
    """
    if every < 1:
        raise ValueError("sample interval must be >= 1")
    seen = 0
    for item in stream:
        if not isinstance(item, TraceChunk):
            yield item
            continue
        m = len(item)
        first = (-seen) % every
        seen += m
        if first >= m:
            continue
        idx = np.arange(first, m, every)
        yield TraceChunk(*(col[idx] for col in item))


def slice_stream(stream: Iterable[StreamItem], start: int,
                 stop: Optional[int] = None) -> Iterator[StreamItem]:
    """Records ``start .. stop`` of the stream (like ``trace.slice``).

    Marks inside the window pass through; marks outside are dropped.
    """
    pos = 0
    for item in stream:
        if not isinstance(item, TraceChunk):
            if start <= item.position and (stop is None
                                           or item.position <= stop):
                yield item
            continue
        m = len(item)
        lo, hi = pos, pos + m
        pos = hi
        take_lo = max(lo, start)
        take_hi = hi if stop is None else min(hi, stop)
        if take_lo < take_hi:
            yield item.slice(take_lo - lo, take_hi - lo)
        if stop is not None and pos >= stop:
            break


def interleave(streams: Sequence[Iterable[StreamItem]],
               granularity: int = CHUNK_RECORDS) -> Iterator[StreamItem]:
    """Round-robin merge: ``granularity`` records from each live stream.

    Marks are emitted with their owning stream's slice.  Exhausted
    streams drop out; the merge ends when all are dry.
    """
    rechunked = [iter(rechunk(s, granularity)) for s in streams]
    live = list(rechunked)
    while live:
        nxt: List[Iterator[StreamItem]] = []
        for it in live:
            emitted_chunk = False
            for item in it:
                yield item
                if isinstance(item, TraceChunk):
                    emitted_chunk = True
                    break
            if emitted_chunk:
                nxt.append(it)
        live = nxt


def rechunk(stream: Iterable[StreamItem],
            size: int = CHUNK_RECORDS) -> Iterator[StreamItem]:
    """Normalize chunk sizes to exactly ``size`` (last chunk partial).

    A mark flushes the pending partial buffer first, so the mark stays
    exactly between the records it arrived between.
    """
    if size < 1:
        raise ValueError("chunk size must be >= 1")
    pending: List[TraceChunk] = []
    buffered = 0
    for item in stream:
        if not isinstance(item, TraceChunk):
            if pending:
                yield concat_chunks(pending)
                pending, buffered = [], 0
            yield item
            continue
        off = 0
        m = len(item)
        while off < m:
            take = min(size - buffered, m - off)
            pending.append(item.slice(off, off + take))
            buffered += take
            off += take
            if buffered == size:
                yield (pending[0] if len(pending) == 1
                       else concat_chunks(pending))
                pending, buffered = [], 0
    if pending:
        yield concat_chunks(pending)


def insert_marks(stream: Iterable[StreamItem], marks: Sequence[Mark],
                 base: int = 0) -> Iterator[StreamItem]:
    """Merge ``marks`` (sorted by position) into the stream in band.

    Chunks are split at mark positions, so each mark lands exactly
    between the records its ``position`` names and stays there through
    any chain of pass-through transforms.  Positions are absolute:
    ``base`` names the absolute index of the stream's first record (for
    a stream produced by ``chunks_of(source, start)``, pass the same
    ``start``); marks at positions < base fire immediately.
    """
    queue = sorted(marks, key=lambda m: m.position)
    qi = 0
    pos = base
    for item in stream:
        if not isinstance(item, TraceChunk):
            yield item
            continue
        m = len(item)
        lo = 0
        while qi < len(queue) and queue[qi].position <= pos + m:
            cut = queue[qi].position - pos
            if cut > lo:
                yield item.slice(lo, cut)
                lo = cut
            elif cut < lo:  # mark behind the stream: fire immediately
                pass
            yield queue[qi]
            qi += 1
        if lo < m:
            yield item.slice(lo, m)
        pos += m
    while qi < len(queue):  # marks past the end still fire
        yield queue[qi]
        qi += 1


def periodic_marks(start: int, every: int, limit: int,
                   kind: str) -> List[Mark]:
    """Periodic marks at ``start + k*every`` (k >= 1), up to ``limit``.

    This is the in-band form of the engine's ``REPRO_CKPT_MARK``
    cadence: the first mark fires after ``every`` records past
    ``start`` (the warm-up boundary), the last at or before ``limit``.
    """
    if every < 1:
        raise ValueError("mark interval must be >= 1")
    return [Mark(kind, p)
            for p in range(start + every, limit + 1, every)]


# -- sinks ---------------------------------------------------------------------

def records(stream: Iterable[StreamItem],
            on_mark: Optional[Callable[[Mark], None]] = None
            ) -> Iterator[Record]:
    """Flatten a chunk stream into the engine's scalar record tuples.

    Conversion is per-chunk ``tolist`` (the ``Trace.__iter__`` recipe:
    constant memory, no per-record numpy scalar boxing).  Marks fire
    ``on_mark`` exactly between the two records they sit between.
    """
    for item in stream:
        if not isinstance(item, TraceChunk):
            if on_mark is not None:
                on_mark(item)
            continue
        yield from zip(item.pcs.tolist(), item.addrs.tolist(),
                       item.writes.tolist(), item.gaps.tolist(),
                       item.deps.tolist())


def to_trace(name: str, stream: Iterable[StreamItem]):
    """Materialize a (mark-free view of a) stream as an in-memory Trace."""
    from ..sim.trace import Trace

    chunks = [item for item in stream if isinstance(item, TraceChunk)]
    merged = concat_chunks(chunks)
    return Trace(name, merged.pcs, merged.addrs, merged.writes,
                 merged.gaps, merged.deps)


def stream_length(stream: Iterable[StreamItem]) -> int:
    """Total records in a stream (consumes it)."""
    return sum(len(item) for item in stream
               if isinstance(item, TraceChunk))
