"""Columnar trace chunks and in-band control marks.

A *chunk stream* is the unit of flow in :mod:`repro.tracestream`: an
iterator yielding :class:`TraceChunk` items (fixed-ish-size numpy
struct-of-arrays slabs of trace records) interleaved with
:class:`Mark` items (control metadata — checkpoint marks, warm/measure
boundaries, telemetry flush points — that ride the stream *in band*
without breaking it, after talkpipe's segment/bypass design).

Transform stages operate on chunks and pass marks through untouched and
in order; :func:`repro.tracestream.stages.insert_marks` splits chunks at
mark positions, so in-order pass-through is enough to keep a mark
exactly between the two records it was inserted between.  Every mark
also carries its absolute record ``position`` (the index of the record
*after* it), which is authoritative when a stage cannot preserve
interleaving (e.g. ``rechunk`` flushing a partial buffer).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Union

import numpy as np

#: Default records per chunk.  Matches ``repro.sim.trace.ITER_CHUNK``:
#: large enough that per-chunk overhead vanishes, small enough that one
#: chunk (~22 bytes/record → ~1.4MB) keeps streaming memory trivial.
CHUNK_RECORDS = 1 << 16

#: Mark kinds used by the engine / harness (stages treat kinds opaquely).
MARK_CKPT = "ckpt"            # periodic checkpoint progress mark
MARK_WARM = "warm"            # warm-up → measure boundary
MARK_TELEMETRY = "telemetry"  # telemetry flush point


class TraceChunk:
    """A struct-of-arrays slab of trace records.

    Columns mirror :class:`repro.sim.trace.Trace`: ``pcs`` (int64),
    ``addrs`` (int64), ``writes`` (bool), ``gaps`` (int32), ``deps``
    (bool).  Treat the arrays as read-only; they may alias a trace's
    (or an mmap'd store chunk's) backing storage.  ``len(chunk)`` is
    the record count; iterating a chunk yields its five columns (so
    ``TraceChunk(*(f(col) for col in chunk))`` maps a columnwise
    transform).
    """

    _fields = ("pcs", "addrs", "writes", "gaps", "deps")
    __slots__ = _fields

    def __init__(self, pcs: np.ndarray, addrs: np.ndarray,
                 writes: np.ndarray, gaps: np.ndarray,
                 deps: np.ndarray):
        self.pcs = pcs
        self.addrs = addrs
        self.writes = writes
        self.gaps = gaps
        self.deps = deps

    def __len__(self) -> int:
        return len(self.pcs)

    def __iter__(self):
        return iter((self.pcs, self.addrs, self.writes, self.gaps,
                     self.deps))

    def __repr__(self) -> str:
        return f"TraceChunk(<{len(self)} records>)"

    def replace(self, **columns: np.ndarray) -> "TraceChunk":
        """Copy of the chunk with some columns substituted."""
        cols = {f: getattr(self, f) for f in self._fields}
        cols.update(columns)
        return TraceChunk(**cols)

    def slice(self, start: int, stop: int) -> "TraceChunk":
        return TraceChunk(self.pcs[start:stop], self.addrs[start:stop],
                          self.writes[start:stop], self.gaps[start:stop],
                          self.deps[start:stop])


@dataclass(frozen=True)
class Mark:
    """In-band control metadata: fires *before* the record at ``position``.

    ``position`` is the absolute record index within the logical trace
    (so a mark at position ``p`` sits between records ``p-1`` and ``p``;
    a mark at ``position == len(trace)`` fires after the final record).
    """

    kind: str
    position: int
    payload: Dict[str, Any] = field(default_factory=dict)


#: What flows through a stage: data chunks interleaved with marks.
StreamItem = Union[TraceChunk, Mark]


def make_chunk(pcs, addrs, writes=None, gaps=None, deps=None,
               gap: int = 3) -> TraceChunk:
    """Build a validated chunk, coercing dtypes and filling defaults.

    ``writes``/``deps`` default to all-False, ``gaps`` to the scalar
    ``gap`` — the same defaults as ``TraceBuilder.add``.
    """
    pcs = np.ascontiguousarray(pcs, dtype=np.int64)
    addrs = np.ascontiguousarray(addrs, dtype=np.int64)
    n = len(pcs)
    if len(addrs) != n:
        raise ValueError("chunk columns must have equal length")
    if writes is None:
        writes = np.zeros(n, dtype=np.bool_)
    else:
        writes = np.ascontiguousarray(writes, dtype=np.bool_)
    if gaps is None:
        gaps = np.full(n, gap, dtype=np.int32)
    else:
        gaps = np.ascontiguousarray(gaps, dtype=np.int32)
    if deps is None:
        deps = np.zeros(n, dtype=np.bool_)
    else:
        deps = np.ascontiguousarray(deps, dtype=np.bool_)
    if not (len(writes) == len(gaps) == len(deps) == n):
        raise ValueError("chunk columns must have equal length")
    return TraceChunk(pcs, addrs, writes, gaps, deps)


def concat_chunks(chunks) -> TraceChunk:
    """Concatenate chunks into one (materializes; for small streams)."""
    chunks = list(chunks)
    if not chunks:
        return make_chunk(np.empty(0, np.int64), np.empty(0, np.int64))
    if len(chunks) == 1:
        return chunks[0]
    return TraceChunk(*(np.concatenate([getattr(c, col) for c in chunks])
                        for col in TraceChunk._fields))
