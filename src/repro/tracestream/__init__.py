"""Streaming out-of-core trace pipeline.

Trace flow as composable generator stages over fixed-size columnar
chunks, with in-band control metadata (checkpoint marks, warm/measure
boundaries, telemetry flush points) riding the stream, plus a chunked
mmap-backed on-disk :class:`TraceStore` so paper-scale (100M+-access)
traces generate once, persist, and replay in constant memory.

Knobs:

* ``REPRO_TRACE_STREAM`` — tri-state (unset/``auto``/``0``/``1``):
  route ``repro.runner`` trace acquisition through the on-disk store
  and replay via :class:`StreamingTrace`.  Pure execution strategy —
  results are bit-identical to the in-memory path and the knob is
  excluded from job fingerprints.
* ``REPRO_TRACE_DIR`` — store root (default ``benchmarks/.traces``).

``python -m repro.tracestream`` lists, verifies, generates, and
garbage-collects store entries.
"""

from .chunk import (CHUNK_RECORDS, MARK_CKPT, MARK_TELEMETRY, MARK_WARM,
                    Mark, StreamItem, TraceChunk, concat_chunks,
                    make_chunk)
from .stages import (bias, chunks_of, insert_marks, interleave,
                     periodic_marks, rechunk, records, sample, shift,
                     slice_stream, stream_length, to_trace)
from .store import (ENV_DIR, FORMAT_VERSION, StreamingTrace, TraceStore,
                    TraceStoreCorrupt, default_root, entry_key)

__all__ = [
    "CHUNK_RECORDS", "MARK_CKPT", "MARK_TELEMETRY", "MARK_WARM", "Mark",
    "StreamItem", "TraceChunk", "concat_chunks", "make_chunk",
    "bias", "chunks_of", "insert_marks", "interleave", "periodic_marks",
    "rechunk", "records", "sample", "shift", "slice_stream",
    "stream_length", "to_trace",
    "ENV_DIR", "FORMAT_VERSION", "StreamingTrace", "TraceStore",
    "TraceStoreCorrupt", "default_root", "entry_key",
]
