"""Trace-store maintenance CLI.

``python -m repro.tracestream <command>``:

* ``list``   — store entries with record counts and on-disk size.
* ``verify`` — full checksum verification of one entry (or all).
* ``gen``    — generate a workload's trace into the store (streaming,
  constant memory) and report throughput.
* ``gc``     — remove entries that fail verification and stale temp
  directories.
"""

from __future__ import annotations

import argparse
import sys
import time

from .store import TraceStore, default_root


def _dir_size(path) -> float:
    return sum(f.stat().st_size for f in path.rglob("*")
               if f.is_file()) / (1024.0 * 1024.0)


def cmd_list(store: TraceStore, args) -> int:
    entries = store.entries()
    if not entries:
        print(f"no traces under {store.root}")
        return 0
    print(f"{len(entries)} trace(s) under {store.root}")
    for entry in entries:
        try:
            trace = store._open(entry)
        except Exception as exc:  # noqa: BLE001 - CLI summarizes defects
            print(f"  {entry.name}  CORRUPT ({exc})")
            continue
        assert trace is not None
        print(f"  {entry.name}  {len(trace):>12,} records  "
              f"{trace.header['num_chunks']:>5} chunks  "
              f"{_dir_size(entry):8.1f} MiB")
    return 0


def cmd_verify(store: TraceStore, args) -> int:
    entries = ([store.root / args.key] if args.key else store.entries())
    bad = 0
    for entry in entries:
        defects = store.verify(entry)
        if defects:
            bad += 1
            print(f"{entry.name}: CORRUPT")
            for d in defects:
                print(f"  {d}")
        else:
            print(f"{entry.name}: ok")
    if not entries:
        print(f"no traces under {store.root}")
    return 1 if bad else 0


def cmd_gen(store: TraceStore, args) -> int:
    from ..workloads import DEFAULT_SEED, make_chunks

    seed = args.seed if args.seed is not None else DEFAULT_SEED
    if store.has(args.workload, args.n, seed) and not args.force:
        print(f"{args.workload} n={args.n} seed={seed}: already stored")
        return 0
    t0 = time.perf_counter()
    trace = store.put(args.workload, args.n, seed,
                      make_chunks(args.workload, args.n, seed))
    wall = time.perf_counter() - t0
    rate = args.n / wall / 1e6 if wall else float("inf")
    print(f"stored {args.workload} n={args.n} seed={seed}: "
          f"{len(trace):,} records in {wall:.2f}s ({rate:.1f}M rec/s) "
          f"→ {trace.directory}")
    return 0


def cmd_gc(store: TraceStore, args) -> int:
    removed = store.gc()
    print(f"removed {len(removed)} entr{'y' if len(removed) == 1 else 'ies'}")
    for path in removed:
        print(f"  {path.name}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tracestream",
        description="On-disk trace store maintenance.")
    parser.add_argument("--dir", default=None,
                        help="store root (default: REPRO_TRACE_DIR or "
                             "benchmarks/.traces)")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list store entries")
    p_verify = sub.add_parser("verify", help="checksum-verify entries")
    p_verify.add_argument("key", nargs="?", default=None,
                          help="one entry directory name (default: all)")
    p_gen = sub.add_parser("gen", help="generate a workload into the store")
    p_gen.add_argument("workload")
    p_gen.add_argument("--n", type=int, required=True)
    p_gen.add_argument("--seed", type=int, default=None)
    p_gen.add_argument("--force", action="store_true",
                       help="regenerate even if already stored")
    sub.add_parser("gc", help="drop corrupt entries and stale temp dirs")
    args = parser.parse_args(argv)
    store = TraceStore(args.dir if args.dir else default_root())
    return {"list": cmd_list, "verify": cmd_verify, "gen": cmd_gen,
            "gc": cmd_gc}[args.command](store, args)


if __name__ == "__main__":
    sys.exit(main())
