"""Chunked, mmap-backed, checksummed on-disk trace store.

Layout (one directory per trace, keyed by ``(workload, n, seed)``)::

    <root>/<workload>-n<EXP>-s<SEED>/
        header.json            # format, shape, dtypes, per-file sha256
        c000000.pcs.npy        # chunk 0, one .npy per column
        c000000.addrs.npy
        ...

Chunks are fixed-size (:data:`~repro.tracestream.chunk.CHUNK_RECORDS`
records; the last partial), each column a plain ``.npy`` opened with
``mmap_mode="r"`` on read — so replaying a 100M-access trace touches
O(chunk) resident memory, not O(n).  Writes are atomic in the
checkpoint-store style: everything lands in a temp directory that is
``os.replace``d into place after the header (written last) commits the
content digests; a racing writer loses cleanly and adopts the winner.
A corrupt entry (bad header, wrong version, missing/mis-sized chunk
file) degrades to a store miss; ``verify`` rechecks full sha256 content
digests, ``gc`` removes entries that fail.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import re
import shutil
import tempfile
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from ..envknobs import env_dir
from .chunk import CHUNK_RECORDS, StreamItem, TraceChunk
from . import stages

#: On-disk format version; a mismatch is treated as a miss, never read.
FORMAT_VERSION = 1

_COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("pcs", "int64"), ("addrs", "int64"), ("writes", "bool"),
    ("gaps", "int32"), ("deps", "bool"))

_KEY_SAFE = re.compile(r"[^A-Za-z0-9._-]")

ENV_DIR = "REPRO_TRACE_DIR"


class TraceStoreCorrupt(RuntimeError):
    """A store entry exists but cannot be trusted or decoded."""


def default_root() -> pathlib.Path:
    """Store root: ``REPRO_TRACE_DIR`` or ``benchmarks/.traces``."""
    override = env_dir(ENV_DIR)
    if override:
        return pathlib.Path(override)
    repo_root = pathlib.Path(__file__).resolve().parents[3]
    if (repo_root / "benchmarks").is_dir():
        return repo_root / "benchmarks" / ".traces"
    return pathlib.Path.home() / ".cache" / "repro-traces"


def entry_key(workload: str, n: int, seed: int) -> str:
    """Directory name for one trace (filesystem-safe, collision-free
    for the sane workload names the registry uses)."""
    return f"{_KEY_SAFE.sub('_', workload)}-n{n}-s{seed}"


def _chunk_file(idx: int, column: str) -> str:
    return f"c{idx:06d}.{column}.npy"


def _array_digest(arr: np.ndarray) -> str:
    h = hashlib.sha256()
    h.update(str(arr.dtype).encode())
    h.update(repr(arr.shape).encode())
    h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


class StreamingTrace:
    """A :class:`~repro.sim.trace.TraceSource` replaying a store entry.

    Satisfies the same protocol as the in-memory ``Trace`` — ``name``,
    ``len``, ``iter_from`` / ``__iter__``, ``chunk_at``,
    ``columns_range``, ``instructions`` — but reads columns from
    mmap'd chunk files, keeping resident memory constant in trace
    length.  A two-entry chunk cache makes sequential replay and the
    fast path's slab walk touch each file once.
    """

    def __init__(self, directory: pathlib.Path, header: Dict[str, Any]):
        self.directory = pathlib.Path(directory)
        self.header = header
        self.name: str = header["name"]
        self._n: int = header["total"]
        self._chunk: int = header["chunk_records"]
        self._num_chunks: int = header["num_chunks"]
        self._instructions: int = header["instructions"]
        self._cache: "Dict[int, Dict[str, np.ndarray]]" = {}

    def __len__(self) -> int:
        return self._n

    @property
    def instructions(self) -> int:
        """Total retired instructions (precomputed at write time)."""
        return self._instructions

    def _load(self, idx: int) -> Dict[str, np.ndarray]:
        cols = self._cache.get(idx)
        if cols is None:
            cols = {name: np.load(self.directory / _chunk_file(idx, name),
                                  mmap_mode="r", allow_pickle=False)
                    for name, _ in _COLUMNS}
            if len(self._cache) >= 2:  # keep current + lookahead only
                self._cache.pop(next(iter(self._cache)))
            self._cache[idx] = cols
        return cols

    def chunk_at(self, start: int, stop: int) -> TraceChunk:
        """Columnar view of records ``[start, stop)`` (bounded copies
        only when the window crosses a chunk-file boundary)."""
        if not 0 <= start <= stop <= self._n:
            raise IndexError(f"window [{start}, {stop}) outside trace "
                             f"of {self._n} records")
        parts: Dict[str, List[np.ndarray]] = {name: []
                                              for name, _ in _COLUMNS}
        pos = start
        while pos < stop:
            idx = pos // self._chunk
            base = idx * self._chunk
            lo = pos - base
            hi = min(stop - base, self._chunk)
            cols = self._load(idx)
            for name, _ in _COLUMNS:
                parts[name].append(cols[name][lo:hi])
            pos = base + hi
        merged = {name: (p[0] if len(p) == 1 else np.concatenate(p))
                  if p else np.empty(0, dtype=dt)
                  for (name, dt), p in zip(_COLUMNS, parts.values())}
        return TraceChunk(merged["pcs"], merged["addrs"],
                          merged["writes"], merged["gaps"],
                          merged["deps"])

    def columns_range(self, start: int, stop: int):
        """Fast-path columnar view (``blks`` computed per window)."""
        from ..sim.trace import TraceColumns

        c = self.chunk_at(start, stop)
        return TraceColumns(c.pcs, c.addrs >> 6, c.writes, c.gaps,
                            c.deps)

    def iter_chunks(self, start: int = 0) -> Iterator[TraceChunk]:
        return stages.chunks_of(self, start, self._chunk)

    def iter_from(self, start: int):
        """Record tuples from ``start`` — the same values, in the same
        Python types, as the in-memory ``Trace.iter_from``."""
        return stages.records(self.iter_chunks(start))

    def __iter__(self):
        return self.iter_from(0)


class TraceStore:
    """Keyed persistence for generated traces.

    ``get`` returns a :class:`StreamingTrace` (or None); ``put`` drains
    a chunk stream to disk; ``get_or_create`` wires the two together
    around a generator callable.  ``hits``/``misses`` count ``get``
    outcomes for the runner's cache-effectiveness records.
    """

    def __init__(self, root: Optional[pathlib.Path] = None,
                 chunk_records: int = CHUNK_RECORDS):
        self.root = pathlib.Path(root) if root is not None \
            else default_root()
        self.chunk_records = chunk_records
        self.hits = 0
        self.misses = 0

    # -- lookup ------------------------------------------------------------

    def path_for(self, workload: str, n: int, seed: int) -> pathlib.Path:
        return self.root / entry_key(workload, n, seed)

    def has(self, workload: str, n: int, seed: int) -> bool:
        return (self.path_for(workload, n, seed) / "header.json").is_file()

    def get(self, workload: str, n: int, seed: int
            ) -> Optional[StreamingTrace]:
        directory = self.path_for(workload, n, seed)
        try:
            trace = self._open(directory)
        except TraceStoreCorrupt:
            # Unusable entry: degrade to a miss and clear the slot so
            # the next put() can regenerate it.
            shutil.rmtree(directory, ignore_errors=True)
            trace = None
        if trace is None:
            self.misses += 1
        else:
            self.hits += 1
        return trace

    def _open(self, directory: pathlib.Path) -> Optional[StreamingTrace]:
        header_path = directory / "header.json"
        if not header_path.is_file():
            return None
        try:
            header = json.loads(header_path.read_text(encoding="utf-8"))
        except (ValueError, OSError) as exc:
            raise TraceStoreCorrupt(f"{header_path}: unreadable "
                                    f"({exc})") from exc
        if header.get("format") != FORMAT_VERSION:
            raise TraceStoreCorrupt(
                f"{header_path}: format {header.get('format')!r}, "
                f"expected {FORMAT_VERSION}")
        for key in ("name", "total", "chunk_records", "num_chunks",
                    "instructions", "digests", "sizes"):
            if key not in header:
                raise TraceStoreCorrupt(f"{header_path}: missing {key!r}")
        # Cheap structural check on open: every chunk file must exist
        # at its recorded byte size — catches truncation from a torn
        # copy or full disk with O(files) stats.  Full content digests
        # are verify()'s job; rehashing 100M records on every open
        # would defeat the point of the store.
        for fname, want_bytes in header["sizes"].items():
            path = directory / fname
            try:
                size = path.stat().st_size
            except OSError:
                raise TraceStoreCorrupt(
                    f"{directory}: missing {fname}") from None
            if size != want_bytes:
                raise TraceStoreCorrupt(
                    f"{path}: {size} bytes, expected {want_bytes}")
        return StreamingTrace(directory, header)

    # -- write -------------------------------------------------------------

    def put(self, workload: str, n: int, seed: int,
            stream: Iterable[StreamItem],
            name: Optional[str] = None) -> StreamingTrace:
        """Drain ``stream`` to a new entry (atomic; constant memory).

        Marks in the stream are dropped: the store persists data, and
        control metadata is re-inserted on replay.  A concurrent writer
        of the same key wins or loses atomically; either way the caller
        gets a readable entry back.
        """
        final = self.path_for(workload, n, seed)
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = pathlib.Path(tempfile.mkdtemp(
            dir=self.root, prefix=f".{entry_key(workload, n, seed)}."))
        try:
            digests: Dict[str, str] = {}
            sizes: Dict[str, int] = {}
            total = 0
            instructions = 0
            idx = 0
            for item in stages.rechunk(stream, self.chunk_records):
                if not isinstance(item, TraceChunk):
                    continue
                for col, dtype in _COLUMNS:
                    arr = np.ascontiguousarray(getattr(item, col))
                    if str(arr.dtype) != dtype:
                        raise ValueError(
                            f"chunk column {col!r} has dtype "
                            f"{arr.dtype}, expected {dtype}")
                    fname = _chunk_file(idx, col)
                    np.save(tmp / fname, arr, allow_pickle=False)
                    digests[fname] = _array_digest(arr)
                    sizes[fname] = (tmp / fname).stat().st_size
                total += len(item)
                instructions += int(item.gaps.sum(dtype=np.int64))
                idx += 1
            if total != n:
                raise ValueError(
                    f"stream for {workload!r} produced {total} records, "
                    f"expected {n}")
            header = {
                "format": FORMAT_VERSION,
                "name": name if name is not None else workload,
                "workload": workload,
                "n": n,
                "seed": seed,
                "total": total,
                "instructions": instructions + total,
                "chunk_records": self.chunk_records,
                "num_chunks": idx,
                "columns": {c: d for c, d in _COLUMNS},
                "digests": digests,
                "sizes": sizes,
            }
            blob = json.dumps(header, indent=1, sort_keys=True)
            (tmp / "header.json").write_text(blob, encoding="utf-8")
            try:
                os.replace(tmp, final)
            except OSError:
                # A racing writer committed first; adopt its entry.
                shutil.rmtree(tmp, ignore_errors=True)
        except BaseException:
            shutil.rmtree(tmp, ignore_errors=True)
            raise
        trace = self._open(final)
        assert trace is not None
        return trace

    def get_or_create(self, workload: str, n: int, seed: int,
                      generate) -> StreamingTrace:
        """``get``, falling back to ``put(generate())`` on a miss."""
        trace = self.get(workload, n, seed)
        if trace is None:
            trace = self.put(workload, n, seed, generate())
        return trace

    # -- maintenance -------------------------------------------------------

    def entries(self) -> List[pathlib.Path]:
        if not self.root.is_dir():
            return []
        return sorted(d for d in self.root.iterdir()
                      if d.is_dir() and not d.name.startswith("."))

    def verify(self, directory: pathlib.Path) -> List[str]:
        """Full content check of one entry; returns defects (empty=ok)."""
        defects: List[str] = []
        try:
            trace = self._open(directory)
        except TraceStoreCorrupt as exc:
            return [str(exc)]
        if trace is None:
            return [f"{directory}: no header"]
        total = 0
        for idx in range(trace.header["num_chunks"]):
            for col, _ in _COLUMNS:
                fname = _chunk_file(idx, col)
                want = trace.header["digests"].get(fname)
                if want is None:
                    defects.append(f"{fname}: not in header digests")
                    continue
                try:
                    arr = np.load(directory / fname, mmap_mode="r",
                                  allow_pickle=False)
                except (OSError, ValueError) as exc:
                    defects.append(f"{fname}: unreadable ({exc})")
                    continue
                if _array_digest(arr) != want:
                    defects.append(f"{fname}: checksum mismatch")
                if col == "pcs":
                    total += len(arr)
        if total != trace.header["total"]:
            defects.append(f"{directory}: {total} records on disk, "
                           f"header says {trace.header['total']}")
        return defects

    def gc(self) -> List[pathlib.Path]:
        """Remove entries failing verification (and stale tmp dirs)."""
        removed: List[pathlib.Path] = []
        if not self.root.is_dir():
            return removed
        for stale in self.root.glob(".*.*"):
            if stale.is_dir():
                shutil.rmtree(stale, ignore_errors=True)
                removed.append(stale)
        for entry in self.entries():
            if self.verify(entry):
                shutil.rmtree(entry, ignore_errors=True)
                removed.append(entry)
        return removed

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses}
