"""The sampling subsystem's validated environment knobs.

Separate from ``__init__`` so :mod:`.plan` / :mod:`.execute` can read
them without importing the package facade (which imports them).
"""

from __future__ import annotations

import os
import pathlib
from typing import Optional

from ..envknobs import env_dir, env_int, env_tristate


def sampling_enabled(default: bool = False) -> bool:
    """Resolve the ``REPRO_SAMPLING`` tri-state against a caller default.

    Experiments that are *about* sampling (``fig9s``) pass
    ``default=True``; everything else defaults off, keeping default
    outputs bit-identical to a world without this subsystem.  Like
    ``REPRO_FASTPATH``/``REPRO_TRACE_STREAM`` the knob never enters job
    fingerprints — but unlike those, sampling is *not* bit-identical,
    so it selects which jobs are submitted (windowed ones, keyed by
    ``SimJob.window``) rather than how one job executes.
    """
    env = env_tristate("REPRO_SAMPLING")
    return bool(env) if env is not None else default


def sampling_dir() -> pathlib.Path:
    """Plan-store root: ``REPRO_SAMPLING_DIR`` or ``benchmarks/.splans``."""
    override = env_dir("REPRO_SAMPLING_DIR")
    if override:
        return pathlib.Path(override)
    repo_root = pathlib.Path(__file__).resolve().parents[3]
    if (repo_root / "benchmarks").is_dir():
        return repo_root / "benchmarks" / ".splans"
    return pathlib.Path.home() / ".cache" / "repro-splans"


def sampling_k(default: Optional[int] = None) -> Optional[int]:
    """``REPRO_SAMPLING_K`` override (None = use the plan default)."""
    if not os.environ.get("REPRO_SAMPLING_K", ""):
        return default
    return env_int("REPRO_SAMPLING_K", 0, minimum=1, maximum=4096)
