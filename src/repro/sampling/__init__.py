"""Representative interval sampling (SimPoint-style).

Paper-scale evaluation is linearly expensive: every figure simulates
every access of every trace.  This subsystem makes wide scenario sweeps
cheap by simulating only *representative* intervals:

1. :mod:`.features` streams a trace through the chunk pipeline
   (constant memory, no simulation) and collects one feature vector per
   fixed-size interval — access mixes, footprint deltas, and a
   log2-bucketed reuse-distance sketch.
2. :mod:`.cluster` runs a seeded, dependency-free k-means over the
   z-scored vectors and picks one representative interval per cluster,
   weighted by cluster population.
3. :mod:`.plan` persists the result as a checksummed
   :class:`~repro.sampling.plan.SamplingPlan` artifact under
   ``benchmarks/.splans`` (corruption evicts to a miss, like every
   other store in this repo).
4. :mod:`.execute` turns a plan into windowed
   :class:`~repro.runner.SimJob` batches (bounded warm-up immediately
   before each interval, restored from the checkpoint store when
   shared), and extrapolates whole-trace estimates with per-metric
   confidence intervals and declared error bounds.

``python -m repro.sampling`` exposes ``plan`` / ``run`` / ``validate``
/ ``report``; ``validate`` runs sampled-vs-full and asserts every
observed error is inside its declared bound.

Knobs (validated; errors name the variable):

* ``REPRO_SAMPLING`` — tri-state like ``REPRO_FASTPATH``: unset/
  ``auto`` defers to the caller's default (off everywhere except the
  sampled ``fig9s`` experiment), ``0``/``1`` force it.  Never enters
  job fingerprints: windowed jobs key their *own* cache entries via
  ``SimJob.window``, so a sampled estimate can never impersonate a
  full run's cached result.
* ``REPRO_SAMPLING_DIR`` — plan-store root (default
  ``benchmarks/.splans``).
* ``REPRO_SAMPLING_K`` — override the number of representatives.
"""

from __future__ import annotations

from .cluster import kmeans, pick_representatives
from .execute import (METRIC_FLOORS, METRICS, SampledEstimate, combine,
                      run_sampled, sampled_jobs, validate_sampling)
from .features import (FEATURE_NAMES, FEATURE_SCHEMA_VERSION,
                       FeatureMatrix, extract_features)
from .knobs import sampling_dir, sampling_enabled, sampling_k
from .plan import (DEFAULT_ERROR_BOUNDS, PlanStore, Representative,
                   SamplingPlan, build_plan, default_interval, default_k,
                   get_plan)

__all__ = [
    "kmeans", "pick_representatives",
    "FEATURE_NAMES", "FEATURE_SCHEMA_VERSION", "FeatureMatrix",
    "extract_features",
    "DEFAULT_ERROR_BOUNDS", "PlanStore", "Representative",
    "SamplingPlan", "build_plan", "default_interval", "default_k",
    "get_plan",
    "METRICS", "METRIC_FLOORS", "SampledEstimate", "combine",
    "run_sampled", "sampled_jobs", "validate_sampling",
    "sampling_enabled", "sampling_dir", "sampling_k",
]
