"""``python -m repro.sampling`` — plan / run / validate / report.

* ``plan WORKLOAD --n N`` — feature pass + clustering, persisted to the
  plan store; prints the representatives.
* ``run WORKLOAD --n N [--l2 streamline]`` — sampled execution +
  extrapolated estimates with confidence intervals.
* ``validate`` — sampled-vs-full on a workload x prefetcher grid
  (default: three workloads x baseline/streamline); exits non-zero if
  any observed error exceeds its declared bound.
* ``report`` — the plan store's contents (add a key for full detail).

All subcommands honor ``REPRO_SAMPLING_DIR`` / ``REPRO_SAMPLING_K``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from ..experiments.common import experiment_config
from ..runner import spec
from ..workloads import DEFAULT_SEED
from .execute import run_sampled, validate_sampling
from .knobs import sampling_k
from .plan import PlanStore, get_plan

#: The default validation grid: a pointer chase, a scan mix, and a
#: graph kernel, against no-L2-prefetch and the paper's streamlined
#: design.  Pure streams are deliberately absent: with an
#: over-fetching prefetcher their DRAM queue backlog accumulates over
#: the whole run, which bounded warm-up cannot reproduce (see DESIGN.md
#: §9, "Limits").
VALIDATE_WORKLOADS = ["06.omnetpp", "06.mcf", "gap.pr"]
VALIDATE_ARMS = {"baseline": (), "streamline": ("streamline",)}


def _l2(names: Sequence[str]):
    return tuple(spec(name) for name in names)


def _common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--n", type=int, default=120_000,
                   help="trace length in accesses (default 120000: "
                        "long enough that the full run's measured "
                        "region is past the cache-fill transient)")
    p.add_argument("--seed", type=int, default=DEFAULT_SEED)
    p.add_argument("--interval", type=int, default=None,
                   help="interval length (default: scale with n)")
    p.add_argument("--k", type=int, default=None,
                   help="representative count (default: scale with "
                        "candidates; REPRO_SAMPLING_K overrides)")


def _arm_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--l1", default="stride",
                   help="L1 prefetcher spec name (default stride)")
    p.add_argument("--l2", action="append", default=None,
                   help="L2 prefetcher spec name (repeatable; default "
                        "none)")


def cmd_plan(args: argparse.Namespace) -> int:
    plan = get_plan(args.workload, args.n, seed=args.seed,
                    interval=args.interval, k=sampling_k(args.k))
    store = PlanStore()
    print(f"plan {plan.key}")
    print(f"  stored at    {store.path(plan.key)}")
    print(f"  digest       {plan.digest()[:16]}")
    print(f"  interval     {plan.interval}  warmup {plan.warmup}")
    print(f"  candidates   {plan.num_candidates}  k {plan.k}")
    print(f"  simulated    {plan.simulated_accesses()} / {plan.n} "
          f"accesses ({plan.n / max(1, plan.simulated_accesses()):.1f}x "
          f"reduction)")
    for rep in plan.representatives:
        print(f"  rep @{rep.start:>10}  weight {rep.weight:.3f}  "
              f"(cluster size {rep.size})")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    est = run_sampled(args.workload, args.n, experiment_config(),
                      l1=spec(args.l1), l2=_l2(args.l2 or []),
                      seed=args.seed, interval=args.interval, k=args.k)
    print(f"{est.workload} n={est.n}: {est.representatives} "
          f"representatives, {est.simulated_accesses} simulated "
          f"accesses ({est.access_reduction:.1f}x reduction)")
    for name, me in est.metrics.items():
        bound = "" if me.bound is None else f"  (bound {me.bound:.0%})"
        print(f"  {name:<14} {me.estimate:.6f} +/- {me.ci95:.6f}"
              f"{bound}")
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    workloads = args.workloads or VALIDATE_WORKLOADS
    arms = {name: _l2(l2) for name, l2 in VALIDATE_ARMS.items()}
    rows = validate_sampling(workloads, args.n, experiment_config(),
                             arms, l1=spec(args.l1), seed=args.seed,
                             interval=args.interval, k=args.k)
    failures = 0
    print(f"{'workload':<14} {'arm':<11} {'metric':<14} "
          f"{'full':>9} {'sampled':>9} {'err':>7} {'bound':>7}")
    for row in rows:
        flag = "" if row.ok else "  EXCEEDED"
        failures += 0 if row.ok else 1
        print(f"{row.workload:<14} {row.arm:<11} {row.metric:<14} "
              f"{row.full:>9.5f} {row.estimate:>9.5f} "
              f"{row.rel_error:>6.1%} {row.bound:>6.0%}{flag}")
    worst = max((r.rel_error for r in rows), default=0.0)
    print(f"worst observed error {worst:.1%} over {len(rows)} checks")
    if failures:
        print(f"FAIL: {failures} observed errors exceed their declared "
              f"bounds", file=sys.stderr)
        return 1
    print("OK: every observed error is within its declared bound")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    store = PlanStore()
    if args.key:
        plan = store.get(args.key)
        if plan is None:
            print(f"no plan stored for key {args.key!r}",
                  file=sys.stderr)
            return 1
        print(json.dumps(plan.to_dict(), indent=2, sort_keys=True))
        return 0
    entries = store.entries()
    print(f"plan store: {store.directory} ({len(entries)} plans)")
    for key in entries:
        print(f"  {key}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sampling",
        description="Representative interval sampling (plan / run / "
                    "validate / report).")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("plan", help="build (or restore) a sampling plan")
    p.add_argument("workload")
    _common(p)
    p.set_defaults(func=cmd_plan)

    p = sub.add_parser("run", help="sampled execution + extrapolation")
    p.add_argument("workload")
    _common(p)
    _arm_args(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("validate",
                       help="sampled-vs-full error check (exit 1 if any "
                            "bound is exceeded)")
    p.add_argument("--workloads", nargs="*", default=None)
    _common(p)
    p.add_argument("--l1", default="stride")
    p.set_defaults(func=cmd_validate)

    p = sub.add_parser("report", help="inspect the plan store")
    p.add_argument("key", nargs="?", default=None)
    p.set_defaults(func=cmd_report)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
