"""Per-interval feature extraction — a streaming pass, not a simulation.

The clusterer needs one vector per fixed-size interval describing the
memory behaviour that *drives* cache/prefetcher outcomes, computable
without running the engine.  Everything here derives from trace
structure alone, streamed chunk-by-chunk in constant memory (plus the
block-history dict, which is bounded by the trace's footprint, not its
length):

* access mix: write fraction, dependent-load fraction, mean gap;
* locality: unique-block footprint, first-touch (new-block) fraction,
  sequential-neighbour fraction, PC diversity;
* reuse: a log2-bucketed histogram of per-block reuse distances
  (distance counted in accesses since the block's previous touch) —
  the feature that separates "repeating irregular sequence" intervals
  (temporal-prefetch territory) from streaming or thrashing ones.

Intervals sit on a grid anchored at record 0 (interval ``i`` covers
records ``[i*interval, (i+1)*interval)``); a trailing partial interval
is dropped.  The planner later restricts clustering to intervals that
start inside the measured region, but reuse distances are accumulated
from record 0 so early intervals don't look artificially "new".

``FEATURE_SCHEMA_VERSION`` is part of every plan key: changing what a
vector means orphans old plans instead of silently reusing them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

import numpy as np

from ..workloads import DEFAULT_SEED, make_chunks

#: Bump when the vector layout or any feature definition changes.
FEATURE_SCHEMA_VERSION = 1

#: Log2 reuse-distance buckets: bucket ``b`` holds distances in
#: ``[2**b, 2**(b+1))``; the last bucket absorbs everything longer.
RD_BUCKETS = 12

#: Column names of the feature matrix, in order.
FEATURE_NAMES: List[str] = [
    "footprint_frac",   # unique blocks touched / interval length
    "new_frac",         # first-ever-touched blocks / interval length
    "write_frac",
    "dep_frac",
    "pc_frac",          # unique PCs / interval length
    "seq_frac",         # |block - prev block| <= 1 fraction
    "gap_mean",         # mean non-memory instructions per access
] + [f"rd_log2_{b}" for b in range(RD_BUCKETS)]


@dataclass
class FeatureMatrix:
    """Per-interval feature vectors for one (workload, n, seed) trace."""

    workload: str
    n: int
    seed: int
    interval: int
    #: Absolute record index where each interval starts (len == rows).
    starts: np.ndarray
    #: ``(num_intervals, len(FEATURE_NAMES))`` float64 matrix.
    matrix: np.ndarray
    schema: int = FEATURE_SCHEMA_VERSION


class _IntervalAccumulator:
    """Running counters for the interval currently being filled."""

    def __init__(self) -> None:
        self.blocks: Set[int] = set()
        self.pcs: Set[int] = set()
        self.new_blocks = 0
        self.writes = 0
        self.deps = 0
        self.seq = 0
        self.gap_sum = 0
        self.rd_hist = [0] * RD_BUCKETS
        self.count = 0

    def vector(self) -> List[float]:
        inv = 1.0 / self.count if self.count else 0.0
        return ([len(self.blocks) * inv,
                 self.new_blocks * inv,
                 self.writes * inv,
                 self.deps * inv,
                 len(self.pcs) * inv,
                 self.seq * inv,
                 self.gap_sum * inv]
                + [c * inv for c in self.rd_hist])


def extract_features(workload: str, n: int, interval: int,
                     seed: int = DEFAULT_SEED) -> FeatureMatrix:
    """Stream the trace once and return per-interval feature vectors.

    The records come straight from the workload's chunk producer
    (:func:`repro.workloads.make_chunks`) — the same bit-identical
    stream the engine and the trace store consume — so no trace is ever
    materialized for planning.
    """
    if interval < 2:
        raise ValueError(f"interval must be >= 2, got {interval}")
    if n < interval:
        raise ValueError(f"trace length {n} shorter than one interval "
                         f"({interval})")
    num_intervals = n // interval
    last_seen: Dict[int, int] = {}
    acc = _IntervalAccumulator()
    rows: List[List[float]] = []
    idx = 0
    prev_blk = None
    for chunk in make_chunks(workload, n, seed):
        blks = (chunk.addrs >> 6).tolist()
        pcs = chunk.pcs.tolist()
        writes = chunk.writes.tolist()
        gaps = chunk.gaps.tolist()
        deps = chunk.deps.tolist()
        for i in range(len(blks)):
            b = blks[i]
            acc.blocks.add(b)
            acc.pcs.add(pcs[i])
            if writes[i]:
                acc.writes += 1
            if deps[i]:
                acc.deps += 1
            acc.gap_sum += gaps[i]
            if prev_blk is not None and -1 <= b - prev_blk <= 1:
                acc.seq += 1
            prev_blk = b
            last = last_seen.get(b)
            if last is None:
                acc.new_blocks += 1
            else:
                dist = idx - last
                acc.rd_hist[min(RD_BUCKETS - 1, dist.bit_length() - 1)] \
                    += 1
            last_seen[b] = idx
            acc.count += 1
            idx += 1
            if acc.count == interval:
                rows.append(acc.vector())
                acc = _IntervalAccumulator()
                if len(rows) == num_intervals:
                    break
        if len(rows) == num_intervals:
            break
    starts = np.arange(num_intervals, dtype=np.int64) * interval
    return FeatureMatrix(workload=workload, n=n, seed=seed,
                         interval=interval, starts=starts,
                         matrix=np.asarray(rows, dtype=np.float64))
