"""Sampling plans: the persisted, checksummed clustering artifact.

A :class:`SamplingPlan` pins everything a sampled execution needs —
which intervals to simulate, with what warm-up, at what weight, and the
per-metric error bounds the estimate is declared to satisfy.  Plans are
deterministic functions of ``(workload, n, seed, interval, k,
feature-schema version)``, which is exactly the store key, so a plan
built on one machine is byte-identical to the same plan built on
another.

Storage follows the repo's store conventions (result cache, checkpoint
store, trace store): one file per key under ``benchmarks/.splans``
(``REPRO_SAMPLING_DIR`` overrides), atomic writes, and a content digest
checked on every load — a corrupt or tampered plan evicts to a miss
with a warning, never a half-read artifact.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
import warnings
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from ..obs import runlog as obs_runlog
from ..workloads import DEFAULT_SEED
from .cluster import pick_representatives
from .features import FEATURE_SCHEMA_VERSION, extract_features
from .knobs import sampling_dir

#: Declared relative error bounds per extrapolated metric, inherited by
#: every plan unless overridden.  ``validate`` asserts observed error
#: against these; ``benchmarks/bench_sampling.py`` measures the actual
#: margins.  Relative error uses per-metric floors (see
#: :data:`repro.sampling.execute.METRIC_FLOORS`) so near-zero
#: denominators don't explode the ratio.
DEFAULT_ERROR_BOUNDS: Dict[str, float] = {
    "ipc": 0.15,
    "l1d_miss_rate": 0.10,
    "l2_miss_rate": 0.25,
}

#: Default warm-up, in intervals.  Sized so the bounded warm-up crosses
#: the state-fill transient (scaled LLC fill) *and* covers at least two
#: repetitions of the longest temporal period in the workload pool
#: (gap.pr's sweep is ~16K records; one repetition trains a temporal
#: prefetcher, the second confirms it).  Measured in
#: ``benchmarks/bench_sampling.py``: one period is not enough (windows
#: whose warm-up covers exactly ~1 sweep leave streamline untrained and
#: triple the interval's L2 miss rate).
WARMUP_INTERVALS = 8

#: Fraction of the trace treated as warm-up by full runs (the
#: ``SystemConfig.warmup_fraction`` default); plans cluster only
#: intervals that start inside the corresponding measured region.
FULL_WARMUP_FRACTION = 0.2


def default_interval(n: int) -> int:
    """Interval length in records: fixed-size (SimPoint-style) at scale,
    shrunk for short traces so there are enough intervals to cluster."""
    return max(512, min(4096, n // 12))


def default_k(num_candidates: int) -> int:
    """Representatives to pick from ``num_candidates`` intervals."""
    return min(8, max(2, (2 * num_candidates + 2) // 3))


@dataclass(frozen=True)
class Representative:
    """One weighted representative interval."""

    start: int      # absolute record index of the interval start
    weight: float   # cluster population / clustered intervals
    size: int       # cluster population


@dataclass
class SamplingPlan:
    """Everything a sampled execution needs, persisted and checksummed."""

    workload: str
    n: int
    seed: int
    interval: int
    #: Bounded warm-up records simulated immediately before each
    #: representative interval (clamped at the trace start).
    warmup: int
    #: Requested cluster count (the picks may be fewer if clusters
    #: collapse).
    k: int
    #: Intervals eligible for clustering (start >= measured_from).
    num_candidates: int
    #: First record of the full run's measured region.
    measured_from: int
    representatives: List[Representative] = field(default_factory=list)
    error_bounds: Dict[str, float] = field(default_factory=dict)
    feature_schema: int = FEATURE_SCHEMA_VERSION

    @property
    def key(self) -> str:
        return plan_key(self.workload, self.n, self.seed, self.interval,
                        self.k, self.feature_schema)

    def simulated_accesses(self) -> int:
        """Records a sampled execution simulates (warm-up + interval per
        representative) — the numerator of the speedup claim."""
        total = 0
        for rep in self.representatives:
            start = max(0, rep.start - self.warmup)
            total += (rep.start + self.interval) - start
        return total

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SamplingPlan":
        reps = [Representative(**r) for r in payload["representatives"]]
        return cls(**{**payload, "representatives": reps})

    def digest(self) -> str:
        blob = json.dumps(self.to_dict(), sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()


def plan_key(workload: str, n: int, seed: int, interval: int, k: int,
             feature_schema: int = FEATURE_SCHEMA_VERSION) -> str:
    return (f"{workload}-n{n}-s{seed}-i{interval}-k{k}"
            f"-f{feature_schema}")


class PlanStore:
    """Key-addressed directory of checksummed plan artifacts."""

    def __init__(self, directory: Optional[pathlib.Path] = None):
        self.directory = pathlib.Path(directory) if directory \
            else sampling_dir()

    def path(self, key: str) -> pathlib.Path:
        return self.directory / f"{key}.json"

    def has(self, key: str) -> bool:
        return self.path(key).is_file()

    def put(self, plan: SamplingPlan) -> pathlib.Path:
        path = self.path(plan.key)
        path.parent.mkdir(parents=True, exist_ok=True)
        record = {"digest": plan.digest(), "payload": plan.to_dict()}
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(record, fh, indent=2, sort_keys=True)
                fh.write("\n")
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def get(self, key: str) -> Optional[SamplingPlan]:
        """The stored plan, or None on miss *or* corruption (corrupt
        files are evicted with a warning, like every other store)."""
        path = self.path(key)
        if not path.is_file():
            return None
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
            plan = SamplingPlan.from_dict(record["payload"])
            if plan.digest() != record.get("digest"):
                raise ValueError("content digest mismatch")
            if plan.key != key:
                raise ValueError(f"stored plan keys itself {plan.key!r}")
        except (OSError, ValueError, KeyError, TypeError) as exc:
            warnings.warn(f"discarding corrupt sampling plan {path}: "
                          f"{exc}", stacklevel=2)
            try:
                path.unlink()
            except OSError:
                pass
            return None
        return plan

    def entries(self) -> List[str]:
        if not self.directory.is_dir():
            return []
        return sorted(p.stem for p in self.directory.glob("*.json"))


def build_plan(workload: str, n: int, seed: int = DEFAULT_SEED,
               interval: Optional[int] = None, k: Optional[int] = None,
               warmup: Optional[int] = None,
               error_bounds: Optional[Dict[str, float]] = None
               ) -> SamplingPlan:
    """Feature pass + clustering for one trace (no simulation).

    Only intervals starting inside the full run's measured region are
    clustered, so the weighted estimate targets the same steady-state
    region a full run reports.
    """
    interval = interval or default_interval(n)
    warmup = WARMUP_INTERVALS * interval if warmup is None else warmup
    feats = extract_features(workload, n, interval, seed=seed)
    measured_from = int(n * FULL_WARMUP_FRACTION)
    eligible = feats.starts >= measured_from
    starts = feats.starts[eligible]
    matrix = feats.matrix[eligible]
    if not len(starts):
        raise ValueError(
            f"no intervals of {interval} records fit the measured "
            f"region of a {n}-record trace")
    k = k or default_k(len(starts))
    picks = pick_representatives(matrix, starts, k, seed)
    reps = [Representative(start=p.start, weight=p.weight, size=p.size)
            for p in picks]
    return SamplingPlan(
        workload=workload, n=n, seed=seed, interval=interval,
        warmup=warmup, k=k, num_candidates=int(len(starts)),
        measured_from=measured_from, representatives=reps,
        error_bounds=dict(error_bounds if error_bounds is not None
                          else DEFAULT_ERROR_BOUNDS))


def get_plan(workload: str, n: int, seed: int = DEFAULT_SEED,
             interval: Optional[int] = None, k: Optional[int] = None,
             warmup: Optional[int] = None,
             store: Optional[PlanStore] = None) -> SamplingPlan:
    """Restore the plan from the store, or build and persist it.

    Emits a ``sampling_plan`` run-log record when an observability
    writer is installed (see :mod:`repro.obs.runlog`).
    """
    store = store if store is not None else PlanStore()
    interval = interval or default_interval(n)
    key_k = k
    if key_k is None:
        # The key needs the effective k, which depends on the interval
        # grid, not the features — cheap to derive without a feature pass.
        measured_from = int(n * FULL_WARMUP_FRACTION)
        candidates = sum(1 for s in range(0, (n // interval) * interval,
                                          interval) if s >= measured_from)
        if candidates <= 0:
            raise ValueError(
                f"no intervals of {interval} records fit the measured "
                f"region of a {n}-record trace")
        key_k = default_k(candidates)
    key = plan_key(workload, n, seed, interval, key_k)
    plan = store.get(key)
    source = "store"
    if plan is None:
        plan = build_plan(workload, n, seed=seed, interval=interval,
                          k=key_k, warmup=warmup)
        store.put(plan)
        source = "built"
    log = obs_runlog.current()
    if log is not None:
        log.emit("sampling_plan", workload=workload, n=n, seed=seed,
                 interval=plan.interval, k=plan.k,
                 representatives=len(plan.representatives),
                 source=source, digest=plan.digest())
    return plan
