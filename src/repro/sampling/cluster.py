"""Seeded, dependency-free k-means over interval feature vectors.

numpy-only (no sklearn/scipy — the container bakes in the scientific
stack this repo already uses and nothing more) and fully deterministic:
the same ``(matrix, k, seed)`` always yields the same clustering, which
is what lets :class:`~repro.sampling.plan.SamplingPlan` artifacts be
checksummed and shared.  Determinism specifics:

* initialization is k-means++ driven by ``np.random.default_rng(seed)``;
* Lloyd iterations break assignment ties by lowest cluster index
  (``argmin`` semantics) and stop on convergence or ``max_iters``;
* an emptied cluster is re-seeded with the point currently farthest
  from its assigned centroid (deterministic: first such point).

Features are z-scored per column before clustering so a large-magnitude
column (``gap_mean``) cannot drown the fractional ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np


def zscore(matrix: np.ndarray) -> np.ndarray:
    """Per-column standardization; constant columns pass through as 0."""
    m = np.asarray(matrix, dtype=np.float64)
    mu = m.mean(axis=0)
    sd = m.std(axis=0)
    sd = np.where(sd == 0.0, 1.0, sd)
    return (m - mu) / sd


def _sq_dists(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """``(n, k)`` squared euclidean distances."""
    diff = points[:, None, :] - centroids[None, :, :]
    return np.einsum("nkf,nkf->nk", diff, diff)


def kmeans(points: np.ndarray, k: int, seed: int,
           max_iters: int = 64) -> Tuple[np.ndarray, np.ndarray]:
    """Cluster ``points`` into ``k`` groups; returns (labels, centroids).

    ``k`` is clamped to the number of points.  Deterministic given
    ``(points, k, seed)``.
    """
    points = np.asarray(points, dtype=np.float64)
    n = len(points)
    if n == 0:
        raise ValueError("cannot cluster zero points")
    k = max(1, min(k, n))
    rng = np.random.default_rng(seed)
    # k-means++: spread the initial centroids proportionally to squared
    # distance from the ones already chosen.
    chosen = [int(rng.integers(n))]
    for _ in range(1, k):
        d2 = _sq_dists(points, points[chosen]).min(axis=1)
        total = float(d2.sum())
        if total <= 0.0:
            # Remaining points coincide with a centroid; any pick works
            # and must still be deterministic.
            chosen.append(int(rng.integers(n)))
            continue
        chosen.append(int(rng.choice(n, p=d2 / total)))
    centroids = points[chosen].copy()
    labels = np.zeros(n, dtype=np.int64)
    for _ in range(max_iters):
        d2 = _sq_dists(points, centroids)
        labels = d2.argmin(axis=1)
        moved = False
        for j in range(k):
            members = points[labels == j]
            if len(members):
                target = members.mean(axis=0)
            else:
                # Re-seed an emptied cluster with the worst-fitted point.
                target = points[int(d2.min(axis=1).argmax())]
            if not np.array_equal(target, centroids[j]):
                centroids[j] = target
                moved = True
        if not moved:
            break
    labels = _sq_dists(points, centroids).argmin(axis=1)
    return labels, centroids


@dataclass(frozen=True)
class ClusterPick:
    """One representative interval chosen from a cluster."""

    start: int        # absolute record index of the interval start
    weight: float     # cluster population / total intervals
    cluster: int
    size: int


def _allocate(sizes: List[int], k: int) -> List[int]:
    """Largest-remainder apportionment of ``k`` picks across clusters
    (each non-empty cluster gets at least one, capped by its size)."""
    total = sum(sizes)
    k = min(k, total)
    slots = [min(s, max(1, int(k * s / total))) for s in sizes]
    # Trim overshoot from the smallest quotas, grow undershoot into the
    # largest remaining headroom — both in deterministic index order.
    order = sorted(range(len(sizes)), key=lambda j: (sizes[j], j))
    while sum(slots) > k:
        trimmed = False
        for j in order:
            if slots[j] > 1 and sum(slots) > k:
                slots[j] -= 1
                trimmed = True
        if not trimmed:
            break
    while sum(slots) < k:
        grown = False
        for j in reversed(order):
            if slots[j] < sizes[j] and sum(slots) < k:
                slots[j] += 1
                grown = True
        if not grown:
            break
    return slots


def pick_representatives(matrix: np.ndarray, starts: np.ndarray,
                         k: int, seed: int) -> List[ClusterPick]:
    """Cluster the (z-scored) feature matrix and pick ``k`` weighted
    representative intervals.

    Picks are apportioned to clusters by population (each non-empty
    cluster gets at least one) and, within a cluster, *stratified over
    time*: members are sorted by interval start and sampled at evenly
    spaced ranks, splitting the cluster's weight equally.  Feature
    vectors cannot see simulation-state drift (queue backlog, slow
    cache churn) — a phase-uniform trace can still drift in time, and
    spreading a cluster's picks across the trace averages that drift
    instead of betting the whole weight on one instant.  Returned
    sorted by interval start."""
    z = zscore(matrix)
    labels, centroids = kmeans(z, k, seed)
    total = len(labels)
    clusters = sorted(set(labels.tolist()))
    member_sets = [np.flatnonzero(labels == j) for j in clusters]
    slots = _allocate([len(m) for m in member_sets], k)
    picks: List[ClusterPick] = []
    for j, members, quota in zip(clusters, member_sets, slots):
        by_start = members[np.argsort(starts[members], kind="stable")]
        ranks = [int((i + 0.5) * len(by_start) / quota)
                 for i in range(quota)]
        weight = len(members) / total / quota
        for rank in ranks:
            rep = int(by_start[min(rank, len(by_start) - 1)])
            picks.append(ClusterPick(start=int(starts[rep]),
                                     weight=weight, cluster=int(j),
                                     size=int(len(members))))
    picks.sort(key=lambda p: p.start)
    return picks
