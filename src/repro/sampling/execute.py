"""Sampled execution and error-bounded extrapolation.

A plan's representatives become ordinary windowed
:class:`~repro.runner.SimJob` batches: each simulates ``[start-warmup,
start+interval)`` of the trace with the warm-up boundary at ``start``,
so the engine's measured region is exactly the representative interval.
Windowed jobs are exact, deterministic computations keyed by their own
fingerprints — they flow through the same runner, result cache,
process pool, and checkpoint store as every full run (``resume=True``
lets the arms of a ``measure_overrides`` sweep restore one shared
warm-up snapshot per representative instead of re-simulating it).

Extrapolation combines per-representative steady-state stats into
whole-trace estimates:

* ``ipc`` — ratio of weighted means: ``sum(w * instrs/accesses) /
  sum(w * cycles/accesses)`` (interval access counts are equal, so
  this is the IPC of the weighted concatenation, not a mean of
  ratios);
* miss rates — weighted means (per-access ratios);
* each estimate carries a 95% confidence interval from the weighted
  between-representative variance, plus the plan's *declared* relative
  error bound, which ``validate`` checks against an actual full run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..obs import runlog as obs_runlog
from ..runner import JobResult, SimJob, get_runner
from ..sim.config import SystemConfig
from ..sim.stats import SimResult
from .knobs import sampling_k
from .plan import PlanStore, SamplingPlan, get_plan

#: Metrics the extrapolator estimates, in report order.
METRICS: Tuple[str, ...] = ("ipc", "l1d_miss_rate", "l2_miss_rate")

#: Relative-error floors: ``err = |est - full| / max(|full|, floor)``.
#: A miss rate of 0.001 vs 0.002 is "both tiny", not "100% off".
METRIC_FLOORS: Dict[str, float] = {
    "ipc": 1e-3,
    "l1d_miss_rate": 0.02,
    "l2_miss_rate": 0.05,
}


def _metric(result: SimResult, name: str) -> float:
    if name == "ipc":
        return result.ipc
    return float(getattr(result, name))


@dataclass
class MetricEstimate:
    """One extrapolated metric with its uncertainty."""

    estimate: float
    ci95: float                      # +/- around the estimate
    bound: Optional[float]           # declared relative error bound
    per_representative: List[float] = field(default_factory=list)


@dataclass
class SampledEstimate:
    """Whole-trace estimates extrapolated from one sampled execution."""

    workload: str
    n: int
    metrics: Dict[str, MetricEstimate]
    simulated_accesses: int
    #: Accesses a full run simulates (warm-up included) — denominator
    #: ``n`` keeps the speedup claim honest about total simulated work.
    full_accesses: int
    representatives: int

    @property
    def access_reduction(self) -> float:
        """How many times fewer accesses than the full run simulates."""
        if not self.simulated_accesses:
            return float("inf")
        return self.full_accesses / self.simulated_accesses


def sampled_jobs(plan: SamplingPlan, config: SystemConfig,
                 l1=None, l2: Sequence = (),
                 probes: Sequence[str] = ("sampling",),
                 measure_overrides: Sequence[Tuple[str, Any]] = (),
                 resume: bool = True) -> List[SimJob]:
    """The windowed job batch realizing one arm of a sampled run."""
    jobs = []
    for rep in plan.representatives:
        start = max(0, rep.start - plan.warmup)
        jobs.append(SimJob.single(
            plan.workload, plan.n, config, l1=l1, l2=l2, seed=plan.seed,
            probes=probes, measure_overrides=measure_overrides,
            resume=resume,
            window=(start, rep.start, rep.start + plan.interval)))
    return jobs


def combine(plan: SamplingPlan,
            results: Sequence[JobResult]) -> SampledEstimate:
    """Extrapolate whole-trace estimates from per-representative results.

    ``results`` must be in ``plan.representatives`` order (what
    :func:`sampled_jobs` submits).
    """
    if len(results) != len(plan.representatives):
        raise ValueError(
            f"plan has {len(plan.representatives)} representatives but "
            f"{len(results)} results were supplied")
    reps = plan.representatives
    weights = [r.weight for r in reps]
    wsum = sum(weights)
    if wsum <= 0:
        raise ValueError("plan weights sum to zero")
    weights = [w / wsum for w in weights]
    singles = [res.single for res in results]
    # Effective sample count of the weighted design (== k for equal
    # weights); the CI shrinks with it.
    k_eff = 1.0 / sum(w * w for w in weights)
    metrics: Dict[str, MetricEstimate] = {}
    for name in METRICS:
        per_rep = [_metric(s, name) for s in singles]
        if name == "ipc":
            ipa = sum(w * s.instructions / s.accesses
                      for w, s in zip(weights, singles))
            cpa = sum(w * s.cycles / s.accesses
                      for w, s in zip(weights, singles))
            est = ipa / cpa if cpa else 0.0
        else:
            est = sum(w * x for w, x in zip(weights, per_rep))
        var = sum(w * (x - est) ** 2 for w, x in zip(weights, per_rep))
        ci95 = 1.96 * math.sqrt(var / k_eff) if k_eff else 0.0
        metrics[name] = MetricEstimate(
            estimate=est, ci95=ci95,
            bound=plan.error_bounds.get(name),
            per_representative=per_rep)
    return SampledEstimate(
        workload=plan.workload, n=plan.n, metrics=metrics,
        simulated_accesses=plan.simulated_accesses(),
        full_accesses=plan.n,
        representatives=len(reps))


def run_sampled(workload: str, n: int, config: SystemConfig,
                l1=None, l2: Sequence = (),
                seed: Optional[int] = None,
                interval: Optional[int] = None,
                k: Optional[int] = None,
                warmup: Optional[int] = None,
                store: Optional[PlanStore] = None,
                runner=None) -> SampledEstimate:
    """Plan (or restore the plan), simulate the representatives, and
    extrapolate — the one-call form of sampled execution."""
    from ..workloads import DEFAULT_SEED
    seed = DEFAULT_SEED if seed is None else seed
    plan = get_plan(workload, n, seed=seed, interval=interval,
                    k=sampling_k(k), warmup=warmup, store=store)
    runner = runner or get_runner()
    results = runner.run(sampled_jobs(plan, config, l1=l1, l2=l2))
    estimate = combine(plan, results)
    log = obs_runlog.current()
    if log is not None:
        log.emit("sampling_run", workload=workload, n=n,
                 representatives=estimate.representatives,
                 simulated_accesses=estimate.simulated_accesses,
                 access_reduction=round(estimate.access_reduction, 3),
                 estimates={m: round(e.estimate, 6)
                            for m, e in estimate.metrics.items()})
    return estimate


@dataclass
class ValidationRow:
    """Sampled-vs-full comparison for one (workload, arm, metric)."""

    workload: str
    arm: str
    metric: str
    full: float
    estimate: float
    ci95: float
    rel_error: float
    bound: float

    @property
    def ok(self) -> bool:
        return self.rel_error <= self.bound


def relative_error(estimate: float, full: float, metric: str) -> float:
    floor = METRIC_FLOORS.get(metric, 1e-9)
    return abs(estimate - full) / max(abs(full), floor)


def validate_sampling(workloads: Sequence[str], n: int,
                      config: SystemConfig,
                      arms: Dict[str, Sequence], l1=None,
                      seed: Optional[int] = None,
                      interval: Optional[int] = None,
                      k: Optional[int] = None,
                      store: Optional[PlanStore] = None,
                      runner=None) -> List[ValidationRow]:
    """Run sampled and full for every (workload, arm) and compare.

    ``arms`` maps display name -> l2 prefetcher spec tuple (empty tuple
    = baseline).  Returns one row per metric; callers assert
    ``all(row.ok)``.  Full and sampled runs share the runner, so full
    results other experiments already computed come from the cache.
    """
    from ..workloads import DEFAULT_SEED
    seed = DEFAULT_SEED if seed is None else seed
    runner = runner or get_runner()
    # One batch for all the full runs, so they fan out in parallel.
    full_jobs = [SimJob.single(wl, n, config, l1=l1, l2=tuple(l2),
                               seed=seed)
                 for wl in workloads for l2 in arms.values()]
    full_results = iter(runner.run(full_jobs))
    rows: List[ValidationRow] = []
    for wl in workloads:
        for arm_name, l2 in arms.items():
            full = next(full_results).single
            est = run_sampled(wl, n, config, l1=l1, l2=tuple(l2),
                              seed=seed, interval=interval, k=k,
                              store=store, runner=runner)
            for metric, me in est.metrics.items():
                full_value = _metric(full, metric)
                rows.append(ValidationRow(
                    workload=wl, arm=arm_name, metric=metric,
                    full=full_value, estimate=me.estimate,
                    ci95=me.ci95,
                    rel_error=relative_error(me.estimate, full_value,
                                             metric),
                    bound=me.bound if me.bound is not None else
                    float("inf")))
    return rows
