"""Figure 11: interaction with aggressive regular prefetchers.

* 11a - single-core with Berti in the L1D: Streamline still beats both
  Triangel and Berti-alone (paper: 22% vs 20.1% vs 19.1%).
* 11b - multi-core with Berti: Triangel's benefit evaporates while
  Streamline keeps a 3.8-4.1 pp margin.
* 11c - with L2 regular prefetchers (IPCP / Bingo / SPP-PPF) alongside
  the temporal prefetcher.
* 11d - the added prefetch coverage over each regular baseline
  (paper: Streamline adds about twice Triangel's).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..runner import PrefetcherSpec, SimJob, get_runner, spec
from ..sim.stats import geomean
from .common import (BERTI_L1, PREFETCHER_SPECS, STRIDE_L1,
                     ExperimentResult, berti_l1, env_n,
                     experiment_config, fmt, quick_mode, run_mixes,
                     workload_set)

L2_REGULARS: Dict[str, PrefetcherSpec] = {
    "ipcp": spec("ipcp"),
    "bingo": spec("bingo"),
    "spp-ppf": spec("spp-ppf"),
}


def run_fig11a(n: Optional[int] = None,
               workloads: Optional[Sequence[str]] = None
               ) -> ExperimentResult:
    """Single-core, Berti L1D baseline."""
    n = n or env_n()
    workloads = list(workloads or workload_set("full"))
    config = experiment_config()
    runner = get_runner()
    # Batch 1: stride baselines (the memory-intensity filter).
    stride_runs = runner.run([SimJob.single(wl, n, config, l1=STRIDE_L1)
                              for wl in workloads])
    intensive = [(wl, r.single) for wl, r in zip(workloads, stride_runs)
                 if r.single.llc_mpki > 1.0]
    # Batch 2: Berti alone + Berti+temporal for the survivors.
    jobs = []
    for wl, _ in intensive:
        jobs.append(SimJob.single(wl, n, config, l1=BERTI_L1))
        for s in PREFETCHER_SPECS.values():
            jobs.append(SimJob.single(wl, n, config, l1=BERTI_L1,
                                      l2=(s,)))
    results = iter(runner.run(jobs))
    rows = []
    speedups = {"berti": [], "triangel": [], "streamline": []}
    for wl, stride_base in intensive:
        berti_only = next(results).single
        row = [wl, fmt(berti_only.ipc / stride_base.ipc)]
        speedups["berti"].append(berti_only.ipc / stride_base.ipc)
        for name in PREFETCHER_SPECS:
            res = next(results).single
            row.append(fmt(res.ipc / stride_base.ipc))
            speedups[name].append(res.ipc / stride_base.ipc)
        rows.append(row)
    rows.append(["GEOMEAN", *(fmt(geomean(speedups[k]))
                              for k in ("berti", "triangel",
                                        "streamline"))])
    notes = ("paper: streamline 1.22 > triangel 1.201 > berti 1.191 "
             "(all over the stride baseline)")
    return ExperimentResult("fig11a", ["workload", "berti",
                                       "berti+triangel",
                                       "berti+streamline"], rows, notes)


def run_fig11b(n_per_core: Optional[int] = None,
               mix_count: Optional[int] = None,
               core_counts: Sequence[int] = (2, 4)) -> ExperimentResult:
    """Multi-core with Berti in the L1D."""
    n = n_per_core or env_n(50_000)
    mixes = mix_count or (2 if quick_mode() else 3)
    rows = []
    for cores in core_counts:
        per_mix = run_mixes(cores, mixes, n, PREFETCHER_SPECS,
                            l1_factory=berti_l1)
        tri = geomean(per_mix["triangel"])
        sl = geomean(per_mix["streamline"])
        rows.append([cores, fmt(tri), fmt(sl), fmt(sl - tri)])
    notes = ("paper: with Berti, Triangel adds ~nothing multi-core while "
             "Streamline keeps +3.8-4.1 pp")
    return ExperimentResult("fig11b", ["cores", "triangel", "streamline",
                                       "delta"], rows, notes)


def run_fig11cd(n: Optional[int] = None,
                workloads: Optional[Sequence[str]] = None
                ) -> ExperimentResult:
    """L2 regular prefetchers with and without a temporal prefetcher."""
    n = n or env_n(40_000)
    workloads = list(workloads or workload_set("quick"))
    config = experiment_config()
    runner = get_runner()
    jobs = []
    for reg in L2_REGULARS.values():
        for wl in workloads:
            jobs.append(SimJob.single(wl, n, config, l1=STRIDE_L1))
            jobs.append(SimJob.single(wl, n, config, l1=STRIDE_L1,
                                      l2=(reg,)))
            for s in PREFETCHER_SPECS.values():
                jobs.append(SimJob.single(wl, n, config, l1=STRIDE_L1,
                                          l2=(reg, s)))
    results = iter(runner.run(jobs))
    rows = []
    for reg_name in L2_REGULARS:
        speedups = {"alone": [], "triangel": [], "streamline": []}
        coverages = {"triangel": [], "streamline": []}
        for _ in workloads:
            base = next(results).single
            alone = next(results).single
            speedups["alone"].append(alone.ipc / base.ipc)
            for name in PREFETCHER_SPECS:
                res = next(results).single
                speedups[name].append(res.ipc / base.ipc)
                tp = res.temporal
                coverages[name].append(tp.coverage if tp else 0.0)
        rows.append([reg_name, fmt(geomean(speedups["alone"])),
                     fmt(geomean(speedups["triangel"])),
                     fmt(geomean(speedups["streamline"])),
                     fmt(sum(coverages["triangel"])
                         / len(coverages["triangel"])),
                     fmt(sum(coverages["streamline"])
                         / len(coverages["streamline"]))])
    notes = ("paper: streamline beats triangel by 1.1/2.4/1.0 pp over "
             "IPCP/Bingo/SPP-PPF and adds ~2x the coverage (fig 11d)")
    return ExperimentResult(
        "fig11cd", ["l2_prefetcher", "alone", "+triangel", "+streamline",
                    "tri_added_cov", "sl_added_cov"], rows, notes)


def main() -> None:
    for fn in (run_fig11a, run_fig11b, run_fig11cd):
        print(fn().table())
        print()


if __name__ == "__main__":
    main()
