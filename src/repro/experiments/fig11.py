"""Figure 11: interaction with aggressive regular prefetchers.

* 11a - single-core with Berti in the L1D: Streamline still beats both
  Triangel and Berti-alone (paper: 22% vs 20.1% vs 19.1%).
* 11b - multi-core with Berti: Triangel's benefit evaporates while
  Streamline keeps a 3.8-4.1 pp margin.
* 11c - with L2 regular prefetchers (IPCP / Bingo / SPP-PPF) alongside
  the temporal prefetcher.
* 11d - the added prefetch coverage over each regular baseline
  (paper: Streamline adds about twice Triangel's).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

from ..prefetchers.bingo import BingoPrefetcher
from ..prefetchers.ipcp import IPCPPrefetcher
from ..prefetchers.spp import SPPPrefetcher
from ..sim.engine import run_single
from ..sim.stats import geomean
from ..workloads import make
from .common import (PREFETCHER_FACTORIES, ExperimentResult, berti_l1,
                     env_n, experiment_config, fmt, quick_mode,
                     run_matrix, run_mixes, stride_l1, workload_set)

L2_REGULARS: Dict[str, Callable] = {
    "ipcp": IPCPPrefetcher,
    "bingo": BingoPrefetcher,
    "spp-ppf": SPPPrefetcher,
}


def run_fig11a(n: Optional[int] = None,
               workloads: Optional[Sequence[str]] = None
               ) -> ExperimentResult:
    """Single-core, Berti L1D baseline."""
    n = n or env_n()
    workloads = list(workloads or workload_set("full"))
    config = experiment_config()
    rows = []
    speedups = {"berti": [], "triangel": [], "streamline": []}
    for wl in workloads:
        trace = make(wl, n)
        stride_base = run_single(trace, config, l1_prefetcher=stride_l1)
        if stride_base.llc_mpki <= 1.0:
            continue
        berti_only = run_single(trace, config, l1_prefetcher=berti_l1)
        row = [wl, fmt(berti_only.ipc / stride_base.ipc)]
        speedups["berti"].append(berti_only.ipc / stride_base.ipc)
        for name, factory in PREFETCHER_FACTORIES.items():
            res = run_single(trace, config, l1_prefetcher=berti_l1,
                             l2_prefetchers=[factory])
            row.append(fmt(res.ipc / stride_base.ipc))
            speedups[name].append(res.ipc / stride_base.ipc)
        rows.append(row)
    rows.append(["GEOMEAN", *(fmt(geomean(speedups[k]))
                              for k in ("berti", "triangel",
                                        "streamline"))])
    notes = ("paper: streamline 1.22 > triangel 1.201 > berti 1.191 "
             "(all over the stride baseline)")
    return ExperimentResult("fig11a", ["workload", "berti",
                                       "berti+triangel",
                                       "berti+streamline"], rows, notes)


def run_fig11b(n_per_core: Optional[int] = None,
               mix_count: Optional[int] = None,
               core_counts: Sequence[int] = (2, 4)) -> ExperimentResult:
    """Multi-core with Berti in the L1D."""
    n = n_per_core or env_n(50_000)
    mixes = mix_count or (2 if quick_mode() else 3)
    rows = []
    for cores in core_counts:
        per_mix = run_mixes(cores, mixes, n, PREFETCHER_FACTORIES,
                            l1_factory=berti_l1)
        tri = geomean(per_mix["triangel"])
        sl = geomean(per_mix["streamline"])
        rows.append([cores, fmt(tri), fmt(sl), fmt(sl - tri)])
    notes = ("paper: with Berti, Triangel adds ~nothing multi-core while "
             "Streamline keeps +3.8-4.1 pp")
    return ExperimentResult("fig11b", ["cores", "triangel", "streamline",
                                       "delta"], rows, notes)


def run_fig11cd(n: Optional[int] = None,
                workloads: Optional[Sequence[str]] = None
                ) -> ExperimentResult:
    """L2 regular prefetchers with and without a temporal prefetcher."""
    n = n or env_n(40_000)
    workloads = list(workloads or workload_set("quick"))
    config = experiment_config()
    rows = []
    for reg_name, reg_factory in L2_REGULARS.items():
        speedups = {"alone": [], "triangel": [], "streamline": []}
        coverages = {"triangel": [], "streamline": []}
        for wl in workloads:
            trace = make(wl, n)
            base = run_single(trace, config, l1_prefetcher=stride_l1)
            alone = run_single(trace, config, l1_prefetcher=stride_l1,
                               l2_prefetchers=[reg_factory])
            speedups["alone"].append(alone.ipc / base.ipc)
            for name, factory in PREFETCHER_FACTORIES.items():
                res = run_single(
                    trace, config, l1_prefetcher=stride_l1,
                    l2_prefetchers=[reg_factory, factory])
                speedups[name].append(res.ipc / base.ipc)
                tp = res.temporal
                coverages[name].append(tp.coverage if tp else 0.0)
        rows.append([reg_name, fmt(geomean(speedups["alone"])),
                     fmt(geomean(speedups["triangel"])),
                     fmt(geomean(speedups["streamline"])),
                     fmt(sum(coverages["triangel"])
                         / len(coverages["triangel"])),
                     fmt(sum(coverages["streamline"])
                         / len(coverages["streamline"]))])
    notes = ("paper: streamline beats triangel by 1.1/2.4/1.0 pp over "
             "IPCP/Bingo/SPP-PPF and adds ~2x the coverage (fig 11d)")
    return ExperimentResult(
        "fig11cd", ["l2_prefetcher", "alone", "+triangel", "+streamline",
                    "tri_added_cov", "sl_added_cov"], rows, notes)


def main() -> None:
    for fn in (run_fig11a, run_fig11b, run_fig11cd):
        print(fn().table())
        print()


if __name__ == "__main__":
    main()
