"""Figure 15: mitigating filtering's coverage loss at small partitions.

At a quarter-size partition (where filtered indexing drops 3/4 of
triggers) the paper compares: unfiltered (rearranged-indexing) as the
ceiling, plain filtering as the floor, realignment (recovers 72-79% of
the loss), skewed indexing (recovers ~all), and hybrid set+way
partitioning (beats even the unfiltered cache by relieving pressure).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..runner import PrefetcherSpec, spec
from ..sim.stats import geomean
from .common import (ExperimentResult, env_n, experiment_config, fmt,
                     run_matrix, workload_set)


def _variants(every_nth: int) -> Dict[str, PrefetcherSpec]:
    common = dict(dynamic=False, initial_every_nth=every_nth)
    return {
        "unfiltered (RTS)": spec("streamline", indexing="rearranged",
                                 realignment=False, **common),
        "filtered, no realign": spec("streamline", realignment=False,
                                     **common),
        "filtered + realign": spec("streamline", **common),
        "filtered + skewed": spec("streamline", skewed=True, **common),
        "hybrid (sets/2, ways/2)": spec(
            "streamline", dynamic=False,
            initial_every_nth=max(1, every_nth // 2), meta_ways=4),
    }


def run(n: Optional[int] = None, every_nth: int = 4,
        workloads: Optional[Sequence[str]] = None) -> ExperimentResult:
    n = n or env_n(40_000)
    workloads = list(workloads or workload_set("component"))
    config = experiment_config()
    variants = _variants(every_nth)
    runs = run_matrix(workloads, n, variants, config=config)
    rows = []
    results: Dict[str, float] = {}
    for name in variants:
        speedups, coverages = [], []
        for r in runs:
            res = r.results[name]
            speedups.append(res.ipc / r.baseline.ipc)
            tp = res.temporal
            coverages.append(tp.coverage if tp else 0.0)
        g = geomean(speedups)
        results[name] = g
        rows.append([name, fmt(sum(coverages) / len(coverages)), fmt(g)])
    ceiling = results["unfiltered (RTS)"]
    floor = results["filtered, no realign"]
    realign = results["filtered + realign"]
    recovered = ((realign - floor) / (ceiling - floor)
                 if ceiling > floor else 1.0)
    notes = (f"realignment recovers {recovered:.0%} of the filtering "
             f"loss (paper: 72-79%); paper also finds hybrid can beat "
             f"unfiltered by reducing pressure")
    return ExperimentResult("fig15", ["variant", "coverage", "speedup"],
                            rows, notes)


def main() -> None:
    print(run().table())


if __name__ == "__main__":
    main()
