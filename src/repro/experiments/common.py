"""Shared experiment plumbing: configs, run helpers, workload sets.

Every figure/table module builds on these helpers so the benches stay
declarative.  Scale knobs come from the environment:

* ``REPRO_N`` - accesses per trace (default 60000; tests use less).
* ``REPRO_QUICK`` - set to 1 to shrink every experiment to a handful of
  representative workloads and fewer mixes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.streamline import StreamlinePrefetcher
from ..prefetchers.berti import BertiPrefetcher
from ..prefetchers.stride import StridePrefetcher
from ..prefetchers.triage import IdealTriage
from ..prefetchers.triangel import TriangelPrefetcher
from ..sim.config import SystemConfig
from ..sim.engine import run_single
from ..sim.multicore import run_multicore
from ..sim.stats import SimResult, format_table, geomean
from ..sim.trace import Trace
from ..workloads import generate_mixes, make, names, suite, suite_of

#: The experiments run on a 1/4-scale hierarchy (see DESIGN.md §4).
SCALE_FACTOR = 4

#: A representative subset for quick runs: two chases, one scan-mix, one
#: graph, one stream, one hash.
QUICK_SET = ["06.omnetpp", "17.xalancbmk", "06.mcf", "gap.pr", "06.lbm",
             "06.sphinx3"]

#: Short-period temporal workloads for component microbenchmarks
#: (stream-length / buffer / replacement sweeps): each repeats its
#: irregular sequence several times within ~50K accesses.
COMPONENT_SET = ["gap.pr", "gap.cc", "gap.bfs", "06.omnetpp"]


def env_n(default: int = 60_000) -> int:
    return int(os.environ.get("REPRO_N", default))


def quick_mode() -> bool:
    return os.environ.get("REPRO_QUICK", "") not in ("", "0")


def experiment_config(num_cores: int = 1, **overrides) -> SystemConfig:
    """The scaled-down Table II system."""
    cfg = SystemConfig(num_cores=num_cores).scaled_down(SCALE_FACTOR)
    return cfg.scaled(**overrides) if overrides else cfg


def workload_set(kind: str = "full") -> List[str]:
    """"full", "quick", "component", or a suite name."""
    if kind == "component":
        return list(COMPONENT_SET)
    if quick_mode() or kind == "quick":
        return list(QUICK_SET)
    if kind == "full":
        return names()
    return suite(kind)


# -- run helpers ---------------------------------------------------------------

def stride_l1() -> StridePrefetcher:
    return StridePrefetcher()


def berti_l1() -> BertiPrefetcher:
    return BertiPrefetcher()


PREFETCHER_FACTORIES: Dict[str, Callable] = {
    "triangel": TriangelPrefetcher,
    "streamline": StreamlinePrefetcher,
}


@dataclass
class SingleCoreRun:
    """Baseline + per-prefetcher results for one workload."""

    workload: str
    baseline: SimResult
    results: Dict[str, SimResult] = field(default_factory=dict)

    def speedup(self, config: str) -> float:
        return self.results[config].ipc / self.baseline.ipc


def run_matrix(workloads: Sequence[str], n: int,
               configs: Dict[str, Callable],
               config: Optional[SystemConfig] = None,
               l1_factory: Callable = stride_l1,
               seed: int = 1234) -> List[SingleCoreRun]:
    """Run baseline + each config on every workload (single core)."""
    config = config or experiment_config()
    out = []
    for wl in workloads:
        trace = make(wl, n, seed)
        run = SingleCoreRun(
            wl, run_single(trace, config, l1_prefetcher=l1_factory))
        for name, factory in configs.items():
            run.results[name] = run_single(
                trace, config, l1_prefetcher=l1_factory,
                l2_prefetchers=[factory])
        out.append(run)
    return out


def suite_geomeans(runs: Sequence[SingleCoreRun], config: str
                   ) -> Dict[str, float]:
    """Geomean speedup per suite plus "all"."""
    out: Dict[str, float] = {}
    for s in ("spec06", "spec17", "gap"):
        sub = [r for r in runs if suite_of(r.workload) == s]
        if sub:
            out[s] = geomean(r.speedup(config) for r in sub)
    out["all"] = geomean(r.speedup(config) for r in runs)
    return out


def irregular_subset(workloads: Sequence[str], n: int,
                     config: Optional[SystemConfig] = None,
                     headroom: float = 0.05, seed: int = 1234
                     ) -> List[str]:
    """The paper's irregular subset: >=5% speedup headroom under an
    idealized Triage with unlimited metadata (Section V-A3)."""
    config = config or experiment_config()
    subset = []
    for wl in workloads:
        trace = make(wl, n, seed)
        base = run_single(trace, config, l1_prefetcher=stride_l1)
        ideal = run_single(trace, config, l1_prefetcher=stride_l1,
                           l2_prefetchers=[IdealTriage])
        if ideal.ipc / base.ipc >= 1.0 + headroom:
            subset.append(wl)
    return subset


# -- multicore helpers -----------------------------------------------------------

def run_mixes(num_cores: int, mix_count: int, n_per_core: int,
              configs: Dict[str, Callable],
              pool: Optional[Sequence[str]] = None,
              l1_factory: Callable = stride_l1,
              seed: int = 7) -> Dict[str, List[float]]:
    """Weighted-speedup of each config over the stride baseline, per mix.

    Returns config name -> list of per-mix normalized weighted speedups.
    Per-core isolated baseline runs are memoized across mixes.
    """
    mixes = generate_mixes(num_cores, mix_count, pool=pool, seed=seed)
    config = experiment_config(num_cores=num_cores)
    iso_config = experiment_config(num_cores=1)
    singles: Dict[str, float] = {}

    def isolated_ipc(wl: str) -> float:
        if wl not in singles:
            trace = make(wl, n_per_core)
            singles[wl] = run_single(trace, iso_config,
                                     l1_prefetcher=l1_factory).ipc
        return singles[wl]

    out: Dict[str, List[float]] = {name: [] for name in configs}
    out["baseline"] = []
    for mix in mixes:
        traces = [make(wl, n_per_core) for wl in mix]
        isolated = [isolated_ipc(wl) for wl in mix]
        base = run_multicore(traces, config, l1_prefetcher=l1_factory)
        base_ws = sum(c.ipc / i for c, i in zip(base.cores, isolated))
        out["baseline"].append(base_ws)
        for name, factory in configs.items():
            res = run_multicore(traces, config, l1_prefetcher=l1_factory,
                                l2_prefetchers=[factory])
            ws = sum(c.ipc / i for c, i in zip(res.cores, isolated))
            out[name].append(ws / base_ws)
    return out


@dataclass
class ExperimentResult:
    """Uniform result bundle every experiment returns."""

    name: str
    headers: List[str]
    rows: List[List[object]]
    notes: str = ""

    def table(self) -> str:
        text = format_table(self.headers, self.rows)
        if self.notes:
            text += f"\n\n{self.notes}"
        return text

    def as_dict(self) -> Dict[str, List]:
        return {"headers": self.headers, "rows": self.rows}


def fmt(x: object, digits: int = 3) -> object:
    if isinstance(x, float):
        return round(x, digits)
    return x
