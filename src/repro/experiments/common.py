"""Shared experiment plumbing: configs, run helpers, workload sets.

Every figure/table module builds on these helpers so the benches stay
declarative.  All simulations are expressed as :class:`repro.runner.SimJob`
batches and submitted through the shared :class:`repro.runner.SimRunner`,
which dedups them against a two-level result cache and fans cold work
out over a process pool.  Scale knobs come from the environment:

* ``REPRO_N`` - accesses per trace (default 60000; tests use less).
* ``REPRO_QUICK`` - set to 1 to shrink every experiment to a handful of
  representative workloads and fewer mixes.
* ``REPRO_JOBS`` - simulation worker processes (1 = in-process serial).
* ``REPRO_CACHE=0`` - disable the on-disk result cache.
* ``REPRO_TELEMETRY=1`` - enable telemetry in supporting experiments
  (fig9 gains timeliness columns); ``REPRO_TELEMETRY_INTERVAL`` tunes
  the sampling period.  Off by default so goldens stay bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Protocol, \
    Sequence, Tuple

from ..envknobs import env_flag, env_int
from ..runner import JobResult, PrefetcherSpec, SimJob, SimRunner, \
    as_spec, get_runner, spec
from ..sim.config import SystemConfig
from ..sim.stats import SimResult, format_table, geomean
from ..telemetry import TelemetryConfig
from ..workloads import generate_mixes

#: The experiments run on a 1/4-scale hierarchy (see DESIGN.md §4).
SCALE_FACTOR = 4


class JobRunner(Protocol):
    """Anything that executes job batches in input order — the local
    :class:`SimRunner` or the HTTP-backed :class:`repro.serve.ServeRunner`."""

    def run(self, jobs: Sequence[SimJob]) -> List[JobResult]: ...

#: A representative subset for quick runs: two chases, one scan-mix, one
#: graph, one stream, one hash.
QUICK_SET = ["06.omnetpp", "17.xalancbmk", "06.mcf", "gap.pr", "06.lbm",
             "06.sphinx3"]

#: Short-period temporal workloads for component microbenchmarks
#: (stream-length / buffer / replacement sweeps): each repeats its
#: irregular sequence several times within ~50K accesses.
COMPONENT_SET = ["gap.pr", "gap.cc", "gap.bfs", "06.omnetpp"]


def env_n(default: int = 60_000) -> int:
    """Accesses per trace from ``REPRO_N``.

    Validated like every other knob: a malformed or non-positive value
    raises immediately with the variable named, instead of surfacing as
    a bare ``int()`` traceback (or a nonsensical zero-length trace)
    somewhere inside a sweep.
    """
    return env_int("REPRO_N", default)


def quick_mode() -> bool:
    """The ``REPRO_QUICK`` opt-in (strict: junk values raise, they do
    not silently mean "on")."""
    return env_flag("REPRO_QUICK", False)


def telemetry_config() -> Optional[TelemetryConfig]:
    """The env-driven telemetry opt-in (None unless ``REPRO_TELEMETRY=1``)."""
    return TelemetryConfig.from_env()


def serve_runner():
    """A :class:`repro.serve.ServeRunner` when ``REPRO_SERVE_URL``
    names a job server, else None (meaning: use the in-process default
    runner, exactly as before the serve subsystem existed).

    Routing through the server is a pure execution strategy — the URL
    never enters job fingerprints, and served results are byte-identical
    to direct runs — so experiments that accept a ``runner=`` argument
    become thin clients with no change to what they compute.
    """
    from ..serve.client import ServeRunner
    return ServeRunner.from_env()


def experiment_config(num_cores: int = 1, **overrides) -> SystemConfig:
    """The scaled-down Table II system."""
    cfg = SystemConfig(num_cores=num_cores).scaled_down(SCALE_FACTOR)
    return cfg.scaled(**overrides) if overrides else cfg


def workload_set(kind: str = "full") -> List[str]:
    """"full", "quick", "component", or a suite name."""
    from ..workloads import names, suite
    if kind == "component":
        return list(COMPONENT_SET)
    if quick_mode() or kind == "quick":
        return list(QUICK_SET)
    if kind == "full":
        return names()
    return suite(kind)


# -- prefetcher specs ----------------------------------------------------------

def stride_l1():
    """Legacy zero-arg factory (engine-level API; experiments use specs)."""
    from ..prefetchers.stride import StridePrefetcher
    return StridePrefetcher()


def berti_l1():
    from ..prefetchers.berti import BertiPrefetcher
    return BertiPrefetcher()


STRIDE_L1 = spec("stride")
BERTI_L1 = spec("berti")

#: The paper's two temporal prefetchers, as serializable specs.
PREFETCHER_SPECS: Dict[str, PrefetcherSpec] = {
    "triangel": spec("triangel"),
    "streamline": spec("streamline"),
}

#: Backwards-compatible alias (older callers iterated factories).
PREFETCHER_FACTORIES = PREFETCHER_SPECS


def _l1_spec(l1) -> Optional[PrefetcherSpec]:
    """Coerce the ``l1_factory`` argument (spec, name, or the legacy
    ``stride_l1`` / ``berti_l1`` helpers) to a spec."""
    if l1 is stride_l1:
        return STRIDE_L1
    if l1 is berti_l1:
        return BERTI_L1
    return as_spec(l1)


# -- run helpers ---------------------------------------------------------------

@dataclass
class SingleCoreRun:
    """Baseline + per-prefetcher results for one workload."""

    workload: str
    baseline: SimResult
    results: Dict[str, SimResult] = field(default_factory=dict)
    #: Probe payloads per config name (empty unless the matrix named
    #: probes), e.g. ``probes["streamline"]["telemetry"]``.
    probes: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def speedup(self, config: str) -> float:
        return self.results[config].ipc / self.baseline.ipc


def run_matrix(workloads: Sequence[str], n: int,
               configs: Dict[str, object],
               config: Optional[SystemConfig] = None,
               l1_factory=stride_l1,
               seed: int = 1234,
               probes: Sequence[str] = (),
               runner: Optional[JobRunner] = None) -> List[SingleCoreRun]:
    """Run baseline + each config on every workload (single core).

    ``configs`` maps display name -> prefetcher spec (or registry
    name/class).  The whole matrix is submitted as one batch, so
    distinct cells run in parallel and repeated cells (e.g. a baseline
    another figure already computed) come from the cache.
    """
    config = config or experiment_config()
    runner = runner or get_runner()
    l1 = _l1_spec(l1_factory)
    specs = {name: as_spec(c) for name, c in configs.items()}
    jobs = []
    for wl in workloads:
        jobs.append(SimJob.single(wl, n, config, l1=l1, seed=seed))
        for s in specs.values():
            jobs.append(SimJob.single(wl, n, config, l1=l1, l2=(s,),
                                      seed=seed, probes=probes))
    results = iter(runner.run(jobs))
    out = []
    for wl in workloads:
        run = SingleCoreRun(wl, next(results).single)
        for name in specs:
            res = next(results)
            run.results[name] = res.single
            if res.probes:
                run.probes[name] = res.probes
        out.append(run)
    return out


def suite_geomeans(runs: Sequence[SingleCoreRun], config: str
                   ) -> Dict[str, float]:
    """Geomean speedup per suite plus "all"."""
    from ..workloads import suite_of
    out: Dict[str, float] = {}
    for s in ("spec06", "spec17", "gap"):
        sub = [r for r in runs if suite_of(r.workload) == s]
        if sub:
            out[s] = geomean(r.speedup(config) for r in sub)
    out["all"] = geomean(r.speedup(config) for r in runs)
    return out


def irregular_subset(workloads: Sequence[str], n: int,
                     config: Optional[SystemConfig] = None,
                     headroom: float = 0.05, seed: int = 1234,
                     runner: Optional[JobRunner] = None) -> List[str]:
    """The paper's irregular subset: >=5% speedup headroom under an
    idealized Triage with unlimited metadata (Section V-A3).

    The stride baselines share fingerprints with :func:`run_matrix`, so
    a caller that already ran the matrix pays only for the ideal-Triage
    runs here.
    """
    config = config or experiment_config()
    runner = runner or get_runner()
    ideal = spec("ideal-triage")
    jobs = []
    for wl in workloads:
        jobs.append(SimJob.single(wl, n, config, l1=STRIDE_L1, seed=seed))
        jobs.append(SimJob.single(wl, n, config, l1=STRIDE_L1,
                                  l2=(ideal,), seed=seed))
    results = runner.run(jobs)
    subset = []
    for i, wl in enumerate(workloads):
        base, ideal_res = results[2 * i].single, results[2 * i + 1].single
        if ideal_res.ipc / base.ipc >= 1.0 + headroom:
            subset.append(wl)
    return subset


# -- multicore helpers -----------------------------------------------------------

def run_mixes(num_cores: int, mix_count: int, n_per_core: int,
              configs: Dict[str, object],
              pool: Optional[Sequence[str]] = None,
              l1_factory=stride_l1,
              seed: int = 7,
              config: Optional[SystemConfig] = None,
              iso_config: Optional[SystemConfig] = None,
              runner: Optional[JobRunner] = None
              ) -> Dict[str, List[float]]:
    """Weighted-speedup of each config over the stride baseline, per mix.

    Returns config name -> list of per-mix normalized weighted speedups.
    The isolated single-core runs, every mix's baseline, and every
    config run are submitted as one job batch: traces are generated
    once per ``(workload, n, seed)`` per worker, isolated baselines are
    shared across mixes (and with other experiments) via the cache, and
    independent mixes simulate in parallel.

    ``config`` / ``iso_config`` override the mixed and isolated system
    configurations (e.g. for DRAM-bandwidth sweeps).
    """
    mixes = generate_mixes(num_cores, mix_count, pool=pool, seed=seed)
    config = config or experiment_config(num_cores=num_cores)
    iso_config = iso_config or experiment_config(num_cores=1)
    runner = runner or get_runner()
    l1 = _l1_spec(l1_factory)

    jobs: List[SimJob] = []
    iso_workloads = sorted({wl for mix in mixes for wl in mix})
    for wl in iso_workloads:
        jobs.append(SimJob.single(wl, n_per_core, iso_config, l1=l1))
    for mix in mixes:
        jobs.append(SimJob.multi(mix, n_per_core, config, l1=l1))
        for s in configs.values():
            jobs.append(SimJob.multi(mix, n_per_core, config, l1=l1,
                                     l2=(as_spec(s),)))
    results = iter(runner.run(jobs))

    singles = {wl: next(results).single.ipc for wl in iso_workloads}
    out: Dict[str, List[float]] = {name: [] for name in configs}
    out["baseline"] = []
    for mix in mixes:
        isolated = [singles[wl] for wl in mix]
        base = next(results).multicore
        base_ws = sum(c.ipc / i for c, i in zip(base.cores, isolated))
        out["baseline"].append(base_ws)
        for name in configs:
            res = next(results).multicore
            ws = sum(c.ipc / i for c, i in zip(res.cores, isolated))
            out[name].append(ws / base_ws)
    return out


@dataclass
class ExperimentResult:
    """Uniform result bundle every experiment returns."""

    name: str
    headers: List[str]
    rows: List[List[object]]
    notes: str = ""

    def table(self) -> str:
        text = format_table(self.headers, self.rows)
        if self.notes:
            text += f"\n\n{self.notes}"
        return text

    def as_dict(self) -> Dict[str, List]:
        return {"headers": self.headers, "rows": self.rows}


def fmt(x: object, digits: int = 3) -> object:
    if isinstance(x, float):
        return round(x, digits)
    return x
