"""Figure 13: storage efficiency, metadata traffic, correlation hit rate.

* 13a - speedup vs. metadata capacity.  The paper's headline: Streamline
  at 0.5MB matches/beats Triangel at 1MB, and beats Triangel-Ideal
  (dedicated 1MB outside the LLC) at equal capacity.
* 13b - metadata traffic vs. capacity (paper: 61% of Triangel's at 1MB,
  down to 13% at 0.125MB thanks to filtered indexing).
* 13c - correlation hit rate: TP-Mockingjay vs. SRRIP replacement.

Capacities are expressed in paper-equivalent labels; on the 1/4-scale
hierarchy "1MB" means half the (scaled) LLC, exactly as in the paper.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..runner import PrefetcherSpec, SimJob, get_runner, spec
from ..sim.stats import geomean
from .common import (STRIDE_L1, ExperimentResult, env_n,
                     experiment_config, fmt, run_matrix, workload_set)

#: label -> (streamline every_nth, triangel ways); "1MB" = half the LLC.
SIZES: Dict[str, Tuple[int, int]] = {
    "0.25MB": (4, 2),
    "0.5MB": (2, 4),
    "1MB": (1, 8),
}


def _config_specs(label: str) -> Dict[str, PrefetcherSpec]:
    every_nth, ways = SIZES[label]
    return {
        f"triangel@{label}": spec("triangel", initial_ways=ways,
                                  adaptive=False),
        f"streamline@{label}": spec("streamline", dynamic=False,
                                    initial_every_nth=every_nth),
    }


def run_fig13a(n: Optional[int] = None,
               workloads: Optional[Sequence[str]] = None
               ) -> ExperimentResult:
    n = n or env_n(40_000)
    workloads = list(workloads or workload_set("component"))
    config = experiment_config()
    configs: Dict[str, PrefetcherSpec] = {}
    for label in SIZES:
        configs.update(_config_specs(label))
    configs["triangel-ideal@1MB"] = spec("triangel", initial_ways=8,
                                         adaptive=False, dedicated=True)
    runs = run_matrix(workloads, n, configs, config=config)
    speedups = {name: [r.speedup(name) for r in runs] for name in configs}
    rows = [[name, fmt(geomean(vals))]
            for name, vals in sorted(speedups.items())]
    sl_half = geomean(speedups["streamline@0.5MB"])
    tri_full = geomean(speedups["triangel@1MB"])
    notes = (f"paper claim: streamline@0.5MB >= triangel@1MB; measured "
             f"{sl_half:.3f} vs {tri_full:.3f} -> "
             f"{'SHAPE OK' if sl_half >= tri_full - 0.01 else 'MISMATCH'}")
    return ExperimentResult("fig13a", ["config", "speedup"], rows, notes)


def run_fig13b(n: Optional[int] = None,
               workloads: Optional[Sequence[str]] = None
               ) -> ExperimentResult:
    n = n or env_n(40_000)
    workloads = list(workloads or workload_set("component"))
    config = experiment_config()
    runner = get_runner()
    jobs = []
    for label in SIZES:
        for name, s in _config_specs(label).items():
            jobs += [SimJob.single(wl, n, config, l1=STRIDE_L1, l2=(s,))
                     for wl in workloads]
    results = iter(runner.run(jobs))
    rows = []
    for label in SIZES:
        traffic = {"triangel": 0, "streamline": 0}
        for name in _config_specs(label):
            key = "triangel" if name.startswith("triangel") \
                else "streamline"
            for _ in workloads:
                tp = next(results).single.temporal
                traffic[key] += tp.metadata_traffic_bytes
        ratio = (traffic["streamline"] / traffic["triangel"]
                 if traffic["triangel"] else 0.0)
        rows.append([label, traffic["triangel"] // 1024,
                     traffic["streamline"] // 1024, fmt(ratio)])
    notes = ("paper: streamline traffic is 61% of triangel at 1MB and "
             "13% at 0.125MB (filtering grows as the store shrinks)")
    return ExperimentResult("fig13b", ["size", "triangel_KB",
                                       "streamline_KB", "ratio"], rows,
                            notes)


def run_fig13c(n: Optional[int] = None,
               workloads: Optional[Sequence[str]] = None,
               meta_ways: int = 1) -> ExperimentResult:
    """Correlation (store) hit rate under TP-Mockingjay vs. SRRIP.

    Measured with a single metadata way per set: replacement policies
    only differentiate under per-set capacity pressure.  (Filtered
    indexing scales the trigger population with the set count, so
    shrinking by sets never pressures replacement -- shrinking the ways
    does, which is also the Fig. 15 "hybrid" regime.)
    """
    n = n or env_n(40_000)
    workloads = list(workloads or workload_set("component"))
    config = experiment_config()
    runner = get_runner()
    policies = ("tp-mockingjay", "srrip")
    jobs = []
    for wl in workloads:
        for policy in policies:
            sl = spec("streamline", replacement=policy, dynamic=False,
                      initial_every_nth=1, meta_ways=meta_ways)
            jobs.append(SimJob.single(wl, n, config, l1=STRIDE_L1,
                                      l2=(sl,), probes=("store_stats",)))
    results = iter(runner.run(jobs))
    rows = []
    totals = {"tp-mockingjay": [0, 0], "srrip": [0, 0]}
    for wl in workloads:
        row = [wl]
        for policy in policies:
            stats = next(results).probes["store_stats"]
            rate = stats["hits"] / stats["lookups"] \
                if stats["lookups"] else 0.0
            row.append(fmt(rate))
            totals[policy][0] += stats["hits"]
            totals[policy][1] += stats["lookups"]
        rows.append(row)
    overall = {p: (h / max(1, l)) for p, (h, l) in totals.items()}
    rows.append(["OVERALL", fmt(overall["tp-mockingjay"]),
                 fmt(overall["srrip"])])
    notes = (f"TP-Mockingjay vs SRRIP correlation hit rate: "
             f"{overall['tp-mockingjay']:.3f} vs {overall['srrip']:.3f} "
             f"(paper: TP-Mockingjay is +21.5 pp over Triangel's SRRIP)")
    return ExperimentResult("fig13c", ["workload", "tp-mockingjay",
                                       "srrip"], rows, notes)


def main() -> None:
    for fn in (run_fig13a, run_fig13b, run_fig13c):
        print(fn().table())
        print()


if __name__ == "__main__":
    main()
