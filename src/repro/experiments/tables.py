"""Tables I and II, plus the Section V-D3 offline TP-MIN comparison.

Table I is derived analytically from the partitioning mechanics (see
:mod:`repro.analysis.partition_table`); Table II is the simulated system
configuration; the TP-MIN experiment replays correlation traces through
the two offline oracles.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..analysis.partition_table import build_table
from ..analysis.tpmin import compare
from ..runner import get_trace
from ..workloads import DEFAULT_SEED
from .common import (ExperimentResult, env_n, experiment_config, fmt,
                     workload_set)


def run_table1() -> ExperimentResult:
    rows = []
    for r in build_table():
        rows.append([r.code,
                     "X" if r.low_assoc_small else "ok",
                     "X" if r.low_assoc_big else "ok",
                     "cheap" if r.cheap_repartitioning else "EXPENSIVE"])
    notes = ("paper's Table I: only FTS avoids low associativity at both "
             "sizes AND expensive repartitioning")
    return ExperimentResult("table1", ["scheme", "small_assoc",
                                       "big_assoc", "repartitioning"],
                            rows, notes)


def run_table2() -> ExperimentResult:
    cfg = experiment_config()
    full = experiment_config().scaled(
        l1d_size=48 * 1024, l2_size=512 * 1024,
        llc_size_per_core=2 * 1024 * 1024)
    rows = [["scaled (experiments)", cfg.table().replace("\n", " | ")],
            ["paper (Table II)", full.table().replace("\n", " | ")]]
    return ExperimentResult("table2", ["system", "parameters"], rows)


def run_tpmin(n: Optional[int] = None,
              capacities: Sequence[int] = (512, 2048, 8192),
              workloads: Optional[Sequence[str]] = None
              ) -> ExperimentResult:
    """Offline MIN vs. TP-MIN correlation hit rates (Section V-D3)."""
    n = n or env_n(30_000)
    workloads = list(workloads or workload_set("component"))
    rows = []
    for wl in workloads:
        trace = get_trace(wl, n, DEFAULT_SEED)
        for cap in capacities:
            res = compare(trace, cap)
            m, t = res["min"], res["tp-min"]
            rows.append([wl, cap, fmt(m.trigger_hit_rate),
                         fmt(m.correlation_hit_rate),
                         fmt(t.correlation_hit_rate),
                         fmt(t.correlation_hit_rate
                             - m.correlation_hit_rate)])
    notes = ("paper: TP-MIN improves correlation hit rate by +9.3 pp "
             "over trigger-based MIN (Streamline variants)")
    return ExperimentResult(
        "tpmin", ["workload", "capacity", "min_trigger_hits",
                  "min_corr_hits", "tpmin_corr_hits", "delta"], rows,
        notes)


def main() -> None:
    for fn in (run_table1, run_table2, run_tpmin):
        print(fn().table())
        print()


if __name__ == "__main__":
    main()
