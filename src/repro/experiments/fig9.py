"""Figure 9: single-core speedup over an IP-stride baseline.

The paper reports Streamline 8.1% vs. Triangel 5.1% geomean over all
memory-intensive benchmarks, with per-suite breakdowns and an irregular
subset where the gap widens (17% vs. 11.5%).  This experiment reproduces
the same grouping: per-benchmark speedups, per-suite geomeans, and the
irregular subset picked by the paper's >=5%-ideal-Triage-headroom rule.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..sim.stats import geomean
from .common import (PREFETCHER_SPECS, ExperimentResult, env_n, fmt,
                     irregular_subset, run_matrix, suite_geomeans,
                     workload_set)


def run(n: Optional[int] = None,
        workloads: Optional[Sequence[str]] = None) -> ExperimentResult:
    n = n or env_n()
    workloads = list(workloads or workload_set("full"))
    runs = run_matrix(workloads, n, PREFETCHER_SPECS)
    # Memory-intensive filter (paper: >1 LLC MPKI on the baseline).
    runs = [r for r in runs if r.baseline.llc_mpki > 1.0]
    irregular = set(irregular_subset([r.workload for r in runs], n))

    rows = []
    for r in runs:
        rows.append([r.workload,
                     "irr" if r.workload in irregular else "",
                     fmt(r.speedup("triangel")),
                     fmt(r.speedup("streamline"))])
    for config in ("triangel", "streamline"):
        means = suite_geomeans(runs, config)
        rows.append([f"geomean[{config}]", "",
                     *(fmt(means.get(s, 1.0))
                       for s in ("spec06", "spec17"))])
    tri_all = suite_geomeans(runs, "triangel")["all"]
    sl_all = suite_geomeans(runs, "streamline")["all"]
    irr_runs = [r for r in runs if r.workload in irregular]
    tri_irr = geomean(r.speedup("triangel") for r in irr_runs) \
        if irr_runs else 1.0
    sl_irr = geomean(r.speedup("streamline") for r in irr_runs) \
        if irr_runs else 1.0
    rows.append(["ALL", "", fmt(tri_all), fmt(sl_all)])
    rows.append(["IRREGULAR", f"{len(irr_runs)} wl", fmt(tri_irr),
                 fmt(sl_irr)])
    notes = (f"paper: Streamline 1.081 vs Triangel 1.051 (all), "
             f"1.17 vs 1.115 (irregular); measured all: "
             f"streamline {sl_all:.3f} vs triangel {tri_all:.3f} -> "
             f"{'SHAPE OK' if sl_all >= tri_all else 'SHAPE MISMATCH'}")
    return ExperimentResult("fig9", ["workload", "subset", "triangel",
                                     "streamline"], rows, notes)


def main() -> None:
    print(run().table())


if __name__ == "__main__":
    main()
