"""Figure 9: single-core speedup over an IP-stride baseline.

The paper reports Streamline 8.1% vs. Triangel 5.1% geomean over all
memory-intensive benchmarks, with per-suite breakdowns and an irregular
subset where the gap widens (17% vs. 11.5%).  This experiment reproduces
the same grouping: per-benchmark speedups, per-suite geomeans, and the
irregular subset picked by the paper's >=5%-ideal-Triage-headroom rule.

With ``REPRO_TELEMETRY=1`` each temporal configuration also runs with
the telemetry probe and the table gains a timeliness breakdown column
per prefetcher — the on-time/late/unused split of its issued prefetches
(see :mod:`repro.telemetry.lifecycle`), which is where Streamline's and
Triangel's coverage wins actually differ.  The default (telemetry off)
produces the exact same jobs and table as before, so goldens are stable.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from ..sim.stats import geomean
from .common import (PREFETCHER_SPECS, ExperimentResult, env_n,
                     experiment_config, fmt, irregular_subset, run_matrix,
                     serve_runner, suite_geomeans, telemetry_config,
                     workload_set)


def _timeliness(run, config: str) -> str:
    """"on/late/unused" fractions of issued, from the telemetry probe."""
    payload: Dict[str, Any] = run.probes.get(config, {}).get("telemetry", {})
    lifecycle = payload.get("lifecycle") or {}
    entry = lifecycle.get(config)
    if not entry or not entry.get("issued"):
        return "-"
    issued = entry["issued"]
    return "/".join(f"{entry[k] / issued:.2f}"
                    for k in ("on_time", "late", "unused"))


def run(n: Optional[int] = None,
        workloads: Optional[Sequence[str]] = None) -> ExperimentResult:
    n = n or env_n()
    workloads = list(workloads or workload_set("full"))
    tcfg = telemetry_config()
    # With REPRO_SERVE_URL set, every batch goes through the job-server
    # client instead of the in-process runner — same jobs, byte-identical
    # results (see repro.serve) — making this figure a thin client.
    runner = serve_runner()
    if tcfg is None:
        runs = run_matrix(workloads, n, PREFETCHER_SPECS, runner=runner)
    else:
        runs = run_matrix(
            workloads, n, PREFETCHER_SPECS,
            config=experiment_config().scaled(telemetry=tcfg),
            probes=("telemetry",), runner=runner)
    # Memory-intensive filter (paper: >1 LLC MPKI on the baseline).
    runs = [r for r in runs if r.baseline.llc_mpki > 1.0]
    irregular = set(irregular_subset([r.workload for r in runs], n,
                                     runner=runner))

    headers = ["workload", "subset", "triangel", "streamline"]
    if tcfg is not None:
        headers += ["tri on/late/un", "sl on/late/un"]
    rows = []
    for r in runs:
        row = [r.workload,
               "irr" if r.workload in irregular else "",
               fmt(r.speedup("triangel")),
               fmt(r.speedup("streamline"))]
        if tcfg is not None:
            row += [_timeliness(r, "triangel"), _timeliness(r, "streamline")]
        rows.append(row)
    pad = [""] * (len(headers) - 4)
    for config in ("triangel", "streamline"):
        means = suite_geomeans(runs, config)
        rows.append([f"geomean[{config}]", "",
                     *(fmt(means.get(s, 1.0))
                       for s in ("spec06", "spec17")), *pad])
    tri_all = suite_geomeans(runs, "triangel")["all"]
    sl_all = suite_geomeans(runs, "streamline")["all"]
    irr_runs = [r for r in runs if r.workload in irregular]
    tri_irr = geomean(r.speedup("triangel") for r in irr_runs) \
        if irr_runs else 1.0
    sl_irr = geomean(r.speedup("streamline") for r in irr_runs) \
        if irr_runs else 1.0
    rows.append(["ALL", "", fmt(tri_all), fmt(sl_all), *pad])
    rows.append(["IRREGULAR", f"{len(irr_runs)} wl", fmt(tri_irr),
                 fmt(sl_irr), *pad])
    notes = (f"paper: Streamline 1.081 vs Triangel 1.051 (all), "
             f"1.17 vs 1.115 (irregular); measured all: "
             f"streamline {sl_all:.3f} vs triangel {tri_all:.3f} -> "
             f"{'SHAPE OK' if sl_all >= tri_all else 'SHAPE MISMATCH'}")
    if tcfg is not None:
        notes += ("\ntimeliness columns: fraction of issued prefetches "
                  "on-time / late / unused (telemetry lifecycle tracer, "
                  f"interval={tcfg.interval})")
    return ExperimentResult("fig9", headers, rows, notes)


def main() -> None:
    print(run().table())


if __name__ == "__main__":
    main()
