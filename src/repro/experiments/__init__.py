"""One module per paper table/figure; see DESIGN.md for the index."""

from . import fig9, fig9s, fig10, fig11, fig12, fig13, fig14, fig15, \
    tables
from .common import (ExperimentResult, experiment_config,
                     irregular_subset, run_matrix, run_mixes,
                     workload_set)

__all__ = ["fig9", "fig9s", "fig10", "fig11", "fig12", "fig13", "fig14",
           "fig15", "tables", "ExperimentResult", "experiment_config",
           "irregular_subset", "run_matrix", "run_mixes",
           "workload_set"]

#: experiment id -> callable returning an ExperimentResult
ALL_EXPERIMENTS = {
    "table1": tables.run_table1,
    "table2": tables.run_table2,
    "tpmin": tables.run_tpmin,
    "fig9": fig9.run,
    "fig9s": fig9s.run,
    "fig10a": fig10.run_fig10a,
    "fig10b": fig10.run_fig10b,
    "fig10c": fig10.run_fig10c,
    "fig10de": fig10.run_fig10de,
    "fig10f": fig10.run_fig10f,
    "fig11a": fig11.run_fig11a,
    "fig11b": fig11.run_fig11b,
    "fig11cd": fig11.run_fig11cd,
    "fig12a": fig12.run_fig12a,
    "fig12b": fig12.run_fig12b,
    "fig12c": fig12.run_fig12c,
    "fig12ts": fig12.run_fig12_intervals,
    "fig13a": fig13.run_fig13a,
    "fig13b": fig13.run_fig13b,
    "fig13c": fig13.run_fig13c,
    "fig14": fig14.run,
    "fig15": fig15.run,
}
