"""Figure 9s: the Fig. 9 speedup comparison, by representative sampling.

Same question as :mod:`.fig9` — Streamline vs. Triangel single-core
speedup over an IP-stride baseline — but answered from sampled
execution: each (workload, prefetcher) arm simulates only the
workload's clustered representative intervals (plus bounded warm-up)
and extrapolates whole-trace IPC (see :mod:`repro.sampling`).  The
table reports sampled speedups with the share of the trace actually
simulated, so the cost/fidelity trade is visible in the artifact.

``REPRO_SAMPLING`` is resolved with default *on* here (this experiment
is the sampled variant); setting ``REPRO_SAMPLING=0`` delegates to the
full :func:`repro.experiments.fig9.run`, whose output is byte-identical
to running fig9 directly — sampling never silently replaces exact
results.  Speedups are ratios of *estimates*: per-metric error bounds
apply to each arm's IPC (``python -m repro.sampling validate`` checks
them), so ratio errors can reach roughly twice the per-arm bound.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..sampling import run_sampled, sampling_enabled
from ..sim.stats import geomean
from .common import (PREFETCHER_SPECS, STRIDE_L1, ExperimentResult,
                     env_n, experiment_config, fmt, quick_mode,
                     serve_runner, workload_set)


def _quick_workloads() -> List[str]:
    """Quick set plus the server-class rows this PR adds — fig9s is the
    cheap sweep, so it always carries the new archetypes."""
    from ..workloads import suite
    base = workload_set("quick")
    return base + [wl for wl in suite("srv") if wl not in base]


def run(n: Optional[int] = None,
        workloads: Optional[Sequence[str]] = None) -> ExperimentResult:
    if not sampling_enabled(default=True):
        from . import fig9
        full = fig9.run(n=n, workloads=workloads)
        return ExperimentResult(
            "fig9s", full.headers, full.rows,
            full.notes + "\nREPRO_SAMPLING=0: delegated to the full "
            "fig9 run (no sampling).")
    n = n or env_n(240_000)
    if workloads is None:
        workloads = _quick_workloads() if quick_mode() \
            else workload_set("full")
    runner = serve_runner()
    cfg = experiment_config()
    headers = ["workload", "triangel", "streamline", "ipc ci95",
               "sim share"]
    rows = []
    speedups = {name: [] for name in PREFETCHER_SPECS}
    for wl in workloads:
        base = run_sampled(wl, n, cfg, l1=STRIDE_L1, l2=(),
                           runner=runner)
        base_ipc = base.metrics["ipc"].estimate
        row = [wl]
        for name, pf in PREFETCHER_SPECS.items():
            est = run_sampled(wl, n, cfg, l1=STRIDE_L1, l2=(pf,),
                              runner=runner)
            speedup = est.metrics["ipc"].estimate / base_ipc \
                if base_ipc else 1.0
            speedups[name].append(speedup)
            row.append(fmt(speedup))
        rel_ci = base.metrics["ipc"].ci95 / base_ipc if base_ipc else 0.0
        row.append(f"{rel_ci:.1%}")
        row.append(f"{base.simulated_accesses / n:.1%}")
        rows.append(row)
    rows.append(["GEOMEAN",
                 *(fmt(geomean(speedups[name]) if speedups[name] else 1.0)
                   for name in PREFETCHER_SPECS), "", ""])
    notes = (f"sampled execution (REPRO_SAMPLING): per-arm IPC is an "
             f"extrapolated estimate at n={n}; 'sim share' is the "
             f"fraction of the trace each arm simulates, 'ipc ci95' the "
             f"baseline estimate's relative confidence interval.  For "
             f"exact results run fig9 (or REPRO_SAMPLING=0).")
    return ExperimentResult("fig9s", headers, rows, notes)


def main() -> None:
    print(run().table())


if __name__ == "__main__":
    main()
