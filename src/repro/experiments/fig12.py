"""Figure 12: resolving the stream-format's own problems.

* 12a - stream-length sweep: correlations/block, store hit rate (the
  missed-trigger proxy), coverage, and speedup.  The paper finds length
  4 the inflection point: 16 correlations/block with a stable
  missed-trigger rate, peaking coverage.
* 12b - metadata redundancy with and without stream alignment (paper:
  alignment halves redundancy; ~31% of what remains is benign).
* 12c - metadata-buffer size sweep: alignment rate and coverage (paper:
  3 entries align 67% and saturate coverage).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..analysis.redundancy import measure
from ..core.stream_entry import ENTRIES_PER_BLOCK, correlations_per_block
from ..core.streamline import StreamlinePrefetcher
from ..sim.engine import run_single
from ..sim.stats import geomean
from ..workloads import make
from .common import (ExperimentResult, env_n, experiment_config, fmt,
                     stride_l1, workload_set)


def run_fig12a(n: Optional[int] = None,
               lengths: Sequence[int] = (2, 3, 4, 5, 8, 16),
               workloads: Optional[Sequence[str]] = None
               ) -> ExperimentResult:
    n = n or env_n(40_000)
    workloads = list(workloads or workload_set("component"))
    config = experiment_config()
    rows = []
    for length in lengths:
        if length not in ENTRIES_PER_BLOCK:
            continue
        speedups: List[float] = []
        coverages: List[float] = []
        hit_rates: List[float] = []
        for wl in workloads:
            trace = make(wl, n)
            base = run_single(trace, config, l1_prefetcher=stride_l1)
            holder = {}

            def factory():
                pf = StreamlinePrefetcher(stream_length=length)
                holder["pf"] = pf
                return pf

            res = run_single(trace, config, l1_prefetcher=stride_l1,
                             l2_prefetchers=[factory])
            speedups.append(res.ipc / base.ipc)
            tp = res.temporal
            coverages.append(tp.coverage if tp else 0.0)
            stats = holder["pf"].store.stats
            hit_rates.append(stats.hits / stats.lookups
                             if stats.lookups else 0.0)
        rows.append([length, correlations_per_block(length),
                     fmt(sum(hit_rates) / len(hit_rates)),
                     fmt(sum(coverages) / len(coverages)),
                     fmt(geomean(speedups))])
    notes = ("paper: length 4 peaks coverage (31.5%); longer streams "
             "miss too many triggers (hit rate drops), shorter ones "
             "waste capacity")
    return ExperimentResult(
        "fig12a", ["stream_len", "corr_per_block", "trigger_hit_rate",
                   "coverage", "speedup"], rows, notes)


def run_fig12b(n: Optional[int] = None,
               sizes: Sequence[int] = (1, 2, 4),
               workloads: Optional[Sequence[str]] = None
               ) -> ExperimentResult:
    """Redundancy vs. store size, +- stream alignment."""
    n = n or env_n(40_000)
    workloads = list(workloads or workload_set("component"))
    config = experiment_config()
    rows = []
    for every_nth in sizes:
        for aligned in (True, False):
            rates: List[float] = []
            benign: List[float] = []
            for wl in workloads:
                trace = make(wl, n)
                holder = {}

                def factory():
                    pf = StreamlinePrefetcher(
                        stream_alignment=aligned, dynamic=False,
                        initial_every_nth=every_nth)
                    holder["pf"] = pf
                    return pf

                run_single(trace, config, l1_prefetcher=stride_l1,
                           l2_prefetchers=[factory])
                report = measure(holder["pf"].store)
                rates.append(report.redundancy_rate)
                benign.append(report.benign_fraction)
            rows.append([f"1/{every_nth}",
                         "align" if aligned else "no-align",
                         fmt(sum(rates) / len(rates)),
                         fmt(sum(benign) / len(benign))])
    notes = ("paper: stream alignment halves redundancy; ~31% of "
             "remaining redundancy is benign (context-disambiguating)")
    return ExperimentResult("fig12b", ["store_size", "alignment",
                                       "redundancy_rate",
                                       "benign_fraction"], rows, notes)


def run_fig12c(n: Optional[int] = None,
               buffer_sizes: Sequence[int] = (1, 2, 3, 4, 6, 8),
               workloads: Optional[Sequence[str]] = None
               ) -> ExperimentResult:
    n = n or env_n(40_000)
    workloads = list(workloads or workload_set("component"))
    config = experiment_config()
    rows = []
    for size in buffer_sizes:
        align_rates: List[float] = []
        coverages: List[float] = []
        for wl in workloads:
            trace = make(wl, n)
            holder = {}

            def factory():
                pf = StreamlinePrefetcher(buffer_size=size)
                holder["pf"] = pf
                return pf

            res = run_single(trace, config, l1_prefetcher=stride_l1,
                             l2_prefetchers=[factory])
            pf = holder["pf"]
            completed = max(1, pf.completed_streams)
            align_rates.append(pf.alignments / completed)
            tp = res.temporal
            coverages.append(tp.coverage if tp else 0.0)
        rows.append([size, fmt(sum(align_rates) / len(align_rates)),
                     fmt(sum(coverages) / len(coverages))])
    notes = ("paper: a 3-entry buffer reaches the alignment-rate knee; "
             "bigger buffers add overhead without coverage")
    return ExperimentResult("fig12c", ["buffer_entries", "alignment_rate",
                                       "coverage"], rows, notes)


def main() -> None:
    for fn in (run_fig12a, run_fig12b, run_fig12c):
        print(fn().table())
        print()


if __name__ == "__main__":
    main()
