"""Figure 12: resolving the stream-format's own problems.

* 12a - stream-length sweep: correlations/block, store hit rate (the
  missed-trigger proxy), coverage, and speedup.  The paper finds length
  4 the inflection point: 16 correlations/block with a stable
  missed-trigger rate, peaking coverage.
* 12b - metadata redundancy with and without stream alignment (paper:
  alignment halves redundancy; ~31% of what remains is benign).
* 12c - metadata-buffer size sweep: alignment rate and coverage (paper:
  3 entries align 67% and saturate coverage).

Component statistics (store hit rates, alignment counters, redundancy)
are collected by named probes that run inside the worker next to the
simulation; see :mod:`repro.runner.probes`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.stream_entry import ENTRIES_PER_BLOCK, correlations_per_block
from ..runner import SimJob, get_runner, spec
from ..sim.stats import geomean
from .common import (STRIDE_L1, ExperimentResult, env_n,
                     experiment_config, fmt, workload_set)


def run_fig12a(n: Optional[int] = None,
               lengths: Sequence[int] = (2, 3, 4, 5, 8, 16),
               workloads: Optional[Sequence[str]] = None
               ) -> ExperimentResult:
    n = n or env_n(40_000)
    workloads = list(workloads or workload_set("component"))
    config = experiment_config()
    runner = get_runner()
    lengths = [l for l in lengths if l in ENTRIES_PER_BLOCK]
    jobs = [SimJob.single(wl, n, config, l1=STRIDE_L1)
            for wl in workloads]
    for length in lengths:
        sl = spec("streamline", stream_length=length)
        jobs += [SimJob.single(wl, n, config, l1=STRIDE_L1, l2=(sl,),
                               probes=("store_stats",))
                 for wl in workloads]
    results = runner.run(jobs)
    bases = {wl: r.single for wl, r in zip(workloads, results)}
    rest = iter(results[len(workloads):])
    rows = []
    for length in lengths:
        speedups: List[float] = []
        coverages: List[float] = []
        hit_rates: List[float] = []
        for wl in workloads:
            res = next(rest)
            speedups.append(res.single.ipc / bases[wl].ipc)
            tp = res.single.temporal
            coverages.append(tp.coverage if tp else 0.0)
            stats = res.probes["store_stats"]
            hit_rates.append(stats["hits"] / stats["lookups"]
                             if stats["lookups"] else 0.0)
        rows.append([length, correlations_per_block(length),
                     fmt(sum(hit_rates) / len(hit_rates)),
                     fmt(sum(coverages) / len(coverages)),
                     fmt(geomean(speedups))])
    notes = ("paper: length 4 peaks coverage (31.5%); longer streams "
             "miss too many triggers (hit rate drops), shorter ones "
             "waste capacity")
    return ExperimentResult(
        "fig12a", ["stream_len", "corr_per_block", "trigger_hit_rate",
                   "coverage", "speedup"], rows, notes)


def run_fig12b(n: Optional[int] = None,
               sizes: Sequence[int] = (1, 2, 4),
               workloads: Optional[Sequence[str]] = None
               ) -> ExperimentResult:
    """Redundancy vs. store size, +- stream alignment."""
    n = n or env_n(40_000)
    workloads = list(workloads or workload_set("component"))
    config = experiment_config()
    runner = get_runner()
    cells = [(every_nth, aligned) for every_nth in sizes
             for aligned in (True, False)]
    jobs = []
    for every_nth, aligned in cells:
        sl = spec("streamline", stream_alignment=aligned, dynamic=False,
                  initial_every_nth=every_nth)
        jobs += [SimJob.single(wl, n, config, l1=STRIDE_L1, l2=(sl,),
                               probes=("redundancy",))
                 for wl in workloads]
    results = iter(runner.run(jobs))
    rows = []
    for every_nth, aligned in cells:
        rates: List[float] = []
        benign: List[float] = []
        for _ in workloads:
            report = next(results).probes["redundancy"]
            rates.append(report["redundancy_rate"])
            benign.append(report["benign_fraction"])
        rows.append([f"1/{every_nth}",
                     "align" if aligned else "no-align",
                     fmt(sum(rates) / len(rates)),
                     fmt(sum(benign) / len(benign))])
    notes = ("paper: stream alignment halves redundancy; ~31% of "
             "remaining redundancy is benign (context-disambiguating)")
    return ExperimentResult("fig12b", ["store_size", "alignment",
                                       "redundancy_rate",
                                       "benign_fraction"], rows, notes)


def run_fig12c(n: Optional[int] = None,
               buffer_sizes: Sequence[int] = (1, 2, 3, 4, 6, 8),
               workloads: Optional[Sequence[str]] = None
               ) -> ExperimentResult:
    n = n or env_n(40_000)
    workloads = list(workloads or workload_set("component"))
    config = experiment_config()
    runner = get_runner()
    jobs = []
    for size in buffer_sizes:
        sl = spec("streamline", buffer_size=size)
        jobs += [SimJob.single(wl, n, config, l1=STRIDE_L1, l2=(sl,),
                               probes=("alignment",))
                 for wl in workloads]
    results = iter(runner.run(jobs))
    rows = []
    for size in buffer_sizes:
        align_rates: List[float] = []
        coverages: List[float] = []
        for _ in workloads:
            res = next(results)
            counters = res.probes["alignment"]
            completed = max(1, counters["completed_streams"])
            align_rates.append(counters["alignments"] / completed)
            tp = res.single.temporal
            coverages.append(tp.coverage if tp else 0.0)
        rows.append([size, fmt(sum(align_rates) / len(align_rates)),
                     fmt(sum(coverages) / len(coverages))])
    notes = ("paper: a 3-entry buffer reaches the alignment-rate knee; "
             "bigger buffers add overhead without coverage")
    return ExperimentResult("fig12c", ["buffer_entries", "alignment_rate",
                                       "coverage"], rows, notes)


def main() -> None:
    for fn in (run_fig12a, run_fig12b, run_fig12c):
        print(fn().table())
        print()


if __name__ == "__main__":
    main()
