"""Figure 12: resolving the stream-format's own problems.

* 12a - stream-length sweep: correlations/block, store hit rate (the
  missed-trigger proxy), coverage, and speedup.  The paper finds length
  4 the inflection point: 16 correlations/block with a stable
  missed-trigger rate, peaking coverage.
* 12b - metadata redundancy with and without stream alignment (paper:
  alignment halves redundancy; ~31% of what remains is benign).
* 12c - metadata-buffer size sweep: alignment rate and coverage (paper:
  3 entries align 67% and saturate coverage).

* 12ts - interval time-series (plot data): per-interval misses,
  prefetch traffic, metadata-store occupancy, and timeliness over the
  run, via the telemetry subsystem.  Not a paper figure; it supplies
  the when-and-why behind 12a-c's end-of-run scalars.

Component statistics (store hit rates, alignment counters, redundancy)
are collected by named probes that run inside the worker next to the
simulation; see :mod:`repro.runner.probes`.  The interval data comes
from the ``telemetry`` probe (:mod:`repro.telemetry`).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.stream_entry import ENTRIES_PER_BLOCK, correlations_per_block
from ..runner import SimJob, get_runner, spec
from ..sim.stats import geomean
from ..telemetry import TelemetryConfig
from .common import (STRIDE_L1, ExperimentResult, env_n,
                     experiment_config, fmt, workload_set)


def run_fig12a(n: Optional[int] = None,
               lengths: Sequence[int] = (2, 3, 4, 5, 8, 16),
               workloads: Optional[Sequence[str]] = None
               ) -> ExperimentResult:
    n = n or env_n(40_000)
    workloads = list(workloads or workload_set("component"))
    config = experiment_config()
    runner = get_runner()
    lengths = [l for l in lengths if l in ENTRIES_PER_BLOCK]
    jobs = [SimJob.single(wl, n, config, l1=STRIDE_L1)
            for wl in workloads]
    for length in lengths:
        sl = spec("streamline", stream_length=length)
        jobs += [SimJob.single(wl, n, config, l1=STRIDE_L1, l2=(sl,),
                               probes=("store_stats",))
                 for wl in workloads]
    results = runner.run(jobs)
    bases = {wl: r.single for wl, r in zip(workloads, results)}
    rest = iter(results[len(workloads):])
    rows = []
    for length in lengths:
        speedups: List[float] = []
        coverages: List[float] = []
        hit_rates: List[float] = []
        for wl in workloads:
            res = next(rest)
            speedups.append(res.single.ipc / bases[wl].ipc)
            tp = res.single.temporal
            coverages.append(tp.coverage if tp else 0.0)
            stats = res.probes["store_stats"]
            hit_rates.append(stats["hits"] / stats["lookups"]
                             if stats["lookups"] else 0.0)
        rows.append([length, correlations_per_block(length),
                     fmt(sum(hit_rates) / len(hit_rates)),
                     fmt(sum(coverages) / len(coverages)),
                     fmt(geomean(speedups))])
    notes = ("paper: length 4 peaks coverage (31.5%); longer streams "
             "miss too many triggers (hit rate drops), shorter ones "
             "waste capacity")
    return ExperimentResult(
        "fig12a", ["stream_len", "corr_per_block", "trigger_hit_rate",
                   "coverage", "speedup"], rows, notes)


def run_fig12b(n: Optional[int] = None,
               sizes: Sequence[int] = (1, 2, 4),
               workloads: Optional[Sequence[str]] = None
               ) -> ExperimentResult:
    """Redundancy vs. store size, +- stream alignment."""
    n = n or env_n(40_000)
    workloads = list(workloads or workload_set("component"))
    config = experiment_config()
    runner = get_runner()
    cells = [(every_nth, aligned) for every_nth in sizes
             for aligned in (True, False)]
    jobs = []
    for every_nth, aligned in cells:
        sl = spec("streamline", stream_alignment=aligned, dynamic=False,
                  initial_every_nth=every_nth)
        jobs += [SimJob.single(wl, n, config, l1=STRIDE_L1, l2=(sl,),
                               probes=("redundancy",))
                 for wl in workloads]
    results = iter(runner.run(jobs))
    rows = []
    for every_nth, aligned in cells:
        rates: List[float] = []
        benign: List[float] = []
        for _ in workloads:
            report = next(results).probes["redundancy"]
            rates.append(report["redundancy_rate"])
            benign.append(report["benign_fraction"])
        rows.append([f"1/{every_nth}",
                     "align" if aligned else "no-align",
                     fmt(sum(rates) / len(rates)),
                     fmt(sum(benign) / len(benign))])
    notes = ("paper: stream alignment halves redundancy; ~31% of "
             "remaining redundancy is benign (context-disambiguating)")
    return ExperimentResult("fig12b", ["store_size", "alignment",
                                       "redundancy_rate",
                                       "benign_fraction"], rows, notes)


def run_fig12c(n: Optional[int] = None,
               buffer_sizes: Sequence[int] = (1, 2, 3, 4, 6, 8),
               workloads: Optional[Sequence[str]] = None
               ) -> ExperimentResult:
    n = n or env_n(40_000)
    workloads = list(workloads or workload_set("component"))
    config = experiment_config()
    runner = get_runner()
    jobs = []
    for size in buffer_sizes:
        sl = spec("streamline", buffer_size=size)
        jobs += [SimJob.single(wl, n, config, l1=STRIDE_L1, l2=(sl,),
                               probes=("alignment",))
                 for wl in workloads]
    results = iter(runner.run(jobs))
    rows = []
    for size in buffer_sizes:
        align_rates: List[float] = []
        coverages: List[float] = []
        for _ in workloads:
            res = next(results)
            counters = res.probes["alignment"]
            completed = max(1, counters["completed_streams"])
            align_rates.append(counters["alignments"] / completed)
            tp = res.single.temporal
            coverages.append(tp.coverage if tp else 0.0)
        rows.append([size, fmt(sum(align_rates) / len(align_rates)),
                     fmt(sum(coverages) / len(coverages))])
    notes = ("paper: a 3-entry buffer reaches the alignment-rate knee; "
             "bigger buffers add overhead without coverage")
    return ExperimentResult("fig12c", ["buffer_entries", "alignment_rate",
                                       "coverage"], rows, notes)


def run_fig12_intervals(n: Optional[int] = None,
                        intervals: int = 8,
                        workloads: Optional[Sequence[str]] = None
                        ) -> ExperimentResult:
    """Interval plot data: Streamline's behaviour over time per workload.

    One row per interval per workload — demand misses reaching the L2,
    prefetch issue/fill/useful counts, and metadata-store occupancy —
    plus the run's final timeliness split.  ``intervals`` picks the
    sampling period (``n // intervals``), so the table stays readable at
    any ``REPRO_N``; plotting consumers wanting finer grain should use
    the ``telemetry`` probe (or CLI) directly.
    """
    n = n or env_n(40_000)
    workloads = list(workloads or workload_set("component"))
    tcfg = TelemetryConfig(interval=max(500, n // intervals))
    config = experiment_config().scaled(telemetry=tcfg)
    runner = get_runner()
    sl = spec("streamline")
    jobs = [SimJob.single(wl, n, config, l1=STRIDE_L1, l2=(sl,),
                          probes=("telemetry",))
            for wl in workloads]
    results = runner.run(jobs)
    rows = []
    for wl, res in zip(workloads, results):
        payload = res.probes["telemetry"]
        series = payload["intervals"]
        counters = series["counters"]
        gauges = series["gauges"]
        lifecycle = payload["lifecycle"].get("streamline", {})
        issued_total = lifecycle.get("issued", 0) or 1
        for i in series["index"]:
            rows.append([
                wl, i, series["access"][i],
                counters["l2_misses"][i], counters["pf_issued"][i],
                counters["pf_fills"][i], counters["pf_useful"][i],
                int(gauges["meta_entries"][i]),
            ])
        rows.append([
            wl, "total", series["access"][-1] if series["access"] else 0,
            sum(counters["l2_misses"]), sum(counters["pf_issued"]),
            sum(counters["pf_fills"]), sum(counters["pf_useful"]),
            f"on={lifecycle.get('on_time', 0) / issued_total:.2f} "
            f"late={lifecycle.get('late', 0) / issued_total:.2f}",
        ])
    notes = (f"streamline over stride L1, interval={tcfg.interval} "
             "accesses; meta_entries is the stream store's live entry "
             "count (occupancy ramps as streams are learned); the total "
             "row adds the run's on-time/late fractions")
    return ExperimentResult(
        "fig12ts", ["workload", "interval", "access", "l2_miss",
                    "pf_issued", "pf_fills", "pf_useful", "meta_entries"],
        rows, notes)


def main() -> None:
    for fn in (run_fig12a, run_fig12b, run_fig12c, run_fig12_intervals):
        print(fn().table())
        print()


if __name__ == "__main__":
    main()
