"""Aggregate benchmark results into one report.

Collects the per-experiment tables that the benches write to
``benchmarks/results/`` and assembles them into a single markdown
document, ordered as in the paper's evaluation section, with the
DESIGN.md experiment index as the table of contents.

Usage::

    python -m repro.experiments.report [results_dir] [output.md]
"""

from __future__ import annotations

import pathlib
import sys
from typing import Dict, List, Optional

#: Paper order for the report sections.
ORDER = ["table1", "table2", "fig9", "fig9s", "fig10a", "fig10b", "fig10c",
         "fig10de", "fig10f", "fig11a", "fig11b", "fig11cd", "fig12a",
         "fig12b", "fig12c", "fig12ts", "fig13a", "fig13b", "fig13c",
         "tpmin",
         "fig14", "fig15"]

TITLES: Dict[str, str] = {
    "table1": "Table I — partitioning schemes",
    "table2": "Table II — system parameters",
    "fig9": "Figure 9 — single-core speedup",
    "fig9s": "Figure 9 (sampled) — extrapolated speedup by representative sampling",
    "fig10a": "Figure 10a — multi-core scaling",
    "fig10b": "Figure 10b — per-mix S-curve",
    "fig10c": "Figure 10c — DRAM bandwidth sensitivity",
    "fig10de": "Figure 10d/e — coverage and accuracy",
    "fig10f": "Figure 10f — prefetch degree",
    "fig11a": "Figure 11a — Berti single-core",
    "fig11b": "Figure 11b — Berti multi-core",
    "fig11cd": "Figure 11c/d — L2 regular prefetchers",
    "fig12a": "Figure 12a — stream length",
    "fig12b": "Figure 12b — redundancy and alignment",
    "fig12c": "Figure 12c — metadata buffer size",
    "fig12ts": "Figure 12 (supplement) — interval time-series",
    "fig13a": "Figure 13a — storage efficiency",
    "fig13b": "Figure 13b — metadata traffic",
    "fig13c": "Figure 13c — correlation hit rate",
    "tpmin": "Section V-D3 — TP-MIN vs MIN",
    "fig14": "Figure 14 — component ablation",
    "fig15": "Figure 15 — filtering mitigations",
}


def collect(results_dir: pathlib.Path) -> Dict[str, str]:
    """Read every ``<id>.txt`` the benches produced."""
    found = {}
    for path in sorted(results_dir.glob("*.txt")):
        found[path.stem] = path.read_text().strip()
    return found


def assemble(results: Dict[str, str],
             missing_note: bool = True) -> str:
    """Build the markdown report from collected tables."""
    lines = ["# Streamline reproduction — results report", ""]
    present = [e for e in ORDER if e in results]
    missing = [e for e in ORDER if e not in results]
    lines.append(f"{len(present)}/{len(ORDER)} experiments collected.")
    if missing and missing_note:
        lines.append(f"Missing (bench not yet run): {', '.join(missing)}.")
    lines.append("")
    for exp in present:
        lines.append(f"## {TITLES.get(exp, exp)}")
        lines.append("")
        lines.append("```")
        lines.append(results[exp])
        lines.append("```")
        lines.append("")
    extras = sorted(set(results) - set(ORDER))
    for exp in extras:
        lines.append(f"## {exp}")
        lines.append("")
        lines.append("```")
        lines.append(results[exp])
        lines.append("```")
        lines.append("")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    results_dir = pathlib.Path(
        argv[0] if argv else "benchmarks/results")
    out_path = pathlib.Path(
        argv[1] if len(argv) > 1 else "benchmarks/results/REPORT.md")
    if not results_dir.is_dir():
        print(f"no results directory at {results_dir}; run the benches "
              f"first (pytest benchmarks/ --benchmark-only)",
              file=sys.stderr)
        return 1
    report = assemble(collect(results_dir))
    out_path.write_text(report)
    print(f"wrote {out_path} ({len(report.splitlines())} lines)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
