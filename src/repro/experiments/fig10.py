"""Figure 10: multi-core scaling, per-mix wins, bandwidth, coverage,
accuracy, and degree sensitivity.

* 10a - geomean weighted speedup over the stride baseline for 1/2/4/8
  cores (paper: Streamline beats Triangel by 7.2/6.9/6.7 pp).
* 10b - per-mix S-curve at 4 cores (paper: Streamline wins 77% of
  mixes).
* 10c - 8-core speedup across DRAM bandwidth scales.
* 10d/e - prefetch coverage (+12.5 pp) and accuracy (+3.6 pp).
* 10f - speedup vs. maximum prefetch degree (Streamline peaks at its
  stream length; Triangel is degree-insensitive).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..runner import spec
from ..sim.stats import geomean
from .common import (PREFETCHER_SPECS, ExperimentResult, env_n,
                     experiment_config, fmt, quick_mode, run_matrix,
                     run_mixes, workload_set)


def run_fig10a(n_per_core: Optional[int] = None,
               mix_count: Optional[int] = None,
               core_counts: Sequence[int] = (1, 2, 4, 8)
               ) -> ExperimentResult:
    n = n_per_core or env_n(50_000)
    mixes = mix_count or (2 if quick_mode() else 4)
    rows = []
    for cores in core_counts:
        per_mix = run_mixes(cores, mixes, n, PREFETCHER_SPECS)
        tri = geomean(per_mix["triangel"])
        sl = geomean(per_mix["streamline"])
        rows.append([cores, fmt(tri), fmt(sl), fmt(sl - tri)])
    notes = ("paper deltas (streamline - triangel): "
             "+0.030/+0.072/+0.069/+0.067 for 1/2/4/8 cores")
    return ExperimentResult("fig10a", ["cores", "triangel", "streamline",
                                       "delta"], rows, notes)


def run_fig10b(n_per_core: Optional[int] = None,
               mix_count: Optional[int] = None) -> ExperimentResult:
    n = n_per_core or env_n(50_000)
    mixes = mix_count or (4 if quick_mode() else 8)
    per_mix = run_mixes(4, mixes, n, PREFETCHER_SPECS)
    pairs = sorted(zip(per_mix["streamline"], per_mix["triangel"]),
                   key=lambda p: p[0] - p[1])
    rows = [[i, fmt(sl), fmt(tri), fmt(sl - tri)]
            for i, (sl, tri) in enumerate(pairs)]
    wins = sum(1 for sl, tri in pairs if sl > tri) / len(pairs)
    notes = (f"streamline wins {wins:.0%} of {len(pairs)} 4-core mixes "
             f"(paper: 77%)")
    return ExperimentResult("fig10b", ["mix", "streamline", "triangel",
                                       "delta"], rows, notes)


def run_fig10c(n_per_core: Optional[int] = None,
               mix_count: Optional[int] = None,
               scales: Sequence[float] = (0.25, 0.5, 1.0, 2.0),
               cores: int = 4) -> ExperimentResult:
    """Speedup vs. DRAM bandwidth (paper uses an 8-core system; the
    default here is 4-core to keep the Python engine tractable --
    pass ``cores=8`` for the paper's setup)."""
    n = n_per_core or env_n(40_000)
    mixes = mix_count or (2 if quick_mode() else 3)
    rows = []
    for scale in scales:
        per_mix = run_mixes(
            cores, mixes, n, PREFETCHER_SPECS,
            config=experiment_config(num_cores=cores,
                                     dram_bandwidth_scale=scale),
            iso_config=experiment_config(num_cores=1,
                                         dram_bandwidth_scale=scale))
        rows.append([scale, fmt(geomean(per_mix["triangel"])),
                     fmt(geomean(per_mix["streamline"]))])
    notes = ("paper: Streamline holds a 1.1-3.3 pp margin across "
             "bandwidth levels")
    return ExperimentResult("fig10c", ["bw_scale", "triangel",
                                       "streamline"], rows, notes)


def run_fig10de(n: Optional[int] = None,
                workloads: Optional[Sequence[str]] = None
                ) -> ExperimentResult:
    n = n or env_n()
    workloads = list(workloads or workload_set("full"))
    runs = run_matrix(workloads, n, PREFETCHER_SPECS)
    runs = [r for r in runs if r.baseline.llc_mpki > 1.0]
    rows = []
    sums = {"triangel": [0.0, 0.0], "streamline": [0.0, 0.0]}
    for r in runs:
        row = [r.workload]
        for config in ("triangel", "streamline"):
            tp = r.results[config].temporal
            row += [fmt(tp.coverage), fmt(tp.accuracy)]
            sums[config][0] += tp.coverage
            sums[config][1] += tp.accuracy
        rows.append(row)
    k = len(runs)
    rows.append(["MEAN", fmt(sums["triangel"][0] / k),
                 fmt(sums["triangel"][1] / k),
                 fmt(sums["streamline"][0] / k),
                 fmt(sums["streamline"][1] / k)])
    d_cov = (sums["streamline"][0] - sums["triangel"][0]) / k
    d_acc = (sums["streamline"][1] - sums["triangel"][1]) / k
    notes = (f"coverage delta {d_cov:+.3f} (paper +0.125), "
             f"accuracy delta {d_acc:+.3f} (paper +0.036)")
    return ExperimentResult(
        "fig10de", ["workload", "tri_cov", "tri_acc", "sl_cov",
                    "sl_acc"], rows, notes)


def run_fig10f(n: Optional[int] = None,
               degrees: Sequence[int] = (1, 2, 4, 8),
               workloads: Optional[Sequence[str]] = None
               ) -> ExperimentResult:
    n = n or env_n(40_000)
    workloads = list(workloads or workload_set("component"))
    config = experiment_config()
    rows = []
    for degree in degrees:
        configs = {"triangel": spec("triangel", degree=degree),
                   "streamline": spec("streamline", degree=degree)}
        runs = run_matrix(workloads, n, configs, config=config)
        rows.append([degree,
                     fmt(geomean(r.speedup("triangel") for r in runs)),
                     fmt(geomean(r.speedup("streamline")
                                 for r in runs))])
    notes = ("paper: Streamline peaks at degree 4 (its stream length); "
             "Triangel is largely insensitive")
    return ExperimentResult("fig10f", ["max_degree", "triangel",
                                       "streamline"], rows, notes)


def main() -> None:
    for fn in (run_fig10a, run_fig10b, run_fig10c, run_fig10de,
               run_fig10f):
        print(fn().table())
        print()


if __name__ == "__main__":
    main()
