"""Figure 14: the component ablation study.

Adds each component on top of the unoptimized stream-based prefetcher
and removes each from the full design, reporting coverage, accuracy,
speedup, and off-chip traffic -- the four panels of the paper's figure.
Triangel is included as the reference line.  Variants are addressed as
``variant:<name>`` specs so the jobs stay serializable.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.variants import named_variants
from ..runner import VARIANT_PREFIX, spec
from ..sim.stats import geomean
from .common import (ExperimentResult, env_n, experiment_config, fmt,
                     run_matrix, workload_set)


def run(n: Optional[int] = None,
        workloads: Optional[Sequence[str]] = None) -> ExperimentResult:
    n = n or env_n(40_000)
    workloads = list(workloads or workload_set("component"))
    config = experiment_config()
    variants = {"triangel": spec("triangel")}
    for name in named_variants():
        variants[name] = spec(VARIANT_PREFIX + name)

    runs = run_matrix(workloads, n, variants, config=config)
    rows = []
    for name in variants:
        speedups, coverages, accuracies, offchip = [], [], [], []
        for r in runs:
            res = r.results[name]
            speedups.append(res.ipc / r.baseline.ipc)
            tp = res.temporal
            coverages.append(tp.coverage if tp else 0.0)
            accuracies.append(tp.accuracy if tp else 0.0)
            offchip.append(res.offchip_bytes
                           / max(1, r.baseline.offchip_bytes))
        k = len(workloads)
        rows.append([name, fmt(sum(coverages) / k),
                     fmt(sum(accuracies) / k), fmt(geomean(speedups)),
                     fmt(sum(offchip) / k)])
    notes = ("paper: unopt already beats Triangel's coverage (+7.6 pp); "
             "MB+SA and TSP+TP-MJ are synergistic pairs; removing any "
             "component costs performance")
    return ExperimentResult("fig14", ["variant", "coverage", "accuracy",
                                      "speedup", "offchip_vs_base"],
                            rows, notes)


def main() -> None:
    print(run().table())


if __name__ == "__main__":
    main()
