"""CLI: regenerate paper tables/figures from the command line.

Usage::

    python -m repro.experiments list
    python -m repro.experiments fig9
    python -m repro.experiments fig12a fig12c
    python -m repro.experiments all

Scale with ``REPRO_N`` / ``REPRO_QUICK=1`` (see experiments.common).
Parallelism and caching: ``REPRO_JOBS=<workers>`` (1 = serial),
``REPRO_CACHE=0`` to disable the on-disk result cache (see
``repro.runner``).
"""

from __future__ import annotations

import sys
import time

from . import ALL_EXPERIMENTS


def main(argv) -> int:
    if not argv or argv[0] in ("-h", "--help", "list"):
        print(__doc__)
        print("available experiments:")
        for name in ALL_EXPERIMENTS:
            print(f"  {name}")
        return 0
    targets = list(ALL_EXPERIMENTS) if argv == ["all"] else argv
    unknown = [t for t in targets if t not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}",
              file=sys.stderr)
        return 2
    for name in targets:
        t0 = time.time()
        result = ALL_EXPERIMENTS[name]()
        print(f"== {name} ({time.time() - t0:.1f}s) ==")
        print(result.table())
        print()
    from ..runner import get_runner
    runner = get_runner()
    stats = runner.cache.stats.snapshot()
    print(f"[runner] workers={runner.workers} "
          + " ".join(f"{k}={v}" for k, v in stats.items()))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
