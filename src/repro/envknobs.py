"""Validated environment knobs, shared across subsystems.

Every ``REPRO_*`` knob is parsed through these helpers so a malformed
value fails immediately with an error naming the variable and the
accepted forms — never as a bare ``int()`` traceback deep inside a
sweep, and never by silently treating junk as "on".  (The pattern
started with ``REPRO_JOBS``/``REPRO_TRACE_CACHE`` in ``repro.runner``
and ``REPRO_TELEMETRY_INTERVAL`` in ``repro.telemetry``; this module is
the shared home for it.)
"""

from __future__ import annotations

import os


def env_int(name: str, default: int, minimum: int = 1,
            maximum: int = 0) -> int:
    """An integer knob; unset/empty means ``default``.

    Values below ``minimum`` — and, when ``maximum`` is given, above it
    (``REPRO_SERVE_PORT=70000`` is not a port) — and non-integers raise
    ``ValueError`` with the variable named.
    """
    bounds = f">= {minimum}" if not maximum \
        else f"in [{minimum}, {maximum}]"
    raw = os.environ.get(name, "")
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{name} must be an integer {bounds}, got {raw!r}") from None
    if value < minimum or (maximum and value > maximum):
        raise ValueError(
            f"{name} must be an integer {bounds}, got {raw!r}")
    return value


def env_tristate(name: str):
    """A three-state knob: ``None`` (defer to the caller's default),
    ``False``, or ``True``.

    Unset, empty, and ``auto`` all mean "defer"; ``0``/``1`` force the
    knob off/on; anything else raises ``ValueError`` naming the
    variable.  This is the ``REPRO_PROGRESS`` convention (see
    :mod:`repro.obs.progress`), shared by ``REPRO_FASTPATH``.
    """
    raw = os.environ.get(name, "")
    if raw in ("", "auto"):
        return None
    if raw == "0":
        return False
    if raw == "1":
        return True
    raise ValueError(
        f"{name} must be unset, '', 'auto', '0', or '1', got {raw!r}")


def env_dir(name: str):
    """A directory-path knob: unset/empty -> ``None`` (caller default).

    The path need not exist yet (stores create their roots lazily), but
    a value naming an existing *non-directory* is rejected immediately
    with the variable named — writing a store "into" a regular file
    would otherwise surface as a confusing ``mkdir`` traceback mid-run.
    """
    raw = os.environ.get(name, "")
    if not raw:
        return None
    if os.path.exists(raw) and not os.path.isdir(raw):
        raise ValueError(
            f"{name} must name a directory (existing or creatable), "
            f"got non-directory {raw!r}")
    return raw


def _valid_url(raw: str) -> bool:
    from urllib.parse import urlsplit
    parts = urlsplit(raw)
    return parts.scheme in ("http", "https") and bool(parts.hostname)


def env_url(name: str):
    """An HTTP base-URL knob: unset/empty/``0`` -> ``None`` (off).

    This is the serve-client convention (``REPRO_SERVE_URL``): by
    default everything executes in-process, ``0`` forces that
    explicitly, and a value must be a well-formed ``http(s)://host[:port]``
    base URL — anything else raises ``ValueError`` naming the variable,
    instead of surfacing as a ``urllib`` traceback mid-experiment.
    Trailing slashes are stripped so path joins are uniform.
    """
    raw = os.environ.get(name, "")
    if raw in ("", "0"):
        return None
    if not _valid_url(raw):
        raise ValueError(
            f"{name} must be unset, '0', or an http(s)://host[:port] "
            f"base URL, got {raw!r}")
    return raw.rstrip("/")


def env_url_list(name: str):
    """A comma-separated HTTP URL-list knob: unset/empty -> ``None``.

    This is the shard-ring convention (``REPRO_SERVE_SHARDS``): the full
    ordered list of server base URLs that split the fingerprint
    keyspace.  Every element must be a well-formed URL and the list must
    not contain duplicates (two shard slots at one address cannot both
    own their hash range) — violations raise ``ValueError`` naming the
    variable.
    """
    raw = os.environ.get(name, "")
    if not raw:
        return None
    urls = tuple(part.strip().rstrip("/") for part in raw.split(","))
    for url in urls:
        if not _valid_url(url):
            raise ValueError(
                f"{name} must be a comma-separated list of "
                f"http(s)://host[:port] base URLs, got element {url!r}")
    if len(set(urls)) != len(urls):
        raise ValueError(
            f"{name} must not repeat an address, got {raw!r}")
    return urls


def env_flag(name: str, default: bool = False) -> bool:
    """A strict boolean knob: unset/empty -> ``default``, ``0``/``1``
    -> off/on, anything else -> ``ValueError``.

    Strictness matters for flags: ``REPRO_QUICK=yes`` silently meaning
    "on" (or, worse, a typo like ``REPRO_PROFILE=l`` meaning "on") hides
    the user's intent; rejecting junk surfaces it.
    """
    raw = os.environ.get(name, "")
    if raw == "":
        return default
    if raw == "0":
        return False
    if raw == "1":
        return True
    raise ValueError(
        f"{name} must be unset, '', '0', or '1', got {raw!r}")
