"""repro: a from-scratch reproduction of the Streamline temporal prefetcher.

Streamline ("Streamlined On-Chip Temporal Prefetching", Duong & Lin,
HPCA 2026) is an on-chip temporal prefetcher built on a stream-based
metadata representation.  This package contains:

* :mod:`repro.core` - the Streamline prefetcher itself (the paper's
  contribution) and its components: stream entries, stream alignment,
  tagged set-partitioning with filtered indexing, TP-Mockingjay
  replacement, utility-aware dynamic partitioning, stability-based degree
  control, and ablation variants.
* :mod:`repro.memory` - the cache/DRAM substrate.
* :mod:`repro.prefetchers` - baselines: IP-stride, Berti, IPCP, Bingo,
  SPP-PPF, Triage, and Triangel.
* :mod:`repro.sim` - trace format, single- and multi-core engines, stats.
* :mod:`repro.workloads` - synthetic SPEC06/SPEC17/GAP stand-ins.
* :mod:`repro.analysis` - offline analyses (TP-MIN, redundancy, Table I).
* :mod:`repro.experiments` - one module per paper table/figure.

Quickstart::

    from repro import quick_compare
    print(quick_compare("gap.pr", n=50_000))
"""

from .sim import SimResult, SystemConfig, run_multicore, run_single
from .sim.trace import Trace
from .version import __version__

__all__ = ["SimResult", "SystemConfig", "run_multicore", "run_single",
           "Trace", "__version__", "quick_compare"]


def quick_compare(workload: str, n: int = 50_000, seed: int = 1234):
    """Run baseline / Triangel / Streamline on one workload.

    Returns a dict of configuration name -> :class:`SimResult`; a
    convenience wrapper for interactive exploration (see
    ``examples/quickstart.py``).
    """
    from .core.streamline import StreamlinePrefetcher
    from .experiments.common import experiment_config
    from .prefetchers.stride import StridePrefetcher
    from .prefetchers.triangel import TriangelPrefetcher
    from .workloads import make

    trace = make(workload, n, seed)
    cfg = experiment_config()  # the 1/4-scale hierarchy the suite targets
    stride = StridePrefetcher
    return {
        "baseline": run_single(trace, cfg, l1_prefetcher=stride),
        "triangel": run_single(trace, cfg, l1_prefetcher=stride,
                               l2_prefetchers=[TriangelPrefetcher]),
        "streamline": run_single(trace, cfg, l1_prefetcher=stride,
                                 l2_prefetchers=[StreamlinePrefetcher]),
    }
