"""Multi-core engine: N cores sharing the LLC and DRAM.

Cores run their own traces and clocks; the engine interleaves them by
always stepping the core whose local clock is furthest behind, so shared
structures (LLC contents, LLC port, DRAM channels) see accesses in an
order consistent with the per-core clocks.  This is the standard
approximation for trace-driven multi-core simulation and captures the
effects the paper's multi-core results hinge on: LLC capacity contention
between data and (per-core) metadata partitions, LLC port contention
from metadata traffic, and DRAM bandwidth contention from inaccurate
prefetching.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..prefetchers.base import Prefetcher
from .config import SystemConfig
from .engine import CoreModel, PrefetcherFactory, _collect_result, \
    build_core, build_uncore
from .stats import SimResult
from .trace import Trace


def _biased(trace: Trace, bias: int):
    """Yield trace records with every address offset by ``bias``."""
    for pc, addr, is_write, gap, dep in trace:
        yield pc, addr + bias, is_write, gap, dep


@dataclass
class MulticoreResult:
    """Per-core results of one multi-core run."""

    cores: List[SimResult]

    def weighted_speedup(self, singles: Sequence[SimResult]) -> float:
        """Sum of per-core IPC ratios vs. isolated single-core runs."""
        if len(singles) != len(self.cores):
            raise ValueError("need one single-core baseline per core")
        return sum(c.ipc / s.ipc for c, s in zip(self.cores, singles))

    def ipc_sum(self) -> float:
        return sum(c.ipc for c in self.cores)


def run_multicore(traces: Sequence[Trace],
                  config: Optional[SystemConfig] = None,
                  l1_prefetcher: Optional[PrefetcherFactory] = None,
                  l2_prefetchers: Sequence[PrefetcherFactory] = ()
                  ) -> MulticoreResult:
    """Simulate ``traces`` (one per core) on a shared-LLC system.

    ``l1_prefetcher`` / ``l2_prefetchers`` are factories invoked once per
    core, so every core gets private prefetcher state (as in the paper:
    per-core training units, shared LLC metadata capacity).
    """
    num_cores = len(traces)
    if num_cores == 0:
        raise ValueError("need at least one trace")
    config = (config or SystemConfig()).scaled(num_cores=num_cores)
    uncore = build_uncore(config)
    cores = [build_core(i, config, uncore, l1_prefetcher, l2_prefetchers)
             for i in range(num_cores)]
    models = [CoreModel(config) for _ in range(num_cores)]
    # Each core gets a private address-space bias: the synthetic
    # workloads reuse the same virtual regions, and without the bias two
    # cores running (say) lbm would alias in the shared LLC and fake
    # sharing/thrashing that multiprogrammed mixes do not have.
    iters = [_biased(t, i << 44) for i, t in enumerate(traces)]
    warmups = [int(len(t) * config.warmup_fraction) for t in traces]
    counts = [0] * num_cores
    warm_marks = [None] * num_cores  # (clock, instrs) at warm-up end
    done = [False] * num_cores

    # Min-heap keyed by core-local clock keeps shared-resource ordering
    # consistent across cores.
    heap = [(0.0, i) for i in range(num_cores)]
    heapq.heapify(heap)
    warmed = 0
    while heap:
        _, i = heapq.heappop(heap)
        try:
            pc, addr, is_write, gap, dep = next(iters[i])
        except StopIteration:
            done[i] = True
            continue
        model = models[i]
        model.advance(gap)
        now = model.issue_time(dep)
        latency = cores[i].access(pc, addr, is_write, now)
        model.complete_access(now, latency, is_write)
        counts[i] += 1
        if counts[i] == warmups[i] and warm_marks[i] is None:
            model.drain()
            warm_marks[i] = (model.clock, model.instrs)
            cores[i].reset_stats()
            warmed += 1
            if warmed == num_cores:
                uncore.reset_stats()
                for pf in uncore.prefetchers.values():
                    reset = getattr(pf, "reset_epoch_stats", None)
                    if reset is not None:
                        reset()
        heapq.heappush(heap, (model.clock, i))

    results = []
    for i in range(num_cores):
        model = models[i]
        model.drain()
        mark = warm_marks[i] or (0.0, 0)
        cycles = model.clock - mark[0]
        instrs = model.instrs - mark[1]
        results.append(_collect_result(
            traces[i].name, cores[i], model, cycles, instrs,
            len(traces[i]) - warmups[i]))
    return MulticoreResult(cores=results)
