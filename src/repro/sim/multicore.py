"""Multi-core front-end: N cores sharing the LLC and DRAM.

All the machinery — build, the clock-ordered interleave, warm-up, and
collection — lives in :class:`repro.sim.engine.Engine`; this module only
adds what is specific to multiprogrammed mixes: a disjoint per-core
address region for each trace, and mix-level metrics (weighted speedup,
IPC throughput) over the per-core results.

The per-core regions matter because the synthetic workloads reuse the
same virtual ranges: without separation, two cores running (say) lbm
would alias in the shared LLC and fake sharing/thrashing that
multiprogrammed mixes do not have.  Each trace is folded into its core's
region by masking to ``REGION_BITS`` and installing the core index in
the bits above — provably disjoint for any footprint, unlike a raw
``addr + bias`` offset, which can collide once a trace's span crosses a
region boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from ..tracestream.stages import bias, chunks_of, records
from .config import SystemConfig
from .engine import Engine, PrefetcherFactory, Record
from .stats import SimResult
from .trace import TraceSource

#: Bits of private address space per core.  Every biased address is
#: ``(addr mod 2**REGION_BITS) | core << REGION_BITS``: region
#: membership is determined by the high bits alone, so two cores can
#: never touch the same block no matter their footprints.
REGION_BITS = 44
REGION_MASK = (1 << REGION_BITS) - 1


def _biased(trace: TraceSource, core: int) -> Iterator[Record]:
    """Yield trace records folded into ``core``'s private region.

    Runs as a chunk pipeline — the fold is one vectorized mask-or per
    chunk (:func:`repro.tracestream.stages.bias`) instead of a
    per-record Python expression, and a streaming trace source is
    consumed chunk by chunk in constant memory.
    """
    return records(bias(chunks_of(trace), core, REGION_BITS))


@dataclass
class MulticoreResult:
    """Per-core results of one multi-core run."""

    cores: List[SimResult]

    def weighted_speedup(self, singles: Sequence[SimResult]) -> float:
        """Sum of per-core IPC ratios vs. isolated single-core runs."""
        if len(singles) != len(self.cores):
            raise ValueError("need one single-core baseline per core")
        return sum(c.ipc / s.ipc for c, s in zip(self.cores, singles))

    def ipc_sum(self) -> float:
        return sum(c.ipc for c in self.cores)


def build_multicore(traces: Sequence[TraceSource],
                    config: Optional[SystemConfig] = None,
                    l1_prefetcher: Optional[PrefetcherFactory] = None,
                    l2_prefetchers: Sequence[PrefetcherFactory] = ()
                    ) -> Engine:
    """Build (but do not run) the shared-LLC engine for a mix."""
    num_cores = len(traces)
    if num_cores == 0:
        raise ValueError("need at least one trace")
    config = (config or SystemConfig()).scaled(num_cores=num_cores)
    return Engine(traces, config, l1_prefetcher, l2_prefetchers,
                  streams=[_biased(t, i) for i, t in enumerate(traces)])


def run_multicore(traces: Sequence[TraceSource],
                  config: Optional[SystemConfig] = None,
                  l1_prefetcher: Optional[PrefetcherFactory] = None,
                  l2_prefetchers: Sequence[PrefetcherFactory] = ()
                  ) -> MulticoreResult:
    """Simulate ``traces`` (one per core) on a shared-LLC system.

    ``l1_prefetcher`` / ``l2_prefetchers`` are factories invoked once per
    core, so every core gets private prefetcher state (as in the paper:
    per-core training units, shared LLC metadata capacity).
    """
    engine = build_multicore(traces, config, l1_prefetcher, l2_prefetchers)
    return MulticoreResult(cores=engine.run().collect())
