"""Trace-driven engine with a lightweight OoO timing proxy.

The core model is deliberately simple (see DESIGN.md): instructions issue
at ``commit_width`` per cycle; loads occupy one of ``mlp`` miss slots
until their data returns, and a load whose data is outstanding blocks
retirement once the ROB fills.  This yields the two effects temporal
prefetching papers rely on: (1) covered misses shorten load latency, and
(2) memory-level parallelism caps how much latency overlaps.

One :class:`Engine` drives N cores over one shared uncore: with one core
the min-heap interleave degenerates to the plain serial loop, and with
several it always steps the core whose local clock is furthest behind,
so shared structures (LLC contents, LLC port, DRAM channels) see
accesses in an order consistent with the per-core clocks.
:func:`run_single` and :mod:`repro.sim.multicore` are both thin
front-ends over the same build/step/collect code.

The engine owns warm-up handling: statistics are reset after the warm-up
fraction so every reported number describes steady state.
"""

from __future__ import annotations

import heapq
from collections import deque
from itertools import islice
from typing import (Callable, Dict, Iterable, Iterator, List, Optional,
                    Sequence, Tuple)

from ..memory.cache import Cache
from ..memory.dram import DRAM
from ..memory.events import EventBus
from ..memory.hierarchy import CoreHierarchy, SharedUncore
from ..obs import profile as obs_profile
from ..prefetchers.base import Prefetcher
from ..telemetry import TelemetryHarness
from ..tracestream.chunk import MARK_CKPT, Mark
from ..tracestream.stages import chunks_of, insert_marks
from ..tracestream.stages import records as stream_records
from . import fastpath
from .config import SystemConfig
from .stats import PrefetchReport, SimResult
from .trace import TraceSource

PrefetcherFactory = Callable[[], Prefetcher]

#: One trace record: (pc, addr, is_write, gap, dep).
Record = Tuple[int, int, bool, int, bool]


class CoreModel:
    """The timing proxy for one core."""

    def __init__(self, config: SystemConfig):
        self.width = config.commit_width
        self.rob = config.rob_size
        self.mlp = config.mlp
        self.clock = 0.0
        self.instrs = 0
        self._outstanding: deque = deque()  # (completion_cycle, instr_idx)
        self._last_load_completion = 0.0

    def advance(self, gap: int) -> float:
        """Dispatch ``gap`` non-memory instructions plus the memory op."""
        self.instrs += gap + 1
        self.clock += (gap + 1) / self.width
        # ROB back-pressure: cannot run further than `rob` instructions
        # past the oldest incomplete load.
        while self._outstanding:
            completion, idx = self._outstanding[0]
            if self.instrs - idx <= self.rob:
                break
            self.clock = max(self.clock, completion)
            self._outstanding.popleft()
        return self.clock

    def issue_time(self, dep: bool) -> float:
        """Cycle at which the next memory op can issue.

        A dependent load (``dep``) waits for the previous load's data:
        this serialization is what makes pointer chases latency-bound,
        and it is also the time at which prefetch timeliness must be
        judged (an in-flight prefetch may complete during the wait).
        """
        if dep:
            return max(self.clock, self._last_load_completion)
        return self.clock

    def complete_access(self, issue: float, latency: float,
                        is_write: bool) -> None:
        """Register the memory op's latency with the MLP window."""
        if is_write:
            return  # stores retire via the store buffer
        if len(self._outstanding) >= self.mlp:
            completion, _ = self._outstanding.popleft()
            self.clock = max(self.clock, completion)
        completion = issue + latency
        self._last_load_completion = completion
        self._outstanding.append((completion, self.instrs))

    def drain(self) -> float:
        """Wait for every outstanding load; returns the final clock."""
        while self._outstanding:
            completion, _ = self._outstanding.popleft()
            self.clock = max(self.clock, completion)
        return self.clock

    # -- checkpointing --------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        return {
            "clock": self.clock,
            "instrs": self.instrs,
            "outstanding": [[c, i] for c, i in self._outstanding],
            "last_load_completion": self._last_load_completion,
        }

    def load_state(self, state: Dict[str, object]) -> None:
        self.clock = float(state["clock"])
        self.instrs = int(state["instrs"])
        self._outstanding = deque((float(c), int(i))
                                  for c, i in state["outstanding"])
        self._last_load_completion = float(state["last_load_completion"])


def build_uncore(config: SystemConfig) -> SharedUncore:
    """Construct the shared LLC + DRAM for a system."""
    llc = Cache("LLC", config.llc_size, config.llc_ways, config.llc_latency,
                replacement=config.llc_replacement)
    dram = DRAM(channels=config.channels,
                mt_per_sec=config.dram_mt_per_sec,
                base_latency=config.dram_base_latency,
                bandwidth_scale=config.dram_bandwidth_scale)
    return SharedUncore(llc, dram, num_cores=config.num_cores)


def build_core(core_id: int, config: SystemConfig,
               uncore: SharedUncore,
               l1_prefetcher: Optional[PrefetcherFactory] = None,
               l2_prefetchers: Sequence[PrefetcherFactory] = (),
               profiler: Optional[obs_profile.SpanProfiler] = None
               ) -> CoreHierarchy:
    """Construct one core's private hierarchy and attach its prefetchers."""
    l1d = Cache("L1D", config.l1d_size, config.l1d_ways, config.l1d_latency,
                replacement="lru")
    l2 = Cache("L2", config.l2_size, config.l2_ways, config.l2_latency,
               replacement="lru")
    core = CoreHierarchy(core_id, l1d, l2, uncore, profiler=profiler)
    if l1_prefetcher is not None:
        core.attach_l1_prefetcher(l1_prefetcher())
    for factory in l2_prefetchers:
        core.attach_l2_prefetcher(factory())
    return core


def collect_result(workload: str, core: CoreHierarchy, model: CoreModel,
                   cycles: float, instructions: int, accesses: int,
                   events: Optional[Dict[str, int]] = None) -> SimResult:
    """Assemble one core's steady-state statistics into a SimResult."""
    uncore = core.uncore
    reports: List[PrefetchReport] = []
    pfs = list(core.l2_prefetchers)
    if core.l1_prefetcher is not None:
        pfs.insert(0, core.l1_prefetcher)
    for pf in pfs:
        pf.finalize(model.clock)
        s = pf.stats
        rep = PrefetchReport(
            name=pf.name, issued=s.issued, useful=s.useful,
            useless=s.useless_evictions, dropped=s.dropped,
            accuracy=(s.useful / s.issued if s.issued else 0.0),
            coverage=s.coverage(core.uncovered_misses))
        controller = getattr(pf, "controller", None)
        if controller is not None:
            rep.metadata_reads = controller.traffic.reads
            rep.metadata_writes = controller.traffic.writes
            rep.metadata_rearrange_moves = controller.traffic.rearrange_moves
        reports.append(rep)
    kilo_instr = instructions / 1000.0 if instructions else 1.0
    return SimResult(
        workload=workload,
        cycles=cycles,
        instructions=instructions,
        accesses=accesses,
        l1d_miss_rate=core.l1d.stats.miss_rate,
        l2_miss_rate=core.l2.stats.miss_rate,
        llc_miss_rate=uncore.llc.stats.miss_rate,
        llc_mpki=uncore.llc.stats.misses / kilo_instr,
        uncovered_misses=core.uncovered_misses,
        dram_reads=uncore.dram.stats.reads,
        dram_writes=uncore.dram.stats.writes,
        dram_queue_delay=uncore.dram.stats.avg_queue_delay,
        prefetchers=reports,
        events=dict(events) if events is not None else None,
    )


class Engine:
    """One simulated system: N cores, their traces, and the shared uncore.

    Build → :meth:`run` → :meth:`collect`.  The engine is parametric
    over core count: :func:`run_single` wraps one-trace engines and
    :func:`repro.sim.multicore.run_multicore` wraps N-trace engines
    around the very same loop, which steps whichever core's local clock
    is furthest behind (degenerating to the plain serial loop at N=1).
    """

    def __init__(self, traces: Sequence[TraceSource],
                 config: Optional[SystemConfig] = None,
                 l1_prefetcher: Optional[PrefetcherFactory] = None,
                 l2_prefetchers: Sequence[PrefetcherFactory] = (),
                 streams: Optional[Sequence[Iterable[Record]]] = None,
                 warmup_counts: Optional[Sequence[int]] = None):
        """``streams`` optionally overrides each core's record stream
        (the multicore front-end passes region-biased views of the
        traces); warm-up lengths and workload names still come from
        ``traces``.

        ``warmup_counts`` overrides the per-core warm-up boundary in
        *records* (instead of ``len(trace) * config.warmup_fraction``).
        Windowed simulations (:mod:`repro.sampling`) use it to warm up
        over exactly the bounded prefix preceding a representative
        interval; a count of 0 means "no warm-up boundary" with the same
        semantics as a zero-length fractional warm-up.
        """
        self.traces = list(traces)
        if not self.traces:
            raise ValueError("need at least one trace")
        num_cores = len(self.traces)
        config = config or SystemConfig()
        if config.num_cores != num_cores:
            config = config.scaled(num_cores=num_cores)
        self.config = config
        # The active span profiler (None unless REPRO_PROFILE=1): captured
        # at build time so the hot path branches on a bound attribute.
        self._prof = obs_profile.current()
        self.uncore = build_uncore(config)
        self.bus: EventBus = self.uncore.bus
        self.cores = [build_core(i, config, self.uncore, l1_prefetcher,
                                 l2_prefetchers, profiler=self._prof)
                      for i in range(num_cores)]
        self.models = [CoreModel(config) for _ in range(num_cores)]
        if streams is not None and len(streams) != num_cores:
            raise ValueError("need one record stream per trace")
        self._streams = streams
        if warmup_counts is not None:
            if len(warmup_counts) != num_cores:
                raise ValueError("need one warm-up count per trace")
            for w, t in zip(warmup_counts, self.traces):
                if not 0 <= w < len(t):
                    raise ValueError(
                        f"warm-up count {w} out of range for trace of "
                        f"length {len(t)}")
        self._warmup_counts = list(warmup_counts) \
            if warmup_counts is not None else None
        self._warm_marks: List[Optional[Tuple[float, int]]] = \
            [None] * num_cores
        self._ran = False
        # Incremental-stepping state, built lazily by _start() so a
        # fresh engine can be restored from a checkpoint instead.
        self._started = False
        self._iters: List[Iterator[Record]] = []
        self._warmups: List[int] = []
        self._counts: List[int] = []
        self._warmed = 0
        self._heap: List[Tuple[float, int]] = []
        self._measured_steps = 0
        self._mark_every = 0
        self._on_mark: Optional[Callable[["Engine"], None]] = None
        # Observability: pure bus subscribers, built only on opt-in.
        # The harness is reset at the warm-up boundary alongside the
        # uncore/bus counters and finalized in collect().
        self.telemetry: Optional[TelemetryHarness] = None
        if config.telemetry is not None:
            names = {oid: pf.name
                     for oid, pf in self.uncore.prefetchers.items()}
            self.telemetry = TelemetryHarness(
                self.bus, config.telemetry, num_cores=num_cores,
                owner_names=names, gauges=self._telemetry_gauges())
        # Execution strategy (never semantics): when enabled, run() and
        # run_warmup() delegate to a bit-identical batched loop.  The
        # span profiler needs the scalar path's per-span hooks, so that
        # combination is rejected loudly rather than silently degraded.
        self._fastpath_on = fastpath.resolve(config)
        if self._fastpath_on and self._prof is not None:
            fastpath.report_profiler_conflict()
            self._fastpath_on = False
        self._fastloop: Optional[object] = None

    def _telemetry_gauges(self) -> Dict[str, Callable[[], float]]:
        """Pull-based gauges the interval sampler reads at snapshot time."""
        prefetchers = self.uncore.prefetchers

        def meta_entries() -> float:
            total = 0
            for pf in prefetchers.values():
                store = getattr(pf, "store", None)
                if store is not None and hasattr(store, "valid_entries"):
                    total += store.valid_entries()
            return float(total)

        def meta_bytes() -> float:
            total = 0
            for pf in prefetchers.values():
                controller = getattr(pf, "controller", None)
                if controller is not None:
                    total += controller.current_bytes
            return float(total)

        return {"meta_entries": meta_entries, "meta_bytes": meta_bytes,
                "llc_occupancy": self.uncore.llc.occupancy}

    @property
    def num_cores(self) -> int:
        return len(self.cores)

    @property
    def l2_prefetchers(self) -> List[Prefetcher]:
        """All attached L2 prefetchers, in attach order across cores."""
        pfs: List[Prefetcher] = []
        for core in self.cores:
            pfs.extend(core.l2_prefetchers)
        return pfs

    @property
    def prefetchers(self) -> List[Prefetcher]:
        """Every registered prefetcher (L1 and L2), registration order."""
        return list(self.uncore.prefetchers.values())

    # -- stepping ------------------------------------------------------------

    def _start(self) -> None:
        """Materialize iterators and the scheduling heap (idempotent)."""
        if self._started:
            return
        self._started = True
        self._iters = [
            iter(s) for s in (self._streams if self._streams is not None
                              else self.traces)]
        self._warmups = list(self._warmup_counts) \
            if self._warmup_counts is not None \
            else [int(len(t) * self.config.warmup_fraction)
                  for t in self.traces]
        self._counts = [0] * self.num_cores
        self._warmed = 0
        # Min-heap keyed by core-local clock keeps shared-resource
        # ordering consistent across cores.
        self._heap = [(0.0, i) for i in range(self.num_cores)]
        heapq.heapify(self._heap)

    def _step(self) -> bool:
        """Process one trace record on the furthest-behind core.

        Returns False when every core's stream is exhausted.  Between
        steps, each heap entry equals its core's current local clock,
        which is what makes a mid-run snapshot restorable: the heap can
        be rebuilt from the model clocks alone.
        """
        while self._heap:
            _, i = heapq.heappop(self._heap)
            try:
                pc, addr, is_write, gap, dep = next(self._iters[i])
            except StopIteration:
                continue
            model = self.models[i]
            model.advance(gap)
            now = model.issue_time(dep)
            latency = self.cores[i].access(pc, addr, is_write, now)
            model.complete_access(now, latency, is_write)
            self._counts[i] += 1
            if self._counts[i] == self._warmups[i] and \
                    self._warm_marks[i] is None:
                model.drain()
                self._warm_marks[i] = (model.clock, model.instrs)
                self.cores[i].reset_stats()
                self._warmed += 1
                if self._warmed == self.num_cores:
                    self.uncore.reset_stats()
                    for pf in self.uncore.prefetchers.values():
                        reset = getattr(pf, "reset_epoch_stats", None)
                        if reset is not None:
                            reset()
                    if self.telemetry is not None:
                        self.telemetry.reset()
            heapq.heappush(self._heap, (model.clock, i))
            return True
        return False

    @property
    def warmed(self) -> bool:
        """True once every core has crossed its warm-up boundary."""
        return self._started and self._warmed == self.num_cores

    def _fastloop_for_run(self):
        """The fast loop to delegate stepping to, or None (scalar path).

        Built lazily on first use so every subscription (prefetcher
        trainers, duelers, telemetry) is already wired when the loop
        freezes its dispatch plans.  ``False`` caches an unsupported
        engine shape so build() runs at most once.
        """
        if not self._fastpath_on or self._mark_every:
            return None
        if self._fastloop is None:
            self._fastloop = fastpath.FastLoop.build(self) or False
        return self._fastloop or None

    def run_warmup(self) -> "Engine":
        """Drive every core exactly to the warm-up boundary, then stop.

        The engine state at this point is what the checkpoint layer
        snapshots: everything after it is the measured region.  No-op
        when any core has a zero-length warm-up (the boundary would
        never fire, matching :meth:`run`'s behaviour).
        """
        if self._ran:
            raise RuntimeError("Engine.run() already completed")
        self._start()
        if any(w == 0 for w in self._warmups):
            return self
        fl = self._fastloop_for_run()
        if fl is not None:
            fl.run(stop_at_warm=True)
            return self
        prof = self._prof
        if prof is not None:
            prof.start("warmup")
        try:
            while self._warmed < self.num_cores:
                if not self._step():
                    break
        finally:
            if prof is not None:
                prof.stop()
        return self

    def set_mark_hook(self, every: int,
                      callback: Callable[["Engine"], None]) -> None:
        """Invoke ``callback(self)`` every ``every`` measured steps
        (periodic progress marks for resumable runs)."""
        if every < 1:
            raise ValueError("mark interval must be >= 1")
        self._mark_every = every
        self._on_mark = callback

    def _install_inband_marks(self) -> bool:
        """Move the periodic progress mark in band; True on success.

        Single-core, trace-backed engines rebuild their record stream
        as a marked chunk pipeline: :class:`Mark` items at exactly the
        absolute positions the scalar modulus would fire at ride the
        stream and invoke the hook at pull time.  That is the same
        between-steps state point — counts/models are untouched while
        the pull is in flight and the heap is rebuilt from model clocks
        on restore — so snapshots taken by the hook are bit-identical
        to the scalar path's.  Multicore and externally-streamed
        engines keep the scalar modulus (the pipeline would have to
        split per-core position accounting).
        """
        if self._streams is not None or self.num_cores != 1:
            return False
        trace, warm = self.traces[0], self._warmups[0]
        if warm == 0:
            # The scalar path never counts measured steps without a
            # warm boundary, so there are no marks to place.
            return True
        hook = self._on_mark
        assert hook is not None
        start = self._counts[0]
        # The scalar modulus counts the warm-boundary step itself as
        # measured step 1 (its stats are reset after processing), so it
        # fires after the step that brings counts to warm-1+k*every.
        # The in-band mark at position p fires during the pull of
        # record p — same counts, same point between steps.
        marks = [Mark(MARK_CKPT, p)
                 for p in range(warm - 1 + self._mark_every,
                                len(trace) + 1, self._mark_every)
                 if p > start]

        def fire(_mark: Mark) -> None:
            hook(self)

        self._iters[0] = stream_records(
            insert_marks(chunks_of(trace, start=start), marks,
                         base=start),
            on_mark=fire)
        return True

    def run(self) -> "Engine":
        """Drive every core through its trace, handling warm-up resets."""
        if self._ran:
            raise RuntimeError("Engine.run() may only be called once")
        self._start()
        fl = self._fastloop_for_run()
        if fl is not None:
            fl.run(stop_at_warm=False)
            self._ran = True
            return self
        inband = False
        if self._mark_every and self._on_mark is not None:
            inband = self._install_inband_marks()
        prof = self._prof
        if prof is not None:
            prof.start("measure")
        try:
            while self._step():
                if self._mark_every and self._warmed == self.num_cores:
                    # Counted on both paths: measured_steps is part of
                    # the snapshot, so in-band runs must keep it
                    # bit-identical even though their firing comes from
                    # the stream.
                    self._measured_steps += 1
                    if not inband and \
                            self._measured_steps % self._mark_every == 0 \
                            and self._on_mark is not None:
                        self._on_mark(self)
        finally:
            if prof is not None:
                prof.stop()
        self._ran = True
        return self

    # -- checkpointing ---------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Snapshot every mutable piece of the simulated system.

        Valid only between steps (engine code never calls it mid-step).
        The trace iterators are not serialized; a restore re-derives
        them by consuming ``counts[i]`` records from fresh streams, so
        the restoring engine must be built from the same traces/config.
        """
        return {
            "counts": list(self._counts),
            "warmed": self._warmed,
            "measured_steps": self._measured_steps,
            "warm_marks": [list(m) if m is not None else None
                           for m in self._warm_marks],
            "models": [m.state_dict() for m in self.models],
            "cores": [c.state_dict() for c in self.cores],
            "uncore": self.uncore.state_dict(),
            "prefetchers": [[pf.name, pf.state_dict()]
                            for pf in self.uncore.prefetchers.values()],
            "telemetry": (self.telemetry.state_dict()
                          if self.telemetry is not None else None),
        }

    def load_state(self, state: Dict[str, object]) -> None:
        """Restore a snapshot into a freshly built engine.

        The engine must have been constructed from the same traces,
        config, and prefetcher factories as the one snapshotted;
        mismatched shapes raise before any state is touched.
        """
        if self._started or self._ran:
            raise RuntimeError(
                "load_state() requires a fresh engine (not yet stepped)")
        counts = [int(c) for c in state["counts"]]
        if len(counts) != self.num_cores or \
                len(state["models"]) != self.num_cores or \
                len(state["cores"]) != self.num_cores:
            raise ValueError("snapshot core count does not match engine")
        snap_names = [name for name, _ in state["prefetchers"]]
        own_names = [pf.name for pf in self.uncore.prefetchers.values()]
        if snap_names != own_names:
            raise ValueError(
                f"snapshot prefetchers {snap_names} != engine "
                f"prefetchers {own_names}")
        self._start()
        for i, count in enumerate(counts):
            if count:
                if self._streams is None:
                    # O(1) chunk-level seek: reposition the source
                    # instead of draining `count` records through the
                    # iterator (decisive for streaming 100M+ traces).
                    self._iters[i] = self.traces[i].iter_from(count)
                else:
                    # External streams only expose iteration: consume
                    # exactly `count` records (the snapshot already
                    # processed them).
                    next(islice(self._iters[i], count - 1, count), None)
        self._counts = counts
        self._warmed = int(state["warmed"])
        self._measured_steps = int(state["measured_steps"])
        self._warm_marks = [
            (float(m[0]), int(m[1])) if m is not None else None
            for m in state["warm_marks"]]
        for model, mstate in zip(self.models, state["models"]):
            model.load_state(mstate)
        for core, cstate in zip(self.cores, state["cores"]):
            core.load_state(cstate)
        self.uncore.load_state(state["uncore"])
        for pf, (_, pstate) in zip(self.uncore.prefetchers.values(),
                                   state["prefetchers"]):
            pf.load_state(pstate)
        if self.telemetry is not None:
            if state["telemetry"] is not None:
                self.telemetry.load_state(state["telemetry"])
            else:
                # Snapshot came from a telemetry-off run (observers are
                # bit-neutral); start the harness clean.
                self.telemetry.reset()
        # Rebuild the scheduler: between steps every heap entry equals
        # its model's clock, and exhausted cores would pop straight to
        # StopIteration, so they can simply be left out.
        lengths = [len(t) for t in self.traces]
        self._heap = [(self.models[i].clock, i)
                      for i in range(self.num_cores)
                      if counts[i] < lengths[i]]
        heapq.heapify(self._heap)

    # -- results ---------------------------------------------------------------

    def collect(self) -> List[SimResult]:
        """Drain every core and assemble per-core steady-state results.

        Single-core engines also attach the event-bus counters to the
        result (``SimResult.events``) for observability and the
        conservation checks.
        """
        prof = self._prof
        if prof is not None:
            prof.start("collect")
        try:
            return self._collect_impl()
        finally:
            if prof is not None:
                prof.stop()

    def _collect_impl(self) -> List[SimResult]:
        if self.telemetry is not None:
            self.telemetry.finalize()
        events = self.bus.counts_flat() if self.num_cores == 1 else None
        results: List[SimResult] = []
        for i, core in enumerate(self.cores):
            model = self.models[i]
            model.drain()
            mark = self._warm_marks[i] or (0.0, 0)
            cycles = model.clock - mark[0]
            instrs = model.instrs - mark[1]
            warmup = self._warmups[i] if self._started else \
                int(len(self.traces[i]) * self.config.warmup_fraction)
            results.append(collect_result(
                self.traces[i].name, core, model, cycles, instrs,
                len(self.traces[i]) - warmup, events=events))
        # Teardown: release observer subscriptions so a finished engine
        # holds no live handlers on the bus.  State (stats, stores,
        # telemetry payloads) stays readable for post-run probes; all
        # detach paths are idempotent, so collect() stays re-callable.
        for core in self.cores:
            core.detach_prefetchers()
        if self.telemetry is not None:
            self.telemetry.detach()
        return results


def run_single(trace: TraceSource, config: Optional[SystemConfig] = None,
               l1_prefetcher: Optional[PrefetcherFactory] = None,
               l2_prefetchers: Sequence[PrefetcherFactory] = ()
               ) -> SimResult:
    """Simulate one trace on a one-core system; returns steady-state stats."""
    config = config or SystemConfig()
    if config.num_cores != 1:
        config = config.scaled(num_cores=1)
    engine = Engine([trace], config, l1_prefetcher, l2_prefetchers)
    return engine.run().collect()[0]
