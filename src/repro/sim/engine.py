"""Trace-driven engine with a lightweight OoO timing proxy.

The core model is deliberately simple (see DESIGN.md): instructions issue
at ``commit_width`` per cycle; loads occupy one of ``mlp`` miss slots
until their data returns, and a load whose data is outstanding blocks
retirement once the ROB fills.  This yields the two effects temporal
prefetching papers rely on: (1) covered misses shorten load latency, and
(2) memory-level parallelism caps how much latency overlaps.

One :class:`Engine` drives N cores over one shared uncore: with one core
the min-heap interleave degenerates to the plain serial loop, and with
several it always steps the core whose local clock is furthest behind,
so shared structures (LLC contents, LLC port, DRAM channels) see
accesses in an order consistent with the per-core clocks.
:func:`run_single` and :mod:`repro.sim.multicore` are both thin
front-ends over the same build/step/collect code.

The engine owns warm-up handling: statistics are reset after the warm-up
fraction so every reported number describes steady state.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import (Callable, Dict, Iterable, Iterator, List, Optional,
                    Sequence, Tuple)

from ..memory.cache import Cache
from ..memory.dram import DRAM
from ..memory.events import EventBus
from ..memory.hierarchy import CoreHierarchy, SharedUncore
from ..prefetchers.base import Prefetcher
from ..telemetry import TelemetryHarness
from .config import SystemConfig
from .stats import PrefetchReport, SimResult
from .trace import Trace

PrefetcherFactory = Callable[[], Prefetcher]

#: One trace record: (pc, addr, is_write, gap, dep).
Record = Tuple[int, int, bool, int, bool]


class CoreModel:
    """The timing proxy for one core."""

    def __init__(self, config: SystemConfig):
        self.width = config.commit_width
        self.rob = config.rob_size
        self.mlp = config.mlp
        self.clock = 0.0
        self.instrs = 0
        self._outstanding: deque = deque()  # (completion_cycle, instr_idx)
        self._last_load_completion = 0.0

    def advance(self, gap: int) -> float:
        """Dispatch ``gap`` non-memory instructions plus the memory op."""
        self.instrs += gap + 1
        self.clock += (gap + 1) / self.width
        # ROB back-pressure: cannot run further than `rob` instructions
        # past the oldest incomplete load.
        while self._outstanding:
            completion, idx = self._outstanding[0]
            if self.instrs - idx <= self.rob:
                break
            self.clock = max(self.clock, completion)
            self._outstanding.popleft()
        return self.clock

    def issue_time(self, dep: bool) -> float:
        """Cycle at which the next memory op can issue.

        A dependent load (``dep``) waits for the previous load's data:
        this serialization is what makes pointer chases latency-bound,
        and it is also the time at which prefetch timeliness must be
        judged (an in-flight prefetch may complete during the wait).
        """
        if dep:
            return max(self.clock, self._last_load_completion)
        return self.clock

    def complete_access(self, issue: float, latency: float,
                        is_write: bool) -> None:
        """Register the memory op's latency with the MLP window."""
        if is_write:
            return  # stores retire via the store buffer
        if len(self._outstanding) >= self.mlp:
            completion, _ = self._outstanding.popleft()
            self.clock = max(self.clock, completion)
        completion = issue + latency
        self._last_load_completion = completion
        self._outstanding.append((completion, self.instrs))

    def drain(self) -> float:
        """Wait for every outstanding load; returns the final clock."""
        while self._outstanding:
            completion, _ = self._outstanding.popleft()
            self.clock = max(self.clock, completion)
        return self.clock


def build_uncore(config: SystemConfig) -> SharedUncore:
    """Construct the shared LLC + DRAM for a system."""
    llc = Cache("LLC", config.llc_size, config.llc_ways, config.llc_latency,
                replacement=config.llc_replacement)
    dram = DRAM(channels=config.channels,
                mt_per_sec=config.dram_mt_per_sec,
                base_latency=config.dram_base_latency,
                bandwidth_scale=config.dram_bandwidth_scale)
    return SharedUncore(llc, dram, num_cores=config.num_cores)


def build_core(core_id: int, config: SystemConfig,
               uncore: SharedUncore,
               l1_prefetcher: Optional[PrefetcherFactory] = None,
               l2_prefetchers: Sequence[PrefetcherFactory] = ()
               ) -> CoreHierarchy:
    """Construct one core's private hierarchy and attach its prefetchers."""
    l1d = Cache("L1D", config.l1d_size, config.l1d_ways, config.l1d_latency,
                replacement="lru")
    l2 = Cache("L2", config.l2_size, config.l2_ways, config.l2_latency,
               replacement="lru")
    core = CoreHierarchy(core_id, l1d, l2, uncore)
    if l1_prefetcher is not None:
        core.attach_l1_prefetcher(l1_prefetcher())
    for factory in l2_prefetchers:
        core.attach_l2_prefetcher(factory())
    return core


def collect_result(workload: str, core: CoreHierarchy, model: CoreModel,
                   cycles: float, instructions: int, accesses: int,
                   events: Optional[Dict[str, int]] = None) -> SimResult:
    """Assemble one core's steady-state statistics into a SimResult."""
    uncore = core.uncore
    reports: List[PrefetchReport] = []
    pfs = list(core.l2_prefetchers)
    if core.l1_prefetcher is not None:
        pfs.insert(0, core.l1_prefetcher)
    for pf in pfs:
        pf.finalize(model.clock)
        s = pf.stats
        rep = PrefetchReport(
            name=pf.name, issued=s.issued, useful=s.useful,
            useless=s.useless_evictions, dropped=s.dropped,
            accuracy=(s.useful / s.issued if s.issued else 0.0),
            coverage=s.coverage(core.uncovered_misses))
        controller = getattr(pf, "controller", None)
        if controller is not None:
            rep.metadata_reads = controller.traffic.reads
            rep.metadata_writes = controller.traffic.writes
            rep.metadata_rearrange_moves = controller.traffic.rearrange_moves
        reports.append(rep)
    kilo_instr = instructions / 1000.0 if instructions else 1.0
    return SimResult(
        workload=workload,
        cycles=cycles,
        instructions=instructions,
        accesses=accesses,
        l1d_miss_rate=core.l1d.stats.miss_rate,
        l2_miss_rate=core.l2.stats.miss_rate,
        llc_miss_rate=uncore.llc.stats.miss_rate,
        llc_mpki=uncore.llc.stats.misses / kilo_instr,
        uncovered_misses=core.uncovered_misses,
        dram_reads=uncore.dram.stats.reads,
        dram_writes=uncore.dram.stats.writes,
        dram_queue_delay=uncore.dram.stats.avg_queue_delay,
        prefetchers=reports,
        events=dict(events) if events is not None else None,
    )


class Engine:
    """One simulated system: N cores, their traces, and the shared uncore.

    Build → :meth:`run` → :meth:`collect`.  The engine is parametric
    over core count: :func:`run_single` wraps one-trace engines and
    :func:`repro.sim.multicore.run_multicore` wraps N-trace engines
    around the very same loop, which steps whichever core's local clock
    is furthest behind (degenerating to the plain serial loop at N=1).
    """

    def __init__(self, traces: Sequence[Trace],
                 config: Optional[SystemConfig] = None,
                 l1_prefetcher: Optional[PrefetcherFactory] = None,
                 l2_prefetchers: Sequence[PrefetcherFactory] = (),
                 streams: Optional[Sequence[Iterable[Record]]] = None):
        """``streams`` optionally overrides each core's record stream
        (the multicore front-end passes region-biased views of the
        traces); warm-up lengths and workload names still come from
        ``traces``.
        """
        self.traces = list(traces)
        if not self.traces:
            raise ValueError("need at least one trace")
        num_cores = len(self.traces)
        config = config or SystemConfig()
        if config.num_cores != num_cores:
            config = config.scaled(num_cores=num_cores)
        self.config = config
        self.uncore = build_uncore(config)
        self.bus: EventBus = self.uncore.bus
        self.cores = [build_core(i, config, self.uncore, l1_prefetcher,
                                 l2_prefetchers)
                      for i in range(num_cores)]
        self.models = [CoreModel(config) for _ in range(num_cores)]
        if streams is not None and len(streams) != num_cores:
            raise ValueError("need one record stream per trace")
        self._streams = streams
        self._warm_marks: List[Optional[Tuple[float, int]]] = \
            [None] * num_cores
        self._ran = False
        # Observability: pure bus subscribers, built only on opt-in.
        # The harness is reset at the warm-up boundary alongside the
        # uncore/bus counters and finalized in collect().
        self.telemetry: Optional[TelemetryHarness] = None
        if config.telemetry is not None:
            names = {oid: pf.name
                     for oid, pf in self.uncore.prefetchers.items()}
            self.telemetry = TelemetryHarness(
                self.bus, config.telemetry, num_cores=num_cores,
                owner_names=names, gauges=self._telemetry_gauges())

    def _telemetry_gauges(self) -> Dict[str, Callable[[], float]]:
        """Pull-based gauges the interval sampler reads at snapshot time."""
        prefetchers = self.uncore.prefetchers

        def meta_entries() -> float:
            total = 0
            for pf in prefetchers.values():
                store = getattr(pf, "store", None)
                if store is not None and hasattr(store, "valid_entries"):
                    total += store.valid_entries()
            return float(total)

        def meta_bytes() -> float:
            total = 0
            for pf in prefetchers.values():
                controller = getattr(pf, "controller", None)
                if controller is not None:
                    total += controller.current_bytes
            return float(total)

        return {"meta_entries": meta_entries, "meta_bytes": meta_bytes,
                "llc_occupancy": self.uncore.llc.occupancy}

    @property
    def num_cores(self) -> int:
        return len(self.cores)

    @property
    def l2_prefetchers(self) -> List[Prefetcher]:
        """All attached L2 prefetchers, in attach order across cores."""
        pfs: List[Prefetcher] = []
        for core in self.cores:
            pfs.extend(core.l2_prefetchers)
        return pfs

    @property
    def prefetchers(self) -> List[Prefetcher]:
        """Every registered prefetcher (L1 and L2), registration order."""
        return list(self.uncore.prefetchers.values())

    # -- stepping ------------------------------------------------------------

    def run(self) -> "Engine":
        """Drive every core through its trace, handling warm-up resets."""
        if self._ran:
            raise RuntimeError("Engine.run() may only be called once")
        self._ran = True
        num_cores = self.num_cores
        iters: List[Iterator[Record]] = [
            iter(s) for s in (self._streams if self._streams is not None
                              else self.traces)]
        warmups = [int(len(t) * self.config.warmup_fraction)
                   for t in self.traces]
        counts = [0] * num_cores
        warmed = 0
        # Min-heap keyed by core-local clock keeps shared-resource
        # ordering consistent across cores.
        heap = [(0.0, i) for i in range(num_cores)]
        heapq.heapify(heap)
        while heap:
            _, i = heapq.heappop(heap)
            try:
                pc, addr, is_write, gap, dep = next(iters[i])
            except StopIteration:
                continue
            model = self.models[i]
            model.advance(gap)
            now = model.issue_time(dep)
            latency = self.cores[i].access(pc, addr, is_write, now)
            model.complete_access(now, latency, is_write)
            counts[i] += 1
            if counts[i] == warmups[i] and self._warm_marks[i] is None:
                model.drain()
                self._warm_marks[i] = (model.clock, model.instrs)
                self.cores[i].reset_stats()
                warmed += 1
                if warmed == num_cores:
                    self.uncore.reset_stats()
                    for pf in self.uncore.prefetchers.values():
                        reset = getattr(pf, "reset_epoch_stats", None)
                        if reset is not None:
                            reset()
                    if self.telemetry is not None:
                        self.telemetry.reset()
            heapq.heappush(heap, (model.clock, i))
        return self

    # -- results ---------------------------------------------------------------

    def collect(self) -> List[SimResult]:
        """Drain every core and assemble per-core steady-state results.

        Single-core engines also attach the event-bus counters to the
        result (``SimResult.events``) for observability and the
        conservation checks.
        """
        if self.telemetry is not None:
            self.telemetry.finalize()
        events = self.bus.counts_flat() if self.num_cores == 1 else None
        results: List[SimResult] = []
        for i, core in enumerate(self.cores):
            model = self.models[i]
            model.drain()
            mark = self._warm_marks[i] or (0.0, 0)
            cycles = model.clock - mark[0]
            instrs = model.instrs - mark[1]
            warmup = int(len(self.traces[i]) * self.config.warmup_fraction)
            results.append(collect_result(
                self.traces[i].name, core, model, cycles, instrs,
                len(self.traces[i]) - warmup, events=events))
        # Teardown: release observer subscriptions so a finished engine
        # holds no live handlers on the bus.  State (stats, stores,
        # telemetry payloads) stays readable for post-run probes; all
        # detach paths are idempotent, so collect() stays re-callable.
        for core in self.cores:
            core.detach_prefetchers()
        if self.telemetry is not None:
            self.telemetry.detach()
        return results


def run_single(trace: Trace, config: Optional[SystemConfig] = None,
               l1_prefetcher: Optional[PrefetcherFactory] = None,
               l2_prefetchers: Sequence[PrefetcherFactory] = ()
               ) -> SimResult:
    """Simulate one trace on a one-core system; returns steady-state stats."""
    config = config or SystemConfig()
    if config.num_cores != 1:
        config = config.scaled(num_cores=1)
    engine = Engine([trace], config, l1_prefetcher, l2_prefetchers)
    return engine.run().collect()[0]
