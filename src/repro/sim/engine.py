"""Single-core trace-driven engine with a lightweight OoO timing proxy.

The core model is deliberately simple (see DESIGN.md): instructions issue
at ``commit_width`` per cycle; loads occupy one of ``mlp`` miss slots
until their data returns, and a load whose data is outstanding blocks
retirement once the ROB fills.  This yields the two effects temporal
prefetching papers rely on: (1) covered misses shorten load latency, and
(2) memory-level parallelism caps how much latency overlaps.

The engine owns warm-up handling: statistics are reset after the warm-up
fraction so every reported number describes steady state.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..memory.cache import Cache
from ..memory.dram import DRAM
from ..memory.hierarchy import CoreHierarchy, SharedUncore
from ..prefetchers.base import Prefetcher
from .config import SystemConfig
from .stats import PrefetchReport, SimResult
from .trace import Trace

PrefetcherFactory = Callable[[], Prefetcher]


class CoreModel:
    """The timing proxy for one core."""

    def __init__(self, config: SystemConfig):
        self.width = config.commit_width
        self.rob = config.rob_size
        self.mlp = config.mlp
        self.clock = 0.0
        self.instrs = 0
        self._outstanding: deque = deque()  # (completion_cycle, instr_idx)
        self._last_load_completion = 0.0

    def advance(self, gap: int) -> float:
        """Dispatch ``gap`` non-memory instructions plus the memory op."""
        self.instrs += gap + 1
        self.clock += (gap + 1) / self.width
        # ROB back-pressure: cannot run further than `rob` instructions
        # past the oldest incomplete load.
        while self._outstanding:
            completion, idx = self._outstanding[0]
            if self.instrs - idx <= self.rob:
                break
            self.clock = max(self.clock, completion)
            self._outstanding.popleft()
        return self.clock

    def issue_time(self, dep: bool) -> float:
        """Cycle at which the next memory op can issue.

        A dependent load (``dep``) waits for the previous load's data:
        this serialization is what makes pointer chases latency-bound,
        and it is also the time at which prefetch timeliness must be
        judged (an in-flight prefetch may complete during the wait).
        """
        if dep:
            return max(self.clock, self._last_load_completion)
        return self.clock

    def complete_access(self, issue: float, latency: float,
                        is_write: bool) -> None:
        """Register the memory op's latency with the MLP window."""
        if is_write:
            return  # stores retire via the store buffer
        if len(self._outstanding) >= self.mlp:
            completion, _ = self._outstanding.popleft()
            self.clock = max(self.clock, completion)
        completion = issue + latency
        self._last_load_completion = completion
        self._outstanding.append((completion, self.instrs))

    def drain(self) -> float:
        """Wait for every outstanding load; returns the final clock."""
        while self._outstanding:
            completion, _ = self._outstanding.popleft()
            self.clock = max(self.clock, completion)
        return self.clock


def build_uncore(config: SystemConfig) -> SharedUncore:
    """Construct the shared LLC + DRAM for a system."""
    llc = Cache("LLC", config.llc_size, config.llc_ways, config.llc_latency,
                replacement=config.llc_replacement)
    dram = DRAM(channels=config.channels,
                mt_per_sec=config.dram_mt_per_sec,
                base_latency=config.dram_base_latency,
                bandwidth_scale=config.dram_bandwidth_scale)
    return SharedUncore(llc, dram, num_cores=config.num_cores)


def build_core(core_id: int, config: SystemConfig,
               uncore: SharedUncore,
               l1_prefetcher: Optional[PrefetcherFactory] = None,
               l2_prefetchers: Sequence[PrefetcherFactory] = ()
               ) -> CoreHierarchy:
    """Construct one core's private hierarchy and attach its prefetchers."""
    l1d = Cache("L1D", config.l1d_size, config.l1d_ways, config.l1d_latency,
                replacement="lru")
    l2 = Cache("L2", config.l2_size, config.l2_ways, config.l2_latency,
               replacement="lru")
    core = CoreHierarchy(core_id, l1d, l2, uncore)
    if l1_prefetcher is not None:
        core.attach_l1_prefetcher(l1_prefetcher())
    for factory in l2_prefetchers:
        core.attach_l2_prefetcher(factory())
    return core


def _collect_result(workload: str, core: CoreHierarchy, model: CoreModel,
                    cycles: float, instructions: int,
                    accesses: int) -> SimResult:
    uncore = core.uncore
    reports: List[PrefetchReport] = []
    pfs = list(core.l2_prefetchers)
    if core.l1_prefetcher is not None:
        pfs.insert(0, core.l1_prefetcher)
    for pf in pfs:
        pf.finalize(model.clock)
        s = pf.stats
        rep = PrefetchReport(
            name=pf.name, issued=s.issued, useful=s.useful,
            useless=s.useless_evictions, dropped=s.dropped,
            accuracy=(s.useful / s.issued if s.issued else 0.0),
            coverage=s.coverage(core.uncovered_misses))
        controller = getattr(pf, "controller", None)
        if controller is not None:
            rep.metadata_reads = controller.traffic.reads
            rep.metadata_writes = controller.traffic.writes
            rep.metadata_rearrange_moves = controller.traffic.rearrange_moves
        reports.append(rep)
    kilo_instr = instructions / 1000.0 if instructions else 1.0
    return SimResult(
        workload=workload,
        cycles=cycles,
        instructions=instructions,
        accesses=accesses,
        l1d_miss_rate=core.l1d.stats.miss_rate,
        l2_miss_rate=core.l2.stats.miss_rate,
        llc_miss_rate=uncore.llc.stats.miss_rate,
        llc_mpki=uncore.llc.stats.misses / kilo_instr,
        uncovered_misses=core.uncovered_misses,
        dram_reads=uncore.dram.stats.reads,
        dram_writes=uncore.dram.stats.writes,
        dram_queue_delay=uncore.dram.stats.avg_queue_delay,
        prefetchers=reports,
    )


def run_single(trace: Trace, config: Optional[SystemConfig] = None,
               l1_prefetcher: Optional[PrefetcherFactory] = None,
               l2_prefetchers: Sequence[PrefetcherFactory] = ()
               ) -> SimResult:
    """Simulate one trace on a one-core system; returns steady-state stats."""
    config = config or SystemConfig()
    if config.num_cores != 1:
        config = config.scaled(num_cores=1)
    uncore = build_uncore(config)
    core = build_core(0, config, uncore, l1_prefetcher, l2_prefetchers)
    model = CoreModel(config)

    warmup = int(len(trace) * config.warmup_fraction)
    warm_clock = 0.0
    warm_instrs = 0
    for i, (pc, addr, is_write, gap, dep) in enumerate(trace):
        model.advance(gap)
        now = model.issue_time(dep)
        latency = core.access(pc, addr, is_write, now)
        model.complete_access(now, latency, is_write)
        if i + 1 == warmup:
            model.drain()
            warm_clock = model.clock
            warm_instrs = model.instrs
            core.reset_stats()
            uncore.reset_stats()
            for pf in uncore.prefetchers.values():
                reset = getattr(pf, "reset_epoch_stats", None)
                if reset is not None:
                    reset()
    cycles = model.drain() - warm_clock
    instructions = model.instrs - warm_instrs
    return _collect_result(trace.name, core, model, cycles, instructions,
                           len(trace) - warmup)
