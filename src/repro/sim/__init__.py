"""Trace-driven simulation: config, engine, multicore, stats, traces."""

from .config import CHANNELS_BY_CORES, DEFAULT_CONFIG, SystemConfig
from .engine import (CoreModel, Engine, build_core, build_uncore,
                     collect_result, run_single)
from .multicore import MulticoreResult, build_multicore, run_multicore
from .stats import (PrefetchReport, SimResult, format_table, geomean,
                    geomean_speedup, mean_accuracy, mean_coverage, speedup)
from .trace import Trace, TraceBuilder, TraceRecord

__all__ = [
    "CHANNELS_BY_CORES", "DEFAULT_CONFIG", "SystemConfig",
    "CoreModel", "Engine", "build_core", "build_uncore", "collect_result",
    "run_single",
    "MulticoreResult", "build_multicore", "run_multicore",
    "PrefetchReport", "SimResult", "format_table", "geomean",
    "geomean_speedup", "mean_accuracy", "mean_coverage", "speedup",
    "Trace", "TraceBuilder", "TraceRecord",
]
