"""Memory-access traces.

A trace is the unit of work the engine consumes: an ordered sequence of
memory operations, each carrying the PC of the load/store, the byte
address, a write flag, and the number of non-memory instructions retired
since the previous memory operation (so instruction counts and IPC can be
reconstructed without simulating non-memory work).

The engine is written against the :class:`TraceSource` protocol, which
two implementations satisfy: the fully materialized :class:`Trace`
below, and :class:`repro.tracestream.StreamingTrace`, which replays a
chunked on-disk store entry through mmap in constant memory.  Both hand
out the same record tuples and the same columnar chunk views, which is
what makes the streaming path bit-identical to the in-memory one.

Traces are immutable once built and can be saved/loaded as ``.npz``
files for reuse across experiments.
"""

from __future__ import annotations

from typing import (Iterable, Iterator, List, NamedTuple, Optional,
                    Protocol, Sequence, Tuple, runtime_checkable)

import numpy as np

from ..tracestream.chunk import CHUNK_RECORDS, TraceChunk

#: Records per chunk when iterating a trace.  Large enough that the
#: per-chunk ``tolist()`` overhead vanishes, small enough that peak
#: memory stays constant regardless of trace length.
ITER_CHUNK = 1 << 16


class TraceColumns(NamedTuple):
    """Read-only columnar view of a trace (see :meth:`Trace.columns`).

    ``blks`` is ``addrs >> 6`` (``memory.address.block_of``) vectorized
    once per trace instead of once per record per run.
    """

    pcs: np.ndarray     # int64
    blks: np.ndarray    # int64, addrs >> 6
    writes: np.ndarray  # bool_
    gaps: np.ndarray    # int32
    deps: np.ndarray    # bool_


@runtime_checkable
class TraceSource(Protocol):
    """What the engine and fast path need from a trace.

    ``iter_from`` yields plain-Python ``(pc, addr, is_write, gap, dep)``
    tuples; ``chunk_at``/``columns_range`` hand out bounded columnar
    windows (the unit of vectorization for the fast path and the
    streaming pipeline).  Implementations must return identical values
    for identical logical traces — the streaming/in-memory bit-identity
    guarantee rests on it.
    """

    name: str

    def __len__(self) -> int: ...

    @property
    def instructions(self) -> int: ...

    def __iter__(self) -> Iterator[Tuple[int, int, bool, int, bool]]: ...

    def iter_from(self, start: int
                  ) -> Iterator[Tuple[int, int, bool, int, bool]]: ...

    def iter_chunks(self, start: int = 0) -> Iterator[TraceChunk]: ...

    def chunk_at(self, start: int, stop: int) -> TraceChunk: ...

    def columns_range(self, start: int, stop: int) -> TraceColumns: ...


class TraceRecord:
    """One memory operation."""

    __slots__ = ("pc", "addr", "is_write", "gap", "dep")

    def __init__(self, pc: int, addr: int, is_write: bool = False,
                 gap: int = 3, dep: bool = False):
        self.pc = pc
        self.addr = addr
        self.is_write = is_write
        self.gap = gap
        self.dep = dep


class Trace:
    """An immutable memory-access trace backed by numpy arrays.

    ``dep`` marks loads that consume the value of the *previous* load
    (linked-structure traversals): the timing proxy serializes them,
    which is what makes pointer chases latency-bound and is why covering
    their misses pays off so much.
    """

    def __init__(self, name: str, pcs: Sequence[int], addrs: Sequence[int],
                 writes: Sequence[bool], gaps: Sequence[int],
                 deps: Optional[Sequence[bool]] = None):
        n = len(pcs)
        if not (len(addrs) == len(writes) == len(gaps) == n):
            raise ValueError("trace arrays must have equal length")
        self.name = name
        self.pcs = np.asarray(pcs, dtype=np.int64)
        self.addrs = np.asarray(addrs, dtype=np.int64)
        self.writes = np.asarray(writes, dtype=np.bool_)
        self.gaps = np.asarray(gaps, dtype=np.int32)
        if deps is None:
            self.deps = np.zeros(n, dtype=np.bool_)
        else:
            if len(deps) != n:
                raise ValueError("trace arrays must have equal length")
            self.deps = np.asarray(deps, dtype=np.bool_)

    def __len__(self) -> int:
        return len(self.pcs)

    def __iter__(self) -> Iterator[Tuple[int, int, bool, int, bool]]:
        """Yield (pc, addr, is_write, gap, dep) plain-Python tuples.

        Iteration is chunked: each chunk converts ``ITER_CHUNK`` records
        to Python scalars, so peak memory is constant in trace length
        (materializing five full ``tolist()`` lists up front costs ~20GB
        for a 100M-access trace).
        """
        return self.iter_from(0)

    def iter_from(self, start: int
                  ) -> Iterator[Tuple[int, int, bool, int, bool]]:
        """Like ``iter(trace)`` but starting at record ``start``.

        The fast path and the engine's checkpoint restore use this to
        reposition a record stream in O(1) instead of draining an
        ``islice``.
        """
        n = len(self.pcs)
        for lo in range(start, n, ITER_CHUNK):
            hi = min(n, lo + ITER_CHUNK)
            yield from zip(self.pcs[lo:hi].tolist(),
                           self.addrs[lo:hi].tolist(),
                           self.writes[lo:hi].tolist(),
                           self.gaps[lo:hi].tolist(),
                           self.deps[lo:hi].tolist())

    def columns(self) -> TraceColumns:
        """Cached columnar view for batched consumers (sim.fastpath).

        Treat the arrays as read-only; they alias the trace's own
        storage except ``blks``, computed (and cached) on first use.
        """
        cols = getattr(self, "_columns", None)
        if cols is None:
            cols = TraceColumns(self.pcs, self.addrs >> 6, self.writes,
                                self.gaps, self.deps)
            self._columns = cols
        return cols

    def columns_range(self, start: int, stop: int) -> TraceColumns:
        """Columnar view of records ``[start, stop)`` (aliasing slices)."""
        cols = self.columns()
        return TraceColumns(cols.pcs[start:stop], cols.blks[start:stop],
                            cols.writes[start:stop],
                            cols.gaps[start:stop], cols.deps[start:stop])

    def chunk_at(self, start: int, stop: int) -> TraceChunk:
        """Chunk view of records ``[start, stop)`` (aliasing slices)."""
        return TraceChunk(self.pcs[start:stop], self.addrs[start:stop],
                          self.writes[start:stop], self.gaps[start:stop],
                          self.deps[start:stop])

    def iter_chunks(self, start: int = 0) -> Iterator[TraceChunk]:
        """Fixed-size chunk stream over the trace (zero-copy views)."""
        n = len(self.pcs)
        for lo in range(start, n, ITER_CHUNK):
            yield self.chunk_at(lo, min(n, lo + ITER_CHUNK))

    @property
    def instructions(self) -> int:
        """Total retired instructions represented by this trace."""
        return int(self.gaps.sum(dtype=np.int64)) + len(self)

    def slice(self, start: int, stop: int) -> "Trace":
        return Trace(f"{self.name}[{start}:{stop}]",
                     self.pcs[start:stop], self.addrs[start:stop],
                     self.writes[start:stop], self.gaps[start:stop],
                     self.deps[start:stop])

    def footprint_blocks(self) -> int:
        """Number of distinct 64B blocks touched."""
        return int(np.unique(self.columns().blks).size)

    def unique_pcs(self) -> int:
        return int(np.unique(self.pcs).size)

    # -- persistence -------------------------------------------------------

    def save(self, path: str) -> None:
        np.savez_compressed(path, name=np.array(self.name), pcs=self.pcs,
                            addrs=self.addrs, writes=self.writes,
                            gaps=self.gaps, deps=self.deps)

    @classmethod
    def load(cls, path: str) -> "Trace":
        data = np.load(path, allow_pickle=False)
        deps = data["deps"] if "deps" in data else None
        return cls(str(data["name"]), data["pcs"], data["addrs"],
                   data["writes"], data["gaps"], deps)

    @classmethod
    def from_records(cls, name: str,
                     records: Iterable[TraceRecord]) -> "Trace":
        builder = TraceBuilder(name)
        for r in records:
            builder.add(r.pc, r.addr, r.is_write, r.gap, r.dep)
        return builder.build()

    @classmethod
    def from_chunks(cls, name: str,
                    chunks: Iterable[TraceChunk]) -> "Trace":
        """Materialize a chunk stream (marks excluded by the caller)."""
        parts = list(chunks)
        if not parts:
            return cls(name, [], [], [], [])
        if len(parts) == 1:
            c = parts[0]
            return cls(name, c.pcs, c.addrs, c.writes, c.gaps, c.deps)
        return cls(name,
                   np.concatenate([c.pcs for c in parts]),
                   np.concatenate([c.addrs for c in parts]),
                   np.concatenate([c.writes for c in parts]),
                   np.concatenate([c.gaps for c in parts]),
                   np.concatenate([c.deps for c in parts]))


class TraceWindow:
    """A lazy, zero-copy view of records ``[start, stop)`` of a trace.

    Satisfies :class:`TraceSource` by delegating every bounded columnar
    access to the base source with shifted offsets, so it composes with
    both the in-memory :class:`Trace` and the streaming store entry —
    and, because the engine and fast path consume traces purely through
    the protocol, a windowed simulation runs exactly the loop a full one
    does.  This is the execution substrate of :mod:`repro.sampling`:
    a representative interval simulates as a window whose warm-up region
    is the bounded prefix immediately before it.

    Unlike :meth:`Trace.slice`, nothing is materialized: a window over a
    100M-access streaming trace costs O(1) memory.
    """

    def __init__(self, base: TraceSource, start: int, stop: int):
        if not 0 <= start < stop <= len(base):
            raise ValueError(
                f"window [{start}, {stop}) out of range for trace of "
                f"length {len(base)}")
        self.base = base
        self.start = start
        self.stop = stop
        self.name = f"{base.name}[{start}:{stop}]"
        self._instructions: Optional[int] = None

    def __len__(self) -> int:
        return self.stop - self.start

    @property
    def instructions(self) -> int:
        """Retired instructions in the window (computed once, chunked)."""
        if self._instructions is None:
            total = 0
            for lo in range(self.start, self.stop, ITER_CHUNK):
                hi = min(self.stop, lo + ITER_CHUNK)
                gaps = self.base.columns_range(lo, hi).gaps
                total += int(gaps.sum(dtype=np.int64))
            self._instructions = total + len(self)
        return self._instructions

    def __iter__(self) -> Iterator[Tuple[int, int, bool, int, bool]]:
        return self.iter_from(0)

    def iter_from(self, start: int
                  ) -> Iterator[Tuple[int, int, bool, int, bool]]:
        """Window-relative record stream from ``start`` (chunked)."""
        n = len(self)
        for lo in range(start, n, ITER_CHUNK):
            c = self.chunk_at(lo, min(n, lo + ITER_CHUNK))
            yield from zip(c.pcs.tolist(), c.addrs.tolist(),
                           c.writes.tolist(), c.gaps.tolist(),
                           c.deps.tolist())

    def chunk_at(self, start: int, stop: int) -> TraceChunk:
        return self.base.chunk_at(self.start + start, self.start + stop)

    def columns_range(self, start: int, stop: int) -> TraceColumns:
        return self.base.columns_range(self.start + start,
                                       self.start + stop)

    def iter_chunks(self, start: int = 0) -> Iterator[TraceChunk]:
        n = len(self)
        for lo in range(start, n, ITER_CHUNK):
            yield self.chunk_at(lo, min(n, lo + ITER_CHUNK))


class TraceBuilder:
    """Mutable helper used by the workload generators.

    Records accumulate into fixed-size numpy column buffers (flushed to
    an immutable chunk list when full), so building a trace costs its
    numpy size plus one partial chunk — not the ~10x of five growing
    Python lists of boxed scalars.
    """

    #: Records per builder buffer (one flush each).
    CHUNK = CHUNK_RECORDS

    def __init__(self, name: str):
        self.name = name
        self._chunks: List[TraceChunk] = []
        self._fill = 0
        self._alloc()

    def _alloc(self) -> None:
        c = self.CHUNK
        self._pcs = np.empty(c, dtype=np.int64)
        self._addrs = np.empty(c, dtype=np.int64)
        self._writes = np.empty(c, dtype=np.bool_)
        self._gaps = np.empty(c, dtype=np.int32)
        self._deps = np.empty(c, dtype=np.bool_)

    def _flush(self) -> None:
        """Freeze the (full or partial) buffer into the chunk list."""
        i = self._fill
        if not i:
            return
        self._chunks.append(TraceChunk(
            self._pcs[:i].copy(), self._addrs[:i].copy(),
            self._writes[:i].copy(), self._gaps[:i].copy(),
            self._deps[:i].copy()))
        self._fill = 0

    def __len__(self) -> int:
        return sum(len(c) for c in self._chunks) + self._fill

    def add(self, pc: int, addr: int, is_write: bool = False,
            gap: int = 3, dep: bool = False) -> None:
        i = self._fill
        if i == self.CHUNK:
            self._flush()
            i = 0
        self._pcs[i] = pc
        self._addrs[i] = addr
        self._writes[i] = is_write
        self._gaps[i] = gap
        self._deps[i] = dep
        self._fill = i + 1

    def add_chunk(self, chunk: TraceChunk) -> None:
        """Append a whole columnar chunk (vectorized generators)."""
        if len(chunk):
            self._flush()
            self._chunks.append(chunk)

    def extend(self, other: "TraceBuilder") -> None:
        self._flush()
        self._chunks.extend(other._chunks)
        if other._fill:
            i = other._fill
            self._chunks.append(TraceChunk(
                other._pcs[:i].copy(), other._addrs[:i].copy(),
                other._writes[:i].copy(), other._gaps[:i].copy(),
                other._deps[:i].copy()))

    def build(self) -> Trace:
        self._flush()
        return Trace.from_chunks(self.name, self._chunks)
