"""Memory-access traces.

A trace is the unit of work the engine consumes: an ordered sequence of
memory operations, each carrying the PC of the load/store, the byte
address, a write flag, and the number of non-memory instructions retired
since the previous memory operation (so instruction counts and IPC can be
reconstructed without simulating non-memory work).

Traces are immutable once built and can be saved/loaded as ``.npz`` files
for reuse across experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (Iterable, Iterator, List, NamedTuple, Optional,
                    Sequence, Tuple)

import numpy as np

#: Records per chunk when iterating a trace.  Large enough that the
#: per-chunk ``tolist()`` overhead vanishes, small enough that peak
#: memory stays constant regardless of trace length.
ITER_CHUNK = 1 << 16


class TraceColumns(NamedTuple):
    """Read-only columnar view of a trace (see :meth:`Trace.columns`).

    ``blks`` is ``addrs >> 6`` (``memory.address.block_of``) vectorized
    once per trace instead of once per record per run.
    """

    pcs: np.ndarray     # int64
    blks: np.ndarray    # int64, addrs >> 6
    writes: np.ndarray  # bool_
    gaps: np.ndarray    # int32
    deps: np.ndarray    # bool_


@dataclass(frozen=True)
class TraceRecord:
    """One memory operation."""

    pc: int
    addr: int
    is_write: bool = False
    gap: int = 3          # non-memory instructions preceding this op
    dep: bool = False     # depends on the previous load (pointer chase)


class Trace:
    """An immutable memory-access trace backed by numpy arrays.

    ``dep`` marks loads that consume the value of the *previous* load
    (linked-structure traversals): the timing proxy serializes them,
    which is what makes pointer chases latency-bound and is why covering
    their misses pays off so much.
    """

    def __init__(self, name: str, pcs: Sequence[int], addrs: Sequence[int],
                 writes: Sequence[bool], gaps: Sequence[int],
                 deps: Optional[Sequence[bool]] = None):
        n = len(pcs)
        if not (len(addrs) == len(writes) == len(gaps) == n):
            raise ValueError("trace arrays must have equal length")
        self.name = name
        self.pcs = np.asarray(pcs, dtype=np.int64)
        self.addrs = np.asarray(addrs, dtype=np.int64)
        self.writes = np.asarray(writes, dtype=np.bool_)
        self.gaps = np.asarray(gaps, dtype=np.int32)
        if deps is None:
            self.deps = np.zeros(n, dtype=np.bool_)
        else:
            if len(deps) != n:
                raise ValueError("trace arrays must have equal length")
            self.deps = np.asarray(deps, dtype=np.bool_)

    def __len__(self) -> int:
        return len(self.pcs)

    def __iter__(self) -> Iterator[Tuple[int, int, bool, int, bool]]:
        """Yield (pc, addr, is_write, gap, dep) plain-Python tuples.

        Iteration is chunked: each chunk converts ``ITER_CHUNK`` records
        to Python scalars, so peak memory is constant in trace length
        (materializing five full ``tolist()`` lists up front costs ~20GB
        for a 100M-access trace).
        """
        return self.iter_from(0)

    def iter_from(self, start: int
                  ) -> Iterator[Tuple[int, int, bool, int, bool]]:
        """Like ``iter(trace)`` but starting at record ``start``.

        The fast path uses this to reposition an engine's record stream
        in O(1) after consuming a span columnarly, so scalar and batched
        execution can interleave on one engine.
        """
        n = len(self.pcs)
        for lo in range(start, n, ITER_CHUNK):
            hi = min(n, lo + ITER_CHUNK)
            yield from zip(self.pcs[lo:hi].tolist(),
                           self.addrs[lo:hi].tolist(),
                           self.writes[lo:hi].tolist(),
                           self.gaps[lo:hi].tolist(),
                           self.deps[lo:hi].tolist())

    def columns(self) -> TraceColumns:
        """Cached columnar view for batched consumers (sim.fastpath).

        Treat the arrays as read-only; they alias the trace's own
        storage except ``blks``, computed (and cached) on first use.
        """
        cols = getattr(self, "_columns", None)
        if cols is None:
            cols = TraceColumns(self.pcs, self.addrs >> 6, self.writes,
                                self.gaps, self.deps)
            self._columns = cols
        return cols

    @property
    def instructions(self) -> int:
        """Total retired instructions represented by this trace."""
        return int(self.gaps.sum()) + len(self)

    def slice(self, start: int, stop: int) -> "Trace":
        return Trace(f"{self.name}[{start}:{stop}]",
                     self.pcs[start:stop], self.addrs[start:stop],
                     self.writes[start:stop], self.gaps[start:stop],
                     self.deps[start:stop])

    def footprint_blocks(self) -> int:
        """Number of distinct 64B blocks touched."""
        return int(np.unique(self.addrs >> 6).size)

    def unique_pcs(self) -> int:
        return int(np.unique(self.pcs).size)

    # -- persistence -------------------------------------------------------

    def save(self, path: str) -> None:
        np.savez_compressed(path, name=np.array(self.name), pcs=self.pcs,
                            addrs=self.addrs, writes=self.writes,
                            gaps=self.gaps, deps=self.deps)

    @classmethod
    def load(cls, path: str) -> "Trace":
        data = np.load(path, allow_pickle=False)
        deps = data["deps"] if "deps" in data else None
        return cls(str(data["name"]), data["pcs"], data["addrs"],
                   data["writes"], data["gaps"], deps)

    @classmethod
    def from_records(cls, name: str,
                     records: Iterable[TraceRecord]) -> "Trace":
        builder = TraceBuilder(name)
        for r in records:
            builder.add(r.pc, r.addr, r.is_write, r.gap, r.dep)
        return builder.build()


class TraceBuilder:
    """Mutable helper used by the workload generators."""

    def __init__(self, name: str):
        self.name = name
        self._pcs: List[int] = []
        self._addrs: List[int] = []
        self._writes: List[bool] = []
        self._gaps: List[int] = []
        self._deps: List[bool] = []

    def __len__(self) -> int:
        return len(self._pcs)

    def add(self, pc: int, addr: int, is_write: bool = False,
            gap: int = 3, dep: bool = False) -> None:
        self._pcs.append(pc)
        self._addrs.append(addr)
        self._writes.append(is_write)
        self._gaps.append(gap)
        self._deps.append(dep)

    def extend(self, other: "TraceBuilder") -> None:
        self._pcs.extend(other._pcs)
        self._addrs.extend(other._addrs)
        self._writes.extend(other._writes)
        self._gaps.extend(other._gaps)
        self._deps.extend(other._deps)

    def build(self) -> Trace:
        return Trace(self.name, self._pcs, self._addrs, self._writes,
                     self._gaps, self._deps)
