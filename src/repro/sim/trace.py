"""Memory-access traces.

A trace is the unit of work the engine consumes: an ordered sequence of
memory operations, each carrying the PC of the load/store, the byte
address, a write flag, and the number of non-memory instructions retired
since the previous memory operation (so instruction counts and IPC can be
reconstructed without simulating non-memory work).

Traces are immutable once built and can be saved/loaded as ``.npz`` files
for reuse across experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class TraceRecord:
    """One memory operation."""

    pc: int
    addr: int
    is_write: bool = False
    gap: int = 3          # non-memory instructions preceding this op
    dep: bool = False     # depends on the previous load (pointer chase)


class Trace:
    """An immutable memory-access trace backed by numpy arrays.

    ``dep`` marks loads that consume the value of the *previous* load
    (linked-structure traversals): the timing proxy serializes them,
    which is what makes pointer chases latency-bound and is why covering
    their misses pays off so much.
    """

    def __init__(self, name: str, pcs: Sequence[int], addrs: Sequence[int],
                 writes: Sequence[bool], gaps: Sequence[int],
                 deps: Optional[Sequence[bool]] = None):
        n = len(pcs)
        if not (len(addrs) == len(writes) == len(gaps) == n):
            raise ValueError("trace arrays must have equal length")
        self.name = name
        self.pcs = np.asarray(pcs, dtype=np.int64)
        self.addrs = np.asarray(addrs, dtype=np.int64)
        self.writes = np.asarray(writes, dtype=np.bool_)
        self.gaps = np.asarray(gaps, dtype=np.int32)
        if deps is None:
            self.deps = np.zeros(n, dtype=np.bool_)
        else:
            if len(deps) != n:
                raise ValueError("trace arrays must have equal length")
            self.deps = np.asarray(deps, dtype=np.bool_)

    def __len__(self) -> int:
        return len(self.pcs)

    def __iter__(self) -> Iterator[Tuple[int, int, bool, int, bool]]:
        """Yield (pc, addr, is_write, gap, dep) plain-Python tuples."""
        return zip(self.pcs.tolist(), self.addrs.tolist(),
                   self.writes.tolist(), self.gaps.tolist(),
                   self.deps.tolist())

    @property
    def instructions(self) -> int:
        """Total retired instructions represented by this trace."""
        return int(self.gaps.sum()) + len(self)

    def slice(self, start: int, stop: int) -> "Trace":
        return Trace(f"{self.name}[{start}:{stop}]",
                     self.pcs[start:stop], self.addrs[start:stop],
                     self.writes[start:stop], self.gaps[start:stop],
                     self.deps[start:stop])

    def footprint_blocks(self) -> int:
        """Number of distinct 64B blocks touched."""
        return int(np.unique(self.addrs >> 6).size)

    def unique_pcs(self) -> int:
        return int(np.unique(self.pcs).size)

    # -- persistence -------------------------------------------------------

    def save(self, path: str) -> None:
        np.savez_compressed(path, name=np.array(self.name), pcs=self.pcs,
                            addrs=self.addrs, writes=self.writes,
                            gaps=self.gaps, deps=self.deps)

    @classmethod
    def load(cls, path: str) -> "Trace":
        data = np.load(path, allow_pickle=False)
        deps = data["deps"] if "deps" in data else None
        return cls(str(data["name"]), data["pcs"], data["addrs"],
                   data["writes"], data["gaps"], deps)

    @classmethod
    def from_records(cls, name: str,
                     records: Iterable[TraceRecord]) -> "Trace":
        builder = TraceBuilder(name)
        for r in records:
            builder.add(r.pc, r.addr, r.is_write, r.gap, r.dep)
        return builder.build()


class TraceBuilder:
    """Mutable helper used by the workload generators."""

    def __init__(self, name: str):
        self.name = name
        self._pcs: List[int] = []
        self._addrs: List[int] = []
        self._writes: List[bool] = []
        self._gaps: List[int] = []
        self._deps: List[bool] = []

    def __len__(self) -> int:
        return len(self._pcs)

    def add(self, pc: int, addr: int, is_write: bool = False,
            gap: int = 3, dep: bool = False) -> None:
        self._pcs.append(pc)
        self._addrs.append(addr)
        self._writes.append(is_write)
        self._gaps.append(gap)
        self._deps.append(dep)

    def extend(self, other: "TraceBuilder") -> None:
        self._pcs.extend(other._pcs)
        self._addrs.extend(other._addrs)
        self._writes.extend(other._writes)
        self._gaps.extend(other._gaps)
        self._deps.extend(other._deps)

    def build(self) -> Trace:
        return Trace(self.name, self._pcs, self._addrs, self._writes,
                     self._gaps, self._deps)
