"""Simulated system configuration (Table II of the paper).

The defaults mirror the paper's Ice Lake-like setup: 4 GHz 6-wide OoO
core with a 352-entry ROB, 48KB/12-way L1D, 512KB/8-way L2, 2MB/core
16-way LLC, and DDR4-3200 with channel counts scaled by core count.
Latencies are in core cycles.

The config also carries the reproduction-specific knobs (trace length,
warmup fraction) that have no counterpart in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from ..telemetry.config import TelemetryConfig


#: Table II: "1/2/4/8C: 1/2/2/4 channels"
CHANNELS_BY_CORES: Dict[int, int] = {1: 1, 2: 2, 4: 2, 8: 4}


@dataclass(frozen=True)
class SystemConfig:
    """Everything the engine needs to build one simulated system."""

    num_cores: int = 1

    # Core timing proxy
    commit_width: int = 6
    rob_size: int = 352
    mlp: int = 16              # max overlapped outstanding misses (L1D MSHRs)

    # L1D (we do not model the L1I; traces contain data accesses only)
    l1d_size: int = 48 * 1024
    l1d_ways: int = 12
    l1d_latency: int = 5

    # L2
    l2_size: int = 512 * 1024
    l2_ways: int = 8
    l2_latency: int = 10

    # LLC (per core; scaled by num_cores for shared LLC)
    llc_size_per_core: int = 2 * 1024 * 1024
    llc_ways: int = 16
    llc_latency: int = 20
    llc_replacement: str = "srrip"

    # DRAM
    dram_mt_per_sec: float = 3200.0
    dram_base_latency: float = 100.0
    dram_bandwidth_scale: float = 1.0
    dram_channels: int = 0      # 0 = derive from CHANNELS_BY_CORES

    # Reproduction knobs
    warmup_fraction: float = 0.2

    # Observability (None = off: no subscribers, bit-identical results).
    # Participates in job fingerprints, so telemetry-on runs key their
    # own cache entries.  See repro.telemetry.
    telemetry: Optional[TelemetryConfig] = None

    # Engine fast path (see repro.sim.fastpath).  Pure execution
    # strategy: results are bit-identical either way, so - like
    # SimJob.resume - it is excluded from job fingerprints.  None defers
    # to the REPRO_FASTPATH tri-state environment knob; True/False force
    # it for this system regardless of the environment.
    fastpath: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ValueError("num_cores must be >= 1")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")

    @property
    def llc_size(self) -> int:
        """Total shared LLC capacity."""
        return self.llc_size_per_core * self.num_cores

    @property
    def channels(self) -> int:
        if self.dram_channels:
            return self.dram_channels
        return CHANNELS_BY_CORES.get(self.num_cores,
                                     max(1, self.num_cores // 2))

    def scaled(self, **overrides) -> "SystemConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)

    def scaled_down(self, factor: int = 4) -> "SystemConfig":
        """Shrink every cache by ``factor`` (same ways and latencies).

        The experiments run on a 1/4-scale hierarchy so that Python-sized
        traces (~100-200K accesses) exercise the same capacity pressure
        the paper's 800M-instruction traces put on the full-size system.
        Partition sizes scale with the LLC, so the paper's "1MB / 0.5MB
        metadata store" become "half the LLC / a quarter of the LLC" -
        the same set/way arithmetic at every scale.
        """
        if factor < 1 or not (factor & (factor - 1)) == 0:
            raise ValueError("factor must be a power of two >= 1")
        return replace(
            self,
            l1d_size=self.l1d_size // factor,
            l2_size=self.l2_size // factor,
            llc_size_per_core=self.llc_size_per_core // factor,
        )

    def table(self) -> str:
        """Render the configuration as the paper's Table II."""
        rows = [
            ("Core", f"4GHz, {self.commit_width}-wide OoO, "
                     f"{self.rob_size}-entry ROB (timing proxy)"),
            ("L1D", f"{self.l1d_size // 1024}KB, {self.l1d_ways}-way, "
                    f"{self.l1d_latency}-cycle latency"),
            ("L2", f"{self.l2_size // 1024}KB, {self.l2_ways}-way, "
                   f"{self.l2_latency}-cycle latency"),
            ("LLC", f"{self.llc_size // (1024 * 1024)}MB "
                    f"({self.llc_size_per_core // (1024 * 1024)}MB/core), "
                    f"{self.llc_ways}-way, {self.llc_latency}-cycle latency"),
            ("DRAM", f"{self.dram_mt_per_sec:.0f} MT/s, "
                     f"{self.channels} channel(s), "
                     f"bandwidth x{self.dram_bandwidth_scale:g}"),
        ]
        width = max(len(k) for k, _ in rows)
        return "\n".join(f"{k:<{width}} | {v}" for k, v in rows)


DEFAULT_CONFIG = SystemConfig()
