"""Tiered fast path for the single-core demand hot loop.

The default engine pays, per trace record: a heap pop/push, a
``MemoryRequest`` + per-level ``LevelOutcome`` allocation, a
``Cache.lookup`` way scan with an ``AccessResult`` allocation per level,
a ``Line`` copy per eviction, and one ``EventBus.publish`` (event
allocation included) per observation point — even for the
overwhelmingly common pure L1D read hit.  This module removes that
overhead without changing a single observable number: a
:class:`FastLoop` executes the identical simulation, record for record,
and every counter, cache line, policy stamp, prefetcher table, and
floating-point clock it produces is **bit-identical** to the scalar
path.  ``SystemConfig.fastpath`` / ``REPRO_FASTPATH`` gate it
(off by default); ``tests/test_fastpath.py`` and
``benchmarks/bench_fastpath.py`` assert the equivalence.

**Tier A — compiled scalar pipeline** (any single-core engine with LRU
private caches):

* no scheduling heap: at N=1 the heap degenerates to "step core 0";
* no request/outcome/result objects: the private-level and uncore
  pipelines of ``memory.hierarchy`` — including ``Cache.lookup`` /
  ``Cache.fill`` and the LRU/SRRIP policy hooks — are compiled into
  allocation-free closures over the caches' own ``tag_index`` /
  ``lines`` / policy state, so all cache-layer state evolves exactly as
  the real implementation evolves it, without a single temporary;
* an L1D pure-read-hit lane: residency resolved through
  ``Cache.tag_index``, the LRU touch inlined;
* plan-dispatched events: per event kind the loop precomputes one of
  - *counter-only* (no subscribers: bump the ``(kind, level, origin)``
    counter, exactly what ``publish`` would have done).  Bumps are
    deferred into flat per-site slots and flushed into ``bus.counts``
    at warm-up boundaries and run end; a slot's key is reserved in the
    dict on its first increment, so insertion order — observable via
    ``EventBus.state_dict`` — matches the scalar path's first-publish
    order even when real publishes (metadata traffic) interleave,
  - *inline replica* (the subscriber list is exactly the closures this
    module can prove it replicates: prefetcher trainers registered in
    ``CoreHierarchy.trainer_subs`` and the uncore's prefetch
    bookkeeping handlers), or
  - *generic delivery* (anything else — telemetry samplers, duelers:
    deliver a preallocated, reused ``HierarchyEvent`` to the live
    subscriber list, legal because ``EventBus.subscribe`` requires
    non-retention; a small pool keeps nested publications re-entrant).

**Tier B — vectorized run execution** (engaged per-span when
``lookup-hit`` has *zero* subscribers): screen an upcoming window
against an L1D tag-residency snapshot for a maximal run of guaranteed
pure read hits on ready, non-prefetched lines, then execute the whole
run with numpy prefix ops — cumsum clocks (sequential left-fold, so
bitwise equal to repeated ``+=``), scatter LRU stamps, bulk
counter/stat increments, and exact reconstruction of the MLP window.
A run ends at the first write, miss, dependent load, prefetched-line
touch, or warm-up boundary; configurations with live ``lookup-hit``
subscribers (telemetry, L1 prefetchers) structurally never enter
Tier B.

Fallback triggers (whole engine drops to the scalar path): multicore,
record streams (``multicore._biased``), non-LRU private caches, a
progress-mark hook (``REPRO_CKPT_MARK``), or the span profiler
(``REPRO_PROFILE=1`` — rejected loudly, see :func:`resolve`).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..envknobs import env_tristate
from ..memory.events import EV, HierarchyEvent
from ..memory.replacement import LRUPolicy, SRRIPPolicy
from ..memory.request import DEMAND, PREFETCH, WRITEBACK
from ..prefetchers.base import TRAIN_SCOPE_ALL_L2

#: Records per scalar slab (one ``tolist`` burst each).
CHUNK = 1 << 14
#: Tier B: how far ahead one screen looks.
SCREEN_WINDOW = 1 << 12
#: Tier B: minimum profitable run (screens cost a residency snapshot).
MIN_RUN = 64
#: Tier B: consecutive lane hits before a screen is attempted.
STREAK_TRIGGER = 32

ENV_KNOB = "REPRO_FASTPATH"

# Event-dispatch modes.
_COUNT_ONLY = 0
_INLINE = 1
_GENERIC = 2

#: Deferred counter slots: every (kind, level, origin) key the compiled
#: pipeline can emit, one flat index each.  ``flush`` folds the slots
#: into ``bus.counts``; first increments reserve the key so dict
#: insertion order matches scalar first-publish order.
_KEYS: List[Tuple[str, str, str]] = [
    (EV.LOOKUP_HIT, "l1d", DEMAND), (EV.LOOKUP_MISS, "l1d", DEMAND),
    (EV.LOOKUP_HIT, "l2", DEMAND), (EV.LOOKUP_MISS, "l2", DEMAND),
    (EV.DEMAND_COMPLETE, "l2", DEMAND),
    (EV.ACCESS, "llc", DEMAND), (EV.LOOKUP_HIT, "llc", DEMAND),
    (EV.LOOKUP_MISS, "llc", DEMAND), (EV.FILL, "llc", DEMAND),
    (EV.EVICTION, "llc", DEMAND),
    (EV.ACCESS, "llc", PREFETCH), (EV.LOOKUP_HIT, "llc", PREFETCH),
    (EV.LOOKUP_MISS, "llc", PREFETCH), (EV.FILL, "llc", PREFETCH),
    (EV.EVICTION, "llc", PREFETCH),
    (EV.FILL, "llc", WRITEBACK), (EV.EVICTION, "llc", WRITEBACK),
    (EV.FILL, "l1d", DEMAND), (EV.EVICTION, "l1d", DEMAND),
    (EV.FILL, "l1d", PREFETCH), (EV.EVICTION, "l1d", PREFETCH),
    (EV.PREFETCH_USELESS, "l1d", DEMAND),
    (EV.PREFETCH_USEFUL, "l1d", DEMAND),
    (EV.FILL, "l2", DEMAND), (EV.EVICTION, "l2", DEMAND),
    (EV.FILL, "l2", PREFETCH), (EV.EVICTION, "l2", PREFETCH),
    (EV.FILL, "l2", WRITEBACK), (EV.EVICTION, "l2", WRITEBACK),
    (EV.PREFETCH_USELESS, "l2", DEMAND),
    (EV.PREFETCH_USEFUL, "l2", DEMAND),
    (EV.PREFETCH_ISSUED, "l1d", PREFETCH),
    (EV.PREFETCH_ISSUED, "l2", PREFETCH),
    (EV.PREFETCH_DROPPED, "l1d", PREFETCH),
    (EV.PREFETCH_DROPPED, "l2", PREFETCH),
]

(S_L1_HIT, S_L1_MISS, S_L2_HIT, S_L2_MISS, S_DC,
 S_LLC_ACC_D, S_LLC_HIT_D, S_LLC_MISS_D, S_LLC_FILL_D, S_LLC_EV_D,
 S_LLC_ACC_P, S_LLC_HIT_P, S_LLC_MISS_P, S_LLC_FILL_P, S_LLC_EV_P,
 S_LLC_FILL_WB, S_LLC_EV_WB,
 S_L1_FILL_D, S_L1_EV_D, S_L1_FILL_P, S_L1_EV_P,
 S_L1_USELESS, S_L1_USEFUL,
 S_L2_FILL_D, S_L2_EV_D, S_L2_FILL_P, S_L2_EV_P,
 S_L2_FILL_WB, S_L2_EV_WB, S_L2_USELESS, S_L2_USEFUL,
 S_PF_ISS_L1, S_PF_ISS_L2, S_PF_DROP_L1, S_PF_DROP_L2) = range(len(_KEYS))


def resolve(config) -> bool:
    """Is the fast path requested for this config/environment?

    ``SystemConfig.fastpath`` wins when set; ``None`` defers to the
    ``REPRO_FASTPATH`` tri-state knob (default off).  Malformed values
    raise ``ValueError`` naming the variable.
    """
    if config.fastpath is not None:
        return bool(config.fastpath)
    env = env_tristate(ENV_KNOB)
    return bool(env) if env is not None else False


def report_profiler_conflict() -> None:
    """The fast path and the span profiler are mutually exclusive: the
    fast loop has no per-span instrumentation, so running it under
    ``REPRO_PROFILE=1`` would silently produce an empty profile.  The
    engine keeps the profiler and drops the fast path — loudly: a
    warning plus a runlog record, never a silent degradation."""
    import warnings

    from ..obs import runlog

    warnings.warn(
        "fastpath requested (SystemConfig.fastpath/REPRO_FASTPATH) "
        "together with the span profiler (REPRO_PROFILE=1); the fast "
        "path skips profiled spans, so it is disabled for this engine",
        RuntimeWarning, stacklevel=3)
    writer = runlog.current()
    if writer is not None:
        writer.emit("fastpath_disabled", reason="profiler",
                    detail="REPRO_PROFILE=1 takes precedence; "
                           "scalar path used")


class FastLoop:
    """Executes one single-core engine's record stream, bit-identically.

    Built against a fully wired engine (every subscription in place);
    :meth:`build` returns ``None`` when the engine shape is unsupported
    and the caller falls back to the scalar loop.
    """

    def __init__(self, engine) -> None:
        self.engine = engine
        self.hier = engine.cores[0]
        self.uncore = engine.uncore
        self.bus = engine.bus
        self.l1 = self.hier.l1d
        self.l2 = self.hier.l2
        self.llc = self.uncore.llc
        self.dram = self.uncore.dram
        # Reused-event pool for generic delivery; grown on demand so
        # nested publications (trainer -> prefetch issue -> fill events)
        # never overwrite an event still being delivered.
        self._pool: List[HierarchyEvent] = []
        self._depth = 0
        self._l1_lru: LRUPolicy = self.l1.policy
        self._hit_lat = self.l1.latency + 0.0  # == AccessResult latency
        self._build_plans()
        self._build_ops()

    # -- construction -------------------------------------------------------

    @classmethod
    def build(cls, engine) -> Optional["FastLoop"]:
        """A FastLoop for ``engine``, or None if its shape needs the
        scalar loop (multicore interleaving, externally supplied record
        streams, or non-LRU private caches)."""
        if engine.num_cores != 1:
            return None
        if engine._streams is not None:
            return None
        hier = engine.cores[0]
        if not isinstance(hier.l1d.policy, LRUPolicy):
            return None
        if not isinstance(hier.l2.policy, LRUPolicy):
            return None
        return cls(engine)

    def _build_plans(self) -> None:
        """Freeze the per-kind dispatch plans.

        Subscriptions are static for the whole run (observers attach at
        engine build and detach in ``collect()``), so the plan can be
        computed once.  Unknown subscribers are never dropped — they
        demote the kind to generic delivery, which calls the live
        subscriber list in order, exactly like ``publish``.
        """
        subs = self.bus._subs
        l1_trainers = {}   # kind -> [(closure, pf)]
        l2_trainers = []   # [(closure, pf)]
        for kind, fn, pf in self.hier.trainer_subs:
            if kind == EV.DEMAND_COMPLETE:
                l2_trainers.append((fn, pf))
            else:
                l1_trainers.setdefault(kind, []).append((fn, pf))

        def lookup_plan(kind):
            live = subs.get(kind, [])
            if not live:
                return _COUNT_ONLY, None
            expected = [fn for fn, _pf in l1_trainers.get(kind, [])]
            if expected and live == expected:
                return _INLINE, [pf for _fn, pf in l1_trainers[kind]]
            return _GENERIC, None

        self._m_hit, self._l1_pfs_hit = lookup_plan(EV.LOOKUP_HIT)
        self._m_miss, self._l1_pfs_miss = lookup_plan(EV.LOOKUP_MISS)

        live_dc = subs.get(EV.DEMAND_COMPLETE, [])
        expected_dc = [fn for fn, _pf in l2_trainers]
        if not live_dc:
            self._m_dc, self._l2_train = _COUNT_ONLY, None
        elif expected_dc and live_dc == expected_dc:
            self._m_dc = _INLINE
            self._l2_train = [
                (pf, pf.train_scope == TRAIN_SCOPE_ALL_L2)
                for _fn, pf in l2_trainers]
        else:
            self._m_dc, self._l2_train = _GENERIC, None

        uncore = self.uncore
        pf_expected = {
            EV.PREFETCH_ISSUED: uncore._on_pf_issued,
            EV.PREFETCH_DROPPED: uncore._on_pf_dropped,
            EV.PREFETCH_USEFUL: uncore._on_pf_useful,
            EV.PREFETCH_USELESS: uncore._on_pf_useless,
        }
        self._m_pf = {}
        for kind, handler in pf_expected.items():
            live = subs.get(kind, [])
            if live == [handler]:
                self._m_pf[kind] = _INLINE
            elif not live:
                self._m_pf[kind] = _COUNT_ONLY
            else:
                self._m_pf[kind] = _GENERIC

        def passive_plan(kind):
            return _GENERIC if subs.get(kind) else _COUNT_ONLY

        self._m_access = passive_plan(EV.ACCESS)
        self._m_fill = passive_plan(EV.FILL)
        self._m_evict = passive_plan(EV.EVICTION)

        # Tier B needs lookup-hit to be observably silent (runs consist
        # solely of those events).  Telemetry and L1 prefetchers
        # subscribe to lookup-hit, so those configurations structurally
        # stay scalar.
        self._tierb = self._m_hit == _COUNT_ONLY

    # -- generic event delivery --------------------------------------------

    def _deliver(self, kind: str, level: str, blk: int, pc: int,
                 origin: str, now: float, hit: bool = False,
                 was_pf: bool = False, owner: int = -1,
                 dirty: bool = False) -> None:
        """Deliver through a reused event (non-retention contract on
        ``EventBus.subscribe``); pool depth handles re-entrancy."""
        depth = self._depth
        pool = self._pool
        if depth == len(pool):
            pool.append(HierarchyEvent("", "", 0, 0, 0, DEMAND, 0.0,
                                       False, False, -1, False))
        ev = pool[depth]
        ev.kind = kind
        ev.level = level
        ev.core_id = 0
        ev.blk = blk
        ev.pc = pc
        ev.origin = origin
        ev.now = now
        ev.hit = hit
        ev.was_prefetched = was_pf
        ev.owner = owner
        ev.dirty = dirty
        subs = self.bus._subs.get(kind)
        if not subs:
            return
        self._depth = depth + 1
        try:
            for fn in subs:
                fn(ev)
        finally:
            self._depth = depth

    # -- the compiled pipeline ---------------------------------------------

    def _build_ops(self) -> None:
        """Compile the demand/prefetch pipelines into closures.

        Each closure mirrors one method chain of ``memory.hierarchy``
        and ``memory.cache`` with every temporary erased: residency via
        ``tag_index``, victims via the inlined LRU/SRRIP selection
        rules (first-minimal stamp / first RRPV==3 with aging — the
        policies' exact semantics), evicted lines as locals instead of
        ``Line`` copies, and counters as deferred slots.  Mutable state
        that outlives the loop (``tag_index``, ``lines``, ``_stamp``,
        ``free_ways``, ``bus.counts``) is captured once — all of it is
        mutated in place, never rebound, during a run; per-segment
        state (``cache.stats``, rebound at the warm-up boundary) is
        re-fetched per operation.
        """
        hier = self.hier
        uncore = self.uncore
        counts = self.bus.counts
        deliver = self._deliver
        prefetchers = uncore.prefetchers
        keys = _KEYS
        cnt = [0] * len(keys)
        self._cnt = cnt

        l1, l2, llc, dram = self.l1, self.l2, self.llc, self.dram
        dram_access = dram.access
        lat1, lat2, lat3 = l1.latency, l2.latency, llc.latency
        port_occ = uncore.port_occupancy

        m_hit, m_miss, m_dc = self._m_hit, self._m_miss, self._m_dc
        m_access, m_fill, m_evict = (self._m_access, self._m_fill,
                                     self._m_evict)
        m_useful = self._m_pf[EV.PREFETCH_USEFUL]
        m_useless = self._m_pf[EV.PREFETCH_USELESS]
        m_issued = self._m_pf[EV.PREFETCH_ISSUED]
        m_dropped = self._m_pf[EV.PREFETCH_DROPPED]
        pfs_hit, pfs_miss = self._l1_pfs_hit, self._l1_pfs_miss
        l2_train = self._l2_train

        idx1, idx2 = l1.tag_index, l2.tag_index

        def make_install(cache):
            """Closure replicating ``Cache.fill`` sans ``Line`` copy;
            the evicted line's fields land in ``cell``."""
            idx = cache.tag_index
            rows = cache.lines
            mask = cache.num_sets - 1
            dw = cache._data_ways
            free = cache.free_ways
            ways = cache.ways
            pol = cache.policy
            lru = pol if isinstance(pol, LRUPolicy) else None
            srrip = isinstance(pol, SRRIPPolicy)
            rrpv = pol._rrpv if srrip else None
            stamp = lru._stamp if lru is not None else None
            cell = [-1, 0, -1, False, False]  # blk, pc, owner, dirty, useless

            def install(blk, ready, pc, prefetch, dirty, owner):
                set_idx = blk & mask
                nd = dw[set_idx]
                if not nd:
                    return False  # set ceded to metadata; bypass
                st = cache.stats
                row = rows[set_idx]
                way = idx.get(blk)
                evicted = False
                if way is None:
                    if free[set_idx]:
                        for w in range(nd):
                            if not row[w].valid:
                                way = w
                                free[set_idx] -= 1
                                break
                    if way is None:
                        if stamp is not None:
                            srow = stamp[set_idx]
                            if nd == ways:
                                way = srow.index(min(srow))
                            else:
                                sub = srow[:nd]
                                way = sub.index(min(sub))
                        elif srrip:
                            vrow = rrpv[set_idx]
                            while True:
                                try:  # RRPVs live in 0..3; 3 == MAX
                                    way = vrow.index(3, 0, nd)
                                    break
                                except ValueError:
                                    for w in range(nd):
                                        vrow[w] += 1
                        else:
                            way = pol.victim(set_idx, range(nd))
                        line = row[way]
                        if line.valid:
                            idx.pop(line.blk, None)
                            evicted = True
                            cell[0] = line.blk
                            cell[1] = line.pc
                            cell[2] = line.owner
                            cell[3] = line.dirty
                            cell[4] = (line.prefetched
                                       and not line.pf_touched)
                            st.evictions += 1
                            if line.dirty:
                                st.writebacks += 1
                line = row[way]
                idx[blk] = way
                line.blk = blk
                line.valid = True
                line.dirty = dirty
                line.prefetched = prefetch
                line.pf_touched = False
                line.ready = ready
                line.pc = pc
                line.owner = owner
                if prefetch:
                    st.prefetch_fills += 1
                if stamp is not None:
                    c = lru._clock + 1
                    lru._clock = c
                    stamp[set_idx][way] = c
                elif srrip:
                    rrpv[set_idx][way] = 2  # MAX_RRPV - 1
                else:
                    pol.on_fill(set_idx, way, blk, pc)
                return evicted

            return install, cell

        install1, cell1 = make_install(l1)
        install2, cell2 = make_install(l2)
        install3, cell3 = make_install(llc)

        # L1/L2 lookup state (both LRU; build() guarantees it).
        rows1, rows2, rows3 = l1.lines, l2.lines, llc.lines
        mask1, mask2, mask3 = (l1.num_sets - 1, l2.num_sets - 1,
                               llc.num_sets - 1)
        pol1, pol2, pol3 = l1.policy, l2.policy, llc.policy
        stamp1, stamp2 = pol1._stamp, pol2._stamp
        llc_srrip = isinstance(pol3, SRRIPPolicy)
        llc_lru = isinstance(pol3, LRUPolicy)
        rrpv3 = pol3._rrpv if llc_srrip else None
        stamp3 = pol3._stamp if llc_lru else None

        def useless(level_l1, blk, now, owner):
            s = S_L1_USELESS if level_l1 else S_L2_USELESS
            c_ = cnt[s]
            if not c_:
                counts.setdefault(keys[s], 0)
            cnt[s] = c_ + 1
            if m_useless == 1:
                pf = prefetchers.get(owner)
                if pf is not None:
                    pf.note_useless(blk, now)
            elif m_useless == 2:
                deliver(EV.PREFETCH_USELESS,
                        "l1d" if level_l1 else "l2", blk, 0, DEMAND,
                        now, owner=owner)

        def useful(level_l1, blk, now, owner):
            s = S_L1_USEFUL if level_l1 else S_L2_USEFUL
            c_ = cnt[s]
            if not c_:
                counts.setdefault(keys[s], 0)
            cnt[s] = c_ + 1
            if m_useful == 1:
                pf = prefetchers.get(owner)
                if pf is not None:
                    pf.note_useful(blk, now)
            elif m_useful == 2:
                deliver(EV.PREFETCH_USEFUL,
                        "l1d" if level_l1 else "l2", blk, 0, DEMAND,
                        now, owner=owner)

        def uncore_access(blk, pc, now, demand):
            """UncoreLevel._access: port + LLC (+ DRAM/fill on miss)."""
            pfree = uncore._port_free
            if pfree > now:
                delay = pfree - now
                uncore._port_free = pfree + port_occ
            else:
                delay = 0.0
                uncore._port_free = now + port_occ
            uncore.demand_llc_accesses += 1
            origin = DEMAND if demand else PREFETCH
            s = S_LLC_ACC_D if demand else S_LLC_ACC_P
            c_ = cnt[s]
            if not c_:
                counts.setdefault(keys[s], 0)
            cnt[s] = c_ + 1
            if m_access:
                deliver(EV.ACCESS, "llc", blk, pc, origin, now)
            # Cache.lookup at the LLC, inline.
            st = llc.stats
            st.accesses += 1
            tnow = now + delay
            set_idx = blk & mask3
            way = idx3.get(blk)
            if way is not None:
                st.hits += 1
                if llc_srrip:
                    rrpv3[set_idx][way] = 0
                elif llc_lru:
                    c = pol3._clock + 1
                    pol3._clock = c
                    stamp3[set_idx][way] = c
                else:
                    pol3.on_hit(set_idx, way)
                line = rows3[set_idx][way]
                r = line.ready
                extra = r - tnow if r > tnow else 0.0
                was_pf = line.prefetched and not line.pf_touched
                if was_pf:
                    line.pf_touched = True
                    st.useful_prefetches += 1
                    if extra > 0:
                        st.late_prefetch_hits += 1
                s = S_LLC_HIT_D if demand else S_LLC_HIT_P
                c_ = cnt[s]
                if not c_:
                    counts.setdefault(keys[s], 0)
                cnt[s] = c_ + 1
                if m_hit == 2:
                    deliver(EV.LOOKUP_HIT, "llc", blk, pc, origin, now,
                            hit=True, was_pf=was_pf, owner=line.owner)
                return delay + (lat3 + extra)
            st.misses += 1
            s = S_LLC_MISS_D if demand else S_LLC_MISS_P
            c_ = cnt[s]
            if not c_:
                counts.setdefault(keys[s], 0)
            cnt[s] = c_ + 1
            if m_miss == 2:
                deliver(EV.LOOKUP_MISS, "llc", blk, pc, origin, now,
                        hit=False, owner=-1)
            lat = delay + lat3
            lat += dram_access(blk, now + lat, is_prefetch=not demand)
            fill_at = now + lat
            evicted = install3(blk, fill_at, pc, False, False, -1)
            s = S_LLC_FILL_D if demand else S_LLC_FILL_P
            c_ = cnt[s]
            if not c_:
                counts.setdefault(keys[s], 0)
            cnt[s] = c_ + 1
            if m_fill:
                deliver(EV.FILL, "llc", blk, pc, origin, fill_at)
            if evicted:
                e_blk, e_pc, e_owner, e_dirty = (cell3[0], cell3[1],
                                                 cell3[2], cell3[3])
                s = S_LLC_EV_D if demand else S_LLC_EV_P
                c_ = cnt[s]
                if not c_:
                    counts.setdefault(keys[s], 0)
                cnt[s] = c_ + 1
                if m_evict:
                    deliver(EV.EVICTION, "llc", e_blk, e_pc, origin,
                            fill_at, owner=e_owner, dirty=e_dirty)
                if e_dirty:
                    dram_access(e_blk, fill_at, is_write=True)
            return lat

        def uncore_wb(blk, pc, now):
            """UncoreLevel.writeback: dirty L2 victim lands in the LLC."""
            pfree = uncore._port_free
            uncore._port_free = (pfree if pfree > now else now) + port_occ
            evicted = install3(blk, now, pc, False, True, -1)
            c_ = cnt[S_LLC_FILL_WB]
            if not c_:
                counts.setdefault(keys[S_LLC_FILL_WB], 0)
            cnt[S_LLC_FILL_WB] = c_ + 1
            if m_fill:
                deliver(EV.FILL, "llc", blk, pc, WRITEBACK, now,
                        dirty=True)
            if evicted:
                e_blk, e_pc, e_owner, e_dirty = (cell3[0], cell3[1],
                                                 cell3[2], cell3[3])
                c_ = cnt[S_LLC_EV_WB]
                if not c_:
                    counts.setdefault(keys[S_LLC_EV_WB], 0)
                cnt[S_LLC_EV_WB] = c_ + 1
                if m_evict:
                    deliver(EV.EVICTION, "llc", e_blk, e_pc, WRITEBACK,
                            now, owner=e_owner, dirty=e_dirty)
                if e_dirty:
                    dram_access(e_blk, now, is_write=True)

        def l2_wb(blk, pc, now):
            """CacheLevel.writeback at the L2: absorb a dirty L1D victim
            (victim cascade intentionally unmodelled at private levels)."""
            evicted = install2(blk, now, pc, False, True, -1)
            c_ = cnt[S_L2_FILL_WB]
            if not c_:
                counts.setdefault(keys[S_L2_FILL_WB], 0)
            cnt[S_L2_FILL_WB] = c_ + 1
            if m_fill:
                deliver(EV.FILL, "l2", blk, pc, WRITEBACK, now,
                        dirty=True)
            if evicted:
                c_ = cnt[S_L2_EV_WB]
                if not c_:
                    counts.setdefault(keys[S_L2_EV_WB], 0)
                cnt[S_L2_EV_WB] = c_ + 1
                if m_evict:
                    deliver(EV.EVICTION, "l2", cell2[0], cell2[1],
                            WRITEBACK, now, owner=cell2[2],
                            dirty=cell2[3])

        def l2_fill(blk, ready, pc, prefetch, owner, s_fill, s_ev,
                    origin):
            """CacheLevel.fill at the L2 (demand or prefetch origin)."""
            evicted = install2(blk, ready, pc, prefetch, False, owner)
            c_ = cnt[s_fill]
            if not c_:
                counts.setdefault(keys[s_fill], 0)
            cnt[s_fill] = c_ + 1
            if m_fill:
                deliver(EV.FILL, "l2", blk, pc, origin, ready,
                        owner=owner)
            if evicted:
                e_blk, e_pc, e_owner, e_dirty, e_useless = cell2
                c_ = cnt[s_ev]
                if not c_:
                    counts.setdefault(keys[s_ev], 0)
                cnt[s_ev] = c_ + 1
                if m_evict:
                    deliver(EV.EVICTION, "l2", e_blk, e_pc, origin,
                            ready, owner=e_owner, dirty=e_dirty)
                if e_useless:
                    useless(False, e_blk, ready, e_owner)
                if e_dirty:
                    uncore_wb(e_blk, e_pc, ready)

        def l1_fill(blk, ready, pc, prefetch, owner, s_fill, s_ev,
                    origin):
            """CacheLevel.fill at the L1D (demand or prefetch origin)."""
            evicted = install1(blk, ready, pc, prefetch, False, owner)
            c_ = cnt[s_fill]
            if not c_:
                counts.setdefault(keys[s_fill], 0)
            cnt[s_fill] = c_ + 1
            if m_fill:
                deliver(EV.FILL, "l1d", blk, pc, origin, ready,
                        owner=owner)
            if evicted:
                e_blk, e_pc, e_owner, e_dirty, e_useless = cell1
                c_ = cnt[s_ev]
                if not c_:
                    counts.setdefault(keys[s_ev], 0)
                cnt[s_ev] = c_ + 1
                if m_evict:
                    deliver(EV.EVICTION, "l1d", e_blk, e_pc, origin,
                            ready, owner=e_owner, dirty=e_dirty)
                if e_useless:
                    useless(True, e_blk, ready, e_owner)
                if e_dirty:
                    l2_wb(e_blk, e_pc, ready)

        idx3 = llc.tag_index

        def issue(blk, pc, now, owner, to_l1):
            """CoreHierarchy.issue_prefetch with O(1) residency probes."""
            if to_l1:
                if blk in idx1:
                    c_ = cnt[S_PF_DROP_L1]
                    if not c_:
                        counts.setdefault(keys[S_PF_DROP_L1], 0)
                    cnt[S_PF_DROP_L1] = c_ + 1
                    if m_dropped == 1:
                        pf = prefetchers.get(owner)
                        if pf is not None:
                            pf.stats.dropped += 1
                    elif m_dropped == 2:
                        deliver(EV.PREFETCH_DROPPED, "l1d", blk, pc,
                                PREFETCH, now, owner=owner)
                    return
                if blk in idx2:
                    lat = lat2 + 0.0
                else:
                    lat = lat2 + uncore_access(blk, pc, now, False)
                    l2_fill(blk, now + lat, pc, False, -1,
                            S_L2_FILL_D, S_L2_EV_D, DEMAND)
                l1_fill(blk, now + lat, pc, True, owner,
                        S_L1_FILL_P, S_L1_EV_P, PREFETCH)
                c_ = cnt[S_PF_ISS_L1]
                if not c_:
                    counts.setdefault(keys[S_PF_ISS_L1], 0)
                cnt[S_PF_ISS_L1] = c_ + 1
                if m_issued == 1:
                    pf = prefetchers.get(owner)
                    if pf is not None:
                        pf.stats.issued += 1
                elif m_issued == 2:
                    deliver(EV.PREFETCH_ISSUED, "l1d", blk, pc,
                            PREFETCH, now, owner=owner)
            else:
                if blk in idx2:
                    c_ = cnt[S_PF_DROP_L2]
                    if not c_:
                        counts.setdefault(keys[S_PF_DROP_L2], 0)
                    cnt[S_PF_DROP_L2] = c_ + 1
                    if m_dropped == 1:
                        pf = prefetchers.get(owner)
                        if pf is not None:
                            pf.stats.dropped += 1
                    elif m_dropped == 2:
                        deliver(EV.PREFETCH_DROPPED, "l2", blk, pc,
                                PREFETCH, now, owner=owner)
                    return
                lat = uncore_access(blk, pc, now, False)
                l2_fill(blk, now + lat, pc, True, owner,
                        S_L2_FILL_P, S_L2_EV_P, PREFETCH)
                c_ = cnt[S_PF_ISS_L2]
                if not c_:
                    counts.setdefault(keys[S_PF_ISS_L2], 0)
                cnt[S_PF_ISS_L2] = c_ + 1
                if m_issued == 1:
                    pf = prefetchers.get(owner)
                    if pf is not None:
                        pf.stats.issued += 1
                elif m_issued == 2:
                    deliver(EV.PREFETCH_ISSUED, "l2", blk, pc,
                            PREFETCH, now, owner=owner)

        def demand_slow(pc, blk, is_write, now):
            """CoreHierarchy.access minus the pure-read-hit lane: every
            miss, write, timing-credit hit, and prefetched-line touch.
            (``demand_accesses`` is bumped by the caller for both lanes.)"""
            # Cache.lookup at the L1D, inline.
            st = l1.stats
            st.accesses += 1
            set_idx = blk & mask1
            way = idx1.get(blk)
            if way is not None:
                line = rows1[set_idx][way]
                st.hits += 1
                c = pol1._clock + 1
                pol1._clock = c
                stamp1[set_idx][way] = c
                if is_write:
                    line.dirty = True
                r = line.ready
                extra = r - now if r > now else 0.0
                was_pf = line.prefetched and not line.pf_touched
                if was_pf:
                    line.pf_touched = True
                    st.useful_prefetches += 1
                    if extra > 0:
                        st.late_prefetch_hits += 1
                owner = line.owner
                c_ = cnt[S_L1_HIT]
                if not c_:
                    counts.setdefault(keys[S_L1_HIT], 0)
                cnt[S_L1_HIT] = c_ + 1
                if m_hit == 1:
                    for pf in pfs_hit:
                        for cand in pf.train(pc, blk, True, was_pf,
                                             now):
                            issue(cand, pc, now, pf.owner_id, True)
                elif m_hit == 2:
                    deliver(EV.LOOKUP_HIT, "l1d", blk, pc, DEMAND,
                            now, hit=True, was_pf=was_pf, owner=owner)
                latency = 0.0 + (lat1 + extra)
                if was_pf:
                    useful(True, blk, now, owner)
                return latency
            st.misses += 1
            c_ = cnt[S_L1_MISS]
            if not c_:
                counts.setdefault(keys[S_L1_MISS], 0)
            cnt[S_L1_MISS] = c_ + 1
            if m_miss == 1:
                for pf in pfs_miss:
                    for cand in pf.train(pc, blk, False, False, now):
                        issue(cand, pc, now, pf.owner_id, True)
            elif m_miss == 2:
                deliver(EV.LOOKUP_MISS, "l1d", blk, pc, DEMAND, now,
                        hit=False, owner=-1)
            latency = 0.0 + lat1
            # Descend: CacheLevel._access at the L2, lookup inline.
            st2 = l2.stats
            st2.accesses += 1
            tn2 = now + latency
            set2 = blk & mask2
            way2 = idx2.get(blk)
            if way2 is not None:
                hit2 = True
                line2 = rows2[set2][way2]
                st2.hits += 1
                c = pol2._clock + 1
                pol2._clock = c
                stamp2[set2][way2] = c
                r = line2.ready
                extra2 = r - tn2 if r > tn2 else 0.0
                was_pf2 = line2.prefetched and not line2.pf_touched
                if was_pf2:
                    line2.pf_touched = True
                    st2.useful_prefetches += 1
                    if extra2 > 0:
                        st2.late_prefetch_hits += 1
                owner2 = line2.owner
                s = S_L2_HIT
            else:
                hit2 = False
                was_pf2 = False
                owner2 = -1
                st2.misses += 1
                s = S_L2_MISS
            c_ = cnt[s]
            if not c_:
                counts.setdefault(keys[s], 0)
            cnt[s] = c_ + 1
            mode = m_hit if hit2 else m_miss
            # An inline plan means the only subscribers are L1 trainer
            # closures, which filter ev.level != "l1d" — nothing to run.
            if mode == 2:
                deliver(EV.LOOKUP_HIT if hit2 else EV.LOOKUP_MISS,
                        "l2", blk, pc, DEMAND, now, hit=hit2,
                        was_pf=was_pf2, owner=owner2)
            if hit2:
                latency += lat2 + extra2
                if was_pf2:
                    useful(False, blk, now, owner2)
            else:
                latency += lat2
                latency += uncore_access(blk, pc, now + latency, True)
                l2_fill(blk, now + latency, pc, False, -1,
                        S_L2_FILL_D, S_L2_EV_D, DEMAND)
            l1_fill(blk, now + latency, pc, False, -1,
                    S_L1_FILL_D, S_L1_EV_D, DEMAND)
            if not hit2:
                hier.uncovered_misses += 1
            # demand-complete: fires for every access that reached the L2.
            c_ = cnt[S_DC]
            if not c_:
                counts.setdefault(keys[S_DC], 0)
            cnt[S_DC] = c_ + 1
            if m_dc == 1:
                for pf, all_l2 in l2_train:
                    if all_l2 or not hit2 or was_pf2:
                        for cand in pf.train(pc, blk, hit2, was_pf2,
                                             now):
                            issue(cand, pc, now, pf.owner_id, False)
            elif m_dc == 2:
                deliver(EV.DEMAND_COMPLETE, "l2", blk, pc, DEMAND,
                        now, hit=hit2, was_pf=was_pf2, owner=owner2)
            return latency

        def flush():
            """Fold the deferred slots into ``bus.counts``."""
            for i, v in enumerate(cnt):
                if v:
                    k = keys[i]
                    counts[k] = counts.get(k, 0) + v
                    cnt[i] = 0

        self._demand_slow = demand_slow
        self._issue = issue
        self._flush = flush

    # -- Tier B -------------------------------------------------------------

    def _screen_run(self, s: int, limit: int, c0: float, instrs0: int,
                    outstanding) -> Tuple[int, Optional[tuple]]:
        """Find the longest vectorizable run starting at record ``s``.

        Returns ``(L, plan)`` where records ``s .. s+L-1`` are proven
        pure L1D read hits on ready, non-prefetched lines whose timing
        reduces to prefix sums: every MLP/ROB pop inside the run is a
        clock no-op (pre-run completions all <= the clock after record
        ``s``'s advance — the earliest possible in-run pop time, since
        both pop rules fire post-advance and clocks only grow; in-run
        entry ``j`` is MLP-popped at record ``j+mlp``, a no-op iff
        ``clock[j+mlp] >= clock[j] + hit_lat``; ROB pops lag by
        ``rob/width`` cycles >> hit_lat).  ``(0, None)`` if no
        profitable run exists.
        """
        w = min(limit - s, SCREEN_WINDOW)
        # Bounded window, not the whole trace: streaming sources
        # materialize only these `w` records.
        win = self.engine.traces[0].columns_range(s, s + w)
        # Same float op as the scalar advance, so the threshold is the
        # exact post-advance clock of record s.
        c1 = c0 + (float(win.gaps[0]) + 1.0) / self.engine.models[0].width
        for comp, _idx in outstanding:
            if comp > c1:
                return 0, None
        blks = win.blks
        # Residency snapshot: lines that are valid, ready by c0 (clocks
        # only grow, so ready <= c0 implies ready <= every in-run now),
        # and carry no pending prefetch credit.
        l1 = self.l1
        rows = l1.lines
        mask = l1.num_sets - 1
        ways = l1.ways
        eb: List[int] = []
        ef: List[int] = []
        for blk, way in l1.tag_index.items():
            line = rows[blk & mask][way]
            if line.ready <= c0 and not (line.prefetched
                                         and not line.pf_touched):
                eb.append(blk)
                ef.append(((blk & mask) * ways) + way)
        if not eb:
            return 0, None
        eb_arr = np.asarray(eb, dtype=np.int64)
        order = np.argsort(eb_arr)
        eb_arr = eb_arr[order]
        ef_arr = np.asarray(ef, dtype=np.int64)[order]
        idx = np.searchsorted(eb_arr, blks)
        idx_c = np.minimum(idx, len(eb_arr) - 1)
        ok = ((eb_arr[idx_c] == blks) & ~win.writes & ~win.deps)
        if bool(ok[0]) is False:
            return 0, None
        if ok.all():
            run_len = w
        else:
            run_len = int(np.argmin(ok))
        if run_len < MIN_RUN:
            return 0, None
        # Timing screen: sequential cumsum reproduces the scalar
        # left-fold clock bit for bit.
        gaps = win.gaps[:run_len].astype(np.float64)
        terms = (gaps + 1.0) / self.engine.models[0].width
        clocks = np.cumsum(np.concatenate(([c0], terms)))[1:]
        mlp = self.engine.models[0].mlp
        if run_len > mlp:
            bad = clocks[mlp:] < clocks[:-mlp] + self._hit_lat
            if bad.any():
                run_len = mlp + int(np.argmax(bad))
                if run_len < MIN_RUN:
                    return 0, None
                clocks = clocks[:run_len]
        flat = ef_arr[idx_c[:run_len]]
        return run_len, (clocks, flat, win.gaps[:run_len])

    def _execute_run(self, s: int, run_len: int, plan: tuple,
                     instrs0: int, outstanding
                     ) -> Tuple[float, int, float]:
        """Apply one screened run; returns (clock, instrs, last_comp)."""
        clocks, flat, gaps = plan
        inc = gaps.astype(np.int64) + 1
        instr_cum = instrs0 + np.cumsum(inc)
        # Stats and counters, in bulk.
        st = self.l1.stats
        st.accesses += run_len
        st.hits += run_len
        self.hier.demand_accesses += run_len
        cnt = self._cnt
        c_ = cnt[S_L1_HIT]
        if not c_:
            self.bus.counts.setdefault(_KEYS[S_L1_HIT], 0)
        cnt[S_L1_HIT] = c_ + run_len
        # LRU: per touched way, the stamp of its *last* touch; the
        # policy clock advances once per hit either way.
        pol = self._l1_lru
        ways = self.l1.ways
        base = pol._clock
        stamps = pol._stamp
        rev_flat = flat[::-1]
        uniq, first_rev = np.unique(rev_flat, return_index=True)
        last_pos = run_len - 1 - first_rev
        for f, p in zip(uniq.tolist(), last_pos.tolist()):
            stamps[f // ways][f % ways] = base + p + 1
        pol._clock = base + run_len
        # MLP window: completions are clock + hit latency; the final
        # deque is the entry suffix the scalar pop rules leave behind
        # (every in-run pop was screened to be a clock no-op).
        comps = clocks + self._hit_lat
        new_instrs = int(instr_cum[-1])
        entries = list(outstanding)
        entries.extend(zip(comps.tolist(), instr_cum.tolist()))
        total = len(entries)
        mlp = self.engine.models[0].mlp
        rob = self.engine.models[0].rob
        start = total - mlp if total > mlp else 0
        while start < total and new_instrs - entries[start][1] > rob:
            start += 1
        outstanding.clear()
        for comp, idx in entries[start:]:
            outstanding.append((float(comp), int(idx)))
        return float(clocks[-1]), new_instrs, float(comps[-1])

    # -- the loop -----------------------------------------------------------

    def run(self, stop_at_warm: bool) -> None:
        """Drive core 0 from its current position to the end of the
        trace (or just past the warm-up boundary), then hand the engine
        back in a state the scalar loop could seamlessly continue from.
        """
        eng = self.engine
        trace = eng.traces[0]
        n = len(trace)
        warm_at = eng._warmups[0]
        pos = eng._counts[0]
        end = min(warm_at, n) if stop_at_warm else n
        model = eng.models[0]
        clock = model.clock
        instrs = model.instrs
        outstanding = model._outstanding
        last_comp = model._last_load_completion
        width, rob, mlp = model.width, model.rob, model.mlp
        hier = self.hier
        counts = self.bus.counts
        keys = _KEYS
        cnt = self._cnt
        l1 = self.l1
        l1_idx = l1.tag_index
        l1_rows = l1.lines
        l1_mask = l1.num_sets - 1
        pol = self._l1_lru
        pol_stamp = pol._stamp
        hit_lat = self._hit_lat
        m_hit = self._m_hit
        l1_pfs_hit = self._l1_pfs_hit
        demand_slow = self._demand_slow
        issue = self._issue
        flush = self._flush
        deliver = self._deliver
        tierb = self._tierb
        streak = 0

        while pos < end:
            seg_end = end
            if warm_at > 0 and pos < warm_at \
                    and eng._warm_marks[0] is None:
                seg_end = min(seg_end, warm_at)
            while pos < seg_end:
                cend = min(pos + CHUNK, seg_end)
                # One bounded slab per iteration: a streaming trace
                # materializes CHUNK records here, never the whole run.
                slab = trace.columns_range(pos, cend)
                pcs_l = slab.pcs.tolist()
                blks_l = slab.blks.tolist()
                writes_l = slab.writes.tolist()
                gaps_l = slab.gaps.tolist()
                deps_l = slab.deps.tolist()
                m = cend - pos
                i = 0
                while i < m:
                    if tierb and streak >= STREAK_TRIGGER:
                        run_len, plan = self._screen_run(
                            pos + i, seg_end, clock, instrs, outstanding)
                        if run_len:
                            clock, instrs, last_comp = self._execute_run(
                                pos + i, run_len, plan, instrs,
                                outstanding)
                            i += run_len
                            continue
                        streak = 0
                    gap = gaps_l[i]
                    # CoreModel.advance
                    instrs += gap + 1
                    clock += (gap + 1) / width
                    while outstanding:
                        comp, idx = outstanding[0]
                        if instrs - idx <= rob:
                            break
                        if comp > clock:
                            clock = comp
                        outstanding.popleft()
                    # CoreModel.issue_time
                    if deps_l[i]:
                        now = clock if clock >= last_comp else last_comp
                    else:
                        now = clock
                    pc = pcs_l[i]
                    blk = blks_l[i]
                    is_write = writes_l[i]
                    hier.demand_accesses += 1
                    # L1D pure-read-hit lane, falling back to the full
                    # replica for anything with side effects.
                    latency = -1.0
                    if not is_write:
                        way = l1_idx.get(blk)
                        if way is not None:
                            line = l1_rows[blk & l1_mask][way]
                            if line.ready <= now and not (
                                    line.prefetched
                                    and not line.pf_touched):
                                st = l1.stats
                                st.accesses += 1
                                st.hits += 1
                                pclock = pol._clock + 1
                                pol._clock = pclock
                                pol_stamp[blk & l1_mask][way] = pclock
                                c_ = cnt[S_L1_HIT]
                                if not c_:
                                    counts.setdefault(
                                        keys[S_L1_HIT], 0)
                                cnt[S_L1_HIT] = c_ + 1
                                if m_hit == _INLINE:
                                    for pf in l1_pfs_hit:
                                        for cand in pf.train(
                                                pc, blk, True, False,
                                                now):
                                            issue(cand, pc, now,
                                                  pf.owner_id, True)
                                elif m_hit == _GENERIC:
                                    deliver(EV.LOOKUP_HIT, "l1d", blk,
                                            pc, DEMAND, now, hit=True,
                                            owner=line.owner)
                                latency = hit_lat
                                streak += 1
                    if latency < 0.0:
                        latency = demand_slow(pc, blk, is_write, now)
                        streak = 0
                    # CoreModel.complete_access
                    if not is_write:
                        if len(outstanding) >= mlp:
                            comp, _ = outstanding.popleft()
                            if comp > clock:
                                clock = comp
                        comp = now + latency
                        last_comp = comp
                        outstanding.append((comp, instrs))
                    i += 1
                pos += i
            # Warm-up boundary: replicate Engine._step's reset block.
            if pos == warm_at and warm_at > 0 \
                    and eng._warm_marks[0] is None:
                model.clock = clock
                model.instrs = instrs
                model._last_load_completion = last_comp
                model.drain()
                clock = model.clock
                eng._warm_marks[0] = (model.clock, model.instrs)
                flush()  # pre-warm counters, then the reset clears them
                eng.cores[0].reset_stats()
                eng._warmed += 1
                self.uncore.reset_stats()
                for pf in self.uncore.prefetchers.values():
                    reset = getattr(pf, "reset_epoch_stats", None)
                    if reset is not None:
                        reset()
                if eng.telemetry is not None:
                    eng.telemetry.reset()
                streak = 0

        # Hand back a scalar-continuable engine: model state, consumed
        # count, a repositioned record stream, flushed counters, and
        # the heap invariant (entry == model clock; exhausted cores are
        # simply left out).
        flush()
        model.clock = clock
        model.instrs = instrs
        model._last_load_completion = last_comp
        eng._counts[0] = pos
        eng._iters[0] = trace.iter_from(pos)
        eng._heap = [(model.clock, 0)] if pos < n else []
