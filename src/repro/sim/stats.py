"""Result containers and metric helpers.

All experiments funnel through :class:`SimResult`, so speedup / coverage /
accuracy / MPKI / traffic are computed in exactly one place, and the
figure-generating harness only formats them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; empty input returns 1.0 (neutral speedup)."""
    vals = [v for v in values]
    if not vals:
        return 1.0
    if any(v <= 0 for v in vals):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


@dataclass
class PrefetchReport:
    """Per-prefetcher outcome of one run."""

    name: str
    issued: int = 0
    useful: int = 0
    useless: int = 0
    dropped: int = 0
    accuracy: float = 0.0
    coverage: float = 0.0
    metadata_reads: int = 0
    metadata_writes: int = 0
    metadata_rearrange_moves: int = 0

    @property
    def metadata_traffic_bytes(self) -> int:
        return 64 * (self.metadata_reads + self.metadata_writes
                     + 2 * self.metadata_rearrange_moves)


@dataclass
class SimResult:
    """Outcome of simulating one trace on one configuration."""

    workload: str
    cycles: float
    instructions: int
    accesses: int
    l1d_miss_rate: float = 0.0
    l2_miss_rate: float = 0.0
    llc_miss_rate: float = 0.0
    llc_mpki: float = 0.0
    uncovered_misses: int = 0
    dram_reads: int = 0
    dram_writes: int = 0
    dram_queue_delay: float = 0.0
    prefetchers: List[PrefetchReport] = field(default_factory=list)
    #: Hierarchy event-bus counters (``"kind@level:origin" -> n``),
    #: attached by single-core engine runs; None for multi-core runs
    #: (the bus is shared, so per-core attribution would be misleading).
    events: Optional[Dict[str, int]] = None
    #: Span-profiler payload (``repro.obs.profile`` report), attached to
    #: single-core results under ``REPRO_PROFILE=1``; None otherwise.
    #: Pure observation: two results that differ only here describe
    #: bit-identical simulations.
    profile: Optional[Dict[str, object]] = None

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def prefetcher(self, name: str) -> Optional[PrefetchReport]:
        for p in self.prefetchers:
            if p.name == name:
                return p
        return None

    @property
    def temporal(self) -> Optional[PrefetchReport]:
        """The temporal prefetcher's report, if one ran."""
        for p in self.prefetchers:
            if p.name in ("triage", "triangel", "streamline") or \
                    p.name.startswith(("streamline", "triangel", "triage")):
                return p
        return None

    @property
    def offchip_bytes(self) -> int:
        return 64 * (self.dram_reads + self.dram_writes)


def speedup(result: SimResult, baseline: SimResult) -> float:
    """IPC ratio of ``result`` over ``baseline`` (same workload)."""
    if result.workload != baseline.workload:
        raise ValueError(
            f"speedup across different workloads: {result.workload} "
            f"vs {baseline.workload}")
    if baseline.ipc == 0:
        raise ValueError("baseline has zero IPC")
    return result.ipc / baseline.ipc


def geomean_speedup(results: Sequence[SimResult],
                    baselines: Sequence[SimResult]) -> float:
    """Geomean of per-workload speedups (paired by position)."""
    if len(results) != len(baselines):
        raise ValueError("results and baselines must pair up")
    return geomean(speedup(r, b) for r, b in zip(results, baselines))


def mean_coverage(results: Sequence[SimResult]) -> float:
    """Average temporal-prefetch coverage across runs (0 when none ran)."""
    covs = [r.temporal.coverage for r in results if r.temporal is not None]
    return sum(covs) / len(covs) if covs else 0.0


def mean_accuracy(results: Sequence[SimResult]) -> float:
    accs = [r.temporal.accuracy for r in results if r.temporal is not None]
    return sum(accs) / len(accs) if accs else 0.0


def total_metadata_traffic(results: Sequence[SimResult]) -> int:
    return sum(r.temporal.metadata_traffic_bytes for r in results
               if r.temporal is not None)


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Plain-text table used by every bench's stdout report."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row]
                                           for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for i, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
