"""Algorithm-driven GAP workloads on synthetic R-MAT graphs.

The :mod:`repro.workloads.base` generators approximate graph traffic
statistically.  This module goes further: it *runs* the GAP kernels
(BFS, PageRank, Connected Components) over a real CSR graph built from
an R-MAT edge generator, and records the memory accesses their inner
loops would issue -- offset array, edge list, and property array, each
in its own address region, with the property gathers marked as
dependent loads.

These traces have the authentic structure temporal-prefetching papers
care about: power-law degree skew (hot vertices recur), exactly
repeating neighbour runs across PageRank iterations, frontier-dependent
ordering in BFS, and convergence-driven shrinkage in CC.

Usage::

    g = rmat_graph(vertices=4096, edges_per_vertex=8, seed=1)
    trace = pagerank_trace(g, iterations=4)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..sim.trace import Trace, TraceBuilder

# Address-space layout (disjoint 4GB regions, as in workloads.base).
_OFFSETS_REGION = 0x1_0000_0000
_EDGES_REGION = 0x2_0000_0000
_PROPS_REGION = 0x3_0000_0000
_AUX_REGION = 0x4_0000_0000

_PC_OFFSETS = 0x500000   # load of the row-offset array (sequential)
_PC_EDGES = 0x500004     # load of the edge list (streaming)
_PC_PROPS = 0x500008     # gather of neighbour properties (irregular)
_PC_AUX = 0x50000C       # frontier/queue bookkeeping


@dataclass
class CSRGraph:
    """Compressed-sparse-row graph."""

    offsets: np.ndarray   # int64[v + 1]
    edges: np.ndarray     # int64[e]

    @property
    def num_vertices(self) -> int:
        return len(self.offsets) - 1

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def neighbours(self, v: int) -> np.ndarray:
        return self.edges[self.offsets[v]:self.offsets[v + 1]]

    def degree(self, v: int) -> int:
        return int(self.offsets[v + 1] - self.offsets[v])


def rmat_graph(vertices: int = 4096, edges_per_vertex: int = 8,
               seed: int = 1, a: float = 0.57, b: float = 0.19,
               c: float = 0.19) -> CSRGraph:
    """Generate an R-MAT graph (the GAP suite's Kronecker generator).

    Edges are drawn by recursively descending a 2x2 partition of the
    adjacency matrix with probabilities (a, b, c, 1-a-b-c), giving the
    power-law degree skew real graphs have.  ``vertices`` must be a
    power of two.
    """
    if vertices & (vertices - 1):
        raise ValueError("vertices must be a power of two")
    rng = np.random.default_rng(seed)
    n_edges = vertices * edges_per_vertex
    levels = vertices.bit_length() - 1
    src = np.zeros(n_edges, dtype=np.int64)
    dst = np.zeros(n_edges, dtype=np.int64)
    # Vectorized recursive descent: one random draw per level per edge.
    draws = rng.random((levels, n_edges))
    for lvl in range(levels):
        bit = 1 << (levels - lvl - 1)
        r = draws[lvl]
        right = (r >= a + b) & (r < a + b + c)
        bottom_right = r >= a + b + c
        go_down = (r >= a) & (r < a + b) | bottom_right
        go_right = right | bottom_right
        src += np.where(go_down, bit, 0)
        dst += np.where(go_right, bit, 0)
    # Build CSR (duplicates and self-loops kept, as in GAP's generator).
    order = np.argsort(src, kind="stable")
    src, dst = src[order], dst[order]
    counts = np.bincount(src, minlength=vertices)
    offsets = np.zeros(vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return CSRGraph(offsets=offsets, edges=dst.astype(np.int64))


class _KernelRecorder:
    """Records the memory accesses of a CSR kernel's inner loops."""

    def __init__(self, name: str, prop_bytes: int = 64):
        self.b = TraceBuilder(name)
        self.prop_bytes = prop_bytes

    def load_offset(self, v: int) -> None:
        self.b.add(_PC_OFFSETS, _OFFSETS_REGION + 8 * v, gap=3)

    def load_edges(self, edge_index: int) -> None:
        self.b.add(_PC_EDGES, _EDGES_REGION + 8 * edge_index, gap=2)

    def gather_prop(self, u: int, write: bool = False) -> None:
        self.b.add(_PC_PROPS, _PROPS_REGION + self.prop_bytes * u,
                   is_write=write, gap=2, dep=True)

    def aux(self, slot: int, write: bool = False) -> None:
        self.b.add(_PC_AUX, _AUX_REGION + 8 * slot, is_write=write,
                   gap=3)

    def build(self) -> Trace:
        return self.b.build()


def pagerank_trace(graph: CSRGraph, iterations: int = 4,
                   max_accesses: Optional[int] = None) -> Trace:
    """Pull-direction PageRank: per vertex, gather every in-neighbour's
    rank.  Every iteration replays the identical irregular sequence --
    the best case for temporal prefetching."""
    rec = _KernelRecorder("graphs.pr")
    n = 0
    for _ in range(iterations):
        for v in range(graph.num_vertices):
            rec.load_offset(v)
            start, end = graph.offsets[v], graph.offsets[v + 1]
            for ei in range(start, end):
                if ei % 8 == 0:
                    rec.load_edges(int(ei))  # one load per edge block
                rec.gather_prop(int(graph.edges[ei]))
                n += 1
                if max_accesses and len(rec.b) >= max_accesses:
                    return rec.build()
            rec.gather_prop(v, write=True)
    return rec.build()


def bfs_trace(graph: CSRGraph, source: int = 0,
              max_accesses: Optional[int] = None,
              restarts: int = 4, seed: int = 3) -> Trace:
    """Top-down BFS from ``source``; re-run from random sources so the
    trace contains *similar but not identical* traversals (the paper's
    BFS/SSSP behaviour: partial repeats with reordering)."""
    rng = np.random.default_rng(seed)
    rec = _KernelRecorder("graphs.bfs")
    sources = [source] + [int(rng.integers(0, graph.num_vertices))
                          for _ in range(restarts - 1)]
    for s in sources:
        visited = np.zeros(graph.num_vertices, dtype=bool)
        frontier = [s]
        visited[s] = True
        while frontier:
            next_frontier: List[int] = []
            for v in frontier:
                rec.aux(v)
                rec.load_offset(v)
                start, end = graph.offsets[v], graph.offsets[v + 1]
                for ei in range(start, end):
                    if ei % 8 == 0:
                        rec.load_edges(int(ei))
                    u = int(graph.edges[ei])
                    rec.gather_prop(u)
                    if not visited[u]:
                        visited[u] = True
                        rec.aux(u, write=True)
                        next_frontier.append(u)
                    if max_accesses and len(rec.b) >= max_accesses:
                        return rec.build()
            frontier = next_frontier
    return rec.build()


def cc_trace(graph: CSRGraph, max_iterations: int = 8,
             max_accesses: Optional[int] = None) -> Trace:
    """Label-propagation connected components: full edge sweeps that
    repeat until no label changes -- exact repeats early, shrinking
    activity later (tests metadata staleness handling)."""
    labels = np.arange(graph.num_vertices, dtype=np.int64)
    rec = _KernelRecorder("graphs.cc")
    for _ in range(max_iterations):
        changed = False
        for v in range(graph.num_vertices):
            rec.load_offset(v)
            rec.gather_prop(v)
            start, end = graph.offsets[v], graph.offsets[v + 1]
            for ei in range(start, end):
                if ei % 8 == 0:
                    rec.load_edges(int(ei))
                u = int(graph.edges[ei])
                rec.gather_prop(u)
                if labels[u] < labels[v]:
                    labels[v] = labels[u]
                    changed = True
                    rec.gather_prop(v, write=True)
                if max_accesses and len(rec.b) >= max_accesses:
                    return rec.build()
        if not changed:
            break
    return rec.build()
