"""Synthetic workload suites (SPEC06/SPEC17/GAP stand-ins) and mixes.

:mod:`.graphs` additionally provides algorithm-driven kernels on R-MAT
graphs (real BFS/PageRank/CC executions recorded as traces); they are
not part of the default suite registry but plug into the same engines.
"""

from . import base, graphs
from .mixes import generate_mixes, mix_name
from .suites import (DEFAULT_SEED, make, make_chunks, names, suite,
                     suite_of)

__all__ = ["base", "graphs", "generate_mixes", "mix_name",
           "DEFAULT_SEED", "make", "make_chunks", "names", "suite",
           "suite_of"]
