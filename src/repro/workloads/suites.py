"""Benchmark suites: synthetic stand-ins for SPEC 2006 / SPEC 2017 / GAP.

Each workload is a named, seeded archetype instantiation whose memory
behaviour mimics the corresponding benchmark's *class*: how irregular it
is, how much it repeats, how big its footprint is, and whether it mixes
in scans or regular phases.  The names keep the original benchmark names
(prefixed by suite) so the harness output reads like the paper's figures.

``make(name, n)`` builds a workload's trace in memory;
``make_chunks(name, n)`` yields the same records as a constant-memory
columnar chunk stream (the form ``repro.tracestream`` persists and
replays).  ``suite(suite_name)`` lists a suite's members.  The
memory-intensive filter of the paper (>1 LLC MPKI) is implemented in
:mod:`repro.experiments.common` by actually measuring MPKI on the
no-prefetcher baseline.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Tuple

from ..sim.trace import Trace
from ..tracestream.chunk import TraceChunk
from . import base

#: A workload spec: (archetype name in :mod:`.base`, keyword overrides).
Spec = Tuple[str, Dict[str, Any]]


def _spec06() -> Dict[str, Spec]:
    return {
        # Heavily irregular pointer codes.
        "06.mcf": ("scan_mix", dict(nodes=16384, scan_fraction=0.35)),
        "06.omnetpp": ("pointer_chase",
                       dict(nodes=8192, n_lists=2, mutate_every=4096)),
        "06.xalancbmk": ("pointer_chase",
                         dict(nodes=7168, n_lists=2, mutate_every=0)),
        "06.soplex": ("stencil_sweep",
                      dict(grid_blocks=6144, arrays=3, jitter=0.08)),
        "06.sphinx3": ("hash_probe",
                       dict(table_blocks=16384, alpha=0.9, rerun=0.45,
                            burst=192)),
        "06.gcc": ("phased", dict(phases=["chase", "hash"])),
        # Regular / streaming codes: stride prefetching already covers.
        "06.lbm": ("stream", dict(arrays=4)),
        "06.libquantum": ("stream", dict(arrays=1, stride=16)),
        "06.milc": ("stencil_sweep",
                    dict(grid_blocks=5120, arrays=4, jitter=0.0)),
        "06.bzip2": ("strided", dict(stride=128, array_bytes=1 << 21)),
        "06.leslie3d": ("stencil_sweep",
                        dict(grid_blocks=7168, arrays=3, jitter=0.02)),
        "06.GemsFDTD": ("stencil_sweep",
                        dict(grid_blocks=5120, arrays=5, jitter=0.0)),
        "06.zeusmp": ("stream", dict(arrays=3, stride=16)),
    }


def _spec17() -> Dict[str, Spec]:
    return {
        "17.mcf": ("scan_mix", dict(nodes=14336, scan_fraction=0.25)),
        "17.omnetpp": ("pointer_chase",
                       dict(nodes=10240, n_lists=2, mutate_every=8192)),
        "17.xalancbmk": ("pointer_chase",
                         dict(nodes=8192, n_lists=2, mutate_every=2048)),
        "17.gcc": ("phased", dict(phases=["chase", "stream", "hash"])),
        "17.cactuBSSN": ("stencil_sweep",
                         dict(grid_blocks=4096, arrays=5, jitter=0.05)),
        "17.fotonik3d": ("stream", dict(arrays=5, stride=8)),
        "17.roms": ("stencil_sweep",
                    dict(grid_blocks=6144, arrays=3, jitter=0.0)),
        "17.xz": ("hash_probe",
                  dict(table_blocks=24576, alpha=0.7, rerun=0.35,
                       burst=128)),
        "17.lbm": ("stream", dict(arrays=4, stride=8)),
        "17.bwaves": ("stencil_sweep",
                      dict(grid_blocks=8192, arrays=2, jitter=0.0)),
    }


def _gap() -> Dict[str, Spec]:
    return {
        "gap.pr": ("graph_sweep",
                   dict(vertices=2304, avg_degree=6, stable_order=True)),
        "gap.cc": ("graph_sweep",
                   dict(vertices=2048, avg_degree=6, stable_order=True)),
        "gap.bfs": ("graph_sweep",
                    dict(vertices=2304, avg_degree=6, stable_order=False,
                         perturbation=0.08)),
        "gap.sssp": ("graph_sweep",
                     dict(vertices=1792, avg_degree=8, stable_order=False,
                          perturbation=0.12)),
        "gap.bc": ("graph_sweep",
                   dict(vertices=1792, avg_degree=8, stable_order=False,
                        perturbation=0.05)),
        "gap.tc": ("graph_sweep",
                   dict(vertices=1536, avg_degree=10, stable_order=True)),
    }


def _srv() -> Dict[str, Spec]:
    """Server-class workloads beyond the paper's suites: a KV store and
    an inference embedding-gather (the fig9/fig9s 'srv.' rows)."""
    return {
        "srv.kv": ("kv_store",
                   dict(keys=8192, get_fraction=0.9, alpha=1.05,
                        value_blocks=2)),
        "srv.embed": ("embedding_gather",
                      dict(rows=4096, tables=4, lookups=4, alpha=0.8)),
    }


_REGISTRY: Dict[str, Spec] = {}
_SUITES: Dict[str, List[str]] = {}
for _suite_name, _table in (("spec06", _spec06()), ("spec17", _spec17()),
                            ("gap", _gap()), ("srv", _srv())):
    _SUITES[_suite_name] = sorted(_table)
    _REGISTRY.update(_table)

DEFAULT_SEED = 1234


def names() -> List[str]:
    """All workload names, sorted."""
    return sorted(_REGISTRY)


def suite(suite_name: str) -> List[str]:
    """Workload names in one suite ("spec06" | "spec17" | "gap")."""
    try:
        return list(_SUITES[suite_name])
    except KeyError:
        raise ValueError(f"unknown suite {suite_name!r}; "
                         f"choose from {sorted(_SUITES)}") from None


def suite_of(name: str) -> str:
    """Suite a workload belongs to."""
    for s, members in _SUITES.items():
        if name in members:
            return s
    raise ValueError(f"unknown workload {name!r}")


def _spec(name: str) -> Spec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(f"unknown workload {name!r}; "
                         f"choose from {names()}") from None


def make(name: str, n: int, seed: int = DEFAULT_SEED) -> Trace:
    """Build the trace for one workload."""
    archetype, kwargs = _spec(name)
    return getattr(base, archetype)(name, n, seed, **kwargs)


def make_chunks(name: str, n: int,
                seed: int = DEFAULT_SEED) -> Iterator[TraceChunk]:
    """One workload's records as a constant-memory chunk stream.

    Yields the exact records of ``make(name, n, seed)`` (bit-identical
    columns) without ever materializing the whole trace — the source for
    :meth:`repro.tracestream.store.TraceStore.put`.
    """
    archetype, kwargs = _spec(name)
    return base.CHUNK_GENERATORS[archetype](n, seed, **kwargs)
