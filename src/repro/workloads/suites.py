"""Benchmark suites: synthetic stand-ins for SPEC 2006 / SPEC 2017 / GAP.

Each workload is a named, seeded archetype instantiation whose memory
behaviour mimics the corresponding benchmark's *class*: how irregular it
is, how much it repeats, how big its footprint is, and whether it mixes
in scans or regular phases.  The names keep the original benchmark names
(prefixed by suite) so the harness output reads like the paper's figures.

``make(name, n)`` builds a workload's trace; ``suite(suite_name)`` lists
its members.  The memory-intensive filter of the paper (>1 LLC MPKI) is
implemented in :mod:`repro.experiments.common` by actually measuring
MPKI on the no-prefetcher baseline.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..sim.trace import Trace
from . import base

Factory = Callable[[str, int, int], Trace]


def _spec06() -> Dict[str, Factory]:
    return {
        # Heavily irregular pointer codes.
        "06.mcf": lambda nm, n, s: base.scan_mix(
            nm, n, s, nodes=16384, scan_fraction=0.35),
        "06.omnetpp": lambda nm, n, s: base.pointer_chase(
            nm, n, s, nodes=8192, n_lists=2, mutate_every=4096),
        "06.xalancbmk": lambda nm, n, s: base.pointer_chase(
            nm, n, s, nodes=7168, n_lists=2, mutate_every=0),
        "06.soplex": lambda nm, n, s: base.stencil_sweep(
            nm, n, s, grid_blocks=6144, arrays=3, jitter=0.08),
        "06.sphinx3": lambda nm, n, s: base.hash_probe(
            nm, n, s, table_blocks=16384, alpha=0.9, rerun=0.45,
            burst=192),
        "06.gcc": lambda nm, n, s: base.phased(
            nm, n, s, phases=["chase", "hash"]),
        # Regular / streaming codes: stride prefetching already covers.
        "06.lbm": lambda nm, n, s: base.stream(nm, n, s, arrays=4),
        "06.libquantum": lambda nm, n, s: base.stream(
            nm, n, s, arrays=1, stride=16),
        "06.milc": lambda nm, n, s: base.stencil_sweep(
            nm, n, s, grid_blocks=5120, arrays=4, jitter=0.0),
        "06.bzip2": lambda nm, n, s: base.strided(
            nm, n, s, stride=128, array_bytes=1 << 21),
        "06.leslie3d": lambda nm, n, s: base.stencil_sweep(
            nm, n, s, grid_blocks=7168, arrays=3, jitter=0.02),
        "06.GemsFDTD": lambda nm, n, s: base.stencil_sweep(
            nm, n, s, grid_blocks=5120, arrays=5, jitter=0.0),
        "06.zeusmp": lambda nm, n, s: base.stream(
            nm, n, s, arrays=3, stride=16),
    }


def _spec17() -> Dict[str, Factory]:
    return {
        "17.mcf": lambda nm, n, s: base.scan_mix(
            nm, n, s, nodes=14336, scan_fraction=0.25),
        "17.omnetpp": lambda nm, n, s: base.pointer_chase(
            nm, n, s, nodes=10240, n_lists=2, mutate_every=8192),
        "17.xalancbmk": lambda nm, n, s: base.pointer_chase(
            nm, n, s, nodes=8192, n_lists=2, mutate_every=2048),
        "17.gcc": lambda nm, n, s: base.phased(
            nm, n, s, phases=["chase", "stream", "hash"]),
        "17.cactuBSSN": lambda nm, n, s: base.stencil_sweep(
            nm, n, s, grid_blocks=4096, arrays=5, jitter=0.05),
        "17.fotonik3d": lambda nm, n, s: base.stream(
            nm, n, s, arrays=5, stride=8),
        "17.roms": lambda nm, n, s: base.stencil_sweep(
            nm, n, s, grid_blocks=6144, arrays=3, jitter=0.0),
        "17.xz": lambda nm, n, s: base.hash_probe(
            nm, n, s, table_blocks=24576, alpha=0.7, rerun=0.35,
            burst=128),
        "17.lbm": lambda nm, n, s: base.stream(
            nm, n, s, arrays=4, stride=8),
        "17.bwaves": lambda nm, n, s: base.stencil_sweep(
            nm, n, s, grid_blocks=8192, arrays=2, jitter=0.0),
    }


def _gap() -> Dict[str, Factory]:
    return {
        "gap.pr": lambda nm, n, s: base.graph_sweep(
            nm, n, s, vertices=2304, avg_degree=6, stable_order=True),
        "gap.cc": lambda nm, n, s: base.graph_sweep(
            nm, n, s, vertices=2048, avg_degree=6, stable_order=True),
        "gap.bfs": lambda nm, n, s: base.graph_sweep(
            nm, n, s, vertices=2304, avg_degree=6, stable_order=False,
            perturbation=0.08),
        "gap.sssp": lambda nm, n, s: base.graph_sweep(
            nm, n, s, vertices=1792, avg_degree=8, stable_order=False,
            perturbation=0.12),
        "gap.bc": lambda nm, n, s: base.graph_sweep(
            nm, n, s, vertices=1792, avg_degree=8, stable_order=False,
            perturbation=0.05),
        "gap.tc": lambda nm, n, s: base.graph_sweep(
            nm, n, s, vertices=1536, avg_degree=10, stable_order=True),
    }


_REGISTRY: Dict[str, Factory] = {}
_SUITES: Dict[str, List[str]] = {}
for _suite_name, _table in (("spec06", _spec06()), ("spec17", _spec17()),
                            ("gap", _gap())):
    _SUITES[_suite_name] = sorted(_table)
    _REGISTRY.update(_table)

DEFAULT_SEED = 1234


def names() -> List[str]:
    """All workload names, sorted."""
    return sorted(_REGISTRY)


def suite(suite_name: str) -> List[str]:
    """Workload names in one suite ("spec06" | "spec17" | "gap")."""
    try:
        return list(_SUITES[suite_name])
    except KeyError:
        raise ValueError(f"unknown suite {suite_name!r}; "
                         f"choose from {sorted(_SUITES)}") from None


def suite_of(name: str) -> str:
    """Suite a workload belongs to."""
    for s, members in _SUITES.items():
        if name in members:
            return s
    raise ValueError(f"unknown workload {name!r}")


def make(name: str, n: int, seed: int = DEFAULT_SEED) -> Trace:
    """Build the trace for one workload."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(f"unknown workload {name!r}; "
                         f"choose from {names()}") from None
    return factory(name, n, seed)
