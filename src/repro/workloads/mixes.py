"""Multi-core workload mixes.

The paper simulates 150 random mixes of memory-intensive workloads per
core count.  We generate mixes the same way (seeded uniform draws with
replacement from the memory-intensive pool) but default to a smaller
count so the Python engine stays tractable; every experiment takes the
mix count as a parameter.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from . import suites


def generate_mixes(num_cores: int, count: int,
                   pool: Optional[Sequence[str]] = None,
                   seed: int = 7) -> List[List[str]]:
    """Return ``count`` mixes, each a list of ``num_cores`` workload names.

    Draws are uniform with replacement, like the paper's random mixes;
    the same (seed, num_cores, count) always produces the same mixes.
    """
    if num_cores < 1:
        raise ValueError("num_cores must be >= 1")
    if count < 1:
        raise ValueError("count must be >= 1")
    pool = list(pool) if pool is not None else suites.names()
    if not pool:
        raise ValueError("workload pool is empty")
    rng = random.Random(seed)
    return [[rng.choice(pool) for _ in range(num_cores)]
            for _ in range(count)]


def mix_name(mix: Sequence[str]) -> str:
    """Human-readable label for a mix."""
    return "+".join(w.split(".", 1)[-1] for w in mix)
