"""Archetype memory-access generators.

Temporal prefetchers exploit *repeated irregular sequences*.  Each
archetype below reproduces the structural property of a benchmark family
that matters to the paper's evaluation:

* :func:`pointer_chase` - linked-structure traversal over a fixed random
  permutation (mcf/omnetpp/xalancbmk-like): perfectly repeating,
  spatially irregular -> ideal temporal-prefetching territory.
* :func:`graph_sweep` - CSR neighbour-list traversal with either a stable
  vertex order (PageRank-like) or a perturbed order per iteration
  (BFS-like): long repeating runs with realignment opportunities.
* :func:`stream` / :func:`strided` - regular traffic that stride
  prefetchers already cover; temporal metadata is useless here and only
  costs LLC capacity (the bzip2 effect in Fig. 9).
* :func:`hash_probe` - Zipf-random probes with little temporal reuse:
  generates low-utility metadata, exercising utility-aware management.
* :func:`scan_mix` - interleaves a temporal-friendly chase with a
  no-reuse scanning PC (the mcf case where Triangel's PC bypassing wins).
* :func:`stencil_sweep` - repeated multi-array grid sweeps
  (milc/lbm-like): temporal *and* regular at once.
* :func:`kv_store` - GET/SET mixture with Zipfian hot keys
  (memcached-like): hot keys replay bucket->value miss chains, the tail
  is noise, SETs stream into a log.
* :func:`embedding_gather` - DLRM/LLM-inference embedding lookups:
  Zipf-hot rows recur across samples in interleaved order (approximate
  repetition), pooled outputs stream.

All generators are deterministic given a seed.  Addresses for different
logical data structures live in disjoint 4GB regions so they never alias.

Each archetype is implemented as a *chunk producer* (``_*_chunks``)
yielding fixed-size columnar :class:`~repro.tracestream.chunk.TraceChunk`
batches in constant memory; the public functions materialize those
chunks into a :class:`Trace` and :data:`CHUNK_GENERATORS` exposes the
producers to the streaming pipeline (``repro.tracestream``).  The
producers draw from ``np.random.Generator`` in *exactly* the call order
and shapes of the original per-record loops, so traces are bit-identical
to the pre-streaming implementation (pinned by
``tests/data/workload_hashes.json``).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence

import numpy as np

from ..sim.trace import Trace
from ..tracestream.chunk import CHUNK_RECORDS, TraceChunk, make_chunk
from ..tracestream.stages import rechunk, shift

REGION_BITS = 32
_PC_BASE = 0x400000

#: name -> chunk-producer; signature ``fn(n, seed, **kwargs)`` yielding
#: TraceChunk.  The streaming store generates straight from these.
CHUNK_GENERATORS: Dict[str, Callable[..., Iterator[TraceChunk]]] = {}


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def _region(idx: int) -> int:
    """Base byte address of data region ``idx``."""
    return (idx + 1) << REGION_BITS


def _pc(idx: int) -> int:
    """Synthetic PC for logical load site ``idx``."""
    return _PC_BASE + 4 * idx


def _regions(idxs: np.ndarray) -> np.ndarray:
    """Vectorized :func:`_region`."""
    return (idxs.astype(np.int64) + 1) << REGION_BITS


def _pcs(idxs: np.ndarray) -> np.ndarray:
    """Vectorized :func:`_pc`."""
    return _PC_BASE + 4 * idxs.astype(np.int64)


def _zipf_indices(rng: np.random.Generator, n: int, universe: int,
                  alpha: float) -> np.ndarray:
    """``n`` Zipf(alpha)-distributed indices in [0, universe)."""
    if alpha <= 0:
        return rng.integers(0, universe, size=n)
    ranks = np.arange(1, universe + 1, dtype=np.float64)
    probs = ranks ** -alpha
    probs /= probs.sum()
    return rng.choice(universe, size=n, p=probs)


def _only_chunks(stream) -> Iterator[TraceChunk]:
    """Narrow a mark-free StreamItem iterator for the type checker."""
    for item in stream:
        if isinstance(item, TraceChunk):
            yield item


# -- pointer_chase -------------------------------------------------------------

def _pointer_chase_chunks(n: int, seed: int, nodes: int = 32768,
                          n_lists: int = 1, mutate_every: int = 0,
                          node_bytes: int = 64,
                          gap: int = 6) -> Iterator[TraceChunk]:
    rng = _rng(seed)
    perms = np.stack([rng.permutation(nodes) for _ in range(n_lists)])
    p0 = np.array([int(rng.integers(0, nodes)) for _ in range(n_lists)],
                  dtype=np.int64)

    def span(lo: int, hi: int) -> TraceChunk:
        # Access i hits list i % n_lists at its (i // n_lists)-th step;
        # positions advance one per visit from the random start p0.
        i = np.arange(lo, hi, dtype=np.int64)
        li = i % n_lists
        pos = (p0[li] + i // n_lists) % nodes
        addrs = _regions(li) + perms[li, pos] * node_bytes
        return make_chunk(_pcs(li), addrs,
                          deps=np.ones(hi - lo, dtype=np.bool_), gap=gap)

    if not mutate_every:
        for lo in range(0, n, CHUNK_RECORDS):
            yield span(lo, min(n, lo + CHUNK_RECORDS))
        return
    # With mutation, every list re-links once per `mutate_every` visits,
    # i.e. all lists mutate in the same "event round" r with
    # (r + 1) % mutate_every == 0.  Rounds between events are static and
    # vectorize; event rounds emit first (reads precede each list's own
    # swap) and then apply the swaps in the original per-access order.
    r = 0
    while r * n_lists < n:
        r_ev = (r // mutate_every + 1) * mutate_every - 1
        lo, hi = r * n_lists, min(n, r_ev * n_lists)
        for s in range(lo, hi, CHUNK_RECORDS):
            yield span(s, min(hi, s + CHUNK_RECORDS))
        ev_lo = r_ev * n_lists
        if ev_lo >= n:
            return
        ev_hi = min(n, ev_lo + n_lists)
        yield span(ev_lo, ev_hi)
        for li in range(ev_hi - ev_lo):
            a, b = rng.integers(0, nodes, size=2)
            perms[li, a], perms[li, b] = perms[li, b], perms[li, a]
        r = r_ev + 1


def pointer_chase(name: str, n: int, seed: int, nodes: int = 32768,
                  n_lists: int = 1, mutate_every: int = 0,
                  node_bytes: int = 64, gap: int = 6) -> Trace:
    """Traverse ``n_lists`` fixed random permutations of ``nodes`` nodes.

    ``mutate_every`` > 0 re-links a random node every that many accesses,
    creating the stale-metadata situations Fig. 4 discusses.
    """
    return Trace.from_chunks(name, _pointer_chase_chunks(
        n, seed, nodes=nodes, n_lists=n_lists, mutate_every=mutate_every,
        node_bytes=node_bytes, gap=gap))


# -- graph_sweep ---------------------------------------------------------------

def _graph_sweep_chunks(n: int, seed: int, vertices: int = 4096,
                        avg_degree: int = 8, stable_order: bool = True,
                        perturbation: float = 0.05, vertex_bytes: int = 64,
                        universe_factor: int = 8,
                        gap: int = 4) -> Iterator[TraceChunk]:
    rng = _rng(seed)
    degrees = np.maximum(1, rng.poisson(avg_degree, size=vertices))
    universe = max(1, universe_factor) * vertices
    neighbours = [rng.integers(0, universe, size=int(d)) for d in degrees]
    deg = degrees.astype(np.int64)
    flat = np.concatenate(neighbours).astype(np.int64)
    indptr = np.zeros(vertices + 1, dtype=np.int64)
    indptr[1:] = np.cumsum(deg)
    order = np.arange(vertices)
    vprop_region = _region(0)
    nprop_region = _region(1)
    pc_v, pc_n = _pc(0), _pc(1)

    def sweep_arrays() -> TraceChunk:
        # One full sweep flattened: per vertex v (in `order`), one
        # vertex-property read then deg[v] neighbour reads.
        ordv = order.astype(np.int64)
        lens = 1 + deg[ordv]
        total = int(lens.sum())
        starts = np.zeros(vertices, dtype=np.int64)
        starts[1:] = np.cumsum(lens[:-1])
        block = np.repeat(np.arange(vertices, dtype=np.int64), lens)
        within = np.arange(total, dtype=np.int64) - starts[block]
        is_v = within == 0
        vb = ordv[block]
        addrs = np.empty(total, dtype=np.int64)
        addrs[is_v] = vprop_region + vb[is_v] * vertex_bytes
        nz = ~is_v
        addrs[nz] = (nprop_region
                     + flat[indptr[vb[nz]] + within[nz] - 1] * vertex_bytes)
        return make_chunk(np.where(is_v, pc_v, pc_n), addrs,
                          gaps=np.where(is_v, gap, 2), deps=nz)

    cached: Optional[TraceChunk] = None
    emitted = 0
    while emitted < n:
        if not stable_order:
            k = max(1, int(vertices * perturbation))
            idx = rng.integers(0, vertices, size=(k, 2))
            for a, b in idx:
                order[a], order[b] = order[b], order[a]
        elif cached is not None:
            full = cached
            take = min(len(full), n - emitted)
            yield full.slice(0, take)
            emitted += take
            continue
        full = sweep_arrays()
        if stable_order:
            cached = full
        take = min(len(full), n - emitted)
        yield full.slice(0, take)
        emitted += take


def graph_sweep(name: str, n: int, seed: int, vertices: int = 4096,
                avg_degree: int = 8, stable_order: bool = True,
                perturbation: float = 0.05, vertex_bytes: int = 64,
                universe_factor: int = 8, gap: int = 4) -> Trace:
    """Repeated CSR sweeps: per vertex, read vertex data then neighbours.

    ``stable_order=True`` revisits vertices in the same order every
    iteration (PageRank/CC-like); otherwise a fraction ``perturbation`` of
    the order is shuffled per iteration (BFS/SSSP-like frontiers).
    Neighbour property indices are drawn from a ``universe_factor`` times
    larger space than the vertex set, as in real graphs where the
    property array dwarfs any one frontier; this keeps the neighbour
    stream irregular without making every block a conflicting trigger.
    """
    return Trace.from_chunks(name, _graph_sweep_chunks(
        n, seed, vertices=vertices, avg_degree=avg_degree,
        stable_order=stable_order, perturbation=perturbation,
        vertex_bytes=vertex_bytes, universe_factor=universe_factor,
        gap=gap))


# -- stream / strided ----------------------------------------------------------

def _stream_chunks(n: int, seed: int, arrays: int = 3,
                   array_bytes: int = 1 << 22, stride: int = 8,
                   gap: int = 2) -> Iterator[TraceChunk]:
    del seed  # fully regular; seed kept for a uniform signature
    for lo in range(0, n, CHUNK_RECORDS):
        hi = min(n, lo + CHUNK_RECORDS)
        i = np.arange(lo, hi, dtype=np.int64)
        a = i % arrays
        # Array a's (i // arrays)-th visit sits at offset k*stride mod
        # the array size (offsets advance by `stride` per visit).
        offs = ((i // arrays) * stride) % array_bytes
        yield make_chunk(_pcs(a), _regions(a) + offs,
                         writes=(a == arrays - 1), gap=gap)


def stream(name: str, n: int, seed: int, arrays: int = 3,
           array_bytes: int = 1 << 22, stride: int = 8,
           gap: int = 2) -> Trace:
    """Sequential sweeps over large arrays (lbm/libquantum-like)."""
    return Trace.from_chunks(name, _stream_chunks(
        n, seed, arrays=arrays, array_bytes=array_bytes, stride=stride,
        gap=gap))


def _strided_chunks(n: int, seed: int, stride: int = 192,
                    array_bytes: int = 1 << 23,
                    gap: int = 4) -> Iterator[TraceChunk]:
    del seed
    base = _region(0)
    pc = _pc(0)
    for lo in range(0, n, CHUNK_RECORDS):
        hi = min(n, lo + CHUNK_RECORDS)
        i = np.arange(lo, hi, dtype=np.int64)
        yield make_chunk(np.full(hi - lo, pc, dtype=np.int64),
                         base + (i * stride) % array_bytes, gap=gap)


def strided(name: str, n: int, seed: int, stride: int = 192,
            array_bytes: int = 1 << 23, gap: int = 4) -> Trace:
    """Fixed non-unit stride over one array (regular; covered by IP-stride)."""
    return Trace.from_chunks(name, _strided_chunks(
        n, seed, stride=stride, array_bytes=array_bytes, gap=gap))


# -- hash_probe ----------------------------------------------------------------

def _hash_probe_chunks(n: int, seed: int, table_blocks: int = 65536,
                       alpha: float = 0.6, rerun: float = 0.3,
                       burst: int = 64,
                       gap: int = 5) -> Iterator[TraceChunk]:
    rng = _rng(seed)
    pc = _pc(0)
    base = _region(0)
    history: List[np.ndarray] = []
    emitted = 0
    while emitted < n:
        if history and rng.random() < rerun:
            # Replay one past probe burst in full (a re-issued query).
            probe = history[int(rng.integers(0, len(history)))]
        else:
            probe = np.asarray(_zipf_indices(rng, burst, table_blocks,
                                             alpha), dtype=np.int64)
            history.append(probe)
            if len(history) > 16:
                history.pop(0)
        take = min(len(probe), n - emitted)
        yield make_chunk(np.full(take, pc, dtype=np.int64),
                         base + probe[:take] * 64, gap=gap)
        emitted += take


def hash_probe(name: str, n: int, seed: int, table_blocks: int = 65536,
               alpha: float = 0.6, rerun: float = 0.3,
               burst: int = 64, gap: int = 5) -> Trace:
    """Zipf-random probes into a big hash table (weak temporal reuse).

    A fraction ``rerun`` of the trace replays recent probe bursts (keys
    queried again shortly after, as in lookup-heavy codes); the rest is
    fresh Zipf noise.  Temporal prefetchers get moderate-but-real utility
    here, which exercises utility-aware metadata management.
    """
    return Trace.from_chunks(name, _hash_probe_chunks(
        n, seed, table_blocks=table_blocks, alpha=alpha, rerun=rerun,
        burst=burst, gap=gap))


# -- scan_mix ------------------------------------------------------------------

def _scan_mix_chunks(n: int, seed: int, nodes: int = 16384,
                     scan_fraction: float = 0.4, scan_bytes: int = 1 << 24,
                     gap: int = 5) -> Iterator[TraceChunk]:
    del scan_bytes  # the scan runs off the end of any finite window
    rng = _rng(seed)
    perm = rng.permutation(nodes).astype(np.int64)
    period = max(2, int(round(1.0 / max(scan_fraction, 1e-6))))
    chase_base, scan_base = _region(0), _region(1)
    pc_chase, pc_scan = _pc(0), _pc(1)
    for lo in range(0, n, CHUNK_RECORDS):
        hi = min(n, lo + CHUNK_RECORDS)
        i = np.arange(lo, hi, dtype=np.int64)
        if scan_fraction > 0:
            scan = (i % period) == 0
            # Chase position = number of prior chase accesses; prior
            # scans among [0, i) number ceil(i / period).
            pos = (i - (i + period - 1) // period) % nodes
            addrs = np.where(scan, scan_base + 64 * (i // period),
                             chase_base + perm[pos] * 64)
            yield make_chunk(np.where(scan, pc_scan, pc_chase), addrs,
                             deps=~scan, gap=gap)
        else:
            addrs = chase_base + perm[i % nodes] * 64
            yield make_chunk(np.full(hi - lo, pc_chase, dtype=np.int64),
                             addrs, deps=np.ones(hi - lo, dtype=np.bool_),
                             gap=gap)


def scan_mix(name: str, n: int, seed: int, nodes: int = 16384,
             scan_fraction: float = 0.4, scan_bytes: int = 1 << 24,
             gap: int = 5) -> Trace:
    """Pointer chase interleaved with a no-reuse scanning PC (mcf-like).

    The scan PC touches fresh memory forever; its correlations never
    repeat, so storing them evicts useful chase metadata.  Triangel's PC
    bypassing handles this; Streamline (per the paper) does not, which is
    why Triangel wins on mcf.
    """
    return Trace.from_chunks(name, _scan_mix_chunks(
        n, seed, nodes=nodes, scan_fraction=scan_fraction,
        scan_bytes=scan_bytes, gap=gap))


# -- stencil_sweep -------------------------------------------------------------

def _stencil_sweep_chunks(n: int, seed: int, grid_blocks: int = 8192,
                          arrays: int = 4, jitter: float = 0.0,
                          gap: int = 3) -> Iterator[TraceChunk]:
    rng = _rng(seed)
    a_idx = np.arange(arrays, dtype=np.int64)
    regions = _regions(a_idx)
    pcs = _pcs(a_idx)
    # Spans aligned to whole sweep iterations (`arrays` records each) so
    # each iteration's grid index is drawn exactly once, in order.
    span = max(arrays, CHUNK_RECORDS - CHUNK_RECORDS % arrays)

    def grid_idx(i0: int, i1: int) -> np.ndarray:
        if jitter:
            out = np.empty(i1 - i0, dtype=np.int64)
            for j in range(i0, i1):
                v = j % grid_blocks
                if rng.random() < jitter:
                    v = int(rng.integers(0, grid_blocks))
                out[j - i0] = v
            return out
        return np.arange(i0, i1, dtype=np.int64) % grid_blocks

    for lo in range(0, n, span):
        hi = min(n, lo + span)
        e = np.arange(lo, hi, dtype=np.int64)
        it = e // arrays
        a = e % arrays
        i0 = lo // arrays
        idx = grid_idx(i0, int(it[-1]) + 1)
        yield make_chunk(pcs[a], regions[a] + idx[it - i0] * 64,
                         writes=(a == arrays - 1), gap=gap)


def stencil_sweep(name: str, n: int, seed: int, grid_blocks: int = 8192,
                  arrays: int = 4, jitter: float = 0.0,
                  gap: int = 3) -> Trace:
    """Repeated sweeps over a grid touching several co-indexed arrays."""
    return Trace.from_chunks(name, _stencil_sweep_chunks(
        n, seed, grid_blocks=grid_blocks, arrays=arrays, jitter=jitter,
        gap=gap))


# -- phased --------------------------------------------------------------------

def _phased_chunks(n: int, seed: int,
                   phases: Optional[Sequence[str]] = None,
                   gap: int = 4) -> Iterator[TraceChunk]:
    kinds = list(phases or ["chase", "stream"])
    base_len = n // len(kinds)
    for k, kind in enumerate(kinds):
        # Last phase absorbs the remainder so len(trace) == n exactly.
        per_phase = base_len if k < len(kinds) - 1 else n - base_len * (
            len(kinds) - 1)
        if kind == "chase":
            sub: Iterator[TraceChunk] = _pointer_chase_chunks(
                per_phase, seed + k, nodes=12288, gap=gap)
        elif kind == "stream":
            sub = _stream_chunks(per_phase, seed + k, gap=gap)
        elif kind == "hash":
            sub = _hash_probe_chunks(per_phase, seed + k,
                                     table_blocks=20480, alpha=0.5,
                                     rerun=0.5, gap=gap)
        else:
            raise ValueError(f"unknown phase kind {kind!r}")
        # Shift each phase's PCs/regions so phases don't share state.
        yield from _only_chunks(shift(
            sub, pc_offset=0x1000 * k,
            addr_offset=k << (REGION_BITS + 4)))


def phased(name: str, n: int, seed: int,
           phases: Optional[Sequence[str]] = None, gap: int = 4) -> Trace:
    """Alternate between archetype phases (tests dynamic partitioning)."""
    return Trace.from_chunks(name, _phased_chunks(
        n, seed, phases=phases, gap=gap))


# -- kv_store ------------------------------------------------------------------

def _kv_store_chunks(n: int, seed: int, keys: int = 8192,
                     get_fraction: float = 0.9, alpha: float = 1.05,
                     value_blocks: int = 2, buckets: int = 16384,
                     gap: int = 5) -> Iterator[TraceChunk]:
    rng = _rng(seed)
    bucket_base, value_base, log_base = _region(0), _region(1), _region(2)
    pc_probe, pc_value, pc_log = _pc(0), _pc(1), _pc(2)
    round_ops = 2048
    log_blocks = 0
    emitted = 0
    while emitted < n:
        ks = np.asarray(_zipf_indices(rng, round_ops, keys, alpha),
                        dtype=np.int64)
        is_get = rng.random(round_ops) < get_fraction
        # Per op: one bucket probe, `value_blocks` value accesses, and
        # (SET only) one append to a shared sequential log.
        lens = np.where(is_get, 1 + value_blocks, 2 + value_blocks)
        total = int(lens.sum())
        starts = np.zeros(round_ops, dtype=np.int64)
        starts[1:] = np.cumsum(lens[:-1])
        op = np.repeat(np.arange(round_ops, dtype=np.int64), lens)
        within = np.arange(total, dtype=np.int64) - starts[op]
        okey = ks[op]
        is_probe = within == 0
        is_log = within == lens[op] - 1
        is_log &= ~is_get[op]
        is_value = ~is_probe & ~is_log
        addrs = np.empty(total, dtype=np.int64)
        # Fibonacci-hash the key to its bucket so hot keys stay hot but
        # neighbouring keys don't share spatial locality.
        addrs[is_probe] = bucket_base + \
            (okey[is_probe] * 2654435761 % buckets) * 64
        addrs[is_value] = value_base + \
            (okey[is_value] * value_blocks + within[is_value] - 1) * 64
        set_ordinal = np.cumsum(is_log) - 1
        addrs[is_log] = log_base + (log_blocks + set_ordinal[is_log]) * 64
        log_blocks += int(is_log.sum())
        pcs = np.where(is_probe, pc_probe,
                       np.where(is_log, pc_log, pc_value))
        writes = np.where(is_probe, False, ~is_get[op])
        take = min(total, n - emitted)
        yield make_chunk(pcs, addrs, writes=writes,
                         deps=~is_probe, gap=gap).slice(0, take)
        emitted += take


def kv_store(name: str, n: int, seed: int, keys: int = 8192,
             get_fraction: float = 0.9, alpha: float = 1.05,
             value_blocks: int = 2, buckets: int = 16384,
             gap: int = 5) -> Trace:
    """KV-store GET/SET mixture over Zipfian hot keys (memcached-like).

    Each operation hashes its key into a bucket array, then touches the
    key's ``value_blocks``-block value (dependent accesses); SETs also
    append to a shared sequential write log.  Hot keys repeat their
    bucket->value miss sequences constantly (temporal-friendly), the
    Zipf tail is near-random noise, and the log is pure streaming —
    one workload that exercises all three metadata regimes at once.
    """
    return Trace.from_chunks(name, _kv_store_chunks(
        n, seed, keys=keys, get_fraction=get_fraction, alpha=alpha,
        value_blocks=value_blocks, buckets=buckets, gap=gap))


# -- embedding_gather ----------------------------------------------------------

def _embedding_gather_chunks(n: int, seed: int, rows: int = 4096,
                             tables: int = 4, lookups: int = 4,
                             alpha: float = 0.8, row_blocks: int = 1,
                             gap: int = 4) -> Iterator[TraceChunk]:
    rng = _rng(seed)
    out_base = _region(tables)
    pc_out = _pc(tables)
    per_sample = tables * (lookups * row_blocks + 1)
    round_samples = max(1, CHUNK_RECORDS // per_sample)
    samples_done = 0
    emitted = 0
    while emitted < n:
        draws = np.asarray(
            _zipf_indices(rng, round_samples * tables * lookups, rows,
                          alpha),
            dtype=np.int64).reshape(round_samples, tables, lookups)
        # Sample layout: per table, `lookups` row gathers (row_blocks
        # blocks each, dependent on the indirection) then one sequential
        # write into that table's slice of the pooled output vector.
        rows_part = np.repeat(draws, row_blocks, axis=2) * 64 * row_blocks
        if row_blocks > 1:
            rows_part += np.tile(
                64 * np.arange(row_blocks, dtype=np.int64),
                lookups).reshape(1, 1, -1)
        table_idx = np.arange(tables, dtype=np.int64).reshape(1, -1, 1)
        gathers = _regions(np.broadcast_to(
            table_idx, rows_part.shape).copy()) + rows_part
        sample_idx = (samples_done
                      + np.arange(round_samples, dtype=np.int64))
        out = (out_base
               + 64 * (sample_idx.reshape(-1, 1, 1) * tables + table_idx))
        addrs = np.concatenate([gathers, out], axis=2).reshape(-1)
        pcs = np.concatenate(
            [np.broadcast_to(_pcs(table_idx),
                             rows_part.shape).copy(),
             np.full((round_samples, tables, 1), pc_out, np.int64)],
            axis=2).reshape(-1)
        is_out = np.concatenate(
            [np.zeros(rows_part.shape, np.bool_),
             np.ones((round_samples, tables, 1), np.bool_)],
            axis=2).reshape(-1)
        samples_done += round_samples
        take = min(len(addrs), n - emitted)
        yield make_chunk(pcs, addrs, writes=is_out,
                         deps=~is_out, gap=gap).slice(0, take)
        emitted += take


def embedding_gather(name: str, n: int, seed: int, rows: int = 4096,
                     tables: int = 4, lookups: int = 4,
                     alpha: float = 0.8, row_blocks: int = 1,
                     gap: int = 4) -> Trace:
    """LLM/DLRM-inference embedding lookups: per sample, gather
    Zipf-distributed rows from several embedding tables, then write the
    pooled result sequentially.

    Row reuse follows the skewed token/feature distribution — hot rows
    recur across samples with *interleaved* table order, so the miss
    sequence repeats approximately rather than exactly (the realignment
    case temporal prefetchers must tolerate), while the pooled output
    stream stays stride-friendly.
    """
    return Trace.from_chunks(name, _embedding_gather_chunks(
        n, seed, rows=rows, tables=tables, lookups=lookups, alpha=alpha,
        row_blocks=row_blocks, gap=gap))


def _normalized(fn: Callable[..., Iterator[TraceChunk]]
                ) -> Callable[..., Iterator[TraceChunk]]:
    """Wrap a producer so consumers see uniform CHUNK_RECORDS chunks."""

    def wrapped(n: int, seed: int, **kwargs) -> Iterator[TraceChunk]:
        return _only_chunks(rechunk(fn(n, seed, **kwargs), CHUNK_RECORDS))

    wrapped.__name__ = fn.__name__
    return wrapped


CHUNK_GENERATORS.update({
    "pointer_chase": _normalized(_pointer_chase_chunks),
    "graph_sweep": _normalized(_graph_sweep_chunks),
    "stream": _normalized(_stream_chunks),
    "strided": _normalized(_strided_chunks),
    "hash_probe": _normalized(_hash_probe_chunks),
    "scan_mix": _normalized(_scan_mix_chunks),
    "stencil_sweep": _normalized(_stencil_sweep_chunks),
    "phased": _normalized(_phased_chunks),
    "kv_store": _normalized(_kv_store_chunks),
    "embedding_gather": _normalized(_embedding_gather_chunks),
})
