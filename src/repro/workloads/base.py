"""Archetype memory-access generators.

Temporal prefetchers exploit *repeated irregular sequences*.  Each
archetype below reproduces the structural property of a benchmark family
that matters to the paper's evaluation:

* :func:`pointer_chase` - linked-structure traversal over a fixed random
  permutation (mcf/omnetpp/xalancbmk-like): perfectly repeating,
  spatially irregular -> ideal temporal-prefetching territory.
* :func:`graph_sweep` - CSR neighbour-list traversal with either a stable
  vertex order (PageRank-like) or a perturbed order per iteration
  (BFS-like): long repeating runs with realignment opportunities.
* :func:`stream` / :func:`strided` - regular traffic that stride
  prefetchers already cover; temporal metadata is useless here and only
  costs LLC capacity (the bzip2 effect in Fig. 9).
* :func:`hash_probe` - Zipf-random probes with little temporal reuse:
  generates low-utility metadata, exercising utility-aware management.
* :func:`scan_mix` - interleaves a temporal-friendly chase with a
  no-reuse scanning PC (the mcf case where Triangel's PC bypassing wins).
* :func:`stencil_sweep` - repeated multi-array grid sweeps
  (milc/lbm-like): temporal *and* regular at once.

All generators are deterministic given a seed.  Addresses for different
logical data structures live in disjoint 4GB regions so they never alias.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..sim.trace import Trace, TraceBuilder

REGION_BITS = 32
_PC_BASE = 0x400000


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def _region(idx: int) -> int:
    """Base byte address of data region ``idx``."""
    return (idx + 1) << REGION_BITS


def _pc(idx: int) -> int:
    """Synthetic PC for logical load site ``idx``."""
    return _PC_BASE + 4 * idx


def _zipf_indices(rng: np.random.Generator, n: int, universe: int,
                  alpha: float) -> np.ndarray:
    """``n`` Zipf(alpha)-distributed indices in [0, universe)."""
    if alpha <= 0:
        return rng.integers(0, universe, size=n)
    ranks = np.arange(1, universe + 1, dtype=np.float64)
    probs = ranks ** -alpha
    probs /= probs.sum()
    return rng.choice(universe, size=n, p=probs)


def pointer_chase(name: str, n: int, seed: int, nodes: int = 32768,
                  n_lists: int = 1, mutate_every: int = 0,
                  node_bytes: int = 64, gap: int = 6) -> Trace:
    """Traverse ``n_lists`` fixed random permutations of ``nodes`` nodes.

    ``mutate_every`` > 0 re-links a random node every that many accesses,
    creating the stale-metadata situations Fig. 4 discusses.
    """
    rng = _rng(seed)
    builder = TraceBuilder(name)
    perms = [rng.permutation(nodes) for _ in range(n_lists)]
    cursors = [0] * n_lists
    positions = [rng.integers(0, nodes) for _ in range(n_lists)]
    mutations = 0
    for i in range(n):
        li = i % n_lists
        perm = perms[li]
        pos = positions[li]
        addr = _region(li) + int(perm[pos]) * node_bytes
        builder.add(_pc(li), addr, gap=gap, dep=True)
        positions[li] = (pos + 1) % nodes
        cursors[li] += 1
        if mutate_every and cursors[li] % mutate_every == 0:
            a, b = rng.integers(0, nodes, size=2)
            perm[a], perm[b] = perm[b], perm[a]
            mutations += 1
    return builder.build()


def graph_sweep(name: str, n: int, seed: int, vertices: int = 4096,
                avg_degree: int = 8, stable_order: bool = True,
                perturbation: float = 0.05, vertex_bytes: int = 64,
                universe_factor: int = 8, gap: int = 4) -> Trace:
    """Repeated CSR sweeps: per vertex, read vertex data then neighbours.

    ``stable_order=True`` revisits vertices in the same order every
    iteration (PageRank/CC-like); otherwise a fraction ``perturbation`` of
    the order is shuffled per iteration (BFS/SSSP-like frontiers).
    Neighbour property indices are drawn from a ``universe_factor`` times
    larger space than the vertex set, as in real graphs where the
    property array dwarfs any one frontier; this keeps the neighbour
    stream irregular without making every block a conflicting trigger.
    """
    rng = _rng(seed)
    degrees = np.maximum(1, rng.poisson(avg_degree, size=vertices))
    universe = max(1, universe_factor) * vertices
    neighbours = [rng.integers(0, universe, size=int(d)) for d in degrees]
    order = np.arange(vertices)
    builder = TraceBuilder(name)
    vprop_region = _region(0)
    nprop_region = _region(1)
    pc_v, pc_n = _pc(0), _pc(1)
    emitted = 0
    while emitted < n:
        if not stable_order:
            k = max(1, int(vertices * perturbation))
            idx = rng.integers(0, vertices, size=(k, 2))
            for a, b in idx:
                order[a], order[b] = order[b], order[a]
        for v in order:
            builder.add(pc_v, vprop_region + int(v) * vertex_bytes, gap=gap)
            emitted += 1
            if emitted >= n:
                break
            for u in neighbours[int(v)]:
                builder.add(pc_n, nprop_region + int(u) * vertex_bytes,
                            gap=2, dep=True)
                emitted += 1
                if emitted >= n:
                    break
            if emitted >= n:
                break
    return builder.build()


def stream(name: str, n: int, seed: int, arrays: int = 3,
           array_bytes: int = 1 << 22, stride: int = 8,
           gap: int = 2) -> Trace:
    """Sequential sweeps over large arrays (lbm/libquantum-like)."""
    del seed  # fully regular; seed kept for a uniform signature
    builder = TraceBuilder(name)
    offsets = [0] * arrays
    for i in range(n):
        a = i % arrays
        addr = _region(a) + offsets[a]
        builder.add(_pc(a), addr, is_write=(a == arrays - 1), gap=gap)
        offsets[a] = (offsets[a] + stride) % array_bytes
    return builder.build()


def strided(name: str, n: int, seed: int, stride: int = 192,
            array_bytes: int = 1 << 23, gap: int = 4) -> Trace:
    """Fixed non-unit stride over one array (regular; covered by IP-stride)."""
    del seed
    builder = TraceBuilder(name)
    off = 0
    pc = _pc(0)
    for _ in range(n):
        builder.add(pc, _region(0) + off, gap=gap)
        off = (off + stride) % array_bytes
    return builder.build()


def hash_probe(name: str, n: int, seed: int, table_blocks: int = 65536,
               alpha: float = 0.6, rerun: float = 0.3,
               burst: int = 64, gap: int = 5) -> Trace:
    """Zipf-random probes into a big hash table (weak temporal reuse).

    A fraction ``rerun`` of the trace replays recent probe bursts (keys
    queried again shortly after, as in lookup-heavy codes); the rest is
    fresh Zipf noise.  Temporal prefetchers get moderate-but-real utility
    here, which exercises utility-aware metadata management.
    """
    rng = _rng(seed)
    builder = TraceBuilder(name)
    pc = _pc(0)
    base = _region(0)
    history: List[List[int]] = []
    emitted = 0
    while emitted < n:
        if history and rng.random() < rerun:
            # Replay one past probe burst in full (a re-issued query).
            chunk = history[int(rng.integers(0, len(history)))]
        else:
            chunk = [int(i) for i in _zipf_indices(
                rng, burst, table_blocks, alpha)]
            history.append(chunk)
            if len(history) > 16:
                history.pop(0)
        for i in chunk:
            builder.add(pc, base + i * 64, gap=gap)
            emitted += 1
            if emitted >= n:
                break
    return builder.build()


def scan_mix(name: str, n: int, seed: int, nodes: int = 16384,
             scan_fraction: float = 0.4, scan_bytes: int = 1 << 24,
             gap: int = 5) -> Trace:
    """Pointer chase interleaved with a no-reuse scanning PC (mcf-like).

    The scan PC touches fresh memory forever; its correlations never
    repeat, so storing them evicts useful chase metadata.  Triangel's PC
    bypassing handles this; Streamline (per the paper) does not, which is
    why Triangel wins on mcf.
    """
    rng = _rng(seed)
    perm = rng.permutation(nodes)
    builder = TraceBuilder(name)
    pos = 0
    scan_off = 0
    scan_period = max(2, int(round(1.0 / max(scan_fraction, 1e-6))))
    pc_chase, pc_scan = _pc(0), _pc(1)
    for i in range(n):
        if scan_fraction > 0 and i % scan_period == 0:
            builder.add(pc_scan, _region(1) + scan_off, gap=gap)
            scan_off += 64  # always-new blocks: no temporal reuse
        else:
            builder.add(pc_chase, _region(0) + int(perm[pos]) * 64,
                        gap=gap, dep=True)
            pos = (pos + 1) % nodes
    return builder.build()


def stencil_sweep(name: str, n: int, seed: int, grid_blocks: int = 8192,
                  arrays: int = 4, jitter: float = 0.0,
                  gap: int = 3) -> Trace:
    """Repeated sweeps over a grid touching several co-indexed arrays."""
    rng = _rng(seed)
    builder = TraceBuilder(name)
    i = 0
    emitted = 0
    while emitted < n:
        idx = i % grid_blocks
        if jitter and rng.random() < jitter:
            idx = int(rng.integers(0, grid_blocks))
        for a in range(arrays):
            builder.add(_pc(a), _region(a) + idx * 64,
                        is_write=(a == arrays - 1), gap=gap)
            emitted += 1
            if emitted >= n:
                break
        i += 1
    return builder.build()


def phased(name: str, n: int, seed: int,
           phases: Optional[Sequence[str]] = None, gap: int = 4) -> Trace:
    """Alternate between archetype phases (tests dynamic partitioning)."""
    phases = list(phases or ["chase", "stream"])
    base_len = n // len(phases)
    builder = TraceBuilder(name)
    for k, kind in enumerate(phases):
        # Last phase absorbs the remainder so len(trace) == n exactly.
        per_phase = base_len if k < len(phases) - 1 else n - base_len * (
            len(phases) - 1)
        if kind == "chase":
            sub = pointer_chase(name, per_phase, seed + k, nodes=12288,
                                gap=gap)
        elif kind == "stream":
            sub = stream(name, per_phase, seed + k, gap=gap)
        elif kind == "hash":
            sub = hash_probe(name, per_phase, seed + k,
                             table_blocks=20480, alpha=0.5, rerun=0.5,
                             gap=gap)
        else:
            raise ValueError(f"unknown phase kind {kind!r}")
        for pc, addr, w, g, d in sub:
            # Shift each phase's PCs/regions so phases don't share state.
            builder.add(pc + 0x1000 * k, addr + (k << (REGION_BITS + 4)),
                        w, g, d)
    return builder.build()
