"""Bingo [Bakhshalipour+ HPCA'19]: spatial footprint prefetching at the L2.

Bingo records the footprint (bitmap of accessed blocks) of each spatial
region and replays it when the region is re-entered, matching first on
the long event (PC+address) and falling back to the short event
(PC+offset).  We keep that two-event matching and the region-tracking
pipeline, with a simplified history table.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from .base import Prefetcher, TRAIN_SCOPE_ALL_L2

REGION_BLOCKS = 32  # 2KB regions of 64B blocks


class _RegionTracker:
    __slots__ = ("base_blk", "pc", "offset", "bitmap")

    def __init__(self, base_blk: int, pc: int, offset: int):
        self.base_blk = base_blk
        self.pc = pc
        self.offset = offset
        self.bitmap = 1 << offset


class BingoPrefetcher(Prefetcher):
    """Simplified Bingo at the L2 (trains on all L2 traffic)."""

    name = "bingo"
    level = "l2"
    train_scope = TRAIN_SCOPE_ALL_L2

    def __init__(self, trackers: int = 64, history_size: int = 2048,
                 max_degree: int = 8):
        super().__init__()
        self.trackers = trackers
        self.history_size = history_size
        self.max_degree = max_degree
        self._active: "OrderedDict[int, _RegionTracker]" = OrderedDict()
        self._long: "OrderedDict[Tuple[int, int], int]" = OrderedDict()
        self._short: "OrderedDict[Tuple[int, int], int]" = OrderedDict()

    def _commit(self, region: int, tracker: _RegionTracker) -> None:
        """Region evicted from the tracker: record its footprint."""
        for table, key in (
                (self._long, (tracker.pc, tracker.base_blk)),
                (self._short, (tracker.pc, tracker.offset))):
            table[key] = tracker.bitmap
            table.move_to_end(key)
            if len(table) > self.history_size:
                table.popitem(last=False)

    def _predict(self, pc: int, base_blk: int,
                 offset: int) -> Optional[int]:
        bitmap = self._long.get((pc, base_blk))
        if bitmap is None:
            bitmap = self._short.get((pc, offset))
        return bitmap

    def train(self, pc: int, blk: int, hit: bool, prefetch_hit: bool,
              now: float) -> List[int]:
        region = blk // REGION_BLOCKS
        base_blk = region * REGION_BLOCKS
        offset = blk - base_blk
        tracker = self._active.get(region)
        if tracker is not None:
            tracker.bitmap |= 1 << offset
            self._active.move_to_end(region)
            return []
        # New region: predict its footprint from history, start tracking.
        bitmap = self._predict(pc, base_blk, offset)
        tracker = _RegionTracker(base_blk, pc, offset)
        self._active[region] = tracker
        if len(self._active) > self.trackers:
            old_region, old = self._active.popitem(last=False)
            self._commit(old_region, old)
        if bitmap is None:
            return []
        candidates = []
        for off in range(REGION_BLOCKS):
            if off != offset and bitmap & (1 << off):
                candidates.append(base_blk + off)
                if len(candidates) >= self.max_degree:
                    break
        return candidates

    def state_dict(self):
        state = super().state_dict()
        state["active"] = [[region, t.base_blk, t.pc, t.offset, t.bitmap]
                           for region, t in self._active.items()]
        # Tuple keys encoded as flat rows; order carries LRU recency.
        state["long"] = [[pc, base, bm]
                         for (pc, base), bm in self._long.items()]
        state["short"] = [[pc, off, bm]
                          for (pc, off), bm in self._short.items()]
        return state

    def load_state(self, state) -> None:
        super().load_state(state)
        self._active = OrderedDict()
        for region, base_blk, pc, offset, bitmap in state["active"]:
            tracker = _RegionTracker(int(base_blk), int(pc), int(offset))
            tracker.bitmap = int(bitmap)
            self._active[int(region)] = tracker
        self._long = OrderedDict(((int(pc), int(base)), int(bm))
                                 for pc, base, bm in state["long"])
        self._short = OrderedDict(((int(pc), int(off)), int(bm))
                                  for pc, off, bm in state["short"])
