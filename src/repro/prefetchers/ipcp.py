"""IPCP [Pakalapati & Panda ISCA'20]: IP-classifier prefetching at the L2.

IPCP classifies each load IP into one of three classes and prefetches
with the matching engine:

* **CS** (constant stride): two confirmations of the same stride.
* **GS** (global stream): dense region accesses -> next-line streaming.
* **CPLX** (complex): a signature over recent per-IP deltas predicting
  the next delta, with confidence.

This is a functional simplification that keeps the classifier structure
(per-IP state, class transitions, per-class degree) without the exact
bit-level tables of the original.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List

from .base import Prefetcher, TRAIN_SCOPE_ALL_L2

REGION_BLOCKS = 32  # 2KB regions


class _IPEntry:
    __slots__ = ("last_blk", "stride", "stride_conf", "signature",
                 "klass")

    def __init__(self, blk: int):
        self.last_blk = blk
        self.stride = 0
        self.stride_conf = 0
        self.signature = 0
        self.klass = "new"


class IPCPPrefetcher(Prefetcher):
    """Simplified IPCP at the L2 (trains on all L2 traffic)."""

    name = "ipcp"
    level = "l2"
    train_scope = TRAIN_SCOPE_ALL_L2

    def __init__(self, table_size: int = 128, cs_degree: int = 3,
                 gs_degree: int = 4, cplx_degree: int = 2):
        super().__init__()
        self.table_size = table_size
        self.cs_degree = cs_degree
        self.gs_degree = gs_degree
        self.cplx_degree = cplx_degree
        self._table: "OrderedDict[int, _IPEntry]" = OrderedDict()
        self._cplx: Dict[int, Dict[int, int]] = {}
        self._region_counts: "OrderedDict[int, int]" = OrderedDict()

    def _entry(self, pc: int, blk: int) -> _IPEntry:
        e = self._table.get(pc)
        if e is None:
            if len(self._table) >= self.table_size:
                self._table.popitem(last=False)
            e = _IPEntry(blk)
            self._table[pc] = e
        else:
            self._table.move_to_end(pc)
        return e

    def _dense_region(self, blk: int) -> bool:
        region = blk // REGION_BLOCKS
        count = self._region_counts.get(region, 0) + 1
        self._region_counts[region] = count
        self._region_counts.move_to_end(region)
        if len(self._region_counts) > 64:
            self._region_counts.popitem(last=False)
        return count >= REGION_BLOCKS // 2

    def train(self, pc: int, blk: int, hit: bool, prefetch_hit: bool,
              now: float) -> List[int]:
        e = self._entry(pc, blk)
        delta = blk - e.last_blk
        if delta == 0:
            return []
        # Constant-stride classifier.
        if delta == e.stride:
            e.stride_conf = min(e.stride_conf + 1, 3)
        else:
            e.stride_conf = max(e.stride_conf - 1, 0)
            if e.stride_conf == 0:
                e.stride = delta
        # Complex: signature -> next delta table.
        sig_table = self._cplx.setdefault(e.signature, {})
        sig_table[delta] = sig_table.get(delta, 0) + 1
        e.signature = ((e.signature << 3) ^ (delta & 0x3F)) & 0xFFF
        e.last_blk = blk

        if e.stride_conf >= 2:
            e.klass = "cs"
            return [blk + e.stride * (k + 1)
                    for k in range(self.cs_degree)]
        if self._dense_region(blk):
            e.klass = "gs"
            return [blk + k + 1 for k in range(self.gs_degree)]
        nxt = self._cplx.get(e.signature)
        if nxt:
            best_delta, votes = max(nxt.items(), key=lambda kv: kv[1])
            total = sum(nxt.values())
            if votes * 2 > total and total >= 4:
                e.klass = "cplx"
                return [blk + best_delta * (k + 1)
                        for k in range(self.cplx_degree)]
        return []

    def state_dict(self):
        state = super().state_dict()
        state["table"] = [
            [pc, e.last_blk, e.stride, e.stride_conf, e.signature, e.klass]
            for pc, e in self._table.items()]
        state["cplx"] = [[sig, [[d, n] for d, n in votes.items()]]
                         for sig, votes in self._cplx.items()]
        state["regions"] = [[r, n] for r, n in self._region_counts.items()]
        return state

    def load_state(self, state) -> None:
        super().load_state(state)
        self._table = OrderedDict()
        for pc, last_blk, stride, conf, sig, klass in state["table"]:
            e = _IPEntry(int(last_blk))
            e.stride = int(stride)
            e.stride_conf = int(conf)
            e.signature = int(sig)
            e.klass = str(klass)
            self._table[int(pc)] = e
        self._cplx = {int(sig): {int(d): int(n) for d, n in votes}
                      for sig, votes in state["cplx"]}
        self._region_counts = OrderedDict(
            (int(r), int(n)) for r, n in state["regions"])
