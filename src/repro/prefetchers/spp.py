"""SPP-PPF [Kim+ MICRO'16; Bhatia+ ISCA'19]: signature-path prefetching.

SPP keeps a per-page delta signature; a pattern table maps signatures to
next-delta candidates with confidence; lookahead multiplies confidence
along the predicted path and stops below a threshold.  PPF adds a
perceptron filter over simple features to reject low-quality candidates.
We implement SPP's signature/lookahead core and a compact perceptron
filter trained online by prefetch usefulness feedback.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Tuple

from .base import Prefetcher, TRAIN_SCOPE_ALL_L2

PAGE_BLOCKS = 64  # 4KB pages
SIG_BITS = 12


def _advance_signature(sig: int, delta: int) -> int:
    return ((sig << 3) ^ (delta & 0x7F)) & ((1 << SIG_BITS) - 1)


class SPPPrefetcher(Prefetcher):
    """Simplified SPP with a perceptron prefetch filter (PPF)."""

    name = "spp-ppf"
    level = "l2"
    train_scope = TRAIN_SCOPE_ALL_L2

    def __init__(self, pages: int = 256, lookahead: int = 4,
                 confidence_threshold: float = 0.25,
                 filter_threshold: float = 0.0):
        super().__init__()
        self.pages = pages
        self.lookahead = lookahead
        self.confidence_threshold = confidence_threshold
        self.filter_threshold = filter_threshold
        self._pages: "OrderedDict[int, Tuple[int, int]]" = OrderedDict()
        self._pattern: Dict[int, Dict[int, int]] = {}
        # PPF: one weight per (feature bucket); features are the
        # signature hash and the path confidence bucket.
        self._weights: Dict[int, float] = {}
        self._issued_features: "OrderedDict[int, List[int]]" = OrderedDict()

    # -- PPF -------------------------------------------------------------

    def _features(self, sig: int, conf: float, depth: int) -> List[int]:
        return [sig & 0xFF, 0x100 + int(conf * 8), 0x110 + depth]

    def _filter_score(self, features: List[int]) -> float:
        return sum(self._weights.get(f, 0.0) for f in features)

    def _train_filter(self, blk: int, useful: bool) -> None:
        features = self._issued_features.pop(blk, None)
        if features is None:
            return
        delta = 0.25 if useful else -0.25
        for f in features:
            w = self._weights.get(f, 0.0) + delta
            self._weights[f] = max(-4.0, min(4.0, w))

    def note_useful(self, blk: int, now: float) -> None:
        super().note_useful(blk, now)
        self._train_filter(blk, True)

    def note_useless(self, blk: int, now: float) -> None:
        super().note_useless(blk, now)
        self._train_filter(blk, False)

    # -- SPP core ------------------------------------------------------------

    def train(self, pc: int, blk: int, hit: bool, prefetch_hit: bool,
              now: float) -> List[int]:
        page = blk // PAGE_BLOCKS
        state = self._pages.get(page)
        if state is None:
            if len(self._pages) >= self.pages:
                self._pages.popitem(last=False)
            self._pages[page] = (0, blk)
            return []
        sig, last_blk = state
        self._pages.move_to_end(page)
        delta = blk - last_blk
        if delta == 0:
            return []
        table = self._pattern.setdefault(sig, {})
        table[delta] = table.get(delta, 0) + 1
        sig = _advance_signature(sig, delta)
        self._pages[page] = (sig, blk)

        # Lookahead walk down the most confident path.
        candidates: List[int] = []
        cur_blk, cur_sig, conf = blk, sig, 1.0
        for depth in range(self.lookahead):
            nxt = self._pattern.get(cur_sig)
            if not nxt:
                break
            best_delta, votes = max(nxt.items(), key=lambda kv: kv[1])
            total = sum(nxt.values())
            conf *= votes / total
            if conf < self.confidence_threshold:
                break
            cand = cur_blk + best_delta
            if cand // PAGE_BLOCKS != page:
                break  # SPP stops at page boundaries
            features = self._features(cur_sig, conf, depth)
            if self._filter_score(features) >= self.filter_threshold:
                candidates.append(cand)
                self._issued_features[cand] = features
                if len(self._issued_features) > 512:
                    self._issued_features.popitem(last=False)
            cur_blk = cand
            cur_sig = _advance_signature(cur_sig, best_delta)
        return candidates

    def state_dict(self):
        state = super().state_dict()
        state["pages"] = [[page, sig, last_blk]
                          for page, (sig, last_blk) in self._pages.items()]
        state["pattern"] = [[sig, [[d, n] for d, n in votes.items()]]
                            for sig, votes in self._pattern.items()]
        state["weights"] = [[f, w] for f, w in self._weights.items()]
        state["issued"] = [[blk, list(feats)]
                           for blk, feats in self._issued_features.items()]
        return state

    def load_state(self, state) -> None:
        super().load_state(state)
        self._pages = OrderedDict(
            (int(page), (int(sig), int(last_blk)))
            for page, sig, last_blk in state["pages"])
        self._pattern = {int(sig): {int(d): int(n) for d, n in votes}
                         for sig, votes in state["pattern"]}
        self._weights = {int(f): float(w) for f, w in state["weights"]}
        self._issued_features = OrderedDict(
            (int(blk), [int(f) for f in feats])
            for blk, feats in state["issued"])
