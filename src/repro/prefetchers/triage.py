"""Triage [Wu+ MICRO'19]: the first on-chip temporal prefetcher.

Triage keeps a pairwise metadata store in a way-partition of the LLC,
compresses prefetch targets through a lookup table (16 correlations per
block), trains on L2 misses and prefetch hits, and chases correlations
up to degree 4.  Its partition is resized periodically to maximize the
trigger hit rate; we implement a hill-climbing resizer (grow when the
store is full and triggers hit, shrink when triggers don't) as a
functional stand-in for the Hawkeye-based scheme, since Triage here is a
baseline rather than the contribution under test.

:class:`IdealTriage` is the paper's irregular-subset oracle: Triage with
unlimited dedicated metadata and zero cost (Section V-A3).
"""

from __future__ import annotations

from typing import Dict, List

from ..memory.metadata_store import PartitionController
from .base import Prefetcher, TRAIN_SCOPE_TEMPORAL
from .pairwise import PairwiseStore, TrainingUnit


class TriagePrefetcher(Prefetcher):
    """On-chip pairwise temporal prefetcher with LUT-compressed targets."""

    name = "triage"
    level = "l2"
    train_scope = TRAIN_SCOPE_TEMPORAL

    def __init__(self, degree: int = 4, initial_ways: int = 8,
                 max_ways: int = 8, resize_epoch: int = 20_000,
                 adaptive: bool = True):
        super().__init__()
        self.degree = degree
        self.initial_ways = initial_ways
        self.max_ways = max_ways
        self.resize_epoch = resize_epoch
        self.adaptive = adaptive
        self.tu = TrainingUnit(size=256, depth=1)
        self.store: PairwiseStore = None  # built at attach()
        self.controller: PartitionController = None
        self._accesses = 0
        self._epoch_lookups = 0
        self._epoch_hits = 0

    def attach(self, hier) -> None:
        llc = hier.uncore.llc
        cores = hier.uncore.num_cores
        own_sets = llc.num_sets // cores
        self.controller = PartitionController(
            llc, max_bytes=self.max_ways * own_sets * 64,
            stripe_offset=hier.core_id, stripe_step=cores)
        self.store = PairwiseStore(
            own_sets, self.controller, entries_per_block=16,
            max_ways=self.max_ways, mrb_blocks=0, compressed=True)
        self.store.resize(self.initial_ways)
        self.controller.apply_way_partition(self.initial_ways)

    # -- resizing ------------------------------------------------------------

    def _maybe_resize(self) -> None:
        if not self.adaptive or self._accesses % self.resize_epoch:
            return
        hit_rate = (self._epoch_hits / self._epoch_lookups
                    if self._epoch_lookups else 0.0)
        occupancy = (self.store.valid_entries() /
                     max(1, self.store.capacity_entries()))
        ways = self.store.ways
        if hit_rate > 0.3 and occupancy > 0.9 and ways < self.max_ways:
            ways += 1
        elif hit_rate < 0.05 and ways > 1:
            ways -= 1
        if ways != self.store.ways:
            self.store.resize(ways)
            self.controller.apply_way_partition(ways)
        self._epoch_lookups = self._epoch_hits = 0

    # -- training/prefetching ---------------------------------------------------

    def train(self, pc: int, blk: int, hit: bool, prefetch_hit: bool,
              now: float) -> List[int]:
        self._accesses += 1
        before = self.controller.traffic.total_accesses
        prev = self.tu.update(pc, blk)
        if prev:
            self.store.insert(prev[0], blk)
        candidates: List[int] = []
        cur = blk
        for _ in range(self.degree):
            lookups0, hits0 = self.store.lookups, self.store.hits
            target = self.store.lookup(cur)
            self._epoch_lookups += self.store.lookups - lookups0
            self._epoch_hits += self.store.hits - hits0
            if target is None:
                break
            candidates.append(target)
            cur = target
        self._maybe_resize()
        # Metadata traffic occupies the shared LLC port.
        delta = self.controller.traffic.total_accesses - before
        for _ in range(delta):
            self.hier.metadata_access(now)
        return candidates

    def state_dict(self):
        state = super().state_dict()
        state["tu"] = self.tu.state_dict()
        state["store"] = self.store.state_dict()
        state["controller"] = self.controller.state_dict()
        state["accesses"] = self._accesses
        state["epoch_lookups"] = self._epoch_lookups
        state["epoch_hits"] = self._epoch_hits
        return state

    def load_state(self, state) -> None:
        super().load_state(state)
        self.tu.load_state(state["tu"])
        self.store.load_state(state["store"])
        self.controller.load_state(state["controller"])
        self._accesses = int(state["accesses"])
        self._epoch_lookups = int(state["epoch_lookups"])
        self._epoch_hits = int(state["epoch_hits"])


class IdealTriage(Prefetcher):
    """Triage with unlimited, free metadata (the irregular-subset oracle)."""

    name = "triage-ideal"
    level = "l2"
    train_scope = TRAIN_SCOPE_TEMPORAL

    def __init__(self, degree: int = 4):
        super().__init__()
        self.degree = degree
        self.tu = TrainingUnit(size=4096, depth=1)
        self._pairs: Dict[int, int] = {}

    def train(self, pc: int, blk: int, hit: bool, prefetch_hit: bool,
              now: float) -> List[int]:
        prev = self.tu.update(pc, blk)
        if prev:
            self._pairs[prev[0]] = blk
        candidates: List[int] = []
        cur = blk
        for _ in range(self.degree):
            target = self._pairs.get(cur)
            if target is None:
                break
            candidates.append(target)
            cur = target
        return candidates

    def state_dict(self):
        state = super().state_dict()
        state["tu"] = self.tu.state_dict()
        state["pairs"] = [[t, tgt] for t, tgt in self._pairs.items()]
        return state

    def load_state(self, state) -> None:
        super().load_state(state)
        self.tu.load_state(state["tu"])
        self._pairs = {int(t): int(tgt) for t, tgt in state["pairs"]}
