"""PC-localized stride prefetcher (the paper's baseline L1D prefetcher).

Classic IP-stride: a small table keyed by load PC records the last block
address and last stride; two consecutive identical strides arm the entry,
after which it prefetches ``degree`` blocks ahead (Table II: degree 3).
"""

from __future__ import annotations

from typing import Dict, List

from .base import Prefetcher, TRAIN_SCOPE_ALL_L2


class _StrideEntry:
    __slots__ = ("last_blk", "stride", "confidence")

    def __init__(self, blk: int):
        self.last_blk = blk
        self.stride = 0
        self.confidence = 0


class StridePrefetcher(Prefetcher):
    """IP-stride at the L1D, degree 3 by default."""

    name = "ip-stride"
    level = "l1d"
    train_scope = TRAIN_SCOPE_ALL_L2

    def __init__(self, degree: int = 3, table_size: int = 256,
                 min_confidence: int = 2):
        super().__init__()
        if degree < 1:
            raise ValueError("degree must be >= 1")
        self.degree = degree
        self.table_size = table_size
        self.min_confidence = min_confidence
        self._table: Dict[int, _StrideEntry] = {}

    def train(self, pc: int, blk: int, hit: bool, prefetch_hit: bool,
              now: float) -> List[int]:
        entry = self._table.get(pc)
        if entry is None:
            if len(self._table) >= self.table_size:
                # FIFO-ish eviction: drop the oldest inserted PC.
                self._table.pop(next(iter(self._table)))
            self._table[pc] = _StrideEntry(blk)
            return []
        stride = blk - entry.last_blk
        if stride == 0:
            return []  # same block; nothing to learn
        if stride == entry.stride:
            entry.confidence = min(entry.confidence + 1, 4)
        else:
            entry.confidence = 0
            entry.stride = stride
        entry.last_blk = blk
        if entry.confidence < self.min_confidence:
            return []
        return [blk + entry.stride * (k + 1) for k in range(self.degree)]

    def state_dict(self):
        state = super().state_dict()
        # Pairs keep insertion order: eviction is FIFO via next(iter()).
        state["table"] = [[pc, e.last_blk, e.stride, e.confidence]
                          for pc, e in self._table.items()]
        return state

    def load_state(self, state) -> None:
        super().load_state(state)
        self._table = {}
        for pc, last_blk, stride, confidence in state["table"]:
            entry = _StrideEntry(int(last_blk))
            entry.stride = int(stride)
            entry.confidence = int(confidence)
            self._table[int(pc)] = entry
