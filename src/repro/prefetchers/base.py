"""Common prefetcher interface.

Two attachment points exist in the hierarchy, matching the paper's setup:

* ``level == "l1d"`` - trained on every L1D access, prefetches into L1D
  (the IP-stride and Berti baselines).
* ``level == "l2"``  - trained on L2 demand misses *and* L2 hits to
  prefetched lines ("prefetch hits"), prefetches into the L2 (Triage,
  Triangel, Streamline, and the regular L2 baselines).

A prefetcher's :meth:`train` returns the list of block addresses it wants
prefetched *this access*; the hierarchy issues them, tags the fills with
the prefetcher's ``owner_id``, and reports usefulness back through
:meth:`note_useful` / :meth:`note_useless` so online accuracy feedback
(Streamline's utility-aware partitioner, Triangel's samplers) can work.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, ClassVar, Dict, List, Optional

#: L2 training scopes.  ``"all_l2"`` prefetchers (IPCP, Bingo, SPP-PPF —
#: and the L1D prefetchers, which see every access at their own level)
#: train on every demand access that reaches the L2.
#: ``"temporal_events"`` prefetchers (Triage, Triangel, Streamline) train
#: only on L2 misses and on L2 hits to prefetched lines.
TRAIN_SCOPE_ALL_L2 = "all_l2"
TRAIN_SCOPE_TEMPORAL = "temporal_events"
TRAIN_SCOPES = (TRAIN_SCOPE_ALL_L2, TRAIN_SCOPE_TEMPORAL)


@dataclass
class PrefetcherStats:
    """Issue/usefulness counters for one prefetcher."""

    issued: int = 0
    useful: int = 0
    useless_evictions: int = 0
    dropped: int = 0          # candidate was already cached / MSHR-suppressed

    @property
    def accuracy(self) -> float:
        """Useful fraction of issued prefetches (resolved ones only)."""
        resolved = self.useful + self.useless_evictions
        if resolved == 0:
            return 0.0
        return self.useful / resolved

    def coverage(self, uncovered_misses: int) -> float:
        """Fraction of would-be demand misses covered by this prefetcher."""
        denom = self.useful + uncovered_misses
        return self.useful / denom if denom else 0.0


class Prefetcher:
    """Base class; subclasses override :meth:`train`.

    Every concrete subclass must declare :attr:`train_scope` — what L2
    traffic trains it — explicitly; the hierarchy validates the value at
    attach time (see :data:`TRAIN_SCOPES`).
    """

    name = "none"
    level = "l2"
    #: What trains this prefetcher when attached at the L2 (declared per
    #: subclass; replaces the old ``getattr(pf, "train_on_all_l2")`` probe).
    train_scope: ClassVar[str] = TRAIN_SCOPE_TEMPORAL

    def __init__(self) -> None:
        self.stats = PrefetcherStats()
        self.owner_id = -1      # assigned by the hierarchy at attach time
        #: Back-reference set by CoreHierarchy.attach_*_prefetcher.
        self.hier: Optional[Any] = None

    def train(self, pc: int, blk: int, hit: bool, prefetch_hit: bool,
              now: float) -> List[int]:
        """Observe one access; return block addresses to prefetch."""
        raise NotImplementedError

    # -- usefulness feedback (hierarchy-driven) ---------------------------

    def note_useful(self, blk: int, now: float) -> None:
        self.stats.useful += 1

    def note_useless(self, blk: int, now: float) -> None:
        self.stats.useless_evictions += 1

    # -- lifecycle ---------------------------------------------------------

    def attach(self, hierarchy) -> None:
        """Called once when wired into a hierarchy; override to grab the
        LLC / partition controller."""

    def detach(self, hierarchy) -> None:
        """Called at hierarchy teardown; override to release any bus
        subscriptions taken in :meth:`attach`.  Must be idempotent."""

    def finalize(self, now: float) -> None:
        """Called at end of simulation (flush epoch state into stats)."""

    # -- checkpointing -----------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """Mutable state only; subclasses call ``super()`` and extend.

        ``owner_id``/``hier`` are wiring (re-established at attach time)
        and constructor parameters are configuration — neither belongs
        in the snapshot.
        """
        return {"stats": asdict(self.stats)}

    def load_state(self, state: Dict[str, Any]) -> None:
        self.stats = PrefetcherStats(
            **{k: int(v) for k, v in state["stats"].items()})

    # -- measurement-phase overrides ---------------------------------------

    def apply_override(self, key: str, value: Any) -> None:
        """Apply one measurement-phase knob (e.g. ``degree``).

        Overrides run at the warm-up boundary in both straight and
        checkpoint-restored runs, so sweeps that differ only in these
        knobs share one warm-up snapshot.  Dispatches to a per-key
        ``_override_<key>`` method.
        """
        handler = getattr(self, "_override_" + key.replace("-", "_"), None)
        if handler is None:
            raise ValueError(
                f"{self.name}: unsupported measure override {key!r}")
        handler(value)

    def _override_degree(self, value: Any) -> None:
        degree = int(value)
        if degree < 1:
            raise ValueError(f"degree override must be >= 1, got {degree}")
        if hasattr(self, "degree"):
            self.degree = degree
        elif hasattr(self, "max_degree"):
            self.max_degree = degree
        else:
            raise ValueError(f"{self.name} has no degree to override")


class NullPrefetcher(Prefetcher):
    """No prefetching; the baseline denominator for every speedup."""

    name = "none"
    train_scope = TRAIN_SCOPE_TEMPORAL

    def train(self, pc: int, blk: int, hit: bool, prefetch_hit: bool,
              now: float) -> List[int]:
        return []
