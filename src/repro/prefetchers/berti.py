"""Berti [Navarro-Torres+ MICRO'22]: local-delta L1D prefetching.

Berti's idea is to learn, per load PC, the set of *timely* local deltas:
deltas between a load's current address and its recent history that,
had they been prefetched, would have arrived before the demand access.
We keep the essence — per-PC history, delta scoring by coverage and
timeliness, multiple simultaneous deltas — and simplify the timing test
to "the delta source occurred at least ``timely_distance`` accesses
ago" (a trace-driven proxy for the IPC-based latency test).
"""

from __future__ import annotations

from collections import OrderedDict, defaultdict
from typing import Dict, List, Tuple

from .base import Prefetcher, TRAIN_SCOPE_ALL_L2


class _BertiEntry:
    __slots__ = ("history", "scores", "best", "accesses")

    def __init__(self) -> None:
        self.history: List[Tuple[int, int]] = []  # (index, blk)
        self.scores: Dict[int, int] = defaultdict(int)
        self.best: List[int] = []
        self.accesses = 0


class BertiPrefetcher(Prefetcher):
    """Simplified Berti at the L1D."""

    name = "berti"
    level = "l1d"
    train_scope = TRAIN_SCOPE_ALL_L2

    def __init__(self, history: int = 16, max_deltas: int = 3,
                 epoch: int = 256, min_score: int = 30,
                 timely_distance: int = 4, table_size: int = 128):
        super().__init__()
        self.history = history
        self.max_deltas = max_deltas
        self.epoch = epoch
        self.min_score = min_score
        self.timely_distance = timely_distance
        self.table_size = table_size
        self._table: "OrderedDict[int, _BertiEntry]" = OrderedDict()

    def _entry(self, pc: int) -> _BertiEntry:
        e = self._table.get(pc)
        if e is None:
            if len(self._table) >= self.table_size:
                self._table.popitem(last=False)
            e = _BertiEntry()
            self._table[pc] = e
        else:
            self._table.move_to_end(pc)
        return e

    def train(self, pc: int, blk: int, hit: bool, prefetch_hit: bool,
              now: float) -> List[int]:
        e = self._entry(pc)
        e.accesses += 1
        # Score every timely delta that would have predicted this access.
        for age, (idx, old_blk) in enumerate(reversed(e.history)):
            delta = blk - old_blk
            if delta == 0 or abs(delta) > 512:
                continue
            if age + 1 >= self.timely_distance:
                e.scores[delta] += 1
        e.history.append((e.accesses, blk))
        del e.history[:-self.history]
        if e.accesses % self.epoch == 0:
            scored = sorted(e.scores.items(), key=lambda kv: -kv[1])
            cutoff = self.min_score * self.epoch // 256
            e.best = [d for d, s in scored[:self.max_deltas] if s >= cutoff]
            e.scores.clear()
        return [blk + d for d in e.best]

    def state_dict(self):
        state = super().state_dict()
        state["table"] = [
            [pc, {"history": [[i, b] for i, b in e.history],
                  "scores": [[d, s] for d, s in e.scores.items()],
                  "best": list(e.best),
                  "accesses": e.accesses}]
            for pc, e in self._table.items()]
        return state

    def load_state(self, state) -> None:
        super().load_state(state)
        self._table = OrderedDict()
        for pc, es in state["table"]:
            e = _BertiEntry()
            e.history = [(int(i), int(b)) for i, b in es["history"]]
            e.scores = defaultdict(
                int, {int(d): int(s) for d, s in es["scores"]})
            e.best = [int(d) for d in es["best"]]
            e.accesses = int(es["accesses"])
            self._table[int(pc)] = e
