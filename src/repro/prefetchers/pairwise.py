"""Pairwise temporal metadata: the store shared by Triage and Triangel.

A pairwise metadata entry is one (trigger -> target) correlation.  The
store is **way-partitioned** in the LLC: every LLC set cedes ``m`` ways,
and an entry's location is chosen by the two-level index the paper
describes in Section III-C2 -- the first hash picks the LLC set, the
second picks one of the ``m`` metadata ways.  One 64-byte block packs
``entries_per_block`` correlations (12 for Triangel's uncompressed
targets, 16 for Triage's LUT-compressed ones).

Because the second-level index depends on ``m``, resizing the partition
misplaces entries; :meth:`PairwiseStore.resize` re-indexes every stored
entry and counts the moved blocks as rearrangement traffic, which is
exactly the cost Streamline's filtered indexing eliminates.

Trigger tags are 10-bit hashes, so distinct triggers can alias; the model
keeps that behaviour (an aliased lookup returns the other trigger's
target, i.e. a wrong prefetch) rather than hiding it.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from ..memory.address import fold_hash, hash32
from ..memory.metadata_store import PartitionController

TRIGGER_TAG_BITS = 10


class PairwiseEntry:
    """One stored correlation.

    ``trigger`` keeps the full trigger block address as *model state* so
    resizes can re-derive the two-level index; matching still goes through
    the 10-bit ``tag``, so hash aliasing behaves as in hardware.
    """

    __slots__ = ("trigger", "tag", "target", "conf", "rrpv")

    def __init__(self, trigger: int, tag: int, target: int):
        self.trigger = trigger
        self.tag = tag
        self.target = target
        self.conf = 0
        self.rrpv = 2  # SRRIP insert value for a 2-bit RRPV


class TargetLUT:
    """Triage's lookup-table target compression.

    Targets are split into a region (high bits) and an 11-bit offset; the
    region is stored as a 10-bit index into a 1024-entry LUT.  When a LUT
    slot is re-used for a new region, old entries silently decode into
    the *new* region -- the accuracy loss Triangel's authors measured.
    """

    SLOTS = 1024
    OFFSET_BITS = 11

    def __init__(self) -> None:
        self._regions: List[Optional[int]] = [None] * self.SLOTS
        self._index: Dict[int, int] = {}
        self._victim = 0
        self.replacements = 0

    def encode(self, target: int) -> Tuple[int, int]:
        region, offset = target >> self.OFFSET_BITS, \
            target & ((1 << self.OFFSET_BITS) - 1)
        slot = self._index.get(region)
        if slot is None:
            slot = self._victim
            self._victim = (self._victim + 1) % self.SLOTS
            old = self._regions[slot]
            if old is not None:
                del self._index[old]
                self.replacements += 1
            self._regions[slot] = region
            self._index[region] = slot
        return slot, offset

    def decode(self, slot: int, offset: int) -> Optional[int]:
        region = self._regions[slot]
        if region is None:
            return None
        return (region << self.OFFSET_BITS) | offset

    def state_dict(self) -> Dict[str, object]:
        # _index is derived (region -> slot inverse of _regions).
        return {"regions": list(self._regions),
                "victim": self._victim,
                "replacements": self.replacements}

    def load_state(self, state: Dict[str, object]) -> None:
        regions = [None if r is None else int(r)
                   for r in state["regions"]]
        if len(regions) != self.SLOTS:
            raise ValueError(f"LUT has {len(regions)} slots, "
                             f"expected {self.SLOTS}")
        self._regions = regions
        self._index = {r: slot for slot, r in enumerate(regions)
                       if r is not None}
        self._victim = int(state["victim"])
        self.replacements = int(state["replacements"])


class PairwiseStore:
    """Way-partitioned pairwise metadata store with an MRB in front.

    Parameters
    ----------
    llc_sets:
        Number of sets in the host LLC (first-level index space).
    controller:
        Traffic/partition accounting (shared with the hierarchy).
    entries_per_block:
        12 (Triangel) or 16 (Triage, with ``compressed=True``).
    max_ways:
        Upper bound on metadata ways (8 = half a 16-way LLC).
    mrb_blocks:
        Metadata reuse buffer capacity in blocks; hits there cost no LLC
        traffic (Triangel's MRB).  0 disables it (Triage).
    compressed:
        Use :class:`TargetLUT` compression for targets.
    """

    def __init__(self, llc_sets: int, controller: PartitionController,
                 entries_per_block: int = 12, max_ways: int = 8,
                 mrb_blocks: int = 32, compressed: bool = False):
        if llc_sets < 1:
            raise ValueError("llc_sets must be positive")
        self.llc_sets = llc_sets
        self.controller = controller
        self.entries_per_block = entries_per_block
        self.max_ways = max_ways
        self.mrb_blocks = mrb_blocks
        self.compressed = compressed
        self.lut = TargetLUT() if compressed else None
        self.ways = 0
        self._blocks: Dict[Tuple[int, int], List[PairwiseEntry]] = {}
        self._mrb: "OrderedDict[Tuple[int, int], bool]" = OrderedDict()
        # Statistics the experiments read.
        self.lookups = 0
        self.hits = 0
        self.inserts = 0
        self.dedup_writes = 0
        self.alias_capacity = 0

    # -- indexing ---------------------------------------------------------

    def _index(self, trigger: int, ways: Optional[int] = None
               ) -> Optional[Tuple[int, int]]:
        ways = self.ways if ways is None else ways
        if ways <= 0:
            return None
        h = hash32(trigger)
        set_idx = h % self.llc_sets
        way = (h >> 16) % ways
        return set_idx, way

    def _tag(self, trigger: int) -> int:
        return fold_hash(trigger, TRIGGER_TAG_BITS)

    # -- MRB ---------------------------------------------------------------

    def _touch_block(self, loc: Tuple[int, int], write: bool) -> None:
        """Account one block access, dampened by the MRB.

        The MRB caches recently touched metadata blocks: repeated reads
        cost nothing, and writes are coalesced (marked dirty, written back
        once when the MRB entry is evicted).  With ``mrb_blocks == 0``
        every access goes straight to the LLC (Triage).
        """
        if not self.mrb_blocks:
            if write:
                self.controller.record_write()
            else:
                self.controller.record_read()
            return
        if loc in self._mrb:
            self._mrb.move_to_end(loc)
            if write:
                self._mrb[loc] = True  # dirty
            return
        if not write:
            self.controller.record_read()
        self._mrb[loc] = write
        if len(self._mrb) > self.mrb_blocks:
            _, dirty = self._mrb.popitem(last=False)
            if dirty:
                self.controller.record_write()

    def flush_mrb(self) -> None:
        """Write back every dirty MRB block (end of run / resize)."""
        for _, dirty in self._mrb.items():
            if dirty:
                self.controller.record_write()
        self._mrb.clear()

    # -- operations ----------------------------------------------------------

    def capacity_entries(self) -> int:
        return self.ways * self.llc_sets * self.entries_per_block

    def valid_entries(self) -> int:
        return sum(len(b) for b in self._blocks.values())

    def lookup(self, trigger: int) -> Optional[int]:
        """Return the stored target for ``trigger``, or None.

        Counts one metadata read unless the block sits in the MRB.
        """
        self.lookups += 1
        loc = self._index(trigger)
        if loc is None:
            return None
        block = self._blocks.get(loc)
        if not block:
            return None  # the LLC tag store filters the miss: no transfer
        self._touch_block(loc, write=False)
        tag = self._tag(trigger)
        for e in block:
            if e.tag == tag:
                e.rrpv = 0
                self.hits += 1
                if self.compressed:
                    slot, offset = e.target
                    return self.lut.decode(slot, offset)
                return e.target
        return None

    def insert(self, trigger: int, target: int) -> None:
        """Store/refresh the correlation (trigger -> target)."""
        loc = self._index(trigger)
        if loc is None:
            return
        self.inserts += 1
        stored = self.lut.encode(target) if self.compressed else target
        block = self._blocks.setdefault(loc, [])
        tag = self._tag(trigger)
        for e in block:
            if e.tag == tag:
                if e.target == stored:
                    e.conf = 1
                    self.dedup_writes += 1  # MRB suppressed a no-op write
                    return
                # Triage's confidence bit: first disagreement clears it,
                # the second replaces the target.
                if e.conf:
                    e.conf = 0
                else:
                    e.target = stored
                e.rrpv = 0
                self._touch_block(loc, write=True)
                return
        if len(block) >= self.entries_per_block:
            self._evict_one(block)
        block.append(PairwiseEntry(trigger, tag, stored))
        self._touch_block(loc, write=True)

    def _evict_one(self, block: List[PairwiseEntry]) -> None:
        """SRRIP among the entries that share one metadata block."""
        while True:
            for i, e in enumerate(block):
                if e.rrpv >= 3:
                    del block[i]
                    return
            for e in block:
                e.rrpv += 1

    # -- resizing -------------------------------------------------------------

    def resize(self, new_ways: int, rearrange: bool = True) -> int:
        """Change the partition to ``new_ways`` metadata ways per set.

        With ``rearrange`` (Triangel's behaviour) surviving entries are
        moved to their new way and the traffic is charged; without it
        (the FUW ablation in Table I) misplaced entries are dropped.
        Returns the number of blocks moved.
        """
        if not 0 <= new_ways <= self.max_ways:
            raise ValueError(f"ways {new_ways} out of 0..{self.max_ways}")
        self.flush_mrb()
        old_blocks = self._blocks
        self.ways = new_ways
        self._blocks = {}
        if new_ways == 0:
            old_blocks.clear()
            return 0
        moved_src = set()
        moved_entries = 0
        for (set_idx, old_way), block in old_blocks.items():
            for e in block:
                new_loc = self._index(e.trigger, new_ways)
                if not rearrange and new_loc[1] != old_way:
                    continue  # misplaced and not rearranged: dropped
                if new_loc[1] != old_way:
                    moved_entries += 1
                    moved_src.add((set_idx, old_way))
                dest = self._blocks.setdefault(new_loc, [])
                if len(dest) >= self.entries_per_block:
                    self._evict_one(dest)
                dest.append(e)
        if rearrange and moved_entries:
            blocks_moved = len(moved_src)
            self.controller.record_rearrangement(blocks_moved)
            return blocks_moved
        return 0

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Entries, MRB (order = recency), counters, LUT.  Targets are
        stored encoded ((slot, offset) pairs when compressed)."""
        blocks = []
        for (set_idx, way), block in self._blocks.items():
            rows = []
            for e in block:
                target = list(e.target) if self.compressed else e.target
                rows.append([e.trigger, e.tag, target, e.conf, e.rrpv])
            blocks.append([set_idx, way, rows])
        return {
            "ways": self.ways,
            "blocks": blocks,
            "mrb": [[loc[0], loc[1], dirty]
                    for loc, dirty in self._mrb.items()],
            "lookups": self.lookups, "hits": self.hits,
            "inserts": self.inserts, "dedup_writes": self.dedup_writes,
            "alias_capacity": self.alias_capacity,
            "lut": self.lut.state_dict() if self.lut is not None else None,
        }

    def load_state(self, state: Dict[str, object]) -> None:
        self.ways = int(state["ways"])
        self._blocks = {}
        for set_idx, way, rows in state["blocks"]:
            block = []
            for trigger, tag, target, conf, rrpv in rows:
                if self.compressed:
                    target = (int(target[0]), int(target[1]))
                else:
                    target = int(target)
                e = PairwiseEntry(int(trigger), int(tag), target)
                e.conf = int(conf)
                e.rrpv = int(rrpv)
                block.append(e)
            self._blocks[(int(set_idx), int(way))] = block
        self._mrb = OrderedDict(
            ((int(s), int(w)), bool(dirty)) for s, w, dirty in state["mrb"])
        self.lookups = int(state["lookups"])
        self.hits = int(state["hits"])
        self.inserts = int(state["inserts"])
        self.dedup_writes = int(state["dedup_writes"])
        self.alias_capacity = int(state["alias_capacity"])
        if self.lut is not None:
            self.lut.load_state(state["lut"])


class TrainingUnit:
    """Per-PC last-address tracker (Triage keeps one, Triangel keeps two)."""

    def __init__(self, size: int = 256, depth: int = 2):
        self.size = size
        self.depth = depth
        self._table: "OrderedDict[int, List[int]]" = OrderedDict()

    def update(self, pc: int, blk: int) -> List[int]:
        """Record ``blk`` for ``pc``; returns the *previous* history
        (most recent first)."""
        hist = self._table.get(pc)
        if hist is None:
            if len(self._table) >= self.size:
                self._table.popitem(last=False)
            self._table[pc] = [blk]
            return []
        self._table.move_to_end(pc)
        prev = list(hist)
        hist.insert(0, blk)
        del hist[self.depth:]
        return prev

    def state_dict(self) -> Dict[str, object]:
        return {"table": [[pc, list(hist)]
                          for pc, hist in self._table.items()]}

    def load_state(self, state: Dict[str, object]) -> None:
        self._table = OrderedDict(
            (int(pc), [int(b) for b in hist])
            for pc, hist in state["table"])
