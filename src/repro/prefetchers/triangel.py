"""Triangel [Ainsworth & Mukhanov, ISCA'24]: the state-of-the-art baseline.

Triangel improves Triage with (1) per-PC confidence that filters
inaccurate metadata and controls degree, (2) a metadata reuse buffer
(MRB) that absorbs LLC metadata traffic, and (3) set-dueling dynamic
partitioning over 9 partition sizes (0-8 LLC ways).  Uncompressed 31-bit
targets give 12 correlations per block.

The confidence machinery follows the paper's structure functionally:

* a **history sampler (HS)** samples correlations and measures, per PC,
  *reuse* confidence (is the correlation looked at again before it falls
  out of the sampler?) and *pattern* confidence (does the trigger keep
  producing the same target?);
* a **second-chance sampler (SCS)** catches reordered reuse the HS
  already evicted;
* per-PC counters gate metadata insertion (low reuse -> bypass, which is
  why Triangel wins on mcf's scan PCs) and set the prefetch degree.

Resizing keeps the paper's defining cost: each resize re-indexes the
store and the moved blocks are charged as rearrangement traffic
(Section III-C2), which is what Streamline's filtered indexing removes.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..memory.events import EV
from ..memory.metadata_store import PartitionController
from .base import Prefetcher, TRAIN_SCOPE_TEMPORAL
from .pairwise import PairwiseStore


@dataclass
class _PCState:
    """Triangel's per-PC training-unit entry."""

    last1: int = -1
    last2: int = -1
    reuse_conf: int = 8     # 0..15, starts neutral
    pattern_conf: int = 8   # 0..15
    sample_tick: int = 0

    def degree(self, max_degree: int) -> int:
        if self.pattern_conf >= 12:
            return max_degree
        if self.pattern_conf >= 10:
            return 2
        if self.pattern_conf >= 8:
            return 1
        return 0

    @property
    def can_store(self) -> bool:
        return self.reuse_conf >= 6

    @property
    def lookahead(self) -> bool:
        """Correlate with the second-to-last address for timeliness."""
        return self.pattern_conf >= 13


class _DuelingPartitioner:
    """Set-dueling over 9 partition sizes (0..8 metadata ways).

    Data utility comes from shadow-LRU stack distances on sampled LLC
    sets: an access at stack distance ``d`` would hit every configuration
    with at least ``d+1`` data ways.  Metadata utility comes from shadow
    stores scaled to each candidate size.  Every epoch the best combined
    score wins.
    """

    SAMPLE_EVERY = 16

    def __init__(self, llc_sets: int, llc_ways: int, max_meta_ways: int,
                 entries_per_block: int):
        self.llc_sets = llc_sets
        self.llc_ways = llc_ways
        self.max_meta_ways = max_meta_ways
        self.sizes = list(range(max_meta_ways + 1))
        self._shadow_lru: Dict[int, "OrderedDict[int, bool]"] = {}
        cap_unit = llc_sets * entries_per_block // self.SAMPLE_EVERY
        self._shadow_meta: List["OrderedDict[int, int]"] = [
            OrderedDict() for _ in self.sizes]
        self._meta_caps = [max(1, m * cap_unit) for m in self.sizes]
        self.scores = [0.0] * len(self.sizes)

    def observe_data(self, blk: int, set_idx: Optional[int] = None
                     ) -> None:
        if set_idx is None:
            set_idx = blk & (self.llc_sets - 1)
        if set_idx % self.SAMPLE_EVERY:
            return
        lru = self._shadow_lru.setdefault(set_idx, OrderedDict())
        if blk in lru:
            distance = 0
            for b in reversed(lru):
                if b == blk:
                    break
                distance += 1
            lru.move_to_end(blk)
            for i, meta_ways in enumerate(self.sizes):
                if distance < self.llc_ways - meta_ways:
                    self.scores[i] += 16
        else:
            lru[blk] = True
            if len(lru) > self.llc_ways:
                lru.popitem(last=False)

    def observe_correlation(self, trigger: int, target: int) -> None:
        if trigger % self.SAMPLE_EVERY:
            return
        for i, shadow in enumerate(self._shadow_meta):
            if i == 0:
                continue  # 0 ways stores nothing
            hit = shadow.get(trigger)
            if hit is not None and hit == target:
                self.scores[i] += 16  # Triangel weights all hits equally
            shadow[trigger] = target
            shadow.move_to_end(trigger)
            if len(shadow) > self._meta_caps[i]:
                shadow.popitem(last=False)

    def best_size(self) -> int:
        best = max(range(len(self.sizes)), key=lambda i: self.scores[i])
        self.scores = [0.0] * len(self.sizes)
        return self.sizes[best]

    def state_dict(self) -> Dict[str, object]:
        return {
            "shadow_lru": [[set_idx, list(lru)]
                           for set_idx, lru in self._shadow_lru.items()],
            "shadow_meta": [[[t, tgt] for t, tgt in shadow.items()]
                            for shadow in self._shadow_meta],
            "scores": list(self.scores),
        }

    def load_state(self, state: Dict[str, object]) -> None:
        self._shadow_lru = {}
        for set_idx, blks in state["shadow_lru"]:
            self._shadow_lru[int(set_idx)] = OrderedDict(
                (int(b), True) for b in blks)
        self._shadow_meta = [
            OrderedDict((int(t), int(tgt)) for t, tgt in pairs)
            for pairs in state["shadow_meta"]]
        self.scores = [float(s) for s in state["scores"]]


class TriangelPrefetcher(Prefetcher):
    """The full Triangel baseline."""

    name = "triangel"
    level = "l2"
    train_scope = TRAIN_SCOPE_TEMPORAL

    def __init__(self, degree: int = 4, max_ways: int = 8,
                 initial_ways: int = 4, resize_epoch: int = 20_000,
                 hs_size: int = 128, scs_size: int = 128,
                 sample_rate: int = 256, mrb_blocks: int = 32,
                 adaptive: bool = True, dedicated: bool = False,
                 replacement: str = "srrip"):
        super().__init__()
        if replacement not in ("srrip", "tp-mockingjay"):
            raise ValueError("replacement must be srrip or tp-mockingjay")
        self.degree = degree
        self.max_ways = max_ways
        self.initial_ways = initial_ways
        self.resize_epoch = resize_epoch
        self.hs_size = hs_size
        self.scs_size = scs_size
        self.sample_rate = sample_rate
        self.mrb_blocks = mrb_blocks
        self.adaptive = adaptive
        self.dedicated = dedicated
        self.replacement = replacement
        self._pcs: "OrderedDict[int, _PCState]" = OrderedDict()
        self._hs: "OrderedDict[int, tuple]" = OrderedDict()
        self._scs: "OrderedDict[int, tuple]" = OrderedDict()
        self.store: Optional[PairwiseStore] = None
        self.controller: Optional[PartitionController] = None
        self.partitioner: Optional[_DuelingPartitioner] = None
        self._accesses = 0
        self.bypassed_inserts = 0
        self._duel_bus = None  # the bus holding our dueling handler

    def attach(self, hier) -> None:
        llc = hier.uncore.llc
        cores = hier.uncore.num_cores
        own_sets = llc.num_sets // cores
        self.controller = PartitionController(
            None if self.dedicated else llc,
            max_bytes=self.max_ways * own_sets * 64,
            stripe_offset=hier.core_id, stripe_step=cores)
        self.store = PairwiseStore(
            own_sets, self.controller, entries_per_block=12,
            max_ways=self.max_ways, mrb_blocks=self.mrb_blocks,
            compressed=False)
        self.store.resize(self.initial_ways)
        if not self.dedicated:
            self.controller.apply_way_partition(self.initial_ways)
        self.partitioner = _DuelingPartitioner(
            own_sets, llc.ways, self.max_ways, 12)
        # Set dueling is an LLC-side mechanism: it observes every core's
        # demand traffic to this core's stripe, and keeps epochs moving
        # even when this core itself rarely misses in the L2.
        self._stripe = (hier.core_id, cores)
        self._duel_events = 0
        if self.adaptive and not self.dedicated:
            hier.bus.subscribe(EV.ACCESS, self._on_llc_demand)
            self._duel_bus = hier.bus

    def detach(self, hier) -> None:
        if self._duel_bus is not None:
            self._duel_bus.unsubscribe(EV.ACCESS, self._on_llc_demand)
            self._duel_bus = None

    def _on_llc_demand(self, ev) -> None:
        if ev.origin != "demand":
            return
        blk = ev.blk
        offset, step = self._stripe
        llc_set = blk % (self.partitioner.llc_sets * step)
        if llc_set % step != offset:
            return
        self.partitioner.observe_data(blk, set_idx=llc_set // step)
        self._duel_events += 1
        if self._duel_events >= self.resize_epoch:
            self._duel_events = 0
            ways = self.partitioner.best_size()
            if ways != self.store.ways:
                self.store.resize(ways)  # charges rearrangement traffic
                self.controller.apply_way_partition(ways)

    # -- training-unit state --------------------------------------------------

    def _pc_state(self, pc: int) -> _PCState:
        st = self._pcs.get(pc)
        if st is None:
            if len(self._pcs) >= 256:
                self._pcs.popitem(last=False)
            st = _PCState()
            self._pcs[pc] = st
        else:
            self._pcs.move_to_end(pc)
        return st

    # -- confidence sampling -----------------------------------------------------

    def _sample(self, pc: int, st: _PCState, trigger: int,
                target: int) -> None:
        """Feed the HS/SCS with this correlation and update confidences."""
        entry = self._hs.get(trigger)
        if entry is not None:
            old_target, old_pc, _ = entry
            owner = self._pcs.get(old_pc)
            if owner is not None:
                if old_target == target:
                    # Asymmetric update: a repeated correlation is strong
                    # evidence, one divergence is weak (streams with a few
                    # multi-successor triggers should still prefetch).
                    owner.pattern_conf = min(15, owner.pattern_conf + 2)
                else:
                    owner.pattern_conf = max(0, owner.pattern_conf - 1)
                owner.reuse_conf = min(15, owner.reuse_conf + 1)
            self._hs[trigger] = (target, pc, True)
            self._hs.move_to_end(trigger)
            return
        scs_entry = self._scs.pop(trigger, None)
        if scs_entry is not None:
            _, old_pc, _ = scs_entry
            owner = self._pcs.get(old_pc)
            if owner is not None:  # reordered reuse: partial credit
                owner.reuse_conf = min(15, owner.reuse_conf + 1)
        st.sample_tick += 1
        if st.sample_tick % self.sample_rate:
            return
        self._hs[trigger] = (target, pc, False)
        if len(self._hs) > self.hs_size:
            old_trigger, (t, p, used) = self._hs.popitem(last=False)
            if not used:
                owner = self._pcs.get(p)
                if owner is not None:
                    owner.reuse_conf = max(0, owner.reuse_conf - 1)
                self._scs[old_trigger] = (t, p, False)
                if len(self._scs) > self.scs_size:
                    self._scs.popitem(last=False)

    # -- main hook -------------------------------------------------------------

    def train(self, pc: int, blk: int, hit: bool, prefetch_hit: bool,
              now: float) -> List[int]:
        self._accesses += 1
        before = self.controller.traffic.total_accesses
        st = self._pc_state(pc)

        trigger = st.last2 if st.lookahead and st.last2 >= 0 else st.last1
        if trigger >= 0 and trigger != blk:
            self._sample(pc, st, trigger, blk)
            self.partitioner.observe_correlation(trigger, blk)
            if st.can_store:
                self.store.insert(trigger, blk)
            else:
                self.bypassed_inserts += 1
        st.last2, st.last1 = st.last1, blk

        candidates: List[int] = []
        degree = st.degree(self.degree)
        cur = blk
        for _ in range(degree):
            target = self.store.lookup(cur)
            if target is None:
                break
            candidates.append(target)
            cur = target
        delta = self.controller.traffic.total_accesses - before
        for _ in range(delta):
            self.hier.metadata_access(now)
        return candidates

    def finalize(self, now: float) -> None:
        if self.store is not None:
            self.store.flush_mrb()

    # -- checkpointing -------------------------------------------------------

    def state_dict(self):
        state = super().state_dict()
        state["pcs"] = [
            [pc, st.last1, st.last2, st.reuse_conf, st.pattern_conf,
             st.sample_tick]
            for pc, st in self._pcs.items()]
        state["hs"] = [[trigger, t, p, used]
                       for trigger, (t, p, used) in self._hs.items()]
        state["scs"] = [[trigger, t, p, used]
                        for trigger, (t, p, used) in self._scs.items()]
        state["store"] = self.store.state_dict()
        state["controller"] = self.controller.state_dict()
        state["partitioner"] = self.partitioner.state_dict()
        state["accesses"] = self._accesses
        state["bypassed_inserts"] = self.bypassed_inserts
        state["duel_events"] = self._duel_events
        return state

    def load_state(self, state) -> None:
        super().load_state(state)
        self._pcs = OrderedDict()
        for pc, last1, last2, reuse, pattern, tick in state["pcs"]:
            self._pcs[int(pc)] = _PCState(
                last1=int(last1), last2=int(last2), reuse_conf=int(reuse),
                pattern_conf=int(pattern), sample_tick=int(tick))
        self._hs = OrderedDict(
            (int(trigger), (int(t), int(p), bool(used)))
            for trigger, t, p, used in state["hs"])
        self._scs = OrderedDict(
            (int(trigger), (int(t), int(p), bool(used)))
            for trigger, t, p, used in state["scs"])
        self.store.load_state(state["store"])
        self.controller.load_state(state["controller"])
        self.partitioner.load_state(state["partitioner"])
        self._accesses = int(state["accesses"])
        self.bypassed_inserts = int(state["bypassed_inserts"])
        self._duel_events = int(state["duel_events"])
