"""Prefetchers: the paper's baselines plus the shared interfaces."""

from .base import NullPrefetcher, Prefetcher, PrefetcherStats
from .berti import BertiPrefetcher
from .bingo import BingoPrefetcher
from .ipcp import IPCPPrefetcher
from .spp import SPPPrefetcher
from .stride import StridePrefetcher
from .triage import IdealTriage, TriagePrefetcher
from .triangel import TriangelPrefetcher

__all__ = ["NullPrefetcher", "Prefetcher", "PrefetcherStats",
           "BertiPrefetcher", "BingoPrefetcher", "IPCPPrefetcher",
           "SPPPrefetcher", "StridePrefetcher", "IdealTriage",
           "TriagePrefetcher", "TriangelPrefetcher"]
