"""Memory-hierarchy substrate: caches, DRAM, replacement, partitioning."""

from .address import BLOCK_SIZE, addr_of, block_of, fold_hash, hash32
from .cache import AccessResult, Cache, CacheStats, Line
from .dram import DRAM, DRAMStats
from .events import EV, EventBus, HierarchyEvent
from .hierarchy import CacheLevel, CoreHierarchy, SharedUncore, UncoreLevel
from .request import LevelOutcome, MemoryRequest
from .metadata_store import MetadataTraffic, PartitionController
from .replacement import (HawkeyeLitePolicy, LRUPolicy, RandomPolicy,
                          ReplacementPolicy, SRRIPPolicy, make_policy)

__all__ = [
    "BLOCK_SIZE", "addr_of", "block_of", "fold_hash", "hash32",
    "AccessResult", "Cache", "CacheStats", "Line",
    "DRAM", "DRAMStats",
    "EV", "EventBus", "HierarchyEvent",
    "CacheLevel", "CoreHierarchy", "SharedUncore", "UncoreLevel",
    "LevelOutcome", "MemoryRequest",
    "MetadataTraffic", "PartitionController",
    "HawkeyeLitePolicy", "LRUPolicy", "RandomPolicy", "ReplacementPolicy",
    "SRRIPPolicy", "make_policy",
]
