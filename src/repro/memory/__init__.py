"""Memory-hierarchy substrate: caches, DRAM, replacement, partitioning."""

from .address import BLOCK_SIZE, addr_of, block_of, fold_hash, hash32
from .cache import AccessResult, Cache, CacheStats, Line
from .dram import DRAM, DRAMStats
from .hierarchy import CoreHierarchy, SharedUncore
from .metadata_store import MetadataTraffic, PartitionController
from .replacement import (HawkeyeLitePolicy, LRUPolicy, RandomPolicy,
                          ReplacementPolicy, SRRIPPolicy, make_policy)

__all__ = [
    "BLOCK_SIZE", "addr_of", "block_of", "fold_hash", "hash32",
    "AccessResult", "Cache", "CacheStats", "Line",
    "DRAM", "DRAMStats",
    "CoreHierarchy", "SharedUncore",
    "MetadataTraffic", "PartitionController",
    "HawkeyeLitePolicy", "LRUPolicy", "RandomPolicy", "ReplacementPolicy",
    "SRRIPPolicy", "make_policy",
]
