"""Cache replacement policies.

Each policy manages the replacement state for one set-associative cache.
The cache calls three hooks:

* ``on_hit(set_idx, way)``   - a lookup hit way ``way``
* ``on_fill(set_idx, way, blk, pc)`` - a new block was installed
* ``victim(set_idx, ways)``  - choose a way to evict among ``ways``
  candidate way indices (the cache passes only the ways that belong to
  the data partition, which is how LLC way-partitioning composes with
  replacement).

Implemented policies:

* :class:`LRUPolicy` - true LRU via a per-set timestamp.
* :class:`SRRIPPolicy` - 2-bit re-reference interval prediction [Jaleel+
  ISCA'10]; what Triangel uses for its metadata and what we use for LLC
  data.
* :class:`RandomPolicy` - deterministic pseudo-random victims.
* :class:`HawkeyeLitePolicy` - a sampled-Belady predictor in the spirit of
  Hawkeye [Jain&Lin ISCA'16]: per-PC counters trained by an OPTgen-style
  occupancy vector over sampled sets.  Triage uses Hawkeye for its
  metadata partition; we use this functional re-implementation.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence

import numpy as np

from .address import hash32


class ReplacementPolicy:
    """Interface: replacement state for ``num_sets`` x ``num_ways``."""

    name = "base"

    def __init__(self, num_sets: int, num_ways: int):
        self.num_sets = num_sets
        self.num_ways = num_ways

    def on_hit(self, set_idx: int, way: int) -> None:
        raise NotImplementedError

    def on_fill(self, set_idx: int, way: int, blk: int = 0, pc: int = 0) -> None:
        raise NotImplementedError

    def victim(self, set_idx: int, ways: Sequence[int]) -> int:
        raise NotImplementedError

    def state_dict(self) -> Dict[str, object]:
        """Serializable snapshot of the policy's mutable state."""
        raise NotImplementedError

    def load_state(self, state: Dict[str, object]) -> None:
        raise NotImplementedError


class LRUPolicy(ReplacementPolicy):
    """Least-recently-used via a monotonically increasing clock."""

    name = "lru"

    def __init__(self, num_sets: int, num_ways: int):
        super().__init__(num_sets, num_ways)
        self._clock = 0
        self._stamp = [[0] * num_ways for _ in range(num_sets)]

    def _touch(self, set_idx: int, way: int) -> None:
        self._clock += 1
        self._stamp[set_idx][way] = self._clock

    def on_hit(self, set_idx: int, way: int) -> None:
        self._touch(set_idx, way)

    def on_fill(self, set_idx: int, way: int, blk: int = 0, pc: int = 0) -> None:
        self._touch(set_idx, way)

    def victim(self, set_idx: int, ways: Sequence[int]) -> int:
        stamps = self._stamp[set_idx]
        return min(ways, key=lambda w: stamps[w])

    def stack_distance(self, set_idx: int, way: int) -> int:
        """Number of ways in this set more recently used than ``way``.

        Used by the dynamic partitioners to answer "would this access have
        hit with only *w* data ways?" (it would iff distance < w).
        """
        stamps = self._stamp[set_idx]
        mine = stamps[way]
        return sum(1 for s in stamps if s > mine)

    def state_dict(self) -> Dict[str, object]:
        return {"clock": self._clock,
                "stamp": np.asarray(self._stamp, dtype=np.int64)}

    def load_state(self, state: Dict[str, object]) -> None:
        self._clock = int(state["clock"])
        self._stamp = [[int(s) for s in row] for row in state["stamp"]]


class SRRIPPolicy(ReplacementPolicy):
    """Static RRIP with 2-bit RRPVs (insert at 2, promote to 0 on hit)."""

    name = "srrip"
    MAX_RRPV = 3

    def __init__(self, num_sets: int, num_ways: int):
        super().__init__(num_sets, num_ways)
        self._rrpv = [[self.MAX_RRPV] * num_ways for _ in range(num_sets)]

    def on_hit(self, set_idx: int, way: int) -> None:
        self._rrpv[set_idx][way] = 0

    def on_fill(self, set_idx: int, way: int, blk: int = 0, pc: int = 0) -> None:
        self._rrpv[set_idx][way] = self.MAX_RRPV - 1

    def victim(self, set_idx: int, ways: Sequence[int]) -> int:
        rrpv = self._rrpv[set_idx]
        while True:
            for w in ways:
                if rrpv[w] >= self.MAX_RRPV:
                    return w
            for w in ways:
                rrpv[w] += 1

    def state_dict(self) -> Dict[str, object]:
        return {"rrpv": np.asarray(self._rrpv, dtype=np.int64)}

    def load_state(self, state: Dict[str, object]) -> None:
        self._rrpv = [[int(v) for v in row] for row in state["rrpv"]]


class RandomPolicy(ReplacementPolicy):
    """Deterministic pseudo-random replacement (xorshift state)."""

    name = "random"

    def __init__(self, num_sets: int, num_ways: int, seed: int = 0x9E3779B9):
        super().__init__(num_sets, num_ways)
        self._state = seed or 1

    def on_hit(self, set_idx: int, way: int) -> None:
        pass

    def on_fill(self, set_idx: int, way: int, blk: int = 0, pc: int = 0) -> None:
        pass

    def victim(self, set_idx: int, ways: Sequence[int]) -> int:
        s = self._state
        s ^= (s << 13) & 0xFFFFFFFF
        s ^= s >> 17
        s ^= (s << 5) & 0xFFFFFFFF
        self._state = s
        return ways[s % len(ways)]

    def state_dict(self) -> Dict[str, object]:
        return {"state": self._state}

    def load_state(self, state: Dict[str, object]) -> None:
        self._state = int(state["state"])


class _OptGen:
    """OPTgen occupancy vector for one sampled set (Hawkeye's oracle).

    Decides, for each reuse interval, whether Belady's MIN would have
    cached the line, given ``capacity`` ways.
    """

    def __init__(self, capacity: int, horizon: int = 128):
        self.capacity = capacity
        self.horizon = horizon
        self._occ: deque = deque([0] * horizon, maxlen=horizon)
        self._last_seen: Dict[int, int] = {}
        self._time = 0

    def access(self, blk: int) -> Optional[bool]:
        """Record an access; return True/False if this was a reuse that
        MIN would have cached / not cached, or None on first touch."""
        t = self._time
        self._time += 1
        self._occ.append(0)
        prev = self._last_seen.get(blk)
        self._last_seen[blk] = t
        if prev is None or t - prev >= self.horizon:
            return None
        # interval covers occ slots for times (prev, t]
        start = self.horizon - (t - prev)
        occ = self._occ
        if all(occ[i] < self.capacity for i in range(start, self.horizon)):
            for i in range(start, self.horizon):
                occ[i] += 1
            return True
        return False

    def state_dict(self) -> Dict[str, object]:
        return {"occ": list(self._occ),
                "last_seen": [[b, t] for b, t in self._last_seen.items()],
                "time": self._time}

    def load_state(self, state: Dict[str, object]) -> None:
        self._occ = deque((int(o) for o in state["occ"]),
                          maxlen=self.horizon)
        self._last_seen = {int(b): int(t) for b, t in state["last_seen"]}
        self._time = int(state["time"])


class HawkeyeLitePolicy(ReplacementPolicy):
    """Sampled-Belady ("Hawkeye-like") replacement.

    A per-PC 3-bit counter predicts cache-friendly vs cache-averse lines;
    sampled sets train the counters with an OPTgen occupancy vector.
    Friendly lines behave like SRRIP-0 inserts, averse lines are inserted
    at distant RRPV and evicted first.
    """

    name = "hawkeye"

    def __init__(self, num_sets: int, num_ways: int, sample_every: int = 16):
        super().__init__(num_sets, num_ways)
        self._rrpv = [[7] * num_ways for _ in range(num_sets)]
        self._line_pc = [[0] * num_ways for _ in range(num_sets)]
        self._counters: Dict[int, int] = {}
        self._sample_every = max(1, sample_every)
        self._optgen: Dict[int, _OptGen] = {}
        self._opt_pc: Dict[int, Dict[int, int]] = {}

    def _predict_friendly(self, pc: int) -> bool:
        return self._counters.get(hash32(pc) & 0x1FFF, 4) >= 4

    def _train(self, set_idx: int, blk: int, pc: int) -> None:
        if set_idx % self._sample_every:
            return
        gen = self._optgen.setdefault(set_idx, _OptGen(self.num_ways))
        pcs = self._opt_pc.setdefault(set_idx, {})
        verdict = gen.access(blk)
        last_pc = pcs.get(blk)
        pcs[blk] = pc
        if verdict is None or last_pc is None:
            return
        key = hash32(last_pc) & 0x1FFF
        c = self._counters.get(key, 4)
        self._counters[key] = min(7, c + 1) if verdict else max(0, c - 1)

    def on_hit(self, set_idx: int, way: int) -> None:
        self._rrpv[set_idx][way] = 0

    def on_fill(self, set_idx: int, way: int, blk: int = 0, pc: int = 0) -> None:
        self._train(set_idx, blk, pc)
        self._line_pc[set_idx][way] = pc
        self._rrpv[set_idx][way] = 0 if self._predict_friendly(pc) else 7

    def victim(self, set_idx: int, ways: Sequence[int]) -> int:
        rrpv = self._rrpv[set_idx]
        best = max(ways, key=lambda w: rrpv[w])
        if rrpv[best] < 7:
            # age everyone, evict oldest friendly line
            for w in ways:
                rrpv[w] = min(6, rrpv[w] + 1)
        return best

    def state_dict(self) -> Dict[str, object]:
        return {
            "rrpv": np.asarray(self._rrpv, dtype=np.int64),
            "line_pc": np.asarray(self._line_pc, dtype=np.int64),
            "counters": [[k, v] for k, v in self._counters.items()],
            "optgen": [[s, g.state_dict()]
                       for s, g in self._optgen.items()],
            "opt_pc": [[s, [[b, p] for b, p in pcs.items()]]
                       for s, pcs in self._opt_pc.items()],
        }

    def load_state(self, state: Dict[str, object]) -> None:
        self._rrpv = [[int(v) for v in row] for row in state["rrpv"]]
        self._line_pc = [[int(v) for v in row]
                         for row in state["line_pc"]]
        self._counters = {int(k): int(v) for k, v in state["counters"]}
        self._optgen = {}
        for set_idx, gstate in state["optgen"]:
            gen = _OptGen(self.num_ways)
            gen.load_state(gstate)
            self._optgen[int(set_idx)] = gen
        self._opt_pc = {int(s): {int(b): int(p) for b, p in pcs}
                        for s, pcs in state["opt_pc"]}


POLICIES = {
    "lru": LRUPolicy,
    "srrip": SRRIPPolicy,
    "random": RandomPolicy,
    "hawkeye": HawkeyeLitePolicy,
}


def make_policy(name: str, num_sets: int, num_ways: int) -> ReplacementPolicy:
    """Instantiate a replacement policy by name."""
    try:
        cls = POLICIES[name]
    except KeyError:
        raise ValueError(f"unknown replacement policy {name!r}; "
                         f"choose from {sorted(POLICIES)}") from None
    return cls(num_sets, num_ways)
